//! Global (cluster-level) energy techniques: consolidate load and put
//! idle servers to sleep — the paper's §1/§2 "global" class, simulated
//! over machine-model power levels.
//!
//! ```text
//! cargo run --example cluster_scheduling --release
//! ```

use ecodb::core::cluster::{simulate, uniform_stream, Policy, ServerPower};
use ecodb::simhw::machine::{Machine, MachineConfig};

fn main() {
    let power = ServerPower::from_machine(&Machine::paper_sut(), &MachineConfig::stock());
    println!(
        "server power: busy {:.1} W, idle {:.1} W, asleep {:.1} W (wall)\n",
        power.busy_w, power.idle_w, power.sleep_w
    );

    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10}",
        "scenario", "load", "energy J", "J/query", "avg resp"
    );
    for (label, inter_arrival, service) in [
        ("overnight trickle", 2.0, 0.1),
        ("business hours", 0.25, 0.1),
        ("peak", 0.06, 0.1),
    ] {
        let jobs = uniform_stream(400, inter_arrival, service);
        let load = service / inter_arrival;
        let all_on = simulate(4, power, Policy::AllOnRoundRobin, &jobs);
        let packed = simulate(
            4,
            power,
            Policy::Consolidate {
                idle_timeout_s: 3.0,
                wake_latency_s: 0.5,
            },
            &jobs,
        );
        println!(
            "{:<22} {:>9.0}% {:>12.0} {:>12.2} {:>9.3}s   (all on)",
            label,
            load * 100.0 * 4.0 / 4.0,
            all_on.energy_j,
            all_on.joules_per_query(400),
            all_on.avg_response_s
        );
        println!(
            "{:<22} {:>10} {:>12.0} {:>12.2} {:>9.3}s   (consolidate+sleep, {:.0}% energy)",
            "",
            "",
            packed.energy_j,
            packed.joules_per_query(400),
            packed.avg_response_s,
            packed.energy_j / all_on.energy_j * 100.0
        );
    }
    println!(
        "\nAt low utilization — \"the common case\" (paper §1) — turning servers\n\
         off buys large energy savings for a bounded response-time cost."
    );
}
