//! QED batching: delay queries in an admission queue, merge each batch
//! with multi-query optimization, and trade response time for energy
//! (paper §4 / Fig 6).
//!
//! ```text
//! cargo run --example qed_batching --release
//! ```

use ecodb::core::advisor::{choose_qed_batch, Sla};
use ecodb::core::qed::{run_qed, WorkloadManager};
use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::simhw::MachineConfig;
use ecodb::tpch::qed_workload;

fn main() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.01);

    // The admission queue in action: queries arrive one by one; the
    // workload manager releases a batch when the threshold is reached.
    let mut manager = WorkloadManager::new(10);
    let mut released = None;
    for q in qed_workload(10) {
        released = manager.submit(q);
    }
    let batch = released.expect("threshold reached");
    println!(
        "admission queue released a batch of {} queries\n",
        batch.len()
    );

    // The paper's Fig 6 sweep: batch sizes 35..50.
    println!("batch   E ratio   avg-resp ratio   per-query EDP ratio");
    for k in [35, 40, 45, 50] {
        let o = run_qed(&db, k, MachineConfig::stock(), true);
        assert!(o.results_match);
        println!(
            "{:>5}   {:>7.3}   {:>14.3}   {:>19.3}",
            k, o.energy_ratio, o.response_ratio, o.edp_ratio
        );
    }

    // Advisor: largest batch whose estimated response degradation fits
    // the SLA (larger batches always save more energy).
    for slack in [5.0, 10.0, 25.0] {
        match choose_qed_batch(db.catalog(), db.machine(), 50, Sla::slack_pct(slack), true) {
            Some(e) => println!(
                "\nSLA +{slack}% -> batch {} (est. E ratio {:.3}, est. resp ratio {:.3})",
                e.batch_size, e.energy_ratio, e.response_ratio
            ),
            None => println!("\nSLA +{slack}% -> batching not worthwhile; run sequentially"),
        }
    }
}
