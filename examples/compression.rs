//! Compressed columnar mirrors and direct-on-compressed execution
//! (ledger schema v3): per-column encoding choices on TPC-H `lineitem`,
//! the resulting compression ratios, and the priced-energy delta on Q6
//! when scans charge *encoded* bytes and predicates run on dictionary
//! ids / RLE runs / packed words instead of decompressed values.
//!
//! ```text
//! cargo run --example compression --release
//! ```

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::query::context::ExecCtx;
use ecodb::query::exec::execute_columnar;
use ecodb::query::plans;
use ecodb::simhw::machine::MachineConfig;
use ecodb::simhw::trace::{PhaseKind, PricingMode, WorkTrace};
use ecodb::storage::{tuple_width, TableData};

fn main() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.01);
    let table = db.catalog().expect("lineitem");
    let TableData::Memory(heap) = &table.data else {
        unreachable!("memory profile stores heap tables");
    };

    // Per-column encoding choice, picked at mirror-build time from
    // column statistics (exact candidate byte sizes).
    let enc = heap.encoded();
    let rows = enc.rows() as u64;
    let raw_bytes: u64 = heap.tuples().iter().map(tuple_width).sum();
    println!(
        "lineitem: {rows} rows, raw {raw_bytes} B, encoded {} B",
        enc.encoded_bytes()
    );
    println!(
        "\n{:<16} {:>10} {:>12} {:>8}",
        "column", "encoding", "bytes", "B/row"
    );
    for (col, e) in table.schema().columns().iter().zip(enc.columns()) {
        println!(
            "{:<16} {:>10} {:>12} {:>8.2}",
            col.name,
            e.encoding_name(),
            e.encoded_bytes(),
            e.encoded_bytes() as f64 / rows as f64
        );
    }
    println!(
        "\ntable compression ratio: {:.2}x ({} -> {} B/row priced by scans)",
        raw_bytes as f64 / enc.encoded_bytes() as f64,
        table.avg_tuple_bytes(),
        enc.avg_tuple_bytes(),
    );

    // Q6 under both pricing modes: identical rows, cheaper ledger.
    let run = |pricing: PricingMode| {
        let mut ctx = ExecCtx::new().with_columnar(true).with_pricing(pricing);
        let rows = execute_columnar(plans::q6_plan(db.catalog(), 1994, 6, 24).as_mut(), &mut ctx);
        let bytes = ctx.mem_stream_bytes;
        let mut trace = WorkTrace::new();
        trace.push(ctx.take_phase(PhaseKind::Execute, "q6"));
        let m = db.machine().measure(&trace, &MachineConfig::stock());
        (rows, bytes, m.cpu_joules + m.dram_joules)
    };
    let (raw_rows, raw_b, raw_j) = run(PricingMode::Raw);
    let (comp_rows, comp_b, comp_j) = run(PricingMode::Compressed);
    assert_eq!(
        comp_rows, raw_rows,
        "compressed kernels must match raw rows"
    );

    println!("\nQ6 (columnar engine, memory storage):");
    println!("  raw pricing:        {raw_b:>12} priced bytes, {raw_j:.5} J");
    println!("  compressed pricing: {comp_b:>12} priced bytes, {comp_j:.5} J");
    println!(
        "  -> {:.2}x fewer priced memory bytes, {:.1}% less energy, same {} result row(s)",
        raw_b as f64 / comp_b as f64,
        100.0 * (1.0 - comp_j / raw_j),
        raw_rows.len()
    );
}
