//! The durable write path end to end: WAL-logged DML, the group-commit
//! energy win, a deterministic crash, and recovery back to exactly the
//! committed prefix.
//!
//! Shows the schema-v5 write-path contract:
//!
//! * every `INSERT`/`UPDATE`/`DELETE` logs redo records
//!   (`OpClass::LogRecord`) and pays one block-rounded sequential
//!   `log_ios`/`log_bytes` charge per fsync — so ten statements under
//!   one group commit pay one block where ten per-statement fsyncs pay
//!   ten, and the joules follow;
//! * an injected `WalCrash` kills the log mid-workload: later writers
//!   fail with a typed `ServerError::Wal`, reads keep working, nothing
//!   panics;
//! * `EcoDb::recover` trims the torn tail, discards uncommitted
//!   records, replays the committed prefix, and restores the write
//!   path — the recovered table state matches a clean replay of the
//!   acknowledged statements row for row.
//!
//! ```text
//! cargo run --example wal_recovery --release
//! ```

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::core::ServerError;
use ecodb::simhw::fault::{FaultPlan, TornTail, WalCrash};
use ecodb::simhw::MachineConfig;

fn main() {
    let config = MachineConfig::stock();

    // --- 1. Group commit vs per-statement durability ----------------
    let statements: Vec<String> = (0..10)
        .map(|k| format!("INSERT INTO region VALUES ({}, 'R{k}', 'durable')", 100 + k))
        .collect();

    // Per-statement durability: every insert fsyncs its own tail.
    let solo = EcoDb::tpch(EngineProfile::CommercialDisk, 0.002);
    let mut solo_joules = 0.0;
    let mut solo_log = (0u64, 0u64);
    for sql in &statements {
        let (_, trace) = solo.try_trace_sql(sql).expect("durable insert");
        let m = solo.machine().measure(&trace, &config);
        solo_joules += m.wall_joules;
        for p in trace.phases() {
            solo_log.0 += p.disk.log_ios;
            solo_log.1 += p.disk.log_bytes;
        }
    }

    // Group commit: the same ten inserts stage their records, one
    // fsync covers them all.
    let grouped = EcoDb::tpch(EngineProfile::CommercialDisk, 0.002);
    let mut grouped_joules = 0.0;
    for sql in &statements {
        let (_, trace, pending) = grouped.try_trace_sql_deferred(sql).expect("staged insert");
        assert!(pending, "DML leaves log bytes pending");
        grouped_joules += grouped.machine().measure(&trace, &config).wall_joules;
    }
    let (commit_bytes, commit_trace) = grouped.commit_wal().expect("group commit");
    grouped_joules += grouped.machine().measure(&commit_trace, &config).wall_joules;
    let grouped_log: (u64, u64) = commit_trace
        .phases()
        .iter()
        .fold((0, 0), |(i, b), p| (i + p.disk.log_ios, b + p.disk.log_bytes));

    println!("10 inserts, per-statement fsync: {:>2} log_ios, {:>6} log_bytes, {:.4} mJ/txn",
        solo_log.0, solo_log.1, solo_joules / 10.0 * 1e3);
    println!("10 inserts, one group commit:   {:>2} log_ios, {:>6} log_bytes, {:.4} mJ/txn",
        grouped_log.0, grouped_log.1, grouped_joules / 10.0 * 1e3);
    assert_eq!(solo_log.0, 10);
    assert_eq!(grouped_log.0, 1, "one fsync covers the whole group");
    assert!(grouped_log.1 < solo_log.1, "block rounding is the win");
    assert_eq!(commit_bytes, grouped_log.1);

    // --- 2. Crash mid-workload --------------------------------------
    let mut db = EcoDb::tpch(EngineProfile::CommercialDisk, 0.002);
    db.set_fault_plan(FaultPlan::none().with_wal_crash(WalCrash::KillAfterRecords {
        records: 4, // two committed inserts (record + commit marker each)
        torn: TornTail::MidPayload,
    }));
    let mut acknowledged = Vec::new();
    for sql in &statements {
        match db.try_trace_sql(sql) {
            Ok(_) => acknowledged.push(sql.clone()),
            Err(e) => {
                assert!(matches!(e, ServerError::Wal(_)), "typed write-path failure");
            }
        }
    }
    println!("\ncrash after 4 log records: {} of {} inserts acknowledged",
        acknowledged.len(), statements.len());

    // Reads survive the crashed log; only writers fail.
    let probe = "SELECT r_regionkey, r_name FROM region";
    let (rows_before, _) = db.try_trace_sql(probe).expect("reads survive");
    println!("reads still serve: region has {} rows pre-recovery", rows_before.len());

    // --- 3. Recovery ------------------------------------------------
    let report = db.recover().expect("recovery");
    println!(
        "recovered: {} committed txns, {} records replayed, torn_tail={}, \
         {} uncommitted records discarded, {} indexes rebuilt",
        report.committed_txns.len(),
        report.records_replayed,
        report.torn_tail,
        report.uncommitted_records,
        report.indexes_rebuilt,
    );
    assert_eq!(report.committed_txns.len(), acknowledged.len());
    assert!(report.torn_tail, "MidPayload kill leaves a torn tail to trim");

    // Equivalence: a clean replay of exactly the acknowledged
    // statements on a fresh twin lands on the same table state.
    let twin = EcoDb::tpch(EngineProfile::CommercialDisk, 0.002);
    for sql in &acknowledged {
        twin.try_trace_sql(sql).expect("clean replay");
    }
    let (recovered_rows, _) = db.try_trace_sql(probe).expect("probe");
    let (twin_rows, _) = twin.try_trace_sql(probe).expect("probe");
    assert_eq!(recovered_rows, twin_rows, "committed prefix, nothing more");

    // The write path is back.
    db.try_trace_sql("INSERT INTO region VALUES (900, 'POSTCRASH', 'ok')")
        .expect("write path restored");

    println!("\ncommitted prefix recovered exactly; write path restored ✓");
}
