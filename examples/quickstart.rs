//! Quickstart: open a TPC-H database, run a query, and trade energy for
//! performance with one PVC setting.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::simhw::{CpuConfig, MachineConfig, VoltageSetting};

fn main() {
    // A MySQL-memory-engine-style database at TPC-H scale factor 0.01.
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.01);

    // Run TPC-H Q5 (region ASIA, orders from 1994) at stock settings.
    let stock = db.run_q5("ASIA", 1994, MachineConfig::stock());
    println!("Q5(ASIA, 1994) at stock:");
    for row in &stock.rows {
        println!(
            "  {:<12} revenue ${:.2}",
            row[0],
            row[1].as_int().unwrap() as f64 / 100.0
        );
    }
    println!(
        "  -> {:.1} ms, {:.3} J CPU ({:.1} W avg)\n",
        stock.measurement.elapsed_s * 1e3,
        stock.measurement.cpu_joules,
        stock.measurement.avg_cpu_w
    );

    // The paper's setting A: 5 % FSB underclock + medium voltage downgrade.
    let setting_a = MachineConfig::with_cpu(CpuConfig::underclocked(0.05, VoltageSetting::Medium));
    let pvc = db.run_q5("ASIA", 1994, setting_a);
    assert_eq!(pvc.rows, stock.rows, "same answer, fewer joules");
    println!(
        "Same query under PVC setting A (5% underclock, medium voltage):\n  -> {:.1} ms (+{:.1}%), {:.3} J CPU ({:.1}% energy saved)",
        pvc.measurement.elapsed_s * 1e3,
        (pvc.measurement.elapsed_s / stock.measurement.elapsed_s - 1.0) * 100.0,
        pvc.measurement.cpu_joules,
        (1.0 - pvc.measurement.cpu_joules / stock.measurement.cpu_joules) * 100.0
    );
}
