//! Component-level energy: the Table-1 power breakdown, per-component
//! joules for a workload, and the paper's 1 Hz sensor methodology vs
//! exact integration.
//!
//! ```text
//! cargo run --example energy_breakdown --release
//! ```

use ecodb::core::experiments;
use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::simhw::MachineConfig;

fn main() {
    // Table 1: wall power as the machine is built up.
    println!("{}", experiments::table1_report());

    // Where does the energy go during the Q5 workload?
    let db = EcoDb::tpch(EngineProfile::CommercialDisk, 0.01);
    db.warm_up();
    let r = db.run_q5_workload(MachineConfig::stock());
    let m = &r.measurement;
    println!("Q5 workload ({:.2} s wall):", m.elapsed_s);
    println!(
        "  CPU    {:>8.2} J  ({:.1} W avg, utilization {:.0}%)",
        m.cpu_joules,
        m.avg_cpu_w,
        m.utilization * 100.0
    );
    println!("  DRAM   {:>8.2} J", m.dram_joules);
    println!("  disk   {:>8.2} J", m.disk_joules);
    println!(
        "  wall   {:>8.2} J  ({:.1} W avg, incl. PSU losses)",
        m.wall_joules, m.avg_wall_w
    );
    println!(
        "  CPU share of wall energy: {:.0}%  (paper §3.2 observes ≈25%)",
        m.cpu_joules / m.wall_joules * 100.0
    );

    // The paper measured CPU joules by sampling a GUI at ~1 Hz.
    let err = (m.cpu_joules_epu - m.cpu_joules).abs() / m.cpu_joules;
    println!(
        "\nEPU-sensor methodology: sampled {:.2} J vs exact {:.2} J ({:.2}% error)",
        m.cpu_joules_epu,
        m.cpu_joules,
        err * 100.0
    );
}
