//! The eco-server front door: 1 000 concurrent sessions served with
//! online QED batching, energy-aware admission, and open-system
//! pricing — joules/query vs the no-batching baseline, with the
//! per-session ledger identity checked at the end.
//!
//! ```text
//! cargo run --example serve --release
//! ```

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::query::exec::ExecEngine;
use ecodb::server::{
    plan_admission, replay_serial, session_workload, AdmissionConfig, EcoServer, ServerConfig,
};

fn main() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.005).with_engine(ExecEngine::Columnar);

    // The advisor walks the QED estimate curve and picks the knee.
    let plan = plan_admission(&db, &AdmissionConfig::default());
    println!(
        "advisor knee: batch threshold {}, shed above backlog {}\n",
        plan.threshold, plan.max_backlog
    );

    // 1 000 sessions offered faster than the unbatched server drains
    // them (saturating load), predicates drawn from the 1..=50 domain.
    let requests = session_workload(1_000, 50_000.0, 0xEC0);
    let workers = 2;

    println!("mode        qps      mJ/query   avg-resp ms   queue ms   dispatches");
    let mut reports = Vec::new();
    for (name, threshold) in [("unbatched", 1), ("online QED", plan.threshold)] {
        let cfg = ServerConfig::batched(workers, threshold);
        let report = EcoServer::new(&db, cfg).serve(&requests);
        assert_eq!(report.served, requests.len());
        println!(
            "{:<10} {:>6.0}   {:>9.4}   {:>11.2}   {:>8.2}   {:>10}",
            name,
            report.queries_per_second(),
            report.joules_per_query() * 1e3,
            report.avg_response_s() * 1e3,
            report.avg_queue_delay_s() * 1e3,
            report.dispatches.len()
        );
        reports.push(report);
    }

    let gain = reports[0].joules_per_query() / reports[1].joules_per_query();
    println!("\nonline QED batching: {gain:.2}x fewer joules per query at equal offered load");

    // The invariant that makes the numbers trustworthy: per-session
    // forked ledgers merge back to the server ledger, and the server
    // ledger is bit-identical to a serial replay of the same merged
    // statements.
    for report in &reports {
        assert!(report.ledger_identity(), "session fork/merge must be exact");
        let replay = replay_serial(&db, &report.dispatches, workers, true);
        assert_eq!(report.ledger, replay, "serve must equal serial replay");
    }
    println!("ledger identity: per-session merge == server == serial replay ✓");
}
