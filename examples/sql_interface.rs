//! The SQL front-end: submit ad-hoc SQL text, get answers priced in
//! time *and* joules — including TPC-H Q5 exactly as published.
//!
//! ```text
//! cargo run --example sql_interface --release
//! ```

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::simhw::{CpuConfig, MachineConfig, VoltageSetting};

fn main() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.01);

    let statements = [
        "SELECT COUNT(*) AS lineitems FROM lineitem",
        "SELECT r_name, COUNT(*) AS nations FROM region, nation \
         WHERE n_regionkey = r_regionkey GROUP BY r_name ORDER BY r_name",
        "SELECT l_quantity, COUNT(*) AS rows_at_qty FROM lineitem \
         WHERE l_quantity IN (1, 25, 50) GROUP BY l_quantity ORDER BY l_quantity",
        // TPC-H Q5, verbatim shape (money in cents, percents in hundredths).
        "SELECT n_name, SUM(l_extendedprice * (100 - l_discount) / 100) AS revenue \
         FROM customer, orders, lineitem, supplier, nation, region \
         WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
           AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
           AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
           AND r_name = 'ASIA' \
           AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01' \
         GROUP BY n_name ORDER BY revenue DESC",
    ];

    let eco = MachineConfig::with_cpu(CpuConfig::underclocked(0.05, VoltageSetting::Medium));
    for sql in statements {
        println!("sql> {sql}");
        match db.run_sql(sql, MachineConfig::stock()) {
            Ok(run) => {
                for row in run.rows.iter().take(8) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("     {}", cells.join(" | "));
                }
                if run.rows.len() > 8 {
                    println!("     ... {} rows total", run.rows.len());
                }
                let eco_m = db.price(&run.trace, eco);
                println!(
                    "     [{:.2} ms, {:.4} J stock | {:.4} J at 5% UC/medium]\n",
                    run.measurement.elapsed_s * 1e3,
                    run.measurement.cpu_joules,
                    eco_m.cpu_joules
                );
            }
            Err(e) => println!("     error: {e}\n"),
        }
    }

    // Errors are first-class too.
    let bad = db.run_sql("SELECT bogus FROM lineitem", MachineConfig::stock());
    println!(
        "sql> SELECT bogus FROM lineitem\n     -> {}",
        bad.unwrap_err()
    );
}
