//! Index probe vs sequential scan: the random-vs-sequential disk
//! energy trade-off (paper Fig 5) applied to access-path selection.
//!
//! ```text
//! cargo run --example index_probe --release
//! ```
//!
//! The paper measured that random disk access costs far more energy
//! per byte than sequential access "primarily because it is faster"
//! to stream. A B-tree secondary index turns that hardware trade-off
//! into a *plan* trade-off: a probe touches only the pages that hold
//! matching rows, but every touch is priced as random I/O (ledger
//! schema v4, `index_ios`/`index_bytes`), while a full scan streams
//! every page at the cheap sequential rate. Sweep selectivity and the
//! two curves cross.

use ecodb::core::advisor::{choose_access_path, AccessPath};
use ecodb::core::experiments;
use ecodb::core::server::{EcoDb, EngineProfile};

fn main() {
    // The measured sweep: cold scan vs cold index probe over widening
    // l_orderkey ranges (lineitem is clustered by orderkey, so the key
    // fraction maps to a contiguous band of heap pages).
    let rows = experiments::index_crossover(0.01);
    println!("{}", experiments::index_crossover_report(&rows));

    let narrow = &rows[0];
    let full = rows.last().expect("sweep is non-empty");
    println!(
        "narrowest range: index uses {:.1}x LESS energy than the scan",
        1.0 / narrow.energy_ratio
    );
    println!(
        "full-table range: index uses {:.1}x MORE energy than the scan\n",
        full.energy_ratio
    );

    // The advisor reaches the same verdict from estimates alone, without
    // running either plan: probe joules grow with the selectivity (one
    // random-priced page per distinct match site), scan joules stay
    // pinned to the table's sequential footprint.
    let db = EcoDb::tpch(EngineProfile::CommercialDisk, 0.01);
    let entry = db
        .catalog()
        .create_index("ix_lineitem_orderkey", "lineitem", "l_orderkey")
        .expect("lineitem is a disk table");
    println!("advisor crossover (estimated, commercial disk profile):");
    println!(
        "{:>12} {:>12} {:>12}  chosen path",
        "selectivity", "scan J", "index J"
    );
    for sel in [1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0] {
        let advice = choose_access_path(db.catalog(), &entry, sel, db.machine());
        println!(
            "{:>12.0e} {:>12.3} {:>12.3}  {}",
            sel,
            advice.scan_joules,
            advice.index_joules,
            match advice.path {
                AccessPath::IndexProbe => "index probe",
                AccessPath::SeqScan => "sequential scan",
            }
        );
    }
    println!("\n(paper Fig 5: random access costs more joules per byte than");
    println!("sequential; the index only wins while it can skip enough pages");
    println!("to pay for its randomly-priced seeks)");
}
