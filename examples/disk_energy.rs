//! Disk energy: random vs sequential access (paper Fig 5) and the
//! warm/cold workload study (paper §3.5).
//!
//! ```text
//! cargo run --example disk_energy --release
//! ```

use ecodb::core::experiments;
use ecodb::simhw::{AccessPattern, DiskSpec};

fn main() {
    // Fig 5 data.
    println!("{}", experiments::fig5_report(&experiments::fig5()));

    // The paper's conclusion, verified: sequential beats random on
    // energy per KB "primarily because it is faster".
    let disk = DiskSpec::default();
    let total = (16u64 << 30) / 10;
    let seq = disk.energy_per_kb(AccessPattern::Sequential, total, 4 << 10);
    let rnd = disk.energy_per_kb(AccessPattern::Random, total, 4 << 10);
    println!(
        "4 KB reads: random costs {:.0}x the energy per KB of sequential\n",
        rnd / seq
    );

    // Warm vs cold workload runs (§3.5): disk joules vs CPU joules.
    println!(
        "{}",
        experiments::warm_cold_report(&experiments::warm_cold(0.01))
    );
    println!("(paper: warm disk ≈ 1/6 of CPU joules; cold > 1/2, with a ~3x slowdown)");
}
