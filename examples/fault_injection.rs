//! Deterministic fault injection: a session mix served over the
//! commercial-disk profile while a seeded `FaultPlan` corrupts page
//! reads, then the same mix replayed fault-free.
//!
//! Shows the robustness contract end to end:
//!
//! * transient faults retry with exponential backoff, priced into the
//!   explicitly versioned schema-v2 ledger classes (`retry_ios`,
//!   `retry_bytes`, `backoff_ns`);
//! * a permanent fault fails only the sessions whose batch touched the
//!   bad page, with a typed `ServerError::Io` — the server never
//!   panics, and sustained fault pressure widens the batch threshold
//!   instead of crashing;
//! * once the plan is cleared, the ledger carries zero retry/backoff
//!   charges again — fault-free runs stay bit-identical.
//!
//! ```text
//! cargo run --example fault_injection --release
//! ```

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::core::ServerError;
use ecodb::server::{session_workload, EcoServer, ServeReport, ServerConfig, SessionOutcome};
use ecodb::simhw::fault::FaultPlan;

fn show(name: &str, report: &ServeReport) {
    println!(
        "{name:<22} served {:>2}, failed {:>2}, io_failed {:>2}, degraded={:<5} \
         retry_ios {:>3}, backoff {:>8} ns, {:.4} mJ/query",
        report.served,
        report.failed,
        report.io_failed,
        report.degraded,
        report.ledger.disk.retry_ios,
        report.ledger.backoff_ns,
        report.joules_per_query() * 1e3,
    );
}

fn main() {
    let db = EcoDb::tpch(EngineProfile::CommercialDisk, 0.002);
    let requests = session_workload(12, 500.0, 0xFA17);
    let cfg = ServerConfig::batched(2, 3);

    // Transient-only plan: every fault retries to completion, and the
    // retries are charged to the schema-v2 ledger classes.
    db.set_fault_plan(FaultPlan::new(3, 20_000));
    db.flush_cache(); // faults fire on buffer-pool misses
    let transient = EcoServer::new(&db, cfg).serve(&requests);
    show("transient faults", &transient);
    assert_eq!(transient.served, requests.len());

    // Saturated plan: permanent faults fail their owning sessions with
    // a typed error; admission degrades instead of panicking.
    db.set_fault_plan(FaultPlan::new(77, 1_000_000));
    db.flush_cache();
    let stormy = EcoServer::new(&db, cfg).serve(&requests);
    show("saturated faults", &stormy);
    for outcome in &stormy.outcomes {
        if let SessionOutcome::Rejected { error, .. } = outcome {
            assert!(matches!(error, ServerError::Io(_)), "rejections are typed");
        }
    }

    // Clear the plan: service recovers in full and the v2 classes drop
    // back to zero — the fault-free ledger is bit-identical again.
    db.set_fault_plan(FaultPlan::none());
    db.flush_cache();
    let clean = EcoServer::new(&db, cfg).serve(&requests);
    show("fault-free replay", &clean);
    assert_eq!(clean.served, requests.len());
    assert_eq!(clean.ledger.disk.retry_ios, 0);
    assert_eq!(clean.ledger.backoff_ns, 0);
    assert!(clean.ledger_identity(), "session fork/merge stays exact");

    println!("\ntyped errors, priced retries, bit-identical fault-free ledgers ✓");
}
