//! PVC tuning: sweep the underclock × voltage grid for a workload,
//! print the operating-point plot data (paper Figs 1-3), and let the
//! energy advisor pick a setting under a response-time SLA.
//!
//! ```text
//! cargo run --example pvc_tuning --release
//! ```

use ecodb::core::advisor::{choose_pvc, Sla};
use ecodb::core::pvc::PvcSweep;
use ecodb::core::server::{EcoDb, EngineProfile};

fn main() {
    for profile in [EngineProfile::CommercialDisk, EngineProfile::MemoryEngine] {
        let db = EcoDb::tpch(profile, 0.01);
        if profile == EngineProfile::CommercialDisk {
            db.warm_up();
        }
        // The paper's workload: ten Q5 variants, non-overlapping predicates.
        let (_, trace) = db.trace_q5_workload();
        let sweep = PvcSweep::paper_grid(db.machine(), &trace);

        println!(
            "{} profile — stock: {:.2} s, {:.1} J CPU",
            profile.name(),
            sweep.stock.seconds,
            sweep.stock.cpu_joules
        );
        println!(
            "  {:<18} {:>8} {:>8} {:>8}",
            "setting", "E ratio", "T ratio", "EDP"
        );
        for p in &sweep.points {
            println!(
                "  {:<18} {:>8.3} {:>8.3} {:>8.3}{}",
                p.point.label,
                p.energy_ratio,
                p.time_ratio,
                p.edp_ratio,
                if p.point.is_interesting(&sweep.stock) {
                    "  <- interesting"
                } else {
                    ""
                }
            );
        }

        // SLA-driven choice: how much slowdown will you tolerate?
        for slack in [0.0, 5.0, 15.0] {
            let cfg = choose_pvc(&sweep, Sla::slack_pct(slack));
            println!(
                "  SLA +{slack:>4.1}% slowdown -> run at {:?}",
                cfg.cpu.label()
            );
        }
        println!();
    }
}
