//! Workspace-local stand-in for the slice of `rand` 0.8 that ecoDB's
//! TPC-H generator uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, and `Rng::gen_bool`.
//!
//! The container this repo builds in has no registry access, so the
//! handful of third-party crates are vendored as API-compatible stubs
//! (see `Cargo.lock`'s `0.x.99` versions). The generator is a
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms and releases, which is all the data generator needs.

pub mod rngs {
    pub use crate::StdRng;
}

/// Core source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard deterministic generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state, as the
        // xoshiro authors recommend.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, n)` without modulo bias (Lemire's method
/// simplified to rejection-free multiply-shift is overkill here; plain
/// rejection keeps determinism simple and exact).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, same construction as rand 0.8.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
        }
        // Both endpoints of a small inclusive range show up.
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
