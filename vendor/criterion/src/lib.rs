//! Workspace-local stand-in for the slice of `criterion` that ecoDB's
//! benches use: `Criterion`, `benchmark_group` / `sample_size` /
//! `bench_function` / `finish`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The container this repo builds in has no registry access, so the
//! handful of third-party crates are vendored as API-compatible stubs
//! (see `Cargo.lock`'s `0.x.99` versions). This one is a real (if
//! minimal) wall-clock harness: each benchmark runs one warm-up
//! iteration plus `sample_size` timed samples and reports the median,
//! so `cargo bench` output remains meaningful for A/B comparisons.

use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id.as_ref(), self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.as_ref().to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "{id:<50} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions into one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + DEFAULT_SAMPLE_SIZE timed samples.
        assert_eq!(runs, DEFAULT_SAMPLE_SIZE + 1);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("case", |b| {
                b.iter(|| {
                    runs += 1;
                })
            });
            g.finish();
        }
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
