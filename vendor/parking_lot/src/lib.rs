//! Workspace-local stand-in for the tiny slice of `parking_lot` that
//! ecoDB uses: a non-poisoning [`Mutex`] whose `lock()` returns the
//! guard directly instead of a `Result`.
//!
//! The container this repo builds in has no registry access, so the
//! handful of third-party crates are vendored as API-compatible stubs
//! (see `Cargo.lock`'s `0.x.99` versions). Backed by `std::sync::Mutex`;
//! a poisoned lock is re-entered rather than propagated, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, blocking the current thread until available.
    /// Unlike `std`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
