//! Strategies: deterministic value generators composable with
//! `prop_map`, unions and collections.

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// draws one value from the strategy's distribution.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several strategies of the same value type
/// (built by the `prop_oneof!` macro).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix uniform draws with boundary values, which real
                // proptest's binary-search shrinking would otherwise
                // surface.
                match rng.gen_range(0u32..10) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Bias toward ASCII (the interesting cases for a DBMS), but
        // exercise the full scalar-value range too.
        match rng.gen_range(0u32..4) {
            0..=2 => rng.gen_range(0x20u32..0x7F) as u8 as char,
            _ => loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10_FFFF)) {
                    break c;
                }
            },
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String literals act as (simplified) regex strategies generating
/// matching strings. Supported shape: a single atom — `.` or a
/// character class `[a-z...]` — followed by a `{min,max}` repetition;
/// anything else generates the literal pattern itself.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_simple_regex(self) {
            Some((atom, min, max)) => {
                let len = rng.gen_range(min..=max);
                (0..len).map(|_| atom.sample(rng)).collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// One regex atom: the set of characters it can produce.
enum Atom {
    /// `.` — any character except a line break.
    Dot,
    /// `[...]` — an explicit set of ranges/characters.
    Class(Vec<(char, char)>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Dot => {
                // Mostly printable ASCII, occasionally further afield —
                // never a newline, matching `.` semantics.
                match rng.gen_range(0u32..8) {
                    0..=5 => rng.gen_range(0x20u32..0x7F) as u8 as char,
                    6 => '\t',
                    _ => loop {
                        let c = match char::from_u32(rng.gen_range(0x80u32..=0x2FFF)) {
                            Some(c) => c,
                            None => continue,
                        };
                        if c != '\n' && c != '\r' {
                            break c;
                        }
                    },
                }
            }
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo)
            }
        }
    }
}

/// Parse `<atom>{min,max}` where atom is `.` or `[...]`.
fn parse_simple_regex(pattern: &str) -> Option<(Atom, usize, usize)> {
    let (atom, rest) = if let Some(rest) = pattern.strip_prefix('.') {
        (Atom::Dot, rest)
    } else if let Some(body_and_rest) = pattern.strip_prefix('[') {
        let close = body_and_rest.find(']')?;
        let body = &body_and_rest[..close];
        let mut ranges = Vec::new();
        let chars: Vec<char> = body.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                ranges.push((chars[i], chars[i + 2]));
                i += 3;
            } else {
                ranges.push((chars[i], chars[i]));
                i += 1;
            }
        }
        if ranges.is_empty() {
            return None;
        }
        (Atom::Class(ranges), &body_and_rest[close + 1..])
    } else {
        return None;
    };

    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min_s, max_s) = counts.split_once(',')?;
    let min: usize = min_s.trim().parse().ok()?;
    let max: usize = max_s.trim().parse().ok()?;
    (min <= max).then_some((atom, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (1i64..=50).generate(&mut r);
            assert!((1..=50).contains(&v));
            let f = (0.25f64..0.5).generate(&mut r);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn map_and_just() {
        let mut r = rng();
        let s = (1i64..=3).prop_map(|v| v * 10);
        for _ in 0..100 {
            assert!([10, 20, 30].contains(&s.generate(&mut r)));
        }
        assert_eq!(Just("x").generate(&mut r), "x");
    }

    #[test]
    fn regex_dot_repetition() {
        let mut r = rng();
        for _ in 0..200 {
            let s = ".{0,120}".generate(&mut r);
            assert!(s.chars().count() <= 120);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn regex_class_repetition() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[ -~]{0,40}".generate(&mut r);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn non_regex_literal_passthrough() {
        let mut r = rng();
        assert_eq!("select".generate(&mut r), "select");
    }

    #[test]
    fn union_draws_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![Just(1i64).boxed(), Just(2i64).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[(u.generate(&mut r) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn arbitrary_hits_boundaries() {
        let mut r = rng();
        let mut saw_extreme = false;
        for _ in 0..200 {
            let v = i64::arbitrary(&mut r);
            if v == i64::MAX || v == i64::MIN || v == 0 {
                saw_extreme = true;
            }
        }
        assert!(saw_extreme);
    }
}
