//! Test-runner plumbing: configuration, the per-test deterministic RNG,
//! and the soft-failure error type.

use rand::{RngCore, SeedableRng};

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A soft test-case failure (produced by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic RNG strategies draw from. Seeded from the test's
/// fully-qualified name so every test gets a distinct but reproducible
/// stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::StdRng,
}

impl TestRng {
    /// RNG seeded from `name` (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: rand::StdRng::seed_from_u64(hash),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from an integer range.
    pub fn gen_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        use rand::Rng;
        self.inner.gen_range(range)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x::z");
        assert_ne!(TestRng::deterministic("x::y").next_u64(), c.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::deterministic("unit");
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
