//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A collection-size specification (from a `usize` range).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_incl: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_incl: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max_incl: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_incl: n,
        }
    }
}

/// Vectors of values from `elem` with a length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// The result of [`vec()`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_incl);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Ordered sets of values from `elem` with a size drawn from `size`.
/// If the element domain is too small to reach the drawn size, the set
/// is as large as the domain allows (but at least `min` is attempted
/// hard enough for any practical domain).
pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        elem,
        size: size.into(),
    }
}

/// The result of [`btree_set`].
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.gen_range(self.size.min..=self.size.max_incl);
        let mut out = BTreeSet::new();
        // Duplicates don't grow the set; cap the attempts so a tiny
        // element domain cannot loop forever.
        let max_attempts = 100 * (target + 1);
        let mut attempts = 0;
        while out.len() < target && attempts < max_attempts {
            out.insert(self.elem.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("collection-tests")
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut r = rng();
        let s = vec(0i64..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn btree_set_distinct_and_sized() {
        let mut r = rng();
        let s = btree_set(1i64..=50, 1..12);
        for _ in 0..200 {
            let set = s.generate(&mut r);
            assert!((1..12).contains(&set.len()));
        }
    }

    #[test]
    fn btree_set_saturates_small_domains() {
        let mut r = rng();
        let s = btree_set(1i64..=2, 1..=2);
        for _ in 0..50 {
            let set = s.generate(&mut r);
            assert!(!set.is_empty() && set.len() <= 2);
        }
    }
}
