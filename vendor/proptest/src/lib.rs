//! Workspace-local stand-in for the slice of `proptest` that ecoDB's
//! property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, [`any`], [`Just`], ranges and simplified regex string
//! literals as strategies, `prop_oneof!`, and the `collection::{vec,
//! btree_set}` combinators.
//!
//! The container this repo builds in has no registry access, so the
//! handful of third-party crates are vendored as API-compatible stubs
//! (see `Cargo.lock`'s `0.x.99` versions). This stub generates inputs
//! from a per-test deterministic RNG; it does not shrink failing cases
//! (a failure report prints the generated arguments instead).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Map, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one test function per item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

/// Soft assertion inside a [`proptest!`] body: fails the current case
/// with a message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Soft equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Soft inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: {:?}",
            l
        );
    }};
}

/// Choose uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}
