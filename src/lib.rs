//! # ecoDB — energy-aware query processing
//!
//! A faithful, from-scratch reproduction of Lang & Patel, *Towards
//! Eco-friendly Database Management Systems* (CIDR 2009): a relational
//! query engine with energy as a first-class performance metric, the
//! paper's two energy-for-performance mechanisms (**PVC** — processor
//! voltage/frequency control via FSB underclocking, and **QED** —
//! explicit query delays with multi-query aggregation), and a simulated
//! hardware substrate standing in for the paper's instrumented test bed.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`simhw`] — simulated hardware (CPU/DVFS, DRAM, disk, PSU, meters);
//! * [`tpch`] — deterministic TPC-H-shaped data and workload generation;
//! * [`storage`] — tuples, pages, heap tables, buffer pool;
//! * [`query`] — expressions, operators, plans, multi-query optimization;
//! * [`core`] — PVC, QED, EDP metrics, the energy advisor and the
//!   experiment harness reproducing every table and figure of the paper;
//! * [`server`] — the concurrent multi-session front door: online QED
//!   batching, energy-aware admission control, open-system pricing and
//!   per-session energy ledgers.
//!
//! ## Quickstart
//!
//! ```
//! use ecodb::core::server::{EcoDb, EngineProfile};
//! use ecodb::simhw::{CpuConfig, VoltageSetting};
//!
//! // An in-memory engine over TPC-H data at a tiny scale factor.
//! let mut db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.01);
//!
//! // Run one TPC-H Q5 at stock settings and at a PVC setting.
//! let stock = db.run_q5("ASIA", 1994, ecodb::simhw::MachineConfig::stock());
//! let pvc = db.run_q5(
//!     "ASIA",
//!     1994,
//!     ecodb::simhw::MachineConfig::with_cpu(CpuConfig::underclocked(
//!         0.05,
//!         VoltageSetting::Medium,
//!     )),
//! );
//! assert!(pvc.measurement.cpu_joules < stock.measurement.cpu_joules);
//! assert_eq!(pvc.rows, stock.rows); // same answer, fewer joules
//! ```
//!
//! ## Further reading
//!
//! * `README.md` at the repository root — quickstart, the repro-target
//!   table, and the example catalogue.
//! * `docs/ARCHITECTURE.md` — the crate map, the four-engine execution
//!   ladder, and the energy-ledger **bit-identity invariant** with its
//!   versioned pricing-schema history (v1 base, v2 faults,
//!   v3 compression, v4 indexes) that every change must follow.

pub use eco_core as core;
pub use eco_query as query;
pub use eco_server as server;
pub use eco_simhw as simhw;
pub use eco_storage as storage;
pub use eco_tpch as tpch;
