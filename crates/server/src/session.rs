//! Sessions, statements and per-session energy ledgers.
//!
//! A *session* is one client connection submitting statements over
//! time. The server executes merged batches on behalf of many sessions
//! at once, so energy attribution needs a rule: each dispatched batch's
//! ledger (op-class counts, memory traffic, disk work, round-trip gap)
//! is split **exactly** across its member sessions — integer counts are
//! divided with the remainder spread over the first members — so the
//! sum of all per-session ledgers reproduces the server's summed ledger
//! *bit for bit*. This extends the ledger-identity invariant that
//! guards every reproduced figure (scalar = batch = columnar =
//! parallel) to the concurrent-session axis.

use eco_core::ServerError;
use eco_simhw::trace::{CpuWork, DiskWork, WorkTrace, ALL_OP_CLASSES};
use eco_storage::Tuple;
use eco_tpch::QedQuery;

/// Identifies one client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

/// A statement a session can submit.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A single-predicate `l_quantity` selection — the QED unit; the
    /// scheduler may delay and merge it with other sessions' selections.
    Selection(QedQuery),
    /// Ad-hoc SQL; executes alone (never merged). A malformed string
    /// comes back as a typed [`ServerError`] to its session only. DML
    /// statements additionally stage write-ahead-log records whose
    /// fsync rides the group commit (see the scheduler).
    Sql(String),
}

impl Statement {
    /// The predicate of a batchable selection, or a typed
    /// [`ServerError::NotSelection`] for anything else — the accessor
    /// batch-path consumers use instead of panicking on the variant.
    pub fn selection(&self) -> Result<&QedQuery, ServerError> {
        match self {
            Statement::Selection(q) => Ok(q),
            Statement::Sql(sql) => Err(ServerError::NotSelection {
                statement: format!("{sql:?}"),
            }),
        }
    }
}

/// One arrival: a session submitting a statement at a point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The submitting session.
    pub session: SessionId,
    /// Arrival instant, seconds from run start.
    pub arrival_s: f64,
    /// The submitted statement.
    pub statement: Statement,
}

/// What happened to one request.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutcome {
    /// The statement executed; the session got its rows.
    Completed {
        /// The submitting session.
        session: SessionId,
        /// This session's result rows (split out of the merged batch).
        rows: Vec<Tuple>,
        /// When the statement arrived, seconds.
        arrival_s: f64,
        /// When its batch was dispatched, seconds.
        dispatch_s: f64,
        /// Open-system response time: completion − arrival. Unlike the
        /// offline §4 accounting, this *includes* batch-accumulation
        /// and queueing delay (see the crate docs).
        response_s: f64,
        /// Time spent waiting before dispatch: dispatch − arrival.
        queue_delay_s: f64,
    },
    /// The statement was rejected (shed by admission control, or
    /// malformed) without executing; the server kept running.
    Rejected {
        /// The submitting session.
        session: SessionId,
        /// When the statement arrived, seconds.
        arrival_s: f64,
        /// Why it was rejected.
        error: ServerError,
    },
}

impl SessionOutcome {
    /// The session this outcome belongs to.
    pub fn session(&self) -> SessionId {
        match self {
            SessionOutcome::Completed { session, .. } => *session,
            SessionOutcome::Rejected { session, .. } => *session,
        }
    }

    /// True when the statement executed.
    pub fn is_completed(&self) -> bool {
        matches!(self, SessionOutcome::Completed { .. })
    }
}

/// A summed energy ledger: every bit-identity-bearing count from a set
/// of [`WorkTrace`]s, with exact integer arithmetic throughout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerTotals {
    /// Op-class counts.
    pub cpu: CpuWork,
    /// Bytes streamed through DRAM.
    pub mem_stream_bytes: u64,
    /// Random DRAM accesses.
    pub mem_random_accesses: u64,
    /// Disk work.
    pub disk: DiskWork,
    /// Client round-trip gap nanoseconds.
    pub gap_ns: u64,
    /// Fault-retry backoff halt residency, nanoseconds (ledger schema
    /// v2). Zero on every fault-free run.
    pub backoff_ns: u64,
}

impl LedgerTotals {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a set of per-core traces into this ledger.
    pub fn absorb_traces(&mut self, traces: &[WorkTrace]) {
        for trace in traces {
            for phase in trace.phases() {
                self.cpu.merge(&phase.cpu);
                self.mem_stream_bytes += phase.mem_stream_bytes;
                self.mem_random_accesses += phase.mem_random_accesses;
                self.disk.merge(&phase.disk);
                self.gap_ns += phase.gap_ns;
                self.backoff_ns += phase.backoff_ns;
            }
        }
    }

    /// The summed ledger of a set of per-core traces.
    pub fn from_traces(traces: &[WorkTrace]) -> Self {
        let mut t = Self::new();
        t.absorb_traces(traces);
        t
    }

    /// Fold another ledger into this one.
    pub fn merge(&mut self, other: &LedgerTotals) {
        self.cpu.merge(&other.cpu);
        self.mem_stream_bytes += other.mem_stream_bytes;
        self.mem_random_accesses += other.mem_random_accesses;
        self.disk.merge(&other.disk);
        self.gap_ns += other.gap_ns;
        self.backoff_ns += other.backoff_ns;
    }

    /// Member `i`'s exact share of this ledger split over `k` members:
    /// each count `c` contributes `c / k`, with the remainder `c % k`
    /// spread one unit each over members `0..c % k`. Summing the shares
    /// of all `k` members reproduces this ledger exactly — no count is
    /// lost or invented, which is what keeps the merged multi-session
    /// ledger bit-identical to the server's summed ledger.
    pub fn exact_share(&self, i: usize, k: usize) -> LedgerTotals {
        assert!(k >= 1, "need at least one member");
        assert!(i < k, "member index out of range");
        let split = |c: u64| exact_split(c, i as u64, k as u64);
        let mut cpu = CpuWork::new();
        for class in ALL_OP_CLASSES {
            cpu.add(class, split(self.cpu.count(class)));
        }
        let mut disk = DiskWork::none();
        disk.sequential_bytes = split(self.disk.sequential_bytes);
        disk.random_ios = split(self.disk.random_ios);
        disk.random_bytes = split(self.disk.random_bytes);
        disk.retry_ios = split(self.disk.retry_ios);
        disk.retry_bytes = split(self.disk.retry_bytes);
        disk.index_ios = split(self.disk.index_ios);
        disk.index_bytes = split(self.disk.index_bytes);
        disk.log_ios = split(self.disk.log_ios);
        disk.log_bytes = split(self.disk.log_bytes);
        LedgerTotals {
            cpu,
            mem_stream_bytes: split(self.mem_stream_bytes),
            mem_random_accesses: split(self.mem_random_accesses),
            disk,
            gap_ns: split(self.gap_ns),
            backoff_ns: split(self.backoff_ns),
        }
    }
}

/// `c/k` plus one unit for the first `c % k` members — sums to `c`.
fn exact_split(c: u64, i: u64, k: u64) -> u64 {
    c / k + u64::from(i < c % k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_simhw::trace::{OpClass, Phase};

    fn sample_totals() -> LedgerTotals {
        let mut p = Phase::execute("x");
        p.cpu.add(OpClass::PredEval, 1_000_003);
        p.cpu.add(OpClass::TupleFetch, 7);
        p.cpu.add(OpClass::Parse, 13);
        p.mem_stream_bytes = 65_537;
        p.mem_random_accesses = 11;
        p.disk.sequential_bytes = 4_099;
        p.disk.random_ios = 5;
        p.disk.retry_ios = 3;
        p.disk.retry_bytes = 3 * 8192;
        p.disk.index_ios = 9;
        p.disk.index_bytes = 9 * 8192 + 1;
        p.disk.log_ios = 2;
        p.disk.log_bytes = 3 * 8192;
        p.backoff_ns = 123_457;
        let mut t = WorkTrace::new();
        t.push(Phase::client_gap(999_999_999));
        t.push(p);
        LedgerTotals::from_traces(std::slice::from_ref(&t))
    }

    #[test]
    fn exact_shares_sum_back_to_the_whole() {
        let totals = sample_totals();
        for k in [1usize, 2, 3, 7, 64] {
            let mut sum = LedgerTotals::new();
            for i in 0..k {
                sum.merge(&totals.exact_share(i, k));
            }
            assert_eq!(sum, totals, "k={k}");
        }
    }

    #[test]
    fn shares_differ_by_at_most_one_unit() {
        let totals = sample_totals();
        let k = 7;
        let shares: Vec<u64> = (0..k)
            .map(|i| totals.exact_share(i, k).cpu.count(OpClass::PredEval))
            .collect();
        let max = *shares.iter().max().unwrap();
        let min = *shares.iter().min().unwrap();
        assert!(max - min <= 1, "shares {shares:?}");
    }

    #[test]
    fn selection_accessor_types_non_batchable_statements() {
        let sel = Statement::Selection(QedQuery { quantity: 3 });
        assert_eq!(sel.selection().expect("selection").quantity, 3);
        let sql = Statement::Sql("INSERT INTO region VALUES (9, 'x', 'y')".to_string());
        let err = sql.selection().expect_err("SQL is not batchable");
        assert!(matches!(err, ServerError::NotSelection { .. }));
        assert!(err.to_string().contains("not a batchable selection"));
    }

    #[test]
    fn merge_is_componentwise_addition() {
        let a = sample_totals();
        let mut b = LedgerTotals::new();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.cpu.count(OpClass::PredEval), 2 * 1_000_003);
        assert_eq!(b.mem_stream_bytes, 2 * 65_537);
        assert_eq!(b.gap_ns, 2 * 999_999_999);
    }
}
