//! The online QED batcher: the offline [`WorkloadManager`] policy
//! applied to live session traffic, plus predicate deduplication.
//!
//! The threshold/drain policy is *the same code* as the offline QED
//! replay — [`WorkloadManager`] is generic over the queued item, so
//! this module queues pending session requests where `qed.rs` queues
//! bare [`QedQuery`]s. One batching policy, two front ends (satellite
//! requirement: no duplicated batch-merge logic).
//!
//! On release the batch is **deduplicated**: sessions frequently ask
//! for the same predicate, and the short-circuiting merged scan
//! requires *disjoint* predicates (the first matching arm claims the
//! row, so a duplicate arm would silently receive no rows). The
//! dispatched statement therefore carries only the distinct queries in
//! first-arrival order, with every member request mapped to its
//! distinct query's index. Deduplication is also where online batching
//! beats the offline figures: `k` sessions sharing `d < k` distinct
//! predicates pay for a `d`-way merged scan but amortize it over `k`
//! responses.

use eco_core::qed::WorkloadManager;
use eco_storage::Tuple;
use eco_tpch::QedQuery;

use crate::session::SessionId;

/// A session request queued in the batcher, waiting for dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Pending {
    /// Index of the originating request in the serve call's input.
    pub request: usize,
    /// The submitting session.
    pub session: SessionId,
    /// Arrival instant, seconds.
    pub arrival_s: f64,
    /// The selection predicate.
    pub query: QedQuery,
}

/// One member of a dispatched batch: which request it came from and
/// which distinct merged query answers it.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMember {
    /// Index of the originating request in the serve call's input.
    pub request: usize,
    /// The submitting session.
    pub session: SessionId,
    /// Arrival instant, seconds.
    pub arrival_s: f64,
    /// Index into the dispatch's distinct query list.
    pub query_index: usize,
}

/// What a dispatch executed.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchKind {
    /// A merged selection over the distinct predicates of a batch.
    Merged(Vec<QedQuery>),
    /// A solo ad-hoc SQL statement, durably executed (any DML fsyncs
    /// inside its own trace — the per-statement-durability baseline).
    Sql(String),
    /// A solo DML statement executed with *deferred* durability: its
    /// log records are staged and applied, but the fsync rides a later
    /// [`DispatchKind::Commit`].
    StagedSql(String),
    /// A group commit: one fsync covering every statement staged since
    /// the previous commit (ledger schema v5 — one `log_ios`,
    /// block-rounded `log_bytes`).
    Commit,
}

/// One unit of work the scheduler dispatched onto the executor. The
/// full dispatch list is a *replayable transcript*: running the same
/// statements serially, in order, through the same shared
/// `MergedSelection` path must reproduce the server's summed ledger
/// bit for bit (see `scheduler::replay_serial`).
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    /// Dispatch instant on the server clock, seconds.
    pub dispatch_s: f64,
    /// The executed statement(s).
    pub kind: DispatchKind,
    /// The member requests answered by this dispatch.
    pub members: Vec<BatchMember>,
}

/// The online batcher: accumulate selections until the threshold hits
/// or the oldest member's delay budget expires.
#[derive(Debug, Clone)]
pub struct OnlineBatcher {
    manager: WorkloadManager<Pending>,
    max_delay_s: f64,
}

impl OnlineBatcher {
    /// Batcher releasing at `threshold` queued selections, or after the
    /// oldest has waited `max_delay_s` (the QED delay knob, applied
    /// online as a deadline instead of the offline "accumulation is
    /// free" assumption).
    pub fn new(threshold: usize, max_delay_s: f64) -> Self {
        assert!(max_delay_s >= 0.0, "delay budget must be nonnegative");
        Self {
            manager: WorkloadManager::new(threshold),
            max_delay_s,
        }
    }

    /// Queue a pending request; returns the full batch when the
    /// threshold is reached.
    pub fn submit(&mut self, p: Pending) -> Option<Vec<Pending>> {
        self.manager.submit(p)
    }

    /// Requests currently waiting.
    pub fn pending(&self) -> usize {
        self.manager.pending()
    }

    /// The instant the oldest queued request's delay budget expires
    /// (`None` when the queue is empty).
    pub fn oldest_deadline(&self) -> Option<f64> {
        self.manager
            .queued()
            .first()
            .map(|p| p.arrival_s + self.max_delay_s)
    }

    /// Force-release whatever is queued (deadline or end-of-input).
    pub fn drain(&mut self) -> Vec<Pending> {
        self.manager.drain()
    }

    /// Batch-release threshold.
    pub fn threshold(&self) -> usize {
        self.manager.threshold()
    }

    /// Retune the release threshold in place (fault-pressure
    /// degradation raises it; recovery restores it). Queued requests
    /// stay queued; the new threshold applies from the next submit.
    pub fn set_threshold(&mut self, threshold: usize) {
        self.manager.set_threshold(threshold);
    }

    /// Batches released so far (threshold hits and drains).
    pub fn batches_released(&self) -> usize {
        self.manager.batches_released()
    }
}

/// A durability ack owed to a session: its DML statement executed,
/// staged its log records and applied them (visible immediately), but
/// the fsync is deferred — the session's completion is released by the
/// group commit that makes its transaction durable.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingCommit {
    /// Index of the originating request in the serve call's input.
    pub request: usize,
    /// The submitting session.
    pub session: SessionId,
    /// Arrival instant, seconds.
    pub arrival_s: f64,
    /// When the statement itself dispatched, seconds.
    pub dispatch_s: f64,
    /// When staging finished, seconds — starts the commit deadline.
    pub staged_s: f64,
    /// The statement's result rows (the affected count), held back
    /// until the durability ack.
    pub rows: Vec<Tuple>,
}

/// The group-commit batcher: the *same* [`WorkloadManager`]
/// threshold/deadline policy the QED read path uses, applied to
/// pending fsyncs instead of pending selections. Accumulate staged
/// transactions until `threshold` of them wait, or the oldest has
/// waited out the delay budget; one fsync then covers the whole group.
#[derive(Debug, Clone)]
pub struct CommitBatcher {
    manager: WorkloadManager<PendingCommit>,
    max_delay_s: f64,
}

impl CommitBatcher {
    /// Batcher releasing a group commit at `threshold` staged
    /// transactions, or once the oldest has waited `max_delay_s`.
    pub fn new(threshold: usize, max_delay_s: f64) -> Self {
        assert!(max_delay_s >= 0.0, "delay budget must be nonnegative");
        Self {
            manager: WorkloadManager::new(threshold),
            max_delay_s,
        }
    }

    /// Queue a staged transaction; returns the full group when the
    /// threshold is reached.
    pub fn submit(&mut self, p: PendingCommit) -> Option<Vec<PendingCommit>> {
        self.manager.submit(p)
    }

    /// Staged transactions waiting for their fsync.
    pub fn pending(&self) -> usize {
        self.manager.pending()
    }

    /// The instant the oldest staged transaction's delay budget
    /// expires (`None` when nothing is staged).
    pub fn oldest_deadline(&self) -> Option<f64> {
        self.manager
            .queued()
            .first()
            .map(|p| p.staged_s + self.max_delay_s)
    }

    /// Force-release the staged group (deadline or end-of-input).
    pub fn drain(&mut self) -> Vec<PendingCommit> {
        self.manager.drain()
    }

    /// Group-release threshold.
    pub fn threshold(&self) -> usize {
        self.manager.threshold()
    }
}

/// Turn a released batch into a dispatch: deduplicate predicates in
/// first-arrival order and map each member to its distinct query.
pub fn dedup_batch(batch: Vec<Pending>, dispatch_s: f64) -> Dispatch {
    let mut queries: Vec<QedQuery> = Vec::new();
    let mut members = Vec::with_capacity(batch.len());
    for p in batch {
        let query_index = match queries.iter().position(|q| *q == p.query) {
            Some(i) => i,
            None => {
                queries.push(p.query);
                queries.len() - 1
            }
        };
        members.push(BatchMember {
            request: p.request,
            session: p.session,
            arrival_s: p.arrival_s,
            query_index,
        });
    }
    Dispatch {
        dispatch_s,
        kind: DispatchKind::Merged(queries),
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(request: usize, arrival_s: f64, quantity: i64) -> Pending {
        Pending {
            request,
            session: SessionId(request as u64),
            arrival_s,
            query: QedQuery { quantity },
        }
    }

    #[test]
    fn threshold_releases_full_batches() {
        let mut b = OnlineBatcher::new(3, 1.0);
        assert!(b.submit(pending(0, 0.0, 5)).is_none());
        assert!(b.submit(pending(1, 0.1, 6)).is_none());
        assert_eq!(b.pending(), 2);
        let batch = b.submit(pending(2, 0.2, 7)).expect("threshold hit");
        assert_eq!(batch.len(), 3);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.batches_released(), 1);
    }

    #[test]
    fn oldest_deadline_tracks_the_head_of_queue() {
        let mut b = OnlineBatcher::new(10, 0.5);
        assert_eq!(b.oldest_deadline(), None);
        b.submit(pending(0, 2.0, 5));
        b.submit(pending(1, 2.4, 6));
        assert_eq!(b.oldest_deadline(), Some(2.5));
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(b.oldest_deadline(), None);
    }

    #[test]
    fn commit_batcher_groups_fsyncs_on_threshold_and_deadline() {
        let staged = |request: usize, staged_s: f64| PendingCommit {
            request,
            session: SessionId(request as u64),
            arrival_s: staged_s,
            dispatch_s: staged_s,
            staged_s,
            rows: Vec::new(),
        };
        let mut c = CommitBatcher::new(3, 0.25);
        assert_eq!(c.oldest_deadline(), None);
        assert!(c.submit(staged(0, 1.0)).is_none());
        assert!(c.submit(staged(1, 1.1)).is_none());
        assert_eq!(c.pending(), 2);
        assert_eq!(c.oldest_deadline(), Some(1.25));
        let group = c.submit(staged(2, 1.2)).expect("threshold hit");
        assert_eq!(group.len(), 3, "one fsync covers the whole group");
        assert_eq!(c.pending(), 0);
        // Deadline path: a lone straggler drains by force.
        assert!(c.submit(staged(3, 2.0)).is_none());
        assert_eq!(c.oldest_deadline(), Some(2.25));
        assert_eq!(c.drain().len(), 1);
    }

    #[test]
    fn dedup_keeps_first_arrival_order_and_maps_members() {
        let batch = vec![
            pending(0, 0.0, 9),
            pending(1, 0.1, 3),
            pending(2, 0.2, 9),
            pending(3, 0.3, 3),
            pending(4, 0.4, 1),
        ];
        let d = dedup_batch(batch, 1.0);
        match &d.kind {
            DispatchKind::Merged(qs) => {
                let quantities: Vec<i64> = qs.iter().map(|q| q.quantity).collect();
                assert_eq!(quantities, vec![9, 3, 1], "distinct, first-arrival order");
            }
            other => panic!("expected merged dispatch, got {other:?}"),
        }
        let idx: Vec<usize> = d.members.iter().map(|m| m.query_index).collect();
        assert_eq!(idx, vec![0, 1, 0, 1, 2]);
        assert_eq!(d.members.len(), 5, "every member kept");
    }
}
