//! Energy-aware admission control: pick the batching operating point
//! from the advisor's cost model, and shed load past the backlog cap.
//!
//! The paper's Fig 6 shows per-query energy falling with batch size at
//! *diminishing* returns. Online, the server must pick a threshold
//! without executing anything, so admission planning walks the
//! advisor's [`estimate_qed`] curve and stops growing the batch at the
//! configurable **knee**: the first size whose *marginal* per-query
//! energy-ratio improvement drops below `knee_marginal`. Past the knee,
//! extra batching buys almost no joules but keeps degrading the first
//! query's response time, so admitting more delay is wasted.
//!
//! The second control is the **backlog cap**: queueing is how QED
//! accumulates batches, but an unbounded queue under overload grows
//! response times without bound. Arrivals that would push the backlog
//! past `max_backlog` are shed with a typed
//! [`ServerError::Shed`](eco_core::ServerError) — the session sees a
//! clean rejection, the server keeps running.

use eco_core::advisor::{estimate_qed, QedEstimate};
use eco_core::EcoDb;

/// Tunables for admission planning.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Largest batch size to consider (the paper stops at 50, the size
    /// of the `l_quantity` domain).
    pub max_batch: usize,
    /// Knee: stop growing the threshold when the marginal per-query
    /// energy-ratio gain of one more queued query falls below this.
    pub knee_marginal: f64,
    /// Backlog cap as a multiple of the chosen threshold.
    pub backlog_factor: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_batch: 50,
            knee_marginal: 0.002,
            backlog_factor: 4,
        }
    }
}

/// The planned admission operating point.
#[derive(Debug, Clone)]
pub struct AdmissionPlan {
    /// Chosen batch threshold (≥ 1).
    pub threshold: usize,
    /// Queue length above which arrivals are shed.
    pub max_backlog: usize,
    /// The estimate curve that was walked (for reports / debugging).
    pub curve: Vec<QedEstimate>,
}

/// Walk the advisor's QED estimate curve and choose the knee-point
/// threshold for `db`. Entirely model-driven: no statement executes.
pub fn plan_admission(db: &EcoDb, cfg: &AdmissionConfig) -> AdmissionPlan {
    assert!(cfg.max_batch >= 1, "max batch must be at least 1");
    assert!(cfg.backlog_factor >= 1, "backlog factor must be at least 1");
    let mut curve = Vec::new();
    let mut threshold = 1;
    let mut prev_ratio = 1.0; // batch of 1: per-query energy ratio is 1 by definition
    for k in 2..=cfg.max_batch {
        let est = estimate_qed(db.catalog(), db.machine(), k, true);
        let marginal = prev_ratio - est.energy_ratio;
        prev_ratio = est.energy_ratio;
        curve.push(est);
        if marginal < cfg.knee_marginal {
            break;
        }
        threshold = k;
    }
    AdmissionPlan {
        threshold,
        max_backlog: threshold * cfg.backlog_factor,
        curve,
    }
}

/// Should a new arrival be shed given the current backlog?
pub fn should_shed(pending: usize, max_backlog: usize) -> bool {
    pending >= max_backlog
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_core::EngineProfile;

    #[test]
    fn knee_sits_between_one_and_max_batch() {
        let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.002);
        let plan = plan_admission(&db, &AdmissionConfig::default());
        assert!(plan.threshold >= 2, "batching must be worth something");
        assert!(plan.threshold <= 50);
        assert_eq!(plan.max_backlog, plan.threshold * 4);
        // The walked curve is monotone decreasing in energy ratio.
        for w in plan.curve.windows(2) {
            assert!(w[1].energy_ratio <= w[0].energy_ratio + 1e-12);
        }
    }

    #[test]
    fn a_blunt_knee_stops_batching_early() {
        let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.002);
        let greedy = plan_admission(&db, &AdmissionConfig::default());
        let blunt = plan_admission(
            &db,
            &AdmissionConfig {
                knee_marginal: 0.05,
                ..AdmissionConfig::default()
            },
        );
        assert!(
            blunt.threshold <= greedy.threshold,
            "a higher knee must not choose a larger batch ({} vs {})",
            blunt.threshold,
            greedy.threshold
        );
    }

    #[test]
    fn shedding_trips_at_the_cap() {
        assert!(!should_shed(3, 4));
        assert!(should_shed(4, 4));
        assert!(should_shed(5, 4));
    }
}
