//! # eco-server — the concurrent multi-session front door
//!
//! The paper's QED mechanism (§4) delays queries into an admission
//! queue, merges compatible ones, and trades response time for joules.
//! `eco-core::qed` reproduces that *offline*: a fixed batch, replayed
//! one statement at a time. This crate is the *online* counterpart the
//! ROADMAP's north star ("serve heavy traffic from millions of users")
//! calls for: thousands of concurrent sessions submit statements over
//! time, and QED aggregation, MQO scan sharing, and energy-aware
//! admission all happen against live arrivals.
//!
//! ## The pipeline
//!
//! 1. **Sessions** ([`session`]) submit [`Statement`]s as timed
//!    [`Request`]s. Selections are batchable; ad-hoc SQL runs solo.
//! 2. **Admission** ([`admission`]) picks the batching operating point
//!    from the advisor's cost model (the knee of the Fig 6 curve) and
//!    sheds arrivals past the backlog cap with a typed
//!    [`ServerError`](eco_core::ServerError) — one bad or surplus
//!    statement never takes down the scheduler.
//! 3. **Batching** ([`batcher`]) queues selections through the *same*
//!    [`WorkloadManager`](eco_core::qed::WorkloadManager) policy as the
//!    offline replay, then deduplicates predicates (the short-circuit
//!    merged scan needs disjoint arms; duplicate demand is where online
//!    batching beats the offline figures).
//! 4. **Scheduling** ([`scheduler`]) dispatches merged batches onto the
//!    morsel-parallel columnar executor through the one shared
//!    `MergedSelection` path, prices the run end-to-end on the
//!    open-system machine model
//!    ([`eco_simhw::opensys`]), and splits rows, response
//!    times and exact ledger shares back per session.
//!
//! ## Queueing semantics: response time vs accumulation time
//!
//! The offline §4 accounting (see `eco-core::qed`) follows the paper:
//! batch *accumulation* time is free ("we do not count the time that it
//! takes for the database to collect a batch of queries"), and query
//! *i* of *k* responds at `gap + exec + (i/k)·split`.
//!
//! Online, a served client experiences the queue, so this crate counts
//! it. For each completed request:
//!
//! * **queue delay** = dispatch − arrival: time spent accumulating in
//!   the batcher (bounded by the threshold and the delay budget) plus
//!   any wait for the machine to come free;
//! * **response time** = completion − arrival: queue delay plus the
//!   merged execution. This is the open-system quantity reported by
//!   [`ServeReport::avg_response_s`] and is deliberately *not*
//!   comparable to the offline `avg_response_s`, which starts the
//!   clock at dispatch.
//!
//! Between bursts the machine is not free either: idle gaps are priced
//! (governor halt residency, DRAM/disk floors, PSU) by
//! [`OpenSystemRun`](eco_simhw::opensys::OpenSystemRun), so
//! joules-per-query comparisons include the cost of waiting for a batch
//! to form.
//!
//! ## The ledger-identity invariant, extended
//!
//! Every figure in this repository is guarded by bit-identical energy
//! ledgers across execution modes (scalar = batch = columnar =
//! parallel). The server extends that to concurrency, in two exact
//! equalities enforced by tests and bench flags:
//!
//! * the merge of all per-session forked ledgers equals the server's
//!   summed ledger ([`ServeReport::ledger_identity`]), and
//! * the server's summed ledger equals a *serial replay* of the same
//!   dispatched statements ([`scheduler::replay_serial`]).

pub mod admission;
pub mod batcher;
pub mod scheduler;
pub mod session;

pub use admission::{plan_admission, AdmissionConfig, AdmissionPlan};
pub use batcher::{dedup_batch, CommitBatcher, Dispatch, DispatchKind, OnlineBatcher, PendingCommit};
pub use scheduler::{replay_serial, EcoServer, ServeReport, ServerConfig};
pub use session::{LedgerTotals, Request, SessionId, SessionOutcome, Statement};

use eco_simhw::opensys::ArrivalSchedule;
use eco_tpch::QedQuery;

/// A deterministic multi-session selection workload: `sessions`
/// one-statement sessions arriving as a Poisson process at `rate_qps`,
/// each drawing an `l_quantity` predicate uniformly from the paper's
/// 1..=50 domain. Seeded — the same seed always produces the same
/// requests, which is what lets a serve run be replayed for the
/// ledger-identity checks.
pub fn session_workload(sessions: usize, rate_qps: f64, seed: u64) -> Vec<Request> {
    let arrivals = ArrivalSchedule::poisson(sessions, rate_qps, seed);
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    arrivals
        .times()
        .iter()
        .enumerate()
        .map(|(i, &arrival_s)| {
            let quantity = (splitmix64(&mut state) % 50 + 1) as i64;
            Request {
                session: SessionId(i as u64),
                arrival_s,
                statement: Statement::Selection(QedQuery { quantity }),
            }
        })
        .collect()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_workload_is_deterministic_and_in_domain() {
        let a = session_workload(200, 100.0, 7);
        let b = session_workload(200, 100.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.session, SessionId(i as u64));
            let q = r
                .statement
                .selection()
                .expect("workload is selections only");
            assert!((1..=50).contains(&q.quantity));
        }
        // Arrivals are sorted.
        assert!(a.windows(2).all(|w| w[1].arrival_s >= w[0].arrival_s));
        // Duplicate predicates exist — the batcher's dedup has work to
        // do (200 uniform draws from 50 values collide w.h.p.).
        let distinct: std::collections::BTreeSet<i64> = a
            .iter()
            .map(|r| {
                r.statement
                    .selection()
                    .expect("workload is selections only")
                    .quantity
            })
            .collect();
        assert!(distinct.len() < a.len());
    }

    #[test]
    fn non_selection_statements_are_typed_rejections_not_panics() {
        use eco_core::ServerError;
        let stmt = Statement::Sql("DELETE FROM region".to_string());
        let err = stmt.selection().expect_err("SQL never batches");
        assert!(matches!(err, ServerError::NotSelection { .. }));
        // The error carries the offending statement for the session log.
        assert!(err.to_string().contains("DELETE FROM region"));
    }
}
