//! The deterministic session scheduler: a discrete-event serve loop
//! that admits arrivals, accumulates QED batches, dispatches merged
//! statements onto the morsel-parallel executor, prices the whole run
//! on the open-system machine model, and splits results and energy
//! back per session.
//!
//! ## Determinism and the replay transcript
//!
//! The loop is single-threaded and event-ordered: arrivals are
//! processed in (time, input-index) order, deadline drains fire at
//! exact virtual instants, and every dispatch is appended to a
//! transcript. [`replay_serial`] re-executes that transcript serially
//! through the *same* shared `MergedSelection` path and must reproduce
//! the server's summed ledger **bit for bit** — the concurrent-session
//! extension of the scalar = batch = columnar = parallel invariant.
//! (Callers comparing a serve run against its replay must restore the
//! buffer pool to the same starting state first — `flush_cache`, plus
//! `warm_up` for warm comparisons — because the disk profile's
//! warm-reread counter is stateful.)

use std::collections::BTreeMap;

use eco_core::{EcoDb, ServerError};
use eco_simhw::machine::MachineConfig;
use eco_simhw::opensys::{OpenSystemMeasurement, OpenSystemRun};
use eco_simhw::trace::WorkTrace;

use crate::admission::should_shed;
use crate::batcher::{
    dedup_batch, CommitBatcher, Dispatch, DispatchKind, OnlineBatcher, Pending, PendingCommit,
};
use crate::session::{LedgerTotals, Request, SessionId, SessionOutcome, Statement};

/// Scheduler tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Cores the merged statements run across (morsel-parallel).
    pub workers: usize,
    /// QED batch threshold; 1 disables batching (every selection
    /// dispatches alone — the admission baseline).
    pub threshold: usize,
    /// Delay budget: the oldest queued selection is never held longer
    /// than this before a forced drain.
    pub max_delay_s: f64,
    /// Backlog cap: arrivals finding this many selections already
    /// queued are shed with [`ServerError::Shed`].
    pub max_backlog: usize,
    /// Machine configuration bursts and idle gaps are priced under.
    pub machine: MachineConfig,
    /// Short-circuit the merged scan's disjoint predicates (the QED
    /// default) or evaluate exhaustively.
    pub short_circuit: bool,
    /// Fault-pressure degradation: after this many *consecutive*
    /// I/O-failed merged dispatches, the effective batch threshold is
    /// doubled — fewer, larger dispatches amortize retry-priced I/O and
    /// push more arrivals into the backlog cap's shedding path — until
    /// a dispatch succeeds again. `usize::MAX` disables degradation.
    pub fault_pressure_limit: usize,
    /// Group-commit threshold: DML statements stage their write-ahead
    /// log records without fsyncing, and durability acks batch through
    /// the *same* `WorkloadManager` threshold/deadline policy the read
    /// path uses for QED — one block-rounded fsync covers the whole
    /// group (the delay budget is [`ServerConfig::max_delay_s`], shared
    /// with the read batcher). `1` disables grouping: every DML
    /// statement fsyncs inside its own trace — the per-statement-
    /// durability baseline the `BENCH_wal` gate compares against.
    pub commit_threshold: usize,
}

impl ServerConfig {
    /// Online QED batching at `threshold` across `workers` cores;
    /// 1 s delay budget, no backlog cap.
    pub fn batched(workers: usize, threshold: usize) -> Self {
        Self {
            workers,
            threshold,
            max_delay_s: 1.0,
            max_backlog: usize::MAX,
            machine: MachineConfig::stock(),
            short_circuit: true,
            fault_pressure_limit: 3,
            commit_threshold: 8,
        }
    }

    /// The no-batching baseline: every selection dispatches alone.
    pub fn unbatched(workers: usize) -> Self {
        Self::batched(workers, 1)
    }

    /// Adopt an advisor-planned admission operating point.
    pub fn with_admission(mut self, plan: &crate::admission::AdmissionPlan) -> Self {
        self.threshold = plan.threshold;
        self.max_backlog = plan.max_backlog;
        self
    }
}

/// Everything a serve run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One outcome per input request, in input order.
    pub outcomes: Vec<SessionOutcome>,
    /// The replayable dispatch transcript, in dispatch order.
    pub dispatches: Vec<Dispatch>,
    /// End-to-end open-system pricing (bursts + idle gaps).
    pub measurement: OpenSystemMeasurement,
    /// The server's summed ledger over every dispatched statement.
    pub ledger: LedgerTotals,
    /// Per-session forked ledgers (exact shares of each dispatch).
    pub session_ledgers: BTreeMap<SessionId, LedgerTotals>,
    /// Requests that completed.
    pub served: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests rejected as malformed.
    pub failed: usize,
    /// Dispatches that failed with a typed I/O error (injected or real
    /// storage faults). Their member sessions are counted in `failed`.
    pub io_failed: usize,
    /// True when sustained fault pressure tripped degraded mode at any
    /// point during the run (see [`ServerConfig::fault_pressure_limit`]).
    pub degraded: bool,
}

impl ServeReport {
    /// CPU joules per completed query.
    pub fn joules_per_query(&self) -> f64 {
        if self.served > 0 {
            self.measurement.cpu_joules / self.served as f64
        } else {
            0.0
        }
    }

    /// Wall joules per completed query.
    pub fn wall_joules_per_query(&self) -> f64 {
        if self.served > 0 {
            self.measurement.wall_joules / self.served as f64
        } else {
            0.0
        }
    }

    /// Completed queries per second of served makespan.
    pub fn queries_per_second(&self) -> f64 {
        if self.measurement.makespan_s > 0.0 {
            self.served as f64 / self.measurement.makespan_s
        } else {
            0.0
        }
    }

    /// Mean open-system response time over completed queries.
    pub fn avg_response_s(&self) -> f64 {
        let (sum, n) = self.fold_completed(|r, _| r);
        if n > 0 {
            sum / n as f64
        } else {
            0.0
        }
    }

    /// Mean queueing (accumulation) delay over completed queries.
    pub fn avg_queue_delay_s(&self) -> f64 {
        let (sum, n) = self.fold_completed(|_, q| q);
        if n > 0 {
            sum / n as f64
        } else {
            0.0
        }
    }

    fn fold_completed(&self, pick: impl Fn(f64, f64) -> f64) -> (f64, usize) {
        let mut sum = 0.0;
        let mut n = 0;
        for o in &self.outcomes {
            if let SessionOutcome::Completed {
                response_s,
                queue_delay_s,
                ..
            } = o
            {
                sum += pick(*response_s, *queue_delay_s);
                n += 1;
            }
        }
        (sum, n)
    }

    /// Merge all per-session ledgers back together. Equal to
    /// [`ServeReport::ledger`] by construction — exposed so tests and
    /// the bench identity flags can enforce it.
    pub fn merged_session_ledger(&self) -> LedgerTotals {
        let mut total = LedgerTotals::new();
        for l in self.session_ledgers.values() {
            total.merge(l);
        }
        total
    }

    /// True when the per-session fork/merge round trip is exact.
    pub fn ledger_identity(&self) -> bool {
        self.merged_session_ledger() == self.ledger
    }
}

/// The eco-server: a database plus scheduler tunables.
#[derive(Debug)]
pub struct EcoServer<'a> {
    db: &'a EcoDb,
    cfg: ServerConfig,
}

impl<'a> EcoServer<'a> {
    /// A server over `db`.
    pub fn new(db: &'a EcoDb, cfg: ServerConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker core");
        assert!(cfg.threshold >= 1, "threshold must be at least 1");
        Self { db, cfg }
    }

    /// Serve a set of session requests to completion. Requests are
    /// processed in (arrival time, input index) order; the returned
    /// outcomes are in input order.
    pub fn serve(&self, requests: &[Request]) -> ServeReport {
        let cfg = &self.cfg;
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| {
            requests[a]
                .arrival_s
                .total_cmp(&requests[b].arrival_s)
                .then(a.cmp(&b))
        });

        let mc = self.db.multicore(cfg.workers);
        let mut run = OpenSystemRun::new(&mc, cfg.machine);
        let mut state = ServeState {
            now: 0.0,
            outcomes: vec![None; requests.len()],
            dispatches: Vec::new(),
            ledger: LedgerTotals::new(),
            session_ledgers: BTreeMap::new(),
            shed: 0,
            failed: 0,
            io_failed: 0,
            consecutive_io: 0,
            degraded: false,
        };
        let mut batcher = OnlineBatcher::new(cfg.threshold, cfg.max_delay_s);
        let mut commits = CommitBatcher::new(cfg.commit_threshold, cfg.max_delay_s);

        for idx in order {
            let r = &requests[idx];
            // Deadline drains (read batches and commit groups) that
            // fire before this arrival, earliest first.
            loop {
                let sel = batcher.oldest_deadline();
                let com = commits.oldest_deadline();
                let (deadline, is_selection) = match (sel, com) {
                    (None, None) => break,
                    (Some(a), None) => (a, true),
                    (None, Some(b)) => (b, false),
                    (Some(a), Some(b)) if a <= b => (a, true),
                    (_, Some(b)) => (b, false),
                };
                if deadline > r.arrival_s {
                    break;
                }
                let t = deadline.max(state.now);
                if is_selection {
                    let d = dedup_batch(batcher.drain(), t);
                    self.dispatch_merged(d, &mut run, &mut state);
                    self.retune_for_fault_pressure(&mut batcher, &state);
                } else {
                    self.dispatch_commit(commits.drain(), t, &mut run, &mut state);
                }
            }
            match &r.statement {
                Statement::Selection(q) => {
                    if should_shed(batcher.pending(), cfg.max_backlog) {
                        state.outcomes[idx] = Some(SessionOutcome::Rejected {
                            session: r.session,
                            arrival_s: r.arrival_s,
                            error: ServerError::Shed {
                                queued: batcher.pending(),
                            },
                        });
                        state.shed += 1;
                        continue;
                    }
                    let p = Pending {
                        request: idx,
                        session: r.session,
                        arrival_s: r.arrival_s,
                        query: *q,
                    };
                    if let Some(batch) = batcher.submit(p) {
                        let t = r.arrival_s.max(state.now);
                        let d = dedup_batch(batch, t);
                        self.dispatch_merged(d, &mut run, &mut state);
                        self.retune_for_fault_pressure(&mut batcher, &state);
                    }
                }
                Statement::Sql(sql) => {
                    let t = r.arrival_s.max(state.now);
                    if let Some(group) =
                        self.dispatch_sql(idx, r, sql, t, &mut run, &mut state, &mut commits)
                    {
                        let t = state.now;
                        self.dispatch_commit(group, t, &mut run, &mut state);
                    }
                }
            }
        }
        // End of input: the last partial read batch drains at its
        // deadline, then the last staged commit group fsyncs.
        if batcher.pending() > 0 {
            let deadline = batcher.oldest_deadline().unwrap_or(state.now);
            let t = deadline.max(state.now);
            let d = dedup_batch(batcher.drain(), t);
            self.dispatch_merged(d, &mut run, &mut state);
        }
        if commits.pending() > 0 {
            let deadline = commits.oldest_deadline().unwrap_or(state.now);
            let t = deadline.max(state.now);
            self.dispatch_commit(commits.drain(), t, &mut run, &mut state);
        }

        let served = state
            .outcomes
            .iter()
            .filter(|o| matches!(o, Some(SessionOutcome::Completed { .. })))
            .count();
        ServeReport {
            outcomes: state
                .outcomes
                .into_iter()
                .map(|o| match o {
                    Some(o) => o,
                    None => unreachable!("every request resolves to an outcome"),
                })
                .collect(),
            dispatches: state.dispatches,
            measurement: run.finish(),
            ledger: state.ledger,
            session_ledgers: state.session_ledgers,
            served,
            shed: state.shed,
            failed: state.failed,
            io_failed: state.io_failed,
            degraded: state.degraded,
        }
    }

    /// Apply the fault-pressure policy after a merged dispatch: once
    /// [`ServerConfig::fault_pressure_limit`] consecutive dispatches
    /// have failed with I/O errors, double the batch threshold (fewer,
    /// larger dispatches under a fault storm); restore the configured
    /// operating point as soon as a dispatch succeeds again.
    fn retune_for_fault_pressure(&self, batcher: &mut OnlineBatcher, state: &ServeState) {
        if self.cfg.fault_pressure_limit == usize::MAX {
            return;
        }
        let want = if state.consecutive_io >= self.cfg.fault_pressure_limit {
            self.cfg.threshold.saturating_mul(2)
        } else {
            self.cfg.threshold
        };
        if batcher.threshold() != want {
            batcher.set_threshold(want);
        }
    }

    /// Execute a merged dispatch: advance the clock (pricing the idle
    /// gap), run the distinct-predicate scan morsel-parallel through
    /// the shared `MergedSelection` path, price the burst, and split
    /// rows, response times and exact ledger shares back per member.
    fn dispatch_merged(&self, d: Dispatch, run: &mut OpenSystemRun, state: &mut ServeState) {
        let cfg = &self.cfg;
        let queries = match &d.kind {
            DispatchKind::Merged(qs) => qs,
            _ => unreachable!("merged dispatch carries queries"),
        };
        match self
            .db
            .try_trace_merged_selection_cores(queries, cfg.short_circuit, cfg.workers)
        {
            Ok((split, core_traces)) => {
                state.consecutive_io = 0;
                if d.dispatch_s > state.now {
                    run.idle(d.dispatch_s - state.now);
                }
                state.now = d.dispatch_s;
                let m = run.burst(&core_traces);
                state.now += m.elapsed_s;

                let totals = LedgerTotals::from_traces(&core_traces);
                state.ledger.merge(&totals);
                let k = d.members.len();
                for (i, member) in d.members.iter().enumerate() {
                    state
                        .session_ledgers
                        .entry(member.session)
                        .or_default()
                        .merge(&totals.exact_share(i, k));
                    state.outcomes[member.request] = Some(SessionOutcome::Completed {
                        session: member.session,
                        rows: split[member.query_index].clone(),
                        arrival_s: member.arrival_s,
                        dispatch_s: d.dispatch_s,
                        response_s: state.now - member.arrival_s,
                        queue_delay_s: d.dispatch_s - member.arrival_s,
                    });
                }
                state.dispatches.push(d);
            }
            Err(e) => {
                // A malformed batch — or one whose scan hit a permanent
                // storage fault — rejects its members with the typed
                // error; nothing ran, nothing is priced (a failed
                // session's trace is never merged into the ledger), and
                // the scheduler keeps going. Sustained I/O failures feed
                // the fault-pressure counter driving degraded mode.
                if matches!(e, ServerError::Io(_)) {
                    state.io_failed += 1;
                    state.consecutive_io += 1;
                    if state.consecutive_io >= self.cfg.fault_pressure_limit {
                        state.degraded = true;
                    }
                }
                for member in &d.members {
                    state.outcomes[member.request] = Some(SessionOutcome::Rejected {
                        session: member.session,
                        arrival_s: member.arrival_s,
                        error: e.clone(),
                    });
                    state.failed += 1;
                }
            }
        }
    }

    /// Execute a solo SQL dispatch. A compile failure rejects only the
    /// submitting session and charges nothing. With group commit
    /// enabled ([`ServerConfig::commit_threshold`] > 1) a DML statement
    /// stages its log records without fsyncing and its durability ack
    /// is queued on the commit batcher — the returned group, if any, is
    /// the commit batch the submission filled (the caller dispatches
    /// it).
    #[allow(clippy::too_many_arguments)]
    fn dispatch_sql(
        &self,
        idx: usize,
        r: &Request,
        sql: &str,
        t: f64,
        run: &mut OpenSystemRun,
        state: &mut ServeState,
        commits: &mut CommitBatcher,
    ) -> Option<Vec<PendingCommit>> {
        let grouped = self.cfg.commit_threshold > 1;
        let result = if grouped {
            self.db.try_trace_sql_deferred(sql)
        } else {
            self.db
                .try_trace_sql(sql)
                .map(|(rows, trace)| (rows, trace, false))
        };
        match result {
            Ok((rows, trace, staged)) => {
                if t > state.now {
                    run.idle(t - state.now);
                }
                state.now = t;
                // The solo statement occupies core 0; the other cores
                // halt through the burst (empty traces).
                let mut core_traces = vec![WorkTrace::new(); self.cfg.workers];
                core_traces[0] = trace;
                let m = run.burst(&core_traces);
                state.now += m.elapsed_s;

                let totals = LedgerTotals::from_traces(&core_traces);
                state.ledger.merge(&totals);
                state
                    .session_ledgers
                    .entry(r.session)
                    .or_default()
                    .merge(&totals);
                state.dispatches.push(Dispatch {
                    dispatch_s: t,
                    kind: if staged {
                        DispatchKind::StagedSql(sql.to_string())
                    } else {
                        DispatchKind::Sql(sql.to_string())
                    },
                    members: Vec::new(),
                });
                if staged {
                    // The transaction is applied and visible but not
                    // yet durable: the session's completion is released
                    // by the group commit that fsyncs it.
                    commits.submit(PendingCommit {
                        request: idx,
                        session: r.session,
                        arrival_s: r.arrival_s,
                        dispatch_s: t,
                        staged_s: state.now,
                        rows,
                    })
                } else {
                    state.outcomes[idx] = Some(SessionOutcome::Completed {
                        session: r.session,
                        rows,
                        arrival_s: r.arrival_s,
                        dispatch_s: t,
                        response_s: state.now - r.arrival_s,
                        queue_delay_s: t - r.arrival_s,
                    });
                    None
                }
            }
            Err(e) => {
                state.outcomes[idx] = Some(SessionOutcome::Rejected {
                    session: r.session,
                    arrival_s: r.arrival_s,
                    error: e,
                });
                state.failed += 1;
                None
            }
        }
    }

    /// Execute a group commit: one fsync covering every staged
    /// transaction in the group, priced as v5 log I/O on core 0 and
    /// split exactly across the member sessions. An fsync failure (an
    /// injected [`WalCrash`](eco_simhw::fault::WalCrash) or a crashed
    /// log) rejects the group's members with the typed error — their
    /// transactions were applied but not made durable, exactly the
    /// window the crash-replay equivalence property pins down — and the
    /// server keeps serving reads.
    fn dispatch_commit(
        &self,
        members: Vec<PendingCommit>,
        t: f64,
        run: &mut OpenSystemRun,
        state: &mut ServeState,
    ) {
        if members.is_empty() {
            return;
        }
        match self.db.commit_wal() {
            Ok((_bytes, trace)) => {
                if t > state.now {
                    run.idle(t - state.now);
                }
                state.now = t;
                let mut core_traces = vec![WorkTrace::new(); self.cfg.workers];
                core_traces[0] = trace;
                let m = run.burst(&core_traces);
                state.now += m.elapsed_s;

                let totals = LedgerTotals::from_traces(&core_traces);
                state.ledger.merge(&totals);
                let k = members.len();
                for (i, member) in members.iter().enumerate() {
                    state
                        .session_ledgers
                        .entry(member.session)
                        .or_default()
                        .merge(&totals.exact_share(i, k));
                    state.outcomes[member.request] = Some(SessionOutcome::Completed {
                        session: member.session,
                        rows: member.rows.clone(),
                        arrival_s: member.arrival_s,
                        dispatch_s: member.dispatch_s,
                        response_s: state.now - member.arrival_s,
                        queue_delay_s: member.dispatch_s - member.arrival_s,
                    });
                }
                state.dispatches.push(Dispatch {
                    dispatch_s: t,
                    kind: DispatchKind::Commit,
                    members: Vec::new(),
                });
            }
            Err(e) => {
                for member in &members {
                    state.outcomes[member.request] = Some(SessionOutcome::Rejected {
                        session: member.session,
                        arrival_s: member.arrival_s,
                        error: e.clone(),
                    });
                    state.failed += 1;
                }
            }
        }
    }
}

/// Mutable serve-loop state threaded through dispatch helpers.
struct ServeState {
    now: f64,
    outcomes: Vec<Option<SessionOutcome>>,
    dispatches: Vec<Dispatch>,
    ledger: LedgerTotals,
    session_ledgers: BTreeMap<SessionId, LedgerTotals>,
    shed: usize,
    failed: usize,
    io_failed: usize,
    consecutive_io: usize,
    degraded: bool,
}

/// Re-execute a serve run's dispatch transcript serially — the same
/// statements, in the same order, through the same shared
/// `MergedSelection` path — and return the summed ledger. Must equal
/// the serve run's [`ServeReport::ledger`] bit for bit when the
/// database starts in the same state (see the module docs). For
/// read-only transcripts that means restoring the buffer pool
/// (`flush_cache`, plus `warm_up` for warm comparisons); a transcript
/// carrying DML must replay against a *fresh* database opened with the
/// same profile, scale and seed, because mutations move the table
/// state the statements' scan pricing depends on. Staged statements
/// and group commits replay through the same deferred-durability
/// entry points the serve loop used, so the fsync boundaries — and
/// therefore the block-rounded `log_bytes` — land identically.
pub fn replay_serial(
    db: &EcoDb,
    dispatches: &[Dispatch],
    workers: usize,
    short_circuit: bool,
) -> LedgerTotals {
    let mut total = LedgerTotals::new();
    for d in dispatches {
        match &d.kind {
            DispatchKind::Merged(queries) => {
                let (_, core_traces) = db
                    .try_trace_merged_selection_cores(queries, short_circuit, workers)
                    .unwrap_or_else(|e| panic!("a dispatched batch replays cleanly: {e}"));
                total.absorb_traces(&core_traces);
            }
            DispatchKind::Sql(sql) => {
                let (_, trace) = db
                    .try_trace_sql(sql)
                    .unwrap_or_else(|e| panic!("a dispatched statement replays cleanly: {e}"));
                total.absorb_traces(std::slice::from_ref(&trace));
            }
            DispatchKind::StagedSql(sql) => {
                let (_, trace, _) = db
                    .try_trace_sql_deferred(sql)
                    .unwrap_or_else(|e| panic!("a staged statement replays cleanly: {e}"));
                total.absorb_traces(std::slice::from_ref(&trace));
            }
            DispatchKind::Commit => {
                let (_, trace) = db
                    .commit_wal()
                    .unwrap_or_else(|e| panic!("a group commit replays cleanly: {e}"));
                total.absorb_traces(std::slice::from_ref(&trace));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_core::EngineProfile;
    use eco_tpch::QedQuery;

    fn db() -> EcoDb {
        EcoDb::tpch(EngineProfile::MemoryEngine, 0.002)
    }

    fn selection(idx: u64, arrival_s: f64, quantity: i64) -> Request {
        Request {
            session: SessionId(idx),
            arrival_s,
            statement: Statement::Selection(QedQuery { quantity }),
        }
    }

    #[test]
    fn batched_serve_completes_every_session_with_correct_rows() {
        let db = db();
        let requests: Vec<Request> = (0..12)
            .map(|i| selection(i, i as f64 * 1e-4, (i as i64 % 5) + 1))
            .collect();
        let server = EcoServer::new(&db, ServerConfig::batched(2, 4));
        let report = server.serve(&requests);
        assert_eq!(report.served, 12);
        assert_eq!(report.shed, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.dispatches.len(), 3, "12 sessions / threshold 4");
        for (r, o) in requests.iter().zip(&report.outcomes) {
            match o {
                SessionOutcome::Completed { session, rows, .. } => {
                    assert_eq!(*session, r.session);
                    let Statement::Selection(q) = &r.statement else {
                        unreachable!()
                    };
                    let (want, _) = db.trace_selection(q);
                    assert_eq!(*rows, want, "session {session:?} rows");
                }
                other => panic!("expected completion, got {other:?}"),
            }
        }
    }

    #[test]
    fn serve_ledger_is_bit_identical_to_serial_replay() {
        let db = db();
        let requests: Vec<Request> = (0..20)
            .map(|i| selection(i, i as f64 * 1e-4, (i as i64 % 7) + 1))
            .collect();
        let server = EcoServer::new(&db, ServerConfig::batched(3, 8));
        let report = server.serve(&requests);
        assert!(report.ledger_identity(), "session fork/merge must be exact");
        let replay = replay_serial(&db, &report.dispatches, 3, true);
        assert_eq!(report.ledger, replay, "serve vs serial replay");
    }

    #[test]
    fn a_malformed_statement_rejects_one_session_not_the_server() {
        let db = db();
        let requests = vec![
            selection(0, 0.0, 5),
            Request {
                session: SessionId(1),
                arrival_s: 1e-4,
                statement: Statement::Sql("SELEC oops".to_string()),
            },
            selection(2, 2e-4, 9),
        ];
        let server = EcoServer::new(&db, ServerConfig::batched(2, 2));
        let report = server.serve(&requests);
        assert_eq!(report.served, 2);
        assert_eq!(report.failed, 1);
        assert!(matches!(
            &report.outcomes[1],
            SessionOutcome::Rejected {
                error: ServerError::Sql(_),
                ..
            }
        ));
        assert!(report.outcomes[0].is_completed());
        assert!(report.outcomes[2].is_completed());
    }

    #[test]
    fn backlog_cap_sheds_with_a_typed_error() {
        let db = db();
        // Threshold high, cap low: the 3rd..nth simultaneous arrivals
        // find a full backlog and are shed.
        let requests: Vec<Request> = (0..6).map(|i| selection(i, 0.0, i as i64 + 1)).collect();
        let mut cfg = ServerConfig::batched(1, 10);
        cfg.max_backlog = 2;
        let report = EcoServer::new(&db, cfg).serve(&requests);
        assert_eq!(report.shed, 4);
        assert_eq!(report.served, 2);
        assert!(matches!(
            &report.outcomes[2],
            SessionOutcome::Rejected {
                error: ServerError::Shed { queued: 2 },
                ..
            }
        ));
        // The queued pair still drains and completes.
        assert!(report.outcomes[0].is_completed());
        assert!(report.outcomes[1].is_completed());
    }

    #[test]
    fn response_time_includes_accumulation_delay() {
        let db = db();
        // Two arrivals 10 ms apart, threshold 2: the first waits for
        // the second before the batch dispatches.
        let requests = vec![selection(0, 0.0, 3), selection(1, 0.01, 4)];
        let report = EcoServer::new(&db, ServerConfig::batched(1, 2)).serve(&requests);
        match &report.outcomes[0] {
            SessionOutcome::Completed {
                queue_delay_s,
                response_s,
                ..
            } => {
                assert!(
                    (*queue_delay_s - 0.01).abs() < 1e-12,
                    "first query queues until the second arrives, got {queue_delay_s}"
                );
                assert!(response_s > queue_delay_s);
            }
            other => panic!("expected completion, got {other:?}"),
        }
        // The idle gap before the batch was priced, not skipped.
        assert!(report.measurement.idle_s > 0.0);
        assert!(report.measurement.makespan_s > 0.01);
    }

    #[test]
    fn sustained_fault_pressure_degrades_instead_of_crashing() {
        use eco_simhw::fault::FaultPlan;
        let db = EcoDb::tpch(EngineProfile::CommercialDisk, 0.002);
        // Saturate the fault plan: every cold lineitem page faults, and
        // the ~15% permanent share guarantees at least one unreadable
        // page, so every merged scan fails with a typed Io error.
        db.set_fault_plan(FaultPlan::new(77, 1_000_000));
        db.flush_cache();
        let requests: Vec<Request> = (0..8)
            .map(|i| selection(i, i as f64 * 1e-4, (i as i64 % 4) + 1))
            .collect();
        let mut cfg = ServerConfig::batched(2, 1);
        cfg.fault_pressure_limit = 2;
        let report = EcoServer::new(&db, cfg).serve(&requests);
        assert_eq!(report.served, 0, "permanent fault fails every scan");
        assert_eq!(report.failed, 8);
        assert!(report.io_failed >= 2);
        assert!(report.degraded, "consecutive Io failures trip degradation");
        // Degraded mode doubled the threshold: later rejections arrive
        // in merged pairs, so there are fewer failed dispatches than
        // sessions (2 solo + 3 pairs instead of 8 solos).
        assert!(report.io_failed < 8, "degradation batched the failures");
        for o in &report.outcomes {
            assert!(matches!(
                o,
                SessionOutcome::Rejected {
                    error: ServerError::Io(_),
                    ..
                }
            ));
        }
        // Recovery: clear the plan, reboot the pool, and the same
        // server serves the same sessions in full.
        db.set_fault_plan(FaultPlan::none());
        db.flush_cache();
        let healthy = EcoServer::new(&db, cfg).serve(&requests);
        assert_eq!(healthy.served, 8);
        assert_eq!(healthy.io_failed, 0);
        assert!(!healthy.degraded);
        assert!(healthy.ledger_identity());
    }

    #[test]
    fn transient_faults_retry_to_completion_with_priced_backoff() {
        use eco_simhw::fault::FaultPlan;
        let db = EcoDb::tpch(EngineProfile::CommercialDisk, 0.002);
        // A low-rate plan: seed 3 at 2% page-fault rate happens to
        // inject only recoverable faults on lineitem at this scale, so
        // every session completes — but the v2 retry classes are
        // charged and split across sessions exactly.
        db.set_fault_plan(FaultPlan::new(3, 20_000));
        db.flush_cache();
        let requests: Vec<Request> = (0..6)
            .map(|i| selection(i, i as f64 * 1e-4, (i as i64 % 3) + 1))
            .collect();
        let report = EcoServer::new(&db, ServerConfig::batched(2, 3)).serve(&requests);
        assert_eq!(report.served, 6, "transient faults recover via retries");
        assert!(!report.degraded);
        assert!(report.ledger_identity(), "v2 classes split exactly too");
        assert!(
            report.ledger.disk.retry_ios > 0 || report.ledger.backoff_ns > 0,
            "injected faults must leave a ledger trail"
        );
    }

    fn dml(idx: u64, arrival_s: f64, key: i64) -> Request {
        Request {
            session: SessionId(idx),
            arrival_s,
            statement: Statement::Sql(format!("INSERT INTO region VALUES ({key}, 'R{key}', 'c')")),
        }
    }

    #[test]
    fn group_commit_batches_dml_fsyncs_and_keeps_ledger_identity() {
        // Per-statement durability: every DML fsyncs alone.
        let db_solo = db();
        let requests: Vec<Request> = (0..8).map(|i| dml(i, i as f64 * 1e-4, 300 + i as i64)).collect();
        let mut solo_cfg = ServerConfig::batched(2, 4);
        solo_cfg.commit_threshold = 1;
        let solo = EcoServer::new(&db_solo, solo_cfg).serve(&requests);
        assert_eq!(solo.served, 8);
        assert_eq!(solo.ledger.disk.log_ios, 8, "one fsync per statement");
        assert!(solo.ledger_identity());

        // Group commit: the same eight statements share two fsyncs.
        let db_grouped = db();
        let mut cfg = ServerConfig::batched(2, 4);
        cfg.commit_threshold = 4;
        let grouped = EcoServer::new(&db_grouped, cfg).serve(&requests);
        assert_eq!(grouped.served, 8, "durability acks complete every session");
        assert_eq!(grouped.ledger.disk.log_ios, 2, "8 txns / group of 4");
        assert!(
            grouped.ledger.disk.log_bytes < solo.ledger.disk.log_bytes,
            "batched fsyncs push fewer block-rounded bytes: {} vs {}",
            grouped.ledger.disk.log_bytes,
            solo.ledger.disk.log_bytes
        );
        assert!(grouped.ledger_identity(), "commit shares split exactly");
        // Both servers applied the same mutations.
        let (a, _) = db_solo
            .try_trace_sql("SELECT r_regionkey FROM region WHERE r_regionkey >= 300")
            .expect("select");
        let (b, _) = db_grouped
            .try_trace_sql("SELECT r_regionkey FROM region WHERE r_regionkey >= 300")
            .expect("select");
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);

        // The transcript records the fsync boundaries and replays to a
        // bit-identical ledger on a fresh database.
        let commits = grouped
            .dispatches
            .iter()
            .filter(|d| matches!(d.kind, DispatchKind::Commit))
            .count();
        assert_eq!(commits, 2);
        let fresh = db();
        let replay = replay_serial(&fresh, &grouped.dispatches, 2, true);
        assert_eq!(grouped.ledger, replay, "serve vs serial replay with DML");
    }

    #[test]
    fn commit_deadline_releases_a_lone_transaction() {
        let db = db();
        let mut cfg = ServerConfig::batched(1, 4);
        cfg.commit_threshold = 64;
        cfg.max_delay_s = 0.005;
        // One DML arrival, then a selection far later: the staged
        // transaction must not wait for a commit group that never
        // fills.
        let requests = vec![dml(0, 0.0, 400), selection(1, 1.0, 4)];
        let report = EcoServer::new(&db, cfg).serve(&requests);
        assert_eq!(report.served, 2);
        match &report.outcomes[0] {
            SessionOutcome::Completed { response_s, .. } => {
                assert!(
                    *response_s >= 0.005,
                    "the ack waits for the deadline-drained commit, got {response_s}"
                );
                assert!(*response_s < 0.5, "but not for the far-future arrival");
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(report.ledger.disk.log_ios, 1);
        assert!(report.ledger_identity());
    }

    #[test]
    fn wal_crash_rejects_writers_with_typed_errors_and_reads_survive() {
        use eco_simhw::fault::{FaultPlan, TornTail, WalCrash};
        let db = db();
        // The log dies on its 4th append: txn 1 (2 records) commits,
        // txn 2's commit marker is the 4th append and dies.
        db.set_fault_plan(FaultPlan::none().with_wal_crash(WalCrash::KillAfterRecords {
            records: 3,
            torn: TornTail::MidHeader,
        }));
        let requests = vec![
            dml(0, 0.0, 500),
            dml(1, 1e-4, 501),
            dml(2, 2e-4, 502),
            selection(3, 3e-4, 7),
        ];
        let mut cfg = ServerConfig::batched(1, 1);
        cfg.commit_threshold = 1;
        let report = EcoServer::new(&db, cfg).serve(&requests);
        // First writer commits; the second dies at its commit marker;
        // the third finds the log crashed. The read still serves.
        assert_eq!(report.served, 2);
        assert_eq!(report.failed, 2);
        assert!(matches!(
            &report.outcomes[1],
            SessionOutcome::Rejected {
                error: ServerError::Wal(_),
                ..
            }
        ));
        assert!(matches!(
            &report.outcomes[2],
            SessionOutcome::Rejected {
                error: ServerError::Wal(_),
                ..
            }
        ));
        assert!(report.outcomes[3].is_completed(), "reads keep serving");
        assert!(report.ledger_identity());
    }

    #[test]
    fn deadline_drain_releases_a_stale_partial_batch() {
        let db = db();
        let mut cfg = ServerConfig::batched(1, 50);
        cfg.max_delay_s = 0.005;
        // One early arrival, one far later: the first must not wait for
        // a full batch that never forms.
        let requests = vec![selection(0, 0.0, 3), selection(1, 1.0, 4)];
        let report = EcoServer::new(&db, cfg).serve(&requests);
        assert_eq!(report.served, 2);
        assert_eq!(report.dispatches.len(), 2, "deadline split the batch");
        match &report.outcomes[0] {
            SessionOutcome::Completed { dispatch_s, .. } => {
                assert!(
                    (*dispatch_s - 0.005).abs() < 1e-12,
                    "drained at the delay budget, got {dispatch_s}"
                );
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }
}
