//! The deterministic session scheduler: a discrete-event serve loop
//! that admits arrivals, accumulates QED batches, dispatches merged
//! statements onto the morsel-parallel executor, prices the whole run
//! on the open-system machine model, and splits results and energy
//! back per session.
//!
//! ## Determinism and the replay transcript
//!
//! The loop is single-threaded and event-ordered: arrivals are
//! processed in (time, input-index) order, deadline drains fire at
//! exact virtual instants, and every dispatch is appended to a
//! transcript. [`replay_serial`] re-executes that transcript serially
//! through the *same* shared `MergedSelection` path and must reproduce
//! the server's summed ledger **bit for bit** — the concurrent-session
//! extension of the scalar = batch = columnar = parallel invariant.
//! (Callers comparing a serve run against its replay must restore the
//! buffer pool to the same starting state first — `flush_cache`, plus
//! `warm_up` for warm comparisons — because the disk profile's
//! warm-reread counter is stateful.)

use std::collections::BTreeMap;

use eco_core::{EcoDb, ServerError};
use eco_simhw::machine::MachineConfig;
use eco_simhw::opensys::{OpenSystemMeasurement, OpenSystemRun};
use eco_simhw::trace::WorkTrace;

use crate::admission::should_shed;
use crate::batcher::{dedup_batch, Dispatch, DispatchKind, OnlineBatcher, Pending};
use crate::session::{LedgerTotals, Request, SessionId, SessionOutcome, Statement};

/// Scheduler tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Cores the merged statements run across (morsel-parallel).
    pub workers: usize,
    /// QED batch threshold; 1 disables batching (every selection
    /// dispatches alone — the admission baseline).
    pub threshold: usize,
    /// Delay budget: the oldest queued selection is never held longer
    /// than this before a forced drain.
    pub max_delay_s: f64,
    /// Backlog cap: arrivals finding this many selections already
    /// queued are shed with [`ServerError::Shed`].
    pub max_backlog: usize,
    /// Machine configuration bursts and idle gaps are priced under.
    pub machine: MachineConfig,
    /// Short-circuit the merged scan's disjoint predicates (the QED
    /// default) or evaluate exhaustively.
    pub short_circuit: bool,
    /// Fault-pressure degradation: after this many *consecutive*
    /// I/O-failed merged dispatches, the effective batch threshold is
    /// doubled — fewer, larger dispatches amortize retry-priced I/O and
    /// push more arrivals into the backlog cap's shedding path — until
    /// a dispatch succeeds again. `usize::MAX` disables degradation.
    pub fault_pressure_limit: usize,
}

impl ServerConfig {
    /// Online QED batching at `threshold` across `workers` cores;
    /// 1 s delay budget, no backlog cap.
    pub fn batched(workers: usize, threshold: usize) -> Self {
        Self {
            workers,
            threshold,
            max_delay_s: 1.0,
            max_backlog: usize::MAX,
            machine: MachineConfig::stock(),
            short_circuit: true,
            fault_pressure_limit: 3,
        }
    }

    /// The no-batching baseline: every selection dispatches alone.
    pub fn unbatched(workers: usize) -> Self {
        Self::batched(workers, 1)
    }

    /// Adopt an advisor-planned admission operating point.
    pub fn with_admission(mut self, plan: &crate::admission::AdmissionPlan) -> Self {
        self.threshold = plan.threshold;
        self.max_backlog = plan.max_backlog;
        self
    }
}

/// Everything a serve run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One outcome per input request, in input order.
    pub outcomes: Vec<SessionOutcome>,
    /// The replayable dispatch transcript, in dispatch order.
    pub dispatches: Vec<Dispatch>,
    /// End-to-end open-system pricing (bursts + idle gaps).
    pub measurement: OpenSystemMeasurement,
    /// The server's summed ledger over every dispatched statement.
    pub ledger: LedgerTotals,
    /// Per-session forked ledgers (exact shares of each dispatch).
    pub session_ledgers: BTreeMap<SessionId, LedgerTotals>,
    /// Requests that completed.
    pub served: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests rejected as malformed.
    pub failed: usize,
    /// Dispatches that failed with a typed I/O error (injected or real
    /// storage faults). Their member sessions are counted in `failed`.
    pub io_failed: usize,
    /// True when sustained fault pressure tripped degraded mode at any
    /// point during the run (see [`ServerConfig::fault_pressure_limit`]).
    pub degraded: bool,
}

impl ServeReport {
    /// CPU joules per completed query.
    pub fn joules_per_query(&self) -> f64 {
        if self.served > 0 {
            self.measurement.cpu_joules / self.served as f64
        } else {
            0.0
        }
    }

    /// Wall joules per completed query.
    pub fn wall_joules_per_query(&self) -> f64 {
        if self.served > 0 {
            self.measurement.wall_joules / self.served as f64
        } else {
            0.0
        }
    }

    /// Completed queries per second of served makespan.
    pub fn queries_per_second(&self) -> f64 {
        if self.measurement.makespan_s > 0.0 {
            self.served as f64 / self.measurement.makespan_s
        } else {
            0.0
        }
    }

    /// Mean open-system response time over completed queries.
    pub fn avg_response_s(&self) -> f64 {
        let (sum, n) = self.fold_completed(|r, _| r);
        if n > 0 {
            sum / n as f64
        } else {
            0.0
        }
    }

    /// Mean queueing (accumulation) delay over completed queries.
    pub fn avg_queue_delay_s(&self) -> f64 {
        let (sum, n) = self.fold_completed(|_, q| q);
        if n > 0 {
            sum / n as f64
        } else {
            0.0
        }
    }

    fn fold_completed(&self, pick: impl Fn(f64, f64) -> f64) -> (f64, usize) {
        let mut sum = 0.0;
        let mut n = 0;
        for o in &self.outcomes {
            if let SessionOutcome::Completed {
                response_s,
                queue_delay_s,
                ..
            } = o
            {
                sum += pick(*response_s, *queue_delay_s);
                n += 1;
            }
        }
        (sum, n)
    }

    /// Merge all per-session ledgers back together. Equal to
    /// [`ServeReport::ledger`] by construction — exposed so tests and
    /// the bench identity flags can enforce it.
    pub fn merged_session_ledger(&self) -> LedgerTotals {
        let mut total = LedgerTotals::new();
        for l in self.session_ledgers.values() {
            total.merge(l);
        }
        total
    }

    /// True when the per-session fork/merge round trip is exact.
    pub fn ledger_identity(&self) -> bool {
        self.merged_session_ledger() == self.ledger
    }
}

/// The eco-server: a database plus scheduler tunables.
#[derive(Debug)]
pub struct EcoServer<'a> {
    db: &'a EcoDb,
    cfg: ServerConfig,
}

impl<'a> EcoServer<'a> {
    /// A server over `db`.
    pub fn new(db: &'a EcoDb, cfg: ServerConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker core");
        assert!(cfg.threshold >= 1, "threshold must be at least 1");
        Self { db, cfg }
    }

    /// Serve a set of session requests to completion. Requests are
    /// processed in (arrival time, input index) order; the returned
    /// outcomes are in input order.
    pub fn serve(&self, requests: &[Request]) -> ServeReport {
        let cfg = &self.cfg;
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| {
            requests[a]
                .arrival_s
                .total_cmp(&requests[b].arrival_s)
                .then(a.cmp(&b))
        });

        let mc = self.db.multicore(cfg.workers);
        let mut run = OpenSystemRun::new(&mc, cfg.machine);
        let mut state = ServeState {
            now: 0.0,
            outcomes: vec![None; requests.len()],
            dispatches: Vec::new(),
            ledger: LedgerTotals::new(),
            session_ledgers: BTreeMap::new(),
            shed: 0,
            failed: 0,
            io_failed: 0,
            consecutive_io: 0,
            degraded: false,
        };
        let mut batcher = OnlineBatcher::new(cfg.threshold, cfg.max_delay_s);

        for idx in order {
            let r = &requests[idx];
            // Deadline drains that fire before this arrival.
            while let Some(deadline) = batcher.oldest_deadline() {
                if deadline > r.arrival_s {
                    break;
                }
                let t = deadline.max(state.now);
                let d = dedup_batch(batcher.drain(), t);
                self.dispatch_merged(d, &mut run, &mut state);
                self.retune_for_fault_pressure(&mut batcher, &state);
            }
            match &r.statement {
                Statement::Selection(q) => {
                    if should_shed(batcher.pending(), cfg.max_backlog) {
                        state.outcomes[idx] = Some(SessionOutcome::Rejected {
                            session: r.session,
                            arrival_s: r.arrival_s,
                            error: ServerError::Shed {
                                queued: batcher.pending(),
                            },
                        });
                        state.shed += 1;
                        continue;
                    }
                    let p = Pending {
                        request: idx,
                        session: r.session,
                        arrival_s: r.arrival_s,
                        query: *q,
                    };
                    if let Some(batch) = batcher.submit(p) {
                        let t = r.arrival_s.max(state.now);
                        let d = dedup_batch(batch, t);
                        self.dispatch_merged(d, &mut run, &mut state);
                        self.retune_for_fault_pressure(&mut batcher, &state);
                    }
                }
                Statement::Sql(sql) => {
                    let t = r.arrival_s.max(state.now);
                    self.dispatch_sql(idx, r, sql, t, &mut run, &mut state);
                }
            }
        }
        // End of input: the last partial batch drains at its deadline.
        if batcher.pending() > 0 {
            let deadline = batcher.oldest_deadline().unwrap_or(state.now);
            let t = deadline.max(state.now);
            let d = dedup_batch(batcher.drain(), t);
            self.dispatch_merged(d, &mut run, &mut state);
        }

        let served = state
            .outcomes
            .iter()
            .filter(|o| matches!(o, Some(SessionOutcome::Completed { .. })))
            .count();
        ServeReport {
            outcomes: state
                .outcomes
                .into_iter()
                .map(|o| match o {
                    Some(o) => o,
                    None => unreachable!("every request resolves to an outcome"),
                })
                .collect(),
            dispatches: state.dispatches,
            measurement: run.finish(),
            ledger: state.ledger,
            session_ledgers: state.session_ledgers,
            served,
            shed: state.shed,
            failed: state.failed,
            io_failed: state.io_failed,
            degraded: state.degraded,
        }
    }

    /// Apply the fault-pressure policy after a merged dispatch: once
    /// [`ServerConfig::fault_pressure_limit`] consecutive dispatches
    /// have failed with I/O errors, double the batch threshold (fewer,
    /// larger dispatches under a fault storm); restore the configured
    /// operating point as soon as a dispatch succeeds again.
    fn retune_for_fault_pressure(&self, batcher: &mut OnlineBatcher, state: &ServeState) {
        if self.cfg.fault_pressure_limit == usize::MAX {
            return;
        }
        let want = if state.consecutive_io >= self.cfg.fault_pressure_limit {
            self.cfg.threshold.saturating_mul(2)
        } else {
            self.cfg.threshold
        };
        if batcher.threshold() != want {
            batcher.set_threshold(want);
        }
    }

    /// Execute a merged dispatch: advance the clock (pricing the idle
    /// gap), run the distinct-predicate scan morsel-parallel through
    /// the shared `MergedSelection` path, price the burst, and split
    /// rows, response times and exact ledger shares back per member.
    fn dispatch_merged(&self, d: Dispatch, run: &mut OpenSystemRun, state: &mut ServeState) {
        let cfg = &self.cfg;
        let queries = match &d.kind {
            DispatchKind::Merged(qs) => qs,
            DispatchKind::Sql(_) => unreachable!("merged dispatch carries queries"),
        };
        match self
            .db
            .try_trace_merged_selection_cores(queries, cfg.short_circuit, cfg.workers)
        {
            Ok((split, core_traces)) => {
                state.consecutive_io = 0;
                if d.dispatch_s > state.now {
                    run.idle(d.dispatch_s - state.now);
                }
                state.now = d.dispatch_s;
                let m = run.burst(&core_traces);
                state.now += m.elapsed_s;

                let totals = LedgerTotals::from_traces(&core_traces);
                state.ledger.merge(&totals);
                let k = d.members.len();
                for (i, member) in d.members.iter().enumerate() {
                    state
                        .session_ledgers
                        .entry(member.session)
                        .or_default()
                        .merge(&totals.exact_share(i, k));
                    state.outcomes[member.request] = Some(SessionOutcome::Completed {
                        session: member.session,
                        rows: split[member.query_index].clone(),
                        arrival_s: member.arrival_s,
                        dispatch_s: d.dispatch_s,
                        response_s: state.now - member.arrival_s,
                        queue_delay_s: d.dispatch_s - member.arrival_s,
                    });
                }
                state.dispatches.push(d);
            }
            Err(e) => {
                // A malformed batch — or one whose scan hit a permanent
                // storage fault — rejects its members with the typed
                // error; nothing ran, nothing is priced (a failed
                // session's trace is never merged into the ledger), and
                // the scheduler keeps going. Sustained I/O failures feed
                // the fault-pressure counter driving degraded mode.
                if matches!(e, ServerError::Io(_)) {
                    state.io_failed += 1;
                    state.consecutive_io += 1;
                    if state.consecutive_io >= self.cfg.fault_pressure_limit {
                        state.degraded = true;
                    }
                }
                for member in &d.members {
                    state.outcomes[member.request] = Some(SessionOutcome::Rejected {
                        session: member.session,
                        arrival_s: member.arrival_s,
                        error: e.clone(),
                    });
                    state.failed += 1;
                }
            }
        }
    }

    /// Execute a solo SQL dispatch. A compile failure rejects only the
    /// submitting session and charges nothing.
    fn dispatch_sql(
        &self,
        idx: usize,
        r: &Request,
        sql: &str,
        t: f64,
        run: &mut OpenSystemRun,
        state: &mut ServeState,
    ) {
        match self.db.try_trace_sql(sql) {
            Ok((rows, trace)) => {
                if t > state.now {
                    run.idle(t - state.now);
                }
                state.now = t;
                // The solo statement occupies core 0; the other cores
                // halt through the burst (empty traces).
                let mut core_traces = vec![WorkTrace::new(); self.cfg.workers];
                core_traces[0] = trace;
                let m = run.burst(&core_traces);
                state.now += m.elapsed_s;

                let totals = LedgerTotals::from_traces(&core_traces);
                state.ledger.merge(&totals);
                state
                    .session_ledgers
                    .entry(r.session)
                    .or_default()
                    .merge(&totals);
                state.outcomes[idx] = Some(SessionOutcome::Completed {
                    session: r.session,
                    rows,
                    arrival_s: r.arrival_s,
                    dispatch_s: t,
                    response_s: state.now - r.arrival_s,
                    queue_delay_s: t - r.arrival_s,
                });
                state.dispatches.push(Dispatch {
                    dispatch_s: t,
                    kind: DispatchKind::Sql(sql.to_string()),
                    members: Vec::new(),
                });
            }
            Err(e) => {
                state.outcomes[idx] = Some(SessionOutcome::Rejected {
                    session: r.session,
                    arrival_s: r.arrival_s,
                    error: e,
                });
                state.failed += 1;
            }
        }
    }
}

/// Mutable serve-loop state threaded through dispatch helpers.
struct ServeState {
    now: f64,
    outcomes: Vec<Option<SessionOutcome>>,
    dispatches: Vec<Dispatch>,
    ledger: LedgerTotals,
    session_ledgers: BTreeMap<SessionId, LedgerTotals>,
    shed: usize,
    failed: usize,
    io_failed: usize,
    consecutive_io: usize,
    degraded: bool,
}

/// Re-execute a serve run's dispatch transcript serially — the same
/// statements, in the same order, through the same shared
/// `MergedSelection` path — and return the summed ledger. Must equal
/// the serve run's [`ServeReport::ledger`] bit for bit when the buffer
/// pool starts in the same state (see the module docs).
pub fn replay_serial(
    db: &EcoDb,
    dispatches: &[Dispatch],
    workers: usize,
    short_circuit: bool,
) -> LedgerTotals {
    let mut total = LedgerTotals::new();
    for d in dispatches {
        match &d.kind {
            DispatchKind::Merged(queries) => {
                let (_, core_traces) = db
                    .try_trace_merged_selection_cores(queries, short_circuit, workers)
                    .unwrap_or_else(|e| panic!("a dispatched batch replays cleanly: {e}"));
                total.absorb_traces(&core_traces);
            }
            DispatchKind::Sql(sql) => {
                let (_, trace) = db
                    .try_trace_sql(sql)
                    .unwrap_or_else(|e| panic!("a dispatched statement replays cleanly: {e}"));
                total.absorb_traces(std::slice::from_ref(&trace));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_core::EngineProfile;
    use eco_tpch::QedQuery;

    fn db() -> EcoDb {
        EcoDb::tpch(EngineProfile::MemoryEngine, 0.002)
    }

    fn selection(idx: u64, arrival_s: f64, quantity: i64) -> Request {
        Request {
            session: SessionId(idx),
            arrival_s,
            statement: Statement::Selection(QedQuery { quantity }),
        }
    }

    #[test]
    fn batched_serve_completes_every_session_with_correct_rows() {
        let db = db();
        let requests: Vec<Request> = (0..12)
            .map(|i| selection(i, i as f64 * 1e-4, (i as i64 % 5) + 1))
            .collect();
        let server = EcoServer::new(&db, ServerConfig::batched(2, 4));
        let report = server.serve(&requests);
        assert_eq!(report.served, 12);
        assert_eq!(report.shed, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.dispatches.len(), 3, "12 sessions / threshold 4");
        for (r, o) in requests.iter().zip(&report.outcomes) {
            match o {
                SessionOutcome::Completed { session, rows, .. } => {
                    assert_eq!(*session, r.session);
                    let Statement::Selection(q) = &r.statement else {
                        unreachable!()
                    };
                    let (want, _) = db.trace_selection(q);
                    assert_eq!(*rows, want, "session {session:?} rows");
                }
                other => panic!("expected completion, got {other:?}"),
            }
        }
    }

    #[test]
    fn serve_ledger_is_bit_identical_to_serial_replay() {
        let db = db();
        let requests: Vec<Request> = (0..20)
            .map(|i| selection(i, i as f64 * 1e-4, (i as i64 % 7) + 1))
            .collect();
        let server = EcoServer::new(&db, ServerConfig::batched(3, 8));
        let report = server.serve(&requests);
        assert!(report.ledger_identity(), "session fork/merge must be exact");
        let replay = replay_serial(&db, &report.dispatches, 3, true);
        assert_eq!(report.ledger, replay, "serve vs serial replay");
    }

    #[test]
    fn a_malformed_statement_rejects_one_session_not_the_server() {
        let db = db();
        let requests = vec![
            selection(0, 0.0, 5),
            Request {
                session: SessionId(1),
                arrival_s: 1e-4,
                statement: Statement::Sql("SELEC oops".to_string()),
            },
            selection(2, 2e-4, 9),
        ];
        let server = EcoServer::new(&db, ServerConfig::batched(2, 2));
        let report = server.serve(&requests);
        assert_eq!(report.served, 2);
        assert_eq!(report.failed, 1);
        assert!(matches!(
            &report.outcomes[1],
            SessionOutcome::Rejected {
                error: ServerError::Sql(_),
                ..
            }
        ));
        assert!(report.outcomes[0].is_completed());
        assert!(report.outcomes[2].is_completed());
    }

    #[test]
    fn backlog_cap_sheds_with_a_typed_error() {
        let db = db();
        // Threshold high, cap low: the 3rd..nth simultaneous arrivals
        // find a full backlog and are shed.
        let requests: Vec<Request> = (0..6).map(|i| selection(i, 0.0, i as i64 + 1)).collect();
        let mut cfg = ServerConfig::batched(1, 10);
        cfg.max_backlog = 2;
        let report = EcoServer::new(&db, cfg).serve(&requests);
        assert_eq!(report.shed, 4);
        assert_eq!(report.served, 2);
        assert!(matches!(
            &report.outcomes[2],
            SessionOutcome::Rejected {
                error: ServerError::Shed { queued: 2 },
                ..
            }
        ));
        // The queued pair still drains and completes.
        assert!(report.outcomes[0].is_completed());
        assert!(report.outcomes[1].is_completed());
    }

    #[test]
    fn response_time_includes_accumulation_delay() {
        let db = db();
        // Two arrivals 10 ms apart, threshold 2: the first waits for
        // the second before the batch dispatches.
        let requests = vec![selection(0, 0.0, 3), selection(1, 0.01, 4)];
        let report = EcoServer::new(&db, ServerConfig::batched(1, 2)).serve(&requests);
        match &report.outcomes[0] {
            SessionOutcome::Completed {
                queue_delay_s,
                response_s,
                ..
            } => {
                assert!(
                    (*queue_delay_s - 0.01).abs() < 1e-12,
                    "first query queues until the second arrives, got {queue_delay_s}"
                );
                assert!(response_s > queue_delay_s);
            }
            other => panic!("expected completion, got {other:?}"),
        }
        // The idle gap before the batch was priced, not skipped.
        assert!(report.measurement.idle_s > 0.0);
        assert!(report.measurement.makespan_s > 0.01);
    }

    #[test]
    fn sustained_fault_pressure_degrades_instead_of_crashing() {
        use eco_simhw::fault::FaultPlan;
        let db = EcoDb::tpch(EngineProfile::CommercialDisk, 0.002);
        // Saturate the fault plan: every cold lineitem page faults, and
        // the ~15% permanent share guarantees at least one unreadable
        // page, so every merged scan fails with a typed Io error.
        db.set_fault_plan(FaultPlan::new(77, 1_000_000));
        db.flush_cache();
        let requests: Vec<Request> = (0..8)
            .map(|i| selection(i, i as f64 * 1e-4, (i as i64 % 4) + 1))
            .collect();
        let mut cfg = ServerConfig::batched(2, 1);
        cfg.fault_pressure_limit = 2;
        let report = EcoServer::new(&db, cfg).serve(&requests);
        assert_eq!(report.served, 0, "permanent fault fails every scan");
        assert_eq!(report.failed, 8);
        assert!(report.io_failed >= 2);
        assert!(report.degraded, "consecutive Io failures trip degradation");
        // Degraded mode doubled the threshold: later rejections arrive
        // in merged pairs, so there are fewer failed dispatches than
        // sessions (2 solo + 3 pairs instead of 8 solos).
        assert!(report.io_failed < 8, "degradation batched the failures");
        for o in &report.outcomes {
            assert!(matches!(
                o,
                SessionOutcome::Rejected {
                    error: ServerError::Io(_),
                    ..
                }
            ));
        }
        // Recovery: clear the plan, reboot the pool, and the same
        // server serves the same sessions in full.
        db.set_fault_plan(FaultPlan::none());
        db.flush_cache();
        let healthy = EcoServer::new(&db, cfg).serve(&requests);
        assert_eq!(healthy.served, 8);
        assert_eq!(healthy.io_failed, 0);
        assert!(!healthy.degraded);
        assert!(healthy.ledger_identity());
    }

    #[test]
    fn transient_faults_retry_to_completion_with_priced_backoff() {
        use eco_simhw::fault::FaultPlan;
        let db = EcoDb::tpch(EngineProfile::CommercialDisk, 0.002);
        // A low-rate plan: seed 3 at 2% page-fault rate happens to
        // inject only recoverable faults on lineitem at this scale, so
        // every session completes — but the v2 retry classes are
        // charged and split across sessions exactly.
        db.set_fault_plan(FaultPlan::new(3, 20_000));
        db.flush_cache();
        let requests: Vec<Request> = (0..6)
            .map(|i| selection(i, i as f64 * 1e-4, (i as i64 % 3) + 1))
            .collect();
        let report = EcoServer::new(&db, ServerConfig::batched(2, 3)).serve(&requests);
        assert_eq!(report.served, 6, "transient faults recover via retries");
        assert!(!report.degraded);
        assert!(report.ledger_identity(), "v2 classes split exactly too");
        assert!(
            report.ledger.disk.retry_ios > 0 || report.ledger.backoff_ns > 0,
            "injected faults must leave a ledger trail"
        );
    }

    #[test]
    fn deadline_drain_releases_a_stale_partial_batch() {
        let db = db();
        let mut cfg = ServerConfig::batched(1, 50);
        cfg.max_delay_s = 0.005;
        // One early arrival, one far later: the first must not wait for
        // a full batch that never forms.
        let requests = vec![selection(0, 0.0, 3), selection(1, 1.0, 4)];
        let report = EcoServer::new(&db, cfg).serve(&requests);
        assert_eq!(report.served, 2);
        assert_eq!(report.dispatches.len(), 2, "deadline split the batch");
        match &report.outcomes[0] {
            SessionOutcome::Completed { dispatch_s, .. } => {
                assert!(
                    (*dispatch_s - 0.005).abs() < 1e-12,
                    "drained at the delay budget, got {dispatch_s}"
                );
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }
}
