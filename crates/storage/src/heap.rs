//! In-memory heap table — the "MySQL memory engine" profile.
//!
//! Tuples live in a flat vector; scans stream straight from DRAM with
//! no disk involvement, which is exactly why the paper uses the memory
//! engine "to stress the CPU" (§3.3).

use std::sync::{Arc, OnceLock};

use crate::column::DataChunk;
use crate::encode::EncodedChunk;
use crate::value::{tuple_width, Schema, Tuple};

/// An append-only in-memory table.
#[derive(Debug, Clone, Default)]
pub struct HeapTable {
    schema: Schema,
    tuples: Vec<Tuple>,
    bytes: u64,
    /// Lazily-built columnar mirror of `tuples` (see
    /// [`HeapTable::columns`]); invalidated on insert.
    columns: OnceLock<Arc<DataChunk>>,
    /// Lazily-built *encoded* mirror of [`HeapTable::columns`] (see
    /// [`HeapTable::encoded`]); invalidated on insert.
    encoded: OnceLock<Arc<EncodedChunk>>,
}

impl HeapTable {
    /// Empty table with a schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            tuples: Vec::new(),
            bytes: 0,
            columns: OnceLock::new(),
            encoded: OnceLock::new(),
        }
    }

    /// Build from pre-validated tuples.
    pub fn from_tuples(schema: Schema, tuples: Vec<Tuple>) -> Self {
        let mut t = Self::new(schema);
        for tup in tuples {
            t.insert(tup);
        }
        t
    }

    /// Append one tuple; panics if it does not match the schema.
    pub fn insert(&mut self, tuple: Tuple) {
        assert!(
            self.schema.check(&tuple),
            "tuple does not match schema {:?}",
            self.schema.names()
        );
        self.bytes += tuple_width(&tuple);
        self.tuples.push(tuple);
        // The columnar mirrors no longer match; rebuild on next use.
        self.columns.take();
        self.encoded.take();
    }

    /// Overwrite row `row` in place. Panics on an out-of-range row or a
    /// schema mismatch — the write path validates both before applying
    /// (see `Catalog::apply_wal_record`), so a panic here is a caller
    /// bug, not a data error.
    pub fn set_row(&mut self, row: usize, tuple: Tuple) {
        assert!(
            self.schema.check(&tuple),
            "tuple does not match schema {:?}",
            self.schema.names()
        );
        self.bytes -= tuple_width(&self.tuples[row]);
        self.bytes += tuple_width(&tuple);
        self.tuples[row] = tuple;
        self.columns.take();
        self.encoded.take();
    }

    /// Remove row `row`, shifting later rows down by one (multi-row
    /// deletes are therefore applied in descending row order — see
    /// `eco_storage::wal`). Panics on an out-of-range row; callers
    /// validate first.
    pub fn remove_row(&mut self, row: usize) -> Tuple {
        let old = self.tuples.remove(row);
        self.bytes -= tuple_width(&old);
        self.columns.take();
        self.encoded.take();
        old
    }

    /// The whole table as one columnar [`DataChunk`] mirror, built
    /// lazily on first use and shared thereafter. The mirror holds
    /// exactly the tuples of [`Self::tuples`] in insertion order; the
    /// columnar scan path reads it instead of cloning row tuples, while
    /// charging the ledger identically to the row path.
    pub fn columns(&self) -> &Arc<DataChunk> {
        self.columns
            .get_or_init(|| Arc::new(DataChunk::from_rows(&self.schema, &self.tuples)))
    }

    /// The whole table's *encoded* columnar mirror (dictionary / RLE /
    /// bit-packed per column, auto-selected; see [`crate::encode`]),
    /// built lazily on first use — raw-pricing executions never build
    /// it. Row indices align exactly with [`HeapTable::columns`].
    pub fn encoded(&self) -> &Arc<EncodedChunk> {
        self.encoded
            .get_or_init(|| Arc::new(EncodedChunk::encode(self.columns())))
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Total stored bytes (drives memory-stream accounting for scans).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Average tuple width in bytes (0 for an empty table).
    pub fn avg_tuple_bytes(&self) -> u64 {
        if self.tuples.is_empty() {
            0
        } else {
            self.bytes / self.tuples.len() as u64
        }
    }

    /// All tuples, in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColumnType, Value};

    fn schema() -> Schema {
        Schema::new(&[("k", ColumnType::Int), ("s", ColumnType::Str)])
    }

    #[test]
    fn insert_and_scan() {
        let mut t = HeapTable::new(schema());
        assert!(t.is_empty());
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::str(format!("v{i}"))]);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.tuples()[3][0], Value::Int(3));
        assert!(t.bytes() > 0);
        assert!(t.avg_tuple_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "does not match schema")]
    fn schema_mismatch_rejected() {
        let mut t = HeapTable::new(schema());
        t.insert(vec![Value::Int(1)]);
    }

    #[test]
    fn columnar_mirror_tracks_inserts() {
        let mut t = HeapTable::new(schema());
        t.insert(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(t.columns().len(), 1);
        // Insert invalidates and a fresh mirror sees the new row.
        t.insert(vec![Value::Int(2), Value::str("b")]);
        let cols = t.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols.row(1), t.tuples()[1]);
        assert_eq!(cols.column(0).data.as_ints().unwrap(), &[1, 2]);
    }

    #[test]
    fn encoded_mirror_tracks_inserts_and_roundtrips() {
        let mut t = HeapTable::new(schema());
        for i in 0..64 {
            t.insert(vec![Value::Int(i % 4), Value::str(format!("g{}", i % 3))]);
        }
        let enc = Arc::clone(t.encoded());
        assert_eq!(enc.rows(), 64);
        for (i, col) in enc.columns().iter().enumerate() {
            assert_eq!(col.decode(), t.columns().column(i).data, "column {i}");
        }
        // Insert invalidates; the fresh mirror sees the new row.
        t.insert(vec![Value::Int(9), Value::str("g9")]);
        assert_eq!(t.encoded().rows(), 65);
    }

    #[test]
    fn bytes_accumulate() {
        let mut t = HeapTable::new(schema());
        t.insert(vec![Value::Int(1), Value::str("ab")]);
        let one = t.bytes();
        t.insert(vec![Value::Int(2), Value::str("ab")]);
        assert_eq!(t.bytes(), 2 * one);
    }
}
