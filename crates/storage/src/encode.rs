//! Lightweight column compression: per-column encodings auto-selected
//! from simple build-time stats, consumed *directly* by the execution
//! kernels in `eco-query` (ledger schema v3's compressed pricing mode).
//!
//! # Encodings
//!
//! * **Dictionary** ([`EncodedColumn::DictStr`] / [`EncodedColumn::DictChar`])
//!   — distinct values stored once in a **sorted** dictionary, rows as
//!   bit-packed dictionary ids. Sorting makes every comparison operator
//!   evaluable on ids alone (`value < lit` ⇔ `id < lower_bound(lit)`),
//!   so predicates compare once per *distinct* value and then match ids.
//! * **Run-length** ([`EncodedColumn::RleInt`] / [`EncodedColumn::RleDate`])
//!   — `(value, cumulative end)` pairs; filters and aggregates touch one
//!   entry per *run*, weighting by run length.
//! * **Bit-packing** ([`EncodedColumn::PackInt`] / [`EncodedColumn::PackDate`])
//!   — frame-of-reference: `min` plus `ceil(log2(max-min+1))` bits per
//!   row. Comparisons translate the literal into the packed domain once
//!   and evaluate on packed words; payloads decompress only at late
//!   materialization.
//! * **Bool bitmap** ([`EncodedColumn::Bool`]) — one bit per row.
//! * **Plain** ([`EncodedColumn::Plain`]) — the raw vector, chosen when
//!   no encoding wins (e.g. high-cardinality `l_comment`), so encoding
//!   never inflates a column.
//!
//! Selection is deterministic: each candidate's exact encoded byte size
//! is computed from the column stats (distinct count, run count, value
//! range) and the smallest wins, with ties broken in a fixed order.
//!
//! # Pricing (ledger schema v3)
//!
//! Encoded mirrors never replace the raw mirrors — execution remains
//! correct in either pricing mode and raw-mode ledgers stay
//! bit-identical. Under `PricingMode::Compressed`, scans charge
//! [`EncodedChunk::avg_tuple_bytes`] (a deterministic integer, so the
//! charge is split-stable across batch sizes and morsel boundaries)
//! instead of the raw average, and kernels that read through a
//! dictionary charge one `DictLookup` per id translation. Disk I/O is
//! unchanged: pages store raw tuples, only the in-memory columnar
//! mirror is encoded.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::column::{ColumnData, DataChunk};

/// A vector of `len` unsigned values stored in `bits` bits each,
/// little-endian within packed 64-bit words.
#[derive(Debug, Clone, PartialEq)]
pub struct BitPacked {
    bits: u32,
    len: usize,
    words: Vec<u64>,
}

impl BitPacked {
    /// Pack `vals` (each `< 2^bits`) into `bits`-bit slots.
    pub fn pack(bits: u32, vals: impl ExactSizeIterator<Item = u64>) -> Self {
        let bits = bits.clamp(1, 64);
        let len = vals.len();
        let total_bits = len as u64 * bits as u64;
        let mut words = vec![0u64; total_bits.div_ceil(64) as usize];
        for (i, v) in vals.enumerate() {
            debug_assert!(bits == 64 || v < (1u64 << bits), "value out of range");
            let bit = i as u64 * bits as u64;
            let (w, off) = ((bit / 64) as usize, (bit % 64) as u32);
            words[w] |= v << off;
            if off + bits > 64 {
                words[w + 1] |= v >> (64 - off);
            }
        }
        Self { bits, len, words }
    }

    /// The value at slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let bit = i as u64 * self.bits as u64;
        let (w, off) = ((bit / 64) as usize, (bit % 64) as u32);
        let mut v = self.words[w] >> off;
        if off + self.bits > 64 {
            v |= self.words[w + 1] << (64 - off);
        }
        if self.bits == 64 {
            v
        } else {
            v & ((1u64 << self.bits) - 1)
        }
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per value.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Encoded size in bytes (the priced footprint of the id array).
    pub fn bytes(&self) -> u64 {
        (self.len as u64 * self.bits as u64).div_ceil(8)
    }
}

/// Bits needed to store values in `0..=max` (at least 1).
fn bits_for(max: u64) -> u32 {
    (64 - max.leading_zeros()).max(1)
}

/// Byte size of one stored string (same accounting as
/// [`crate::value::Value::width_bytes`]).
fn str_bytes(s: &str) -> u64 {
    2 + s.len() as u64
}

/// One column in encoded form. Every variant can reproduce the exact
/// raw column ([`EncodedColumn::decode`]); kernels read the compressed
/// representation directly instead.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedColumn {
    /// Sorted string dictionary + bit-packed ids.
    DictStr {
        /// Distinct values, ascending.
        dict: Vec<Arc<str>>,
        /// Per-row index into `dict`.
        ids: BitPacked,
    },
    /// Sorted char dictionary + bit-packed ids.
    DictChar {
        /// Distinct values, ascending.
        dict: Vec<char>,
        /// Per-row index into `dict`.
        ids: BitPacked,
    },
    /// Run-length encoded integers: `values[k]` repeats for rows
    /// `ends[k-1]..ends[k]` (with `ends[-1] == 0`).
    RleInt {
        /// One value per run.
        values: Vec<i64>,
        /// Cumulative (exclusive) end row of each run, strictly ascending.
        ends: Vec<u32>,
    },
    /// Run-length encoded dates (same layout as [`EncodedColumn::RleInt`]).
    RleDate {
        /// One value per run.
        values: Vec<i32>,
        /// Cumulative (exclusive) end row of each run, strictly ascending.
        ends: Vec<u32>,
    },
    /// Frame-of-reference bit-packed integers: row value = `min + packed[i]`.
    PackInt {
        /// Frame of reference.
        min: i64,
        /// Per-row offsets from `min`.
        packed: BitPacked,
    },
    /// Frame-of-reference bit-packed dates.
    PackDate {
        /// Frame of reference.
        min: i32,
        /// Per-row offsets from `min`.
        packed: BitPacked,
    },
    /// One bit per row.
    Bool(BitPacked),
    /// Raw column — chosen when no encoding wins.
    Plain(ColumnData),
}

impl EncodedColumn {
    /// Encode a column, auto-selecting the smallest representation from
    /// its stats. Deterministic: exact candidate byte sizes, fixed tie
    /// order (dictionary/RLE preferred over bit-packing over plain).
    pub fn encode(col: &ColumnData) -> EncodedColumn {
        match col {
            ColumnData::Int(v) => encode_int(v),
            ColumnData::Date(v) => encode_date(v),
            ColumnData::Str(v) => encode_str(v),
            ColumnData::Char(v) => encode_char(v),
            ColumnData::Bool(v) => {
                EncodedColumn::Bool(BitPacked::pack(1, v.iter().map(|&b| b as u64)))
            }
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            EncodedColumn::DictStr { ids, .. } | EncodedColumn::DictChar { ids, .. } => ids.len(),
            EncodedColumn::RleInt { ends, .. } | EncodedColumn::RleDate { ends, .. } => {
                ends.last().map_or(0, |&e| e as usize)
            }
            EncodedColumn::PackInt { packed, .. } | EncodedColumn::PackDate { packed, .. } => {
                packed.len()
            }
            EncodedColumn::Bool(b) => b.len(),
            EncodedColumn::Plain(c) => c.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encoded size in bytes — the priced footprint of this column
    /// under the compressed pricing mode.
    pub fn encoded_bytes(&self) -> u64 {
        match self {
            EncodedColumn::DictStr { dict, ids } => {
                dict.iter().map(|s| str_bytes(s)).sum::<u64>() + ids.bytes()
            }
            EncodedColumn::DictChar { dict, ids } => dict.len() as u64 + ids.bytes(),
            EncodedColumn::RleInt { values, .. } => values.len() as u64 * (8 + 4),
            EncodedColumn::RleDate { values, .. } => values.len() as u64 * (4 + 4),
            EncodedColumn::PackInt { packed, .. } => 8 + packed.bytes(),
            EncodedColumn::PackDate { packed, .. } => 4 + packed.bytes(),
            EncodedColumn::Bool(b) => b.bytes(),
            EncodedColumn::Plain(c) => plain_bytes(c),
        }
    }

    /// Short name of the chosen encoding, for reports.
    pub fn encoding_name(&self) -> &'static str {
        match self {
            EncodedColumn::DictStr { .. } => "dict-str",
            EncodedColumn::DictChar { .. } => "dict-char",
            EncodedColumn::RleInt { .. } => "rle-int",
            EncodedColumn::RleDate { .. } => "rle-date",
            EncodedColumn::PackInt { .. } => "pack-int",
            EncodedColumn::PackDate { .. } => "pack-date",
            EncodedColumn::Bool(_) => "bitmap",
            EncodedColumn::Plain(_) => "plain",
        }
    }

    /// Decode back to the exact raw column (tests and roundtrip checks;
    /// execution never needs this — kernels read the encoded form and
    /// late materialization goes through the raw mirror).
    pub fn decode(&self) -> ColumnData {
        match self {
            EncodedColumn::DictStr { dict, ids } => ColumnData::Str(
                (0..ids.len())
                    .map(|i| Arc::clone(&dict[ids.get(i) as usize]))
                    .collect(),
            ),
            EncodedColumn::DictChar { dict, ids } => {
                ColumnData::Char((0..ids.len()).map(|i| dict[ids.get(i) as usize]).collect())
            }
            EncodedColumn::RleInt { values, ends } => {
                let mut out = Vec::with_capacity(self.len());
                let mut start = 0u32;
                for (v, &end) in values.iter().zip(ends) {
                    out.extend(std::iter::repeat_n(*v, (end - start) as usize));
                    start = end;
                }
                ColumnData::Int(out)
            }
            EncodedColumn::RleDate { values, ends } => {
                let mut out = Vec::with_capacity(self.len());
                let mut start = 0u32;
                for (v, &end) in values.iter().zip(ends) {
                    out.extend(std::iter::repeat_n(*v, (end - start) as usize));
                    start = end;
                }
                ColumnData::Date(out)
            }
            EncodedColumn::PackInt { min, packed } => ColumnData::Int(
                (0..packed.len())
                    .map(|i| min + packed.get(i) as i64)
                    .collect(),
            ),
            EncodedColumn::PackDate { min, packed } => ColumnData::Date(
                (0..packed.len())
                    .map(|i| min + packed.get(i) as i32)
                    .collect(),
            ),
            EncodedColumn::Bool(b) => {
                ColumnData::Bool((0..b.len()).map(|i| b.get(i) != 0).collect())
            }
            EncodedColumn::Plain(c) => c.clone(),
        }
    }
}

/// Raw byte footprint of a column (mirrors `Value::width_bytes` row
/// accounting, which is what raw-mode scans price).
fn plain_bytes(col: &ColumnData) -> u64 {
    match col {
        ColumnData::Int(v) => v.len() as u64 * 8,
        ColumnData::Str(v) => v.iter().map(|s| str_bytes(s)).sum(),
        ColumnData::Date(v) => v.len() as u64 * 4,
        ColumnData::Char(v) => v.len() as u64,
        ColumnData::Bool(v) => v.len() as u64,
    }
}

/// Run boundaries of `v` as cumulative exclusive ends.
fn run_ends<T: PartialEq>(v: &[T]) -> Vec<u32> {
    let mut ends = Vec::new();
    for i in 1..v.len() {
        if v[i] != v[i - 1] {
            ends.push(i as u32);
        }
    }
    if !v.is_empty() {
        ends.push(v.len() as u32);
    }
    ends
}

fn encode_int(v: &[i64]) -> EncodedColumn {
    if v.is_empty() {
        return EncodedColumn::Plain(ColumnData::Int(Vec::new()));
    }
    let ends = run_ends(v);
    let (min, max) = v
        .iter()
        .fold((i64::MAX, i64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    let bits = bits_for(max.wrapping_sub(min) as u64);
    let rle_bytes = ends.len() as u64 * (8 + 4);
    let pack_bytes = 8 + (v.len() as u64 * bits as u64).div_ceil(8);
    let plain = v.len() as u64 * 8;
    if rle_bytes <= pack_bytes && rle_bytes < plain {
        let mut values = Vec::with_capacity(ends.len());
        let mut start = 0usize;
        for &end in &ends {
            values.push(v[start]);
            start = end as usize;
        }
        EncodedColumn::RleInt { values, ends }
    } else if pack_bytes < plain && bits < 64 {
        EncodedColumn::PackInt {
            min,
            packed: BitPacked::pack(bits, v.iter().map(|&x| x.wrapping_sub(min) as u64)),
        }
    } else {
        EncodedColumn::Plain(ColumnData::Int(v.to_vec()))
    }
}

fn encode_date(v: &[i32]) -> EncodedColumn {
    if v.is_empty() {
        return EncodedColumn::Plain(ColumnData::Date(Vec::new()));
    }
    let ends = run_ends(v);
    let (min, max) = v
        .iter()
        .fold((i32::MAX, i32::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    let bits = bits_for(max.wrapping_sub(min) as u32 as u64);
    let rle_bytes = ends.len() as u64 * (4 + 4);
    let pack_bytes = 4 + (v.len() as u64 * bits as u64).div_ceil(8);
    let plain = v.len() as u64 * 4;
    if rle_bytes <= pack_bytes && rle_bytes < plain {
        let mut values = Vec::with_capacity(ends.len());
        let mut start = 0usize;
        for &end in &ends {
            values.push(v[start]);
            start = end as usize;
        }
        EncodedColumn::RleDate { values, ends }
    } else if pack_bytes < plain && bits < 32 {
        EncodedColumn::PackDate {
            min,
            packed: BitPacked::pack(bits, v.iter().map(|&x| x.wrapping_sub(min) as u32 as u64)),
        }
    } else {
        EncodedColumn::Plain(ColumnData::Date(v.to_vec()))
    }
}

fn encode_str(v: &[Arc<str>]) -> EncodedColumn {
    if v.is_empty() {
        return EncodedColumn::Plain(ColumnData::Str(Vec::new()));
    }
    let distinct: BTreeSet<&str> = v.iter().map(|s| s.as_ref()).collect();
    let bits = bits_for(distinct.len() as u64 - 1);
    let dict_bytes = distinct.iter().map(|s| str_bytes(s)).sum::<u64>()
        + (v.len() as u64 * bits as u64).div_ceil(8);
    let plain = v.iter().map(|s| str_bytes(s)).sum::<u64>();
    if dict_bytes < plain {
        let dict: Vec<Arc<str>> = distinct.iter().map(|&s| Arc::from(s)).collect();
        let ids = BitPacked::pack(
            bits,
            v.iter().map(|s| {
                dict.binary_search_by(|d| d.as_ref().cmp(s.as_ref()))
                    .unwrap_or(usize::MAX) as u64
            }),
        );
        EncodedColumn::DictStr { dict, ids }
    } else {
        EncodedColumn::Plain(ColumnData::Str(v.to_vec()))
    }
}

fn encode_char(v: &[char]) -> EncodedColumn {
    if v.is_empty() {
        return EncodedColumn::Plain(ColumnData::Char(Vec::new()));
    }
    let distinct: BTreeSet<char> = v.iter().copied().collect();
    let bits = bits_for(distinct.len() as u64 - 1);
    let dict_bytes = distinct.len() as u64 + (v.len() as u64 * bits as u64).div_ceil(8);
    let plain = v.len() as u64;
    if dict_bytes < plain {
        let dict: Vec<char> = distinct.into_iter().collect();
        let ids = BitPacked::pack(
            bits,
            v.iter()
                .map(|c| dict.binary_search(c).unwrap_or(usize::MAX) as u64),
        );
        EncodedColumn::DictChar { dict, ids }
    } else {
        EncodedColumn::Plain(ColumnData::Char(v.to_vec()))
    }
}

/// The encoded mirror of one [`DataChunk`]: per-column encodings plus
/// the deterministic per-row priced byte count the compressed pricing
/// mode charges for scans.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedChunk {
    columns: Vec<EncodedColumn>,
    rows: usize,
    avg_tuple_bytes: u64,
}

impl EncodedChunk {
    /// Encode every column of `chunk` (auto-selected per column).
    pub fn encode(chunk: &DataChunk) -> Self {
        let columns: Vec<EncodedColumn> = chunk
            .columns()
            .iter()
            .map(|c| EncodedColumn::encode(&c.data))
            .collect();
        let rows = chunk.len();
        let total: u64 = columns.iter().map(EncodedColumn::encoded_bytes).sum();
        // Integer per-row charge (like the raw engines' avg_tuple_bytes)
        // so scan charges are split-stable: any batching of n rows
        // charges exactly n * avg, independent of chunk geometry. The +2
        // mirrors the raw row-header accounting in `tuple_width`.
        let avg_tuple_bytes = if rows == 0 {
            1
        } else {
            (total / rows as u64).max(1) + 2
        };
        Self {
            columns,
            rows,
            avg_tuple_bytes,
        }
    }

    /// Per-column encodings, in schema order.
    pub fn columns(&self) -> &[EncodedColumn] {
        &self.columns
    }

    /// One column's encoding.
    pub fn column(&self, i: usize) -> &EncodedColumn {
        &self.columns[i]
    }

    /// Number of rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total encoded bytes across all columns.
    pub fn encoded_bytes(&self) -> u64 {
        self.columns.iter().map(EncodedColumn::encoded_bytes).sum()
    }

    /// The deterministic integer per-row byte charge compressed-mode
    /// scans price as memory traffic.
    pub fn avg_tuple_bytes(&self) -> u64 {
        self.avg_tuple_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitpack_roundtrips_all_widths() {
        for bits in [1u32, 3, 7, 12, 31, 33, 63, 64] {
            let vals: Vec<u64> = (0..100u64)
                .map(|i| {
                    if bits == 64 {
                        i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    } else {
                        i.wrapping_mul(2654435761) % (1u64 << bits)
                    }
                })
                .collect();
            let packed = BitPacked::pack(bits, vals.iter().copied());
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(packed.get(i), v, "bits={bits} i={i}");
            }
            assert_eq!(packed.bytes(), (100 * bits as u64).div_ceil(8));
        }
    }

    #[test]
    fn int_encodings_roundtrip_and_shrink() {
        // Long runs → RLE wins.
        let runs: Vec<i64> = (0..50).flat_map(|k| std::iter::repeat_n(k, 40)).collect();
        let enc = EncodedColumn::encode(&ColumnData::Int(runs.clone()));
        assert!(matches!(enc, EncodedColumn::RleInt { .. }), "{enc:?}");
        assert_eq!(enc.decode(), ColumnData::Int(runs));
        assert!(enc.encoded_bytes() < 2000 * 8 / 2);

        // Narrow range, no runs → bit-packing wins.
        let narrow: Vec<i64> = (0..2000).map(|i| 100 + (i * 7919) % 50).collect();
        let enc = EncodedColumn::encode(&ColumnData::Int(narrow.clone()));
        assert!(matches!(enc, EncodedColumn::PackInt { .. }), "{enc:?}");
        assert_eq!(enc.decode(), ColumnData::Int(narrow));
        assert!(enc.encoded_bytes() < 2000 * 8 / 2);

        // Full-range values → plain.
        let wide: Vec<i64> = (0..100)
            .map(|i| (i as i64).wrapping_mul(0x7E37_79B9_7F4A_7C15))
            .collect();
        let enc = EncodedColumn::encode(&ColumnData::Int(wide.clone()));
        assert!(matches!(enc, EncodedColumn::Plain(_)), "{enc:?}");
        assert_eq!(enc.decode(), ColumnData::Int(wide));
    }

    #[test]
    fn dict_is_sorted_and_roundtrips() {
        let vals: Vec<Arc<str>> = (0..300)
            .map(|i| Arc::from(format!("mode-{}", i % 7).as_str()))
            .collect();
        let enc = EncodedColumn::encode(&ColumnData::Str(vals.clone()));
        match &enc {
            EncodedColumn::DictStr { dict, .. } => {
                assert_eq!(dict.len(), 7);
                for w in dict.windows(2) {
                    assert!(w[0] < w[1], "dictionary must be sorted");
                }
            }
            other => panic!("expected DictStr, got {other:?}"),
        }
        assert_eq!(enc.decode(), ColumnData::Str(vals));
    }

    #[test]
    fn high_cardinality_strings_stay_plain() {
        let vals: Vec<Arc<str>> = (0..50)
            .map(|i| Arc::from(format!("unique comment text {i}").as_str()))
            .collect();
        let enc = EncodedColumn::encode(&ColumnData::Str(vals.clone()));
        assert!(matches!(enc, EncodedColumn::Plain(_)), "{enc:?}");
        assert_eq!(enc.encoded_bytes(), plain_bytes(&ColumnData::Str(vals)));
    }

    #[test]
    fn char_and_bool_and_date_roundtrip() {
        let chars: Vec<char> = (0..100).map(|i| ['A', 'N', 'R'][i % 3]).collect();
        let enc = EncodedColumn::encode(&ColumnData::Char(chars.clone()));
        assert!(matches!(enc, EncodedColumn::DictChar { .. }));
        assert_eq!(enc.decode(), ColumnData::Char(chars));

        let bools: Vec<bool> = (0..77).map(|i| i % 3 == 0).collect();
        let enc = EncodedColumn::encode(&ColumnData::Bool(bools.clone()));
        assert!(matches!(enc, EncodedColumn::Bool(_)));
        assert_eq!(enc.decode(), ColumnData::Bool(bools));
        assert_eq!(enc.encoded_bytes(), 10);

        let dates: Vec<i32> = (0..500).map(|i| 8000 + (i * 31) % 2500).collect();
        let enc = EncodedColumn::encode(&ColumnData::Date(dates.clone()));
        assert!(matches!(enc, EncodedColumn::PackDate { .. }));
        assert_eq!(enc.decode(), ColumnData::Date(dates));
    }

    #[test]
    fn empty_columns_encode_plain() {
        for ty in [
            crate::value::ColumnType::Int,
            crate::value::ColumnType::Str,
            crate::value::ColumnType::Date,
            crate::value::ColumnType::Char,
        ] {
            let enc = EncodedColumn::encode(&ColumnData::empty(ty));
            assert_eq!(enc.len(), 0);
            assert!(enc.is_empty());
            assert_eq!(enc.decode(), ColumnData::empty(ty));
        }
    }

    #[test]
    fn chunk_avg_bytes_is_deterministic_and_smaller() {
        use crate::value::{Schema, Value};
        let schema = Schema::new(&[
            ("k", crate::value::ColumnType::Int),
            ("flag", crate::value::ColumnType::Char),
            ("s", crate::value::ColumnType::Str),
        ]);
        let rows: Vec<Vec<Value>> = (0..1000)
            .map(|i| {
                vec![
                    Value::Int(i % 100),
                    Value::Char(if i % 2 == 0 { 'A' } else { 'B' }),
                    Value::str(format!("status-{}", i % 4)),
                ]
            })
            .collect();
        let chunk = DataChunk::from_rows(&schema, &rows);
        let enc = EncodedChunk::encode(&chunk);
        assert_eq!(enc.rows(), 1000);
        assert_eq!(enc.columns().len(), 3);
        // Raw: 8 + 1 + ~11 bytes/row ≈ 20; encoded must be far below.
        assert!(
            enc.avg_tuple_bytes() < 10,
            "avg {} bytes/row",
            enc.avg_tuple_bytes()
        );
        let again = EncodedChunk::encode(&chunk);
        assert_eq!(enc, again, "encoding is deterministic");
    }
}
