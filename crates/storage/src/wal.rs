//! Write-ahead log for the mutating write path (ledger schema v5).
//!
//! The log is a flat byte image of length-prefixed, checksummed
//! records:
//!
//! ```text
//! [payload len: u32 LE][FNV-1a 64 of payload: u64 LE][payload]
//! ```
//!
//! Records are **redo-only**: each DML statement appends its mutation
//! records followed by a [`WalRecord::Commit`] marker, and a
//! transaction is durable exactly when the fsync covering its commit
//! marker returns. Recovery ([`WriteAheadLog::recover`]) replays the
//! committed prefix and discards everything else:
//!
//! * a **torn tail** — a final record cut short mid-header or
//!   mid-payload by a crash — is detected by the length prefix and
//!   trimmed cleanly (it is the expected shape of a crash, not an
//!   error);
//! * a checksum mismatch or undecodable payload *before* the tail is
//!   genuine corruption and surfaces as a typed [`WalError`];
//! * intact records whose commit marker never made it to the log are
//!   counted and dropped.
//!
//! Crash injection is data, not control flow: a
//! [`WalCrash`](eco_simhw::fault::WalCrash) installed via
//! [`WriteAheadLog::set_crash`] deterministically kills the log after N
//! appends (optionally leaving a torn tail) or fails the Nth fsync, so
//! the crash-replay equivalence property can sweep crash points.
//!
//! Pricing: the log itself charges nothing — callers charge
//! [`OpClass::LogRecord`](eco_simhw::trace::OpClass) per append and one
//! `log_ios`/`log_bytes` sequential I/O per fsync using the byte count
//! [`WriteAheadLog::fsync`] returns. That count is the pending tail
//! rounded **up to whole [`PAGE_SIZE`] blocks**, which is exactly why
//! group commit wins: one fsync covering ten commits pays one block
//! where ten per-statement fsyncs pay ten.

use std::sync::Arc;

use eco_simhw::fault::{TornTail, WalCrash};

use crate::page::PAGE_SIZE;
use crate::value::{Tuple, Value};

/// Framing header size: payload length (u32) + payload checksum (u64).
pub const RECORD_HEADER: usize = 12;

/// Sanity ceiling on a single record's payload — anything larger is
/// corruption, not data.
const MAX_RECORD_LEN: u32 = 1 << 24;

// Value tags shared with the page serializer (`crate::page`), so a log
// record's tuple encoding matches the on-page one byte for byte.
const TAG_INT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_DATE: u8 = 3;
const TAG_CHAR: u8 = 4;
const TAG_BOOL: u8 = 5;

// Record tags.
const REC_INSERT: u8 = 1;
const REC_UPDATE: u8 = 2;
const REC_DELETE: u8 = 3;
const REC_COMMIT: u8 = 4;

/// A typed write-path failure: log corruption, a crash point firing,
/// or a recovery replay that does not fit the catalog it lands in.
/// Every variant is a clean error — the write path never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The log hit its installed crash point; no further appends or
    /// fsyncs are possible until recovery.
    Crashed,
    /// The Nth fsync call failed (injected [`WalCrash::FsyncFailure`]).
    /// The unsynced tail is discarded — its transactions were never
    /// acknowledged and recovery will not see them.
    FsyncFailed {
        /// Zero-based index of the failing fsync call.
        fsync: u64,
    },
    /// A record *before* the log tail is undecodable: bad checksum,
    /// absurd length, unknown tag, or truncated payload fields. Torn
    /// final records are **not** corruption — they are trimmed.
    Corrupt {
        /// Byte offset of the offending record's header.
        offset: usize,
    },
    /// A commit marker for a transaction id that does not advance the
    /// committed sequence (ids must be strictly increasing; a repeat is
    /// a double commit).
    DuplicateCommit {
        /// The offending transaction id.
        txn: u64,
    },
    /// A replayed record names a table the catalog does not have.
    NoSuchTable {
        /// The missing table's name.
        table: String,
    },
    /// A replayed update/delete addresses a row past the end of its
    /// table.
    RowOutOfRange {
        /// Target table.
        table: String,
        /// Out-of-range row id.
        row: usize,
        /// The table's actual length.
        len: usize,
    },
    /// A replayed tuple does not match the target table's schema.
    SchemaMismatch {
        /// Target table.
        table: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Crashed => write!(f, "write-ahead log crashed at its injected crash point"),
            WalError::FsyncFailed { fsync } => {
                write!(f, "fsync #{fsync} failed; unsynced log tail discarded")
            }
            WalError::Corrupt { offset } => {
                write!(f, "write-ahead log corrupt at byte offset {offset}")
            }
            WalError::DuplicateCommit { txn } => {
                write!(f, "duplicate commit record for transaction {txn}")
            }
            WalError::NoSuchTable { table } => {
                write!(f, "log record references unknown table {table:?}")
            }
            WalError::RowOutOfRange { table, row, len } => write!(
                f,
                "log record addresses row {row} of table {table:?} (len {len})"
            ),
            WalError::SchemaMismatch { table } => {
                write!(f, "log record tuple does not match schema of table {table:?}")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// One redo record. `Insert`/`Update`/`Delete` describe a single-row
/// mutation against the table state *at apply time*; `Commit` makes
/// every record since the previous commit durable as one transaction.
///
/// Multi-row deletes are logged in **descending row order** so each
/// removal leaves earlier row ids stable — replaying the records in log
/// order reproduces the exact same states.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Append `tuple` to `table`.
    Insert {
        /// Target table name.
        table: String,
        /// The new tuple.
        tuple: Tuple,
    },
    /// Overwrite row `row` of `table` with `tuple`.
    Update {
        /// Target table name.
        table: String,
        /// Row id at apply time.
        row: usize,
        /// The replacement tuple.
        tuple: Tuple,
    },
    /// Remove row `row` of `table`.
    Delete {
        /// Target table name.
        table: String,
        /// Row id at apply time.
        row: usize,
    },
    /// Commit marker: every record since the previous commit belongs to
    /// transaction `txn`. Ids are strictly increasing.
    Commit {
        /// Transaction id.
        txn: u64,
    },
}

impl WalRecord {
    /// Serialize the record payload (framing is the log's job).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Insert { table, tuple } => {
                out.push(REC_INSERT);
                encode_name(&mut out, table);
                encode_tuple(&mut out, tuple);
            }
            WalRecord::Update { table, row, tuple } => {
                out.push(REC_UPDATE);
                encode_name(&mut out, table);
                out.extend_from_slice(&(*row as u64).to_le_bytes());
                encode_tuple(&mut out, tuple);
            }
            WalRecord::Delete { table, row } => {
                out.push(REC_DELETE);
                encode_name(&mut out, table);
                out.extend_from_slice(&(*row as u64).to_le_bytes());
            }
            WalRecord::Commit { txn } => {
                out.push(REC_COMMIT);
                out.extend_from_slice(&txn.to_le_bytes());
            }
        }
        out
    }

    /// Decode one record payload. Any structural problem — unknown
    /// tag, truncated field, invalid UTF-8, trailing garbage — is a
    /// `None`; the caller maps it to [`WalError::Corrupt`] with the
    /// record's log offset.
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut r = Reader { buf: payload, pos: 0 };
        let rec = match r.u8()? {
            REC_INSERT => WalRecord::Insert {
                table: r.name()?,
                tuple: r.tuple()?,
            },
            REC_UPDATE => WalRecord::Update {
                table: r.name()?,
                row: usize::try_from(r.u64()?).ok()?,
                tuple: r.tuple()?,
            },
            REC_DELETE => WalRecord::Delete {
                table: r.name()?,
                row: usize::try_from(r.u64()?).ok()?,
            },
            REC_COMMIT => WalRecord::Commit { txn: r.u64()? },
            _ => return None,
        };
        if r.pos != payload.len() {
            return None; // trailing garbage
        }
        Some(rec)
    }
}

fn encode_name(out: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize, "table name too long");
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn encode_tuple(out: &mut Vec<u8>, tuple: &Tuple) {
    out.extend_from_slice(&(tuple.len() as u16).to_le_bytes());
    for v in tuple {
        match v {
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                let b = s.as_bytes();
                debug_assert!(b.len() <= u16::MAX as usize, "string too long");
                out.push(TAG_STR);
                out.extend_from_slice(&(b.len() as u16).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::Date(d) => {
                out.push(TAG_DATE);
                out.extend_from_slice(&d.to_le_bytes());
            }
            Value::Char(c) => {
                let mut buf = [0u8; 4];
                let enc = c.encode_utf8(&mut buf);
                out.push(TAG_CHAR);
                out.push(enc.len() as u8);
                out.extend_from_slice(enc.as_bytes());
            }
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(u8::from(*b));
            }
        }
    }
}

/// A bounds-checked little-endian reader over untrusted log bytes —
/// the fallible twin of the page serializer's decoder (which may panic
/// because page images are checksummed before decode; log payloads are
/// decoded *as part of* validation, so every read must be checked).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .and_then(|b| b.try_into().ok())
            .map(u16::from_le_bytes)
    }

    fn i32(&mut self) -> Option<i32> {
        self.take(4)
            .and_then(|b| b.try_into().ok())
            .map(i32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .and_then(|b| b.try_into().ok())
            .map(i64::from_le_bytes)
    }

    fn name(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn tuple(&mut self) -> Option<Tuple> {
        let arity = self.u16()? as usize;
        let mut t = Vec::with_capacity(arity);
        for _ in 0..arity {
            let v = match self.u8()? {
                TAG_INT => Value::Int(self.i64()?),
                TAG_STR => {
                    let len = self.u16()? as usize;
                    let bytes = self.take(len)?;
                    Value::Str(Arc::from(std::str::from_utf8(bytes).ok()?))
                }
                TAG_DATE => Value::Date(self.i32()?),
                TAG_CHAR => {
                    let len = self.u8()? as usize;
                    if len == 0 || len > 4 {
                        return None;
                    }
                    let bytes = self.take(len)?;
                    let s = std::str::from_utf8(bytes).ok()?;
                    let mut chars = s.chars();
                    let c = chars.next()?;
                    if chars.next().is_some() {
                        return None;
                    }
                    Value::Char(c)
                }
                TAG_BOOL => Value::Bool(self.u8()? != 0),
                _ => return None,
            };
            t.push(v);
        }
        Some(t)
    }
}

/// FNV-1a 64 — same function the page layer uses for its per-page
/// checksums.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What [`WriteAheadLog::recover`] found in a log image: the committed
/// redo records in log order, plus the forensic counters the crash
/// tests and the recovery example report.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Redo records of committed transactions, in log order.
    pub records: Vec<WalRecord>,
    /// Committed transaction ids, in commit order.
    pub txns: Vec<u64>,
    /// True when a torn final record was trimmed from the image.
    pub torn_tail: bool,
    /// Intact records discarded because their commit marker never made
    /// it into the log.
    pub uncommitted_records: usize,
}

/// The simulated log device: an append-only byte image with an fsync
/// horizon and an optional injected crash point.
///
/// The write protocol is *log → fsync → apply*: mutations are staged
/// as records, made durable by [`WriteAheadLog::fsync`], and only then
/// applied to table state — so a crash at any point leaves the tables
/// reconstructible from the durable image.
#[derive(Debug, Clone, Default)]
pub struct WriteAheadLog {
    /// Every successfully appended byte (the simulated file contents).
    buf: Vec<u8>,
    /// Bytes made durable by fsync. On an injected fsync failure the
    /// tail past this point is discarded.
    durable_len: usize,
    /// Successful appends so far (the crash point counts these).
    records_appended: u64,
    /// Successful fsync calls so far.
    fsyncs: u64,
    /// Installed crash point, if any.
    crash: Option<WalCrash>,
    /// Torn fragment left behind by a `KillAfterRecords` crash.
    torn_fragment: Vec<u8>,
    /// Set once a crash point fires; all further operations return
    /// [`WalError::Crashed`].
    crashed: bool,
}

impl WriteAheadLog {
    /// A fresh, empty log with no crash point.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or clear) the injected crash point. Crash points are
    /// consulted on every append and fsync; installing one does not by
    /// itself crash anything.
    pub fn set_crash(&mut self, crash: Option<WalCrash>) {
        self.crash = crash;
    }

    /// True once a crash point has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Successful appends so far.
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Successful fsync calls so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Bytes appended but not yet fsynced.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.durable_len
    }

    /// Append one record. Fails with [`WalError::Crashed`] when the
    /// installed [`WalCrash::KillAfterRecords`] point fires — the
    /// record is *not* appended, but per the crash's
    /// [`TornTail`] mode a fragment of it may still reach the image,
    /// which is exactly the torn tail recovery must trim.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), WalError> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        if let Some(WalCrash::KillAfterRecords { records, torn }) = self.crash {
            if self.records_appended >= records {
                self.crashed = true;
                self.torn_fragment = torn_fragment(rec, torn);
                return Err(WalError::Crashed);
            }
        }
        let payload = rec.encode();
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.records_appended += 1;
        Ok(())
    }

    /// Make every appended byte durable. Returns the number of bytes
    /// this sync charges — the pending tail rounded **up to whole
    /// [`PAGE_SIZE`] blocks** (zero when nothing is pending, in which
    /// case the call is free and does not count as an fsync).
    ///
    /// An injected [`WalCrash::FsyncFailure`] fails the Nth *counted*
    /// fsync: the unsynced tail is discarded (those transactions were
    /// never acknowledged) and the log is crashed.
    pub fn fsync(&mut self) -> Result<u64, WalError> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        if self.buf.len() == self.durable_len {
            return Ok(0);
        }
        if let Some(WalCrash::FsyncFailure { fsync }) = self.crash {
            if self.fsyncs >= fsync {
                self.crashed = true;
                self.buf.truncate(self.durable_len);
                return Err(WalError::FsyncFailed { fsync: self.fsyncs });
            }
        }
        let pending = (self.buf.len() - self.durable_len) as u64;
        self.durable_len = self.buf.len();
        self.fsyncs += 1;
        Ok(pending.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64)
    }

    /// The byte image a restart would read back. After a clean run this
    /// is every appended byte; after a `KillAfterRecords` crash it also
    /// carries the torn fragment of the record whose append died;
    /// after an fsync failure the unsynced tail is already gone.
    pub fn image(&self) -> Vec<u8> {
        let mut img = self.buf.clone();
        img.extend_from_slice(&self.torn_fragment);
        img
    }

    /// Scan a log image and return the committed prefix (see the
    /// module docs for the torn-tail / corruption distinction).
    pub fn recover(image: &[u8]) -> Result<Recovery, WalError> {
        let mut pos = 0usize;
        let mut staged: Vec<WalRecord> = Vec::new();
        let mut out = Recovery {
            records: Vec::new(),
            txns: Vec::new(),
            torn_tail: false,
            uncommitted_records: 0,
        };
        let mut last_txn: Option<u64> = None;
        while pos < image.len() {
            if image.len() - pos < RECORD_HEADER {
                out.torn_tail = true; // mid-header tear
                break;
            }
            let len_bytes: [u8; 4] = match image[pos..pos + 4].try_into() {
                Ok(b) => b,
                Err(_) => return Err(WalError::Corrupt { offset: pos }),
            };
            let len = u32::from_le_bytes(len_bytes);
            if len == 0 || len > MAX_RECORD_LEN {
                return Err(WalError::Corrupt { offset: pos });
            }
            let sum_bytes: [u8; 8] = match image[pos + 4..pos + 12].try_into() {
                Ok(b) => b,
                Err(_) => return Err(WalError::Corrupt { offset: pos }),
            };
            let sum = u64::from_le_bytes(sum_bytes);
            let body_start = pos + RECORD_HEADER;
            let body_end = match body_start.checked_add(len as usize) {
                Some(e) => e,
                None => return Err(WalError::Corrupt { offset: pos }),
            };
            if body_end > image.len() {
                out.torn_tail = true; // mid-payload tear
                break;
            }
            let payload = &image[body_start..body_end];
            if fnv1a(payload) != sum {
                return Err(WalError::Corrupt { offset: pos });
            }
            let rec = match WalRecord::decode(payload) {
                Some(r) => r,
                None => return Err(WalError::Corrupt { offset: pos }),
            };
            match rec {
                WalRecord::Commit { txn } => {
                    if last_txn.is_some_and(|t| txn <= t) {
                        return Err(WalError::DuplicateCommit { txn });
                    }
                    last_txn = Some(txn);
                    out.records.append(&mut staged);
                    out.txns.push(txn);
                }
                other => staged.push(other),
            }
            pos = body_end;
        }
        out.uncommitted_records = staged.len();
        Ok(out)
    }
}

/// The bytes a torn append leaves in the image: nothing, a partial
/// header, or a full header with a truncated payload.
fn torn_fragment(rec: &WalRecord, torn: TornTail) -> Vec<u8> {
    match torn {
        TornTail::None => Vec::new(),
        TornTail::MidHeader => {
            let payload = rec.encode();
            let mut frag = Vec::with_capacity(6);
            frag.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frag.extend_from_slice(&fnv1a(&payload).to_le_bytes()[..2]);
            frag
        }
        TornTail::MidPayload => {
            let payload = rec.encode();
            let mut frag = Vec::with_capacity(RECORD_HEADER + payload.len() / 2);
            frag.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frag.extend_from_slice(&fnv1a(&payload).to_le_bytes());
            frag.extend_from_slice(&payload[..payload.len() / 2]);
            frag
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(table: &str, k: i64) -> WalRecord {
        WalRecord::Insert {
            table: table.to_string(),
            tuple: vec![
                Value::Int(k),
                Value::str(format!("row-{k}")),
                Value::Date(9000 + k as i32),
                Value::Char('x'),
                Value::Bool(k % 2 == 0),
            ],
        }
    }

    #[test]
    fn records_roundtrip_through_encode_decode() {
        let recs = vec![
            ins("orders", 7),
            WalRecord::Update {
                table: "orders".into(),
                row: 3,
                tuple: vec![Value::Int(9), Value::str("updated")],
            },
            WalRecord::Delete {
                table: "orders".into(),
                row: 12,
            },
            WalRecord::Commit { txn: 42 },
        ];
        for r in &recs {
            let enc = r.encode();
            assert_eq!(WalRecord::decode(&enc).as_ref(), Some(r));
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage_and_bad_tags() {
        let mut enc = WalRecord::Commit { txn: 1 }.encode();
        enc.push(0xff);
        assert_eq!(WalRecord::decode(&enc), None, "trailing garbage");
        assert_eq!(WalRecord::decode(&[0x77]), None, "unknown tag");
        assert_eq!(WalRecord::decode(&[]), None, "empty payload");
        let truncated = &ins("t", 1).encode()[..5];
        assert_eq!(WalRecord::decode(truncated), None, "truncated fields");
    }

    #[test]
    fn empty_log_recovers_to_nothing() {
        let rec = WriteAheadLog::recover(&[]).expect("empty log is valid");
        assert!(rec.records.is_empty());
        assert!(rec.txns.is_empty());
        assert!(!rec.torn_tail);
        assert_eq!(rec.uncommitted_records, 0);
    }

    #[test]
    fn committed_prefix_survives_uncommitted_tail() {
        let mut wal = WriteAheadLog::new();
        wal.append(&ins("t", 1)).expect("append");
        wal.append(&ins("t", 2)).expect("append");
        wal.append(&WalRecord::Commit { txn: 1 }).expect("append");
        wal.append(&ins("t", 3)).expect("append"); // never committed
        wal.fsync().expect("fsync");
        let rec = WriteAheadLog::recover(&wal.image()).expect("recover");
        assert_eq!(rec.records, vec![ins("t", 1), ins("t", 2)]);
        assert_eq!(rec.txns, vec![1]);
        assert_eq!(rec.uncommitted_records, 1);
        assert!(!rec.torn_tail);
    }

    #[test]
    fn fsync_rounds_up_to_whole_blocks_and_is_free_when_clean() {
        let mut wal = WriteAheadLog::new();
        assert_eq!(wal.fsync().expect("empty fsync"), 0);
        assert_eq!(wal.fsyncs(), 0, "a no-op sync is not counted");
        wal.append(&ins("t", 1)).expect("append");
        let bytes = wal.fsync().expect("fsync");
        assert_eq!(bytes, PAGE_SIZE as u64, "one small record = one block");
        assert_eq!(wal.fsyncs(), 1);
        assert_eq!(wal.pending_bytes(), 0);
        // Many records under one sync still round to blocks of the
        // *batched* tail — the group-commit economics in one assert.
        for k in 0..100 {
            wal.append(&ins("t", k)).expect("append");
        }
        let batched = wal.fsync().expect("fsync");
        assert_eq!(batched % PAGE_SIZE as u64, 0);
        assert!(
            batched < 100 * PAGE_SIZE as u64,
            "batched sync must beat 100 per-record syncs"
        );
    }

    #[test]
    fn kill_after_records_crashes_append_deterministically() {
        let mut wal = WriteAheadLog::new();
        wal.set_crash(Some(WalCrash::KillAfterRecords {
            records: 2,
            torn: TornTail::None,
        }));
        wal.append(&ins("t", 1)).expect("append 1");
        wal.append(&ins("t", 2)).expect("append 2");
        assert_eq!(wal.append(&ins("t", 3)), Err(WalError::Crashed));
        assert!(wal.crashed());
        assert_eq!(wal.fsync(), Err(WalError::Crashed));
        let rec = WriteAheadLog::recover(&wal.image()).expect("recover");
        assert!(!rec.torn_tail, "TornTail::None leaves a clean image");
        assert_eq!(rec.uncommitted_records, 2);
        assert!(rec.records.is_empty(), "nothing committed");
    }

    #[test]
    fn torn_tail_mid_header_is_trimmed_cleanly() {
        let mut wal = WriteAheadLog::new();
        wal.append(&ins("t", 1)).expect("append");
        wal.append(&WalRecord::Commit { txn: 1 }).expect("append");
        wal.set_crash(Some(WalCrash::KillAfterRecords {
            records: 2,
            torn: TornTail::MidHeader,
        }));
        assert_eq!(wal.append(&ins("t", 2)), Err(WalError::Crashed));
        let img = wal.image();
        let rec = WriteAheadLog::recover(&img).expect("torn tail is not corruption");
        assert!(rec.torn_tail);
        assert_eq!(rec.records, vec![ins("t", 1)]);
        assert_eq!(rec.txns, vec![1]);
    }

    #[test]
    fn torn_tail_mid_payload_is_trimmed_cleanly() {
        let mut wal = WriteAheadLog::new();
        wal.append(&ins("t", 1)).expect("append");
        wal.append(&WalRecord::Commit { txn: 1 }).expect("append");
        wal.set_crash(Some(WalCrash::KillAfterRecords {
            records: 2,
            torn: TornTail::MidPayload,
        }));
        assert_eq!(wal.append(&ins("t", 2)), Err(WalError::Crashed));
        let img = wal.image();
        assert!(img.len() > RECORD_HEADER, "fragment carries a full header");
        let rec = WriteAheadLog::recover(&img).expect("torn tail is not corruption");
        assert!(rec.torn_tail);
        assert_eq!(rec.records, vec![ins("t", 1)]);
    }

    #[test]
    fn mid_stream_corruption_is_a_typed_error() {
        let mut wal = WriteAheadLog::new();
        wal.append(&ins("t", 1)).expect("append");
        wal.append(&WalRecord::Commit { txn: 1 }).expect("append");
        let mut img = wal.image();
        img[RECORD_HEADER + 2] ^= 0x40; // flip a byte inside record 1's payload
        let err = WriteAheadLog::recover(&img).expect_err("corrupt");
        assert_eq!(err, WalError::Corrupt { offset: 0 });
        assert!(err.to_string().contains("corrupt"));
    }

    #[test]
    fn duplicate_commit_record_is_a_typed_error() {
        let mut wal = WriteAheadLog::new();
        wal.append(&ins("t", 1)).expect("append");
        wal.append(&WalRecord::Commit { txn: 5 }).expect("append");
        wal.append(&ins("t", 2)).expect("append");
        wal.append(&WalRecord::Commit { txn: 5 }).expect("append");
        let err = WriteAheadLog::recover(&wal.image()).expect_err("duplicate commit");
        assert_eq!(err, WalError::DuplicateCommit { txn: 5 });
    }

    #[test]
    fn fsync_failure_discards_the_unsynced_tail() {
        let mut wal = WriteAheadLog::new();
        wal.append(&ins("t", 1)).expect("append");
        wal.append(&WalRecord::Commit { txn: 1 }).expect("append");
        wal.fsync().expect("first fsync");
        wal.set_crash(Some(WalCrash::FsyncFailure { fsync: 1 }));
        wal.append(&ins("t", 2)).expect("append");
        wal.append(&WalRecord::Commit { txn: 2 }).expect("append");
        assert_eq!(wal.fsync(), Err(WalError::FsyncFailed { fsync: 1 }));
        assert!(wal.crashed());
        let rec = WriteAheadLog::recover(&wal.image()).expect("recover");
        assert_eq!(rec.txns, vec![1], "only the fsynced transaction survives");
        assert_eq!(rec.records, vec![ins("t", 1)]);
    }

    #[test]
    fn clean_image_roundtrips_many_transactions() {
        let mut wal = WriteAheadLog::new();
        let mut expect = Vec::new();
        for txn in 1..=50u64 {
            let r = ins("lineitem", txn as i64);
            wal.append(&r).expect("append");
            expect.push(r);
            if txn % 2 == 0 {
                let d = WalRecord::Delete {
                    table: "lineitem".into(),
                    row: txn as usize,
                };
                wal.append(&d).expect("append");
                expect.push(d);
            }
            wal.append(&WalRecord::Commit { txn }).expect("append");
        }
        wal.fsync().expect("fsync");
        let rec = WriteAheadLog::recover(&wal.image()).expect("recover");
        assert_eq!(rec.records, expect);
        assert_eq!(rec.txns, (1..=50).collect::<Vec<_>>());
        assert_eq!(rec.uncommitted_records, 0);
    }
}
