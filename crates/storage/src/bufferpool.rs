//! LRU buffer pool in front of the simulated disk.
//!
//! Every miss charges simulated I/O to an internal ledger the executor
//! drains into its work trace: consecutive page numbers within a table
//! are charged as sequential transfer, anything else as a random access
//! (paper §3.5 shows the two differ enormously in both time and energy).
//!
//! `flush()` models a reboot (the paper's cold runs); an optional
//! *warm re-read interval* models the residual disk traffic the paper
//! observed on warm runs ("the hard disk drive had significant activity
//! even though the database was warm").

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use eco_simhw::fault::FaultPlan;
use eco_simhw::trace::DiskWork;
use parking_lot::Mutex;

use crate::page::PAGE_SIZE;
use crate::value::Tuple;

/// Pages per on-disk extent: sequential streaming is only possible
/// within an extent; each extent boundary costs a repositioning.
pub const EXTENT_PAGES: u32 = 16;

/// Identifies a page: table id + page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Owning table.
    pub table: u32,
    /// Page number within the table.
    pub page: u32,
}

/// Pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that went to disk.
    pub misses: u64,
    /// Pages currently resident.
    pub resident: usize,
    /// Pages evicted so far.
    pub evictions: u64,
}

struct Frame {
    tuples: Arc<Vec<Tuple>>,
    stamp: u64,
}

/// The default scan stream: all accesses through [`BufferPool::get`]
/// share one sequential-position tracker per table, preserving the
/// original single-cursor semantics.
pub const DEFAULT_STREAM: u64 = 0;

struct Inner {
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    by_stamp: BTreeMap<u64, PageId>,
    clock: u64,
    io: DiskWork,
    stats: PoolStats,
    /// Last page read per (table, scan stream) — sequential-transfer
    /// detection is per stream so concurrent scan cursors over the same
    /// table don't destroy each other's streaming runs.
    last_page: HashMap<(u32, u64), u32>,
    warm_reread_every: Option<u64>,
    hit_counter: u64,
    /// Deterministic fault schedule consulted by checked miss-path
    /// loads ([`BufferPool::get_checked`]). Defaults to the never-fault
    /// plan, under which every checked read behaves exactly like its
    /// unchecked twin.
    fault_plan: FaultPlan,
}

/// The buffer pool. Interior mutability keeps the read API `&self`.
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Pool holding up to `capacity` pages. Capacity 0 disables caching
    /// entirely (every access is a miss).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                capacity,
                frames: HashMap::new(),
                by_stamp: BTreeMap::new(),
                clock: 0,
                io: DiskWork::none(),
                stats: PoolStats::default(),
                last_page: HashMap::new(),
                warm_reread_every: None,
                hit_counter: 0,
                fault_plan: FaultPlan::none(),
            }),
        }
    }

    /// Install a deterministic fault schedule. Checked reads consult it
    /// on every miss; the default is [`FaultPlan::none`] (never faults).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.inner.lock().fault_plan = plan;
    }

    /// The currently installed fault schedule.
    pub fn fault_plan(&self) -> FaultPlan {
        self.inner.lock().fault_plan
    }

    /// Model residual warm-run disk traffic: every `every`-th hit also
    /// charges one random page read (OS cache pressure, background
    /// checkpointing — the paper's warm runs were not I/O-silent).
    /// `None` disables.
    pub fn set_warm_reread_every(&self, every: Option<u64>) {
        let mut g = self.inner.lock();
        assert!(every != Some(0), "warm re-read interval must be > 0");
        g.warm_reread_every = every;
    }

    /// Fetch a page, loading (and charging I/O to the pool's internal
    /// ledger) on miss via `load`. Uses the [`DEFAULT_STREAM`] scan
    /// cursor; the executor drains the charges with [`Self::take_io`].
    pub fn get<F>(&self, id: PageId, load: F) -> Arc<Vec<Tuple>>
    where
        F: FnOnce() -> Arc<Vec<Tuple>>,
    {
        let (tuples, io) = self.get_inner(id, DEFAULT_STREAM, load);
        if !io.is_empty() {
            self.inner.lock().io.merge(&io);
        }
        tuples
    }

    /// Fetch a page on a private scan stream, returning the I/O charged
    /// by *this* access instead of accumulating it in the pool ledger.
    ///
    /// Parallel scan cursors use this so (a) sequential-transfer
    /// detection tracks each cursor independently — interleaved workers
    /// would otherwise turn every in-order read into a seek — and
    /// (b) each worker attributes exactly its own I/O to its own energy
    /// ledger, keeping the merged parallel ledger identical to serial
    /// execution.
    pub fn get_stream<F>(&self, id: PageId, stream: u64, load: F) -> (Arc<Vec<Tuple>>, DiskWork)
    where
        F: FnOnce() -> Arc<Vec<Tuple>>,
    {
        self.get_inner(id, stream, load)
    }

    /// Checked twin of [`Self::get`]: the miss-path `load` may fail and
    /// may charge extra retry I/O / backoff idle time (it receives the
    /// access's [`DiskWork`] ledger and a backoff-nanosecond
    /// accumulator, plus the pool's installed [`FaultPlan`]). Base I/O
    /// classification is identical to the unchecked path; on success
    /// the charges land in the pool ledger and the access's backoff is
    /// returned. On failure nothing is cached and the charges are
    /// discarded with the failed attempt.
    pub fn get_checked<F, E>(&self, id: PageId, load: F) -> Result<(Arc<Vec<Tuple>>, u64), E>
    where
        F: FnOnce(FaultPlan, &mut DiskWork, &mut u64) -> Result<Arc<Vec<Tuple>>, E>,
    {
        let (tuples, io, backoff_ns) = self.get_inner_checked(id, Some(DEFAULT_STREAM), load)?;
        if !io.is_empty() {
            self.inner.lock().io.merge(&io);
        }
        Ok((tuples, backoff_ns))
    }

    /// Checked twin of [`Self::get_stream`]: like [`Self::get_checked`]
    /// but on a private scan stream, returning this access's I/O
    /// directly instead of accumulating it in the pool ledger.
    pub fn get_stream_checked<F, E>(
        &self,
        id: PageId,
        stream: u64,
        load: F,
    ) -> Result<(Arc<Vec<Tuple>>, DiskWork, u64), E>
    where
        F: FnOnce(FaultPlan, &mut DiskWork, &mut u64) -> Result<Arc<Vec<Tuple>>, E>,
    {
        self.get_inner_checked(id, Some(stream), load)
    }

    /// Checked fetch for an index probe (ledger schema v4). A miss
    /// charges one [`DiskWork::index_ios`] plus [`PAGE_SIZE`]
    /// [`DiskWork::index_bytes`] — priced exactly like a random access
    /// but ledgered separately — and never reads or updates the
    /// sequential-position tracker, so interleaved probes cannot break
    /// a concurrent scan's streaming run and an index-free run's ledger
    /// stays bit-identical. Returns this access's I/O and backoff
    /// directly (probes attribute charges to their own operator, like
    /// private scan streams); fault handling matches
    /// [`Self::get_checked`].
    pub fn get_index_checked<F, E>(
        &self,
        id: PageId,
        load: F,
    ) -> Result<(Arc<Vec<Tuple>>, DiskWork, u64), E>
    where
        F: FnOnce(FaultPlan, &mut DiskWork, &mut u64) -> Result<Arc<Vec<Tuple>>, E>,
    {
        self.get_inner_checked(id, None, load)
    }

    fn get_inner<F>(&self, id: PageId, stream: u64, load: F) -> (Arc<Vec<Tuple>>, DiskWork)
    where
        F: FnOnce() -> Arc<Vec<Tuple>>,
    {
        let r: Result<_, std::convert::Infallible> =
            self.get_inner_checked(id, Some(stream), |_, _, _| Ok(load()));
        match r {
            Ok((tuples, io, _)) => (tuples, io),
            Err(e) => match e {},
        }
    }

    /// `stream`: `Some(s)` classifies the miss against scan stream `s`'s
    /// sequential position; `None` is an index probe (v4 classes, no
    /// position tracking).
    fn get_inner_checked<F, E>(
        &self,
        id: PageId,
        stream: Option<u64>,
        load: F,
    ) -> Result<(Arc<Vec<Tuple>>, DiskWork, u64), E>
    where
        F: FnOnce(FaultPlan, &mut DiskWork, &mut u64) -> Result<Arc<Vec<Tuple>>, E>,
    {
        let mut io = DiskWork::none();
        let mut backoff_ns = 0u64;
        let mut g = self.inner.lock();
        g.clock += 1;
        let stamp = g.clock;

        if let Some(frame) = g.frames.get_mut(&id) {
            let old = frame.stamp;
            frame.stamp = stamp;
            let tuples = Arc::clone(&frame.tuples);
            g.by_stamp.remove(&old);
            g.by_stamp.insert(stamp, id);
            g.stats.hits += 1;
            g.hit_counter += 1;
            if let Some(every) = g.warm_reread_every {
                if g.hit_counter.is_multiple_of(every) {
                    io.random_ios += 1;
                    io.random_bytes += PAGE_SIZE as u64;
                }
            }
            return Ok((tuples, io, 0));
        }

        // Miss: charge I/O. Consecutive page numbers within a table
        // stream sequentially *within an extent*; crossing an extent
        // boundary (and any non-consecutive jump) pays a repositioning
        // — DBMS files interleave table extents on disk, which is why
        // the paper's cold runs are seek-dominated (≈3× slower, §3.5)
        // rather than running at the drive's streaming rate.
        match stream {
            Some(stream) => {
                let consecutive = g
                    .last_page
                    .get(&(id.table, stream))
                    .map(|&p| p + 1 == id.page)
                    == Some(true);
                let extent_start = id.page.is_multiple_of(EXTENT_PAGES);
                if consecutive && !extent_start {
                    io.sequential_bytes += PAGE_SIZE as u64;
                } else {
                    io.random_ios += 1;
                    io.random_bytes += PAGE_SIZE as u64;
                }
                g.last_page.insert((id.table, stream), id.page);
            }
            // Index probe: every miss repositions the head (v4 class),
            // and the scan position trackers are left untouched.
            None => {
                io.index_ios += 1;
                io.index_bytes += PAGE_SIZE as u64;
            }
        }
        g.stats.misses += 1;

        let plan = g.fault_plan;
        let tuples = load(plan, &mut io, &mut backoff_ns)?;
        if g.capacity > 0 {
            while g.frames.len() >= g.capacity {
                // frames non-empty implies a stamp entry exists.
                let Some((&old_stamp, &victim)) = g.by_stamp.iter().next() else {
                    break;
                };
                g.by_stamp.remove(&old_stamp);
                g.frames.remove(&victim);
                g.stats.evictions += 1;
            }
            g.frames.insert(
                id,
                Frame {
                    tuples: Arc::clone(&tuples),
                    stamp,
                },
            );
            g.by_stamp.insert(stamp, id);
        }
        g.stats.resident = g.frames.len();
        Ok((tuples, io, backoff_ns))
    }

    /// Drain the accumulated I/O ledger (the executor moves it into the
    /// current trace phase).
    pub fn take_io(&self) -> DiskWork {
        let mut g = self.inner.lock();
        std::mem::take(&mut g.io)
    }

    /// Drop the sequential-position entry of a finished scan stream.
    /// Stream ids are allocated fresh per parallel scan partition, so
    /// without this the `last_page` map would grow by one entry per
    /// morsel for the life of the pool.
    pub fn end_stream(&self, table: u32, stream: u64) {
        let mut g = self.inner.lock();
        g.last_page.remove(&(table, stream));
    }

    /// Drop every cached page and reset scan-position tracking — a
    /// reboot, for the paper's cold runs. The warm-reread hit counter
    /// resets too, so two runs that both start from a flush charge
    /// their periodic re-reads at the same points (bit-identical
    /// ledgers for serve-vs-replay comparisons).
    pub fn flush(&self) {
        let mut g = self.inner.lock();
        g.frames.clear();
        g.by_stamp.clear();
        g.last_page.clear();
        g.hit_counter = 0;
        g.stats.resident = 0;
    }

    /// Drop every cached page of one table (or index — indexes share
    /// the id space) and its scan positions. This is the invalidation
    /// the mutating write path needs: a mutated [`crate::disk_table::DiskTable`]
    /// is rebuilt under the *same* table id, so any pages cached before
    /// the mutation would otherwise serve stale tuples. Deliberate
    /// invalidations are not counted as LRU evictions.
    pub fn evict_table(&self, table: u32) {
        let mut g = self.inner.lock();
        let victims: Vec<PageId> = g
            .frames
            .keys()
            .filter(|id| id.table == table)
            .copied()
            .collect();
        for id in victims {
            if let Some(frame) = g.frames.remove(&id) {
                g.by_stamp.remove(&frame.stamp);
            }
        }
        g.last_page.retain(|&(t, _), _| t != table);
        g.stats.resident = g.frames.len();
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        let mut g = self.inner.lock();
        g.stats.resident = g.frames.len();
        g.stats
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity())
            .field("stats", &s)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn page_data(n: i64) -> Arc<Vec<Tuple>> {
        Arc::new(vec![vec![Value::Int(n)]])
    }

    fn id(table: u32, page: u32) -> PageId {
        PageId { table, page }
    }

    #[test]
    fn hit_after_miss() {
        let pool = BufferPool::new(8);
        let a = pool.get(id(1, 0), || page_data(0));
        let b = pool.get(id(1, 0), || panic!("should hit"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn sequential_vs_random_charging() {
        let pool = BufferPool::new(8);
        pool.get(id(1, 0), || page_data(0)); // first access: random
        pool.get(id(1, 1), || page_data(1)); // sequential
        pool.get(id(1, 2), || page_data(2)); // sequential
        pool.get(id(1, 7), || page_data(7)); // jump: random
        let io = pool.take_io();
        assert_eq!(io.random_ios, 2);
        assert_eq!(io.sequential_bytes, 2 * PAGE_SIZE as u64);
        assert_eq!(io.random_bytes, 2 * PAGE_SIZE as u64);
        // Ledger drained.
        assert!(pool.take_io().is_empty());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let pool = BufferPool::new(2);
        pool.get(id(1, 0), || page_data(0));
        pool.get(id(1, 1), || page_data(1));
        pool.get(id(1, 0), || panic!("0 resident")); // touch 0: 1 is now LRU
        pool.get(id(1, 2), || page_data(2)); // evicts 1
        pool.get(id(1, 0), || panic!("0 must survive"));
        let mut evicted_reloaded = false;
        pool.get(id(1, 1), || {
            evicted_reloaded = true;
            page_data(1)
        });
        assert!(evicted_reloaded, "page 1 should have been evicted");
        assert!(pool.stats().evictions >= 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let pool = BufferPool::new(4);
        for p in 0..100 {
            pool.get(id(1, p), || page_data(p as i64));
            assert!(pool.stats().resident <= 4);
        }
    }

    #[test]
    fn flush_forces_cold_reads() {
        let pool = BufferPool::new(8);
        pool.get(id(1, 0), || page_data(0));
        pool.take_io();
        pool.flush();
        let mut reloaded = false;
        pool.get(id(1, 0), || {
            reloaded = true;
            page_data(0)
        });
        assert!(reloaded);
        let io = pool.take_io();
        // After flush the scan position is also reset ⇒ random charge.
        assert_eq!(io.random_ios, 1);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let pool = BufferPool::new(0);
        for _ in 0..3 {
            let mut loaded = false;
            pool.get(id(1, 0), || {
                loaded = true;
                page_data(0)
            });
            assert!(loaded);
        }
        assert_eq!(pool.stats().misses, 3);
    }

    #[test]
    fn independent_streams_keep_sequential_runs() {
        // Two interleaved in-order cursors over disjoint extents: with
        // per-stream tracking both keep streaming; through the shared
        // default stream every read would be a seek.
        let pool = BufferPool::new(64);
        let mut io = DiskWork::none();
        for p in 0..4u32 {
            let (_, a) = pool.get_stream(id(1, p), 1, || page_data(p as i64));
            io.merge(&a);
            let (_, b) = pool.get_stream(id(1, 16 + p), 2, || page_data(p as i64));
            io.merge(&b);
        }
        // One repositioning per extent start, streaming elsewhere.
        assert_eq!(io.random_ios, 2, "{io:?}");
        assert_eq!(io.sequential_bytes, 6 * PAGE_SIZE as u64);
        // Stream charges are returned, not accumulated in the pool.
        assert!(pool.take_io().is_empty());
    }

    #[test]
    fn checked_read_matches_unchecked_when_fault_free() {
        let a = BufferPool::new(8);
        let b = BufferPool::new(8);
        for p in [0u32, 1, 2, 7, 16] {
            a.get(id(1, p), || page_data(p as i64));
            let r: Result<_, ()> = b.get_checked(id(1, p), |plan, _io, _backoff| {
                assert!(plan.is_none(), "no plan installed");
                Ok(page_data(p as i64))
            });
            let (_, backoff) = r.expect("fault-free checked read succeeds");
            assert_eq!(backoff, 0);
        }
        assert_eq!(a.take_io(), b.take_io(), "identical miss classification");
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn checked_read_error_leaves_nothing_cached() {
        let pool = BufferPool::new(8);
        let r: Result<(Arc<Vec<Tuple>>, u64), &str> =
            pool.get_checked(id(1, 0), |_, io, backoff| {
                io.retry_ios += 3;
                io.retry_bytes += 3 * PAGE_SIZE as u64;
                *backoff += 123;
                Err("permanent")
            });
        assert_eq!(r.unwrap_err(), "permanent");
        assert_eq!(pool.stats().resident, 0);
        // Charges of the failed attempt are discarded with it.
        assert!(pool.take_io().is_empty());
        // The page is still loadable afterwards.
        let r: Result<_, ()> = pool.get_checked(id(1, 0), |_, _, _| Ok(page_data(0)));
        assert!(r.is_ok());
    }

    #[test]
    fn checked_read_retry_charges_reach_the_ledger() {
        let pool = BufferPool::new(8);
        let r: Result<_, ()> = pool.get_checked(id(1, 0), |_, io, backoff| {
            io.retry_ios += 2;
            io.retry_bytes += 2 * PAGE_SIZE as u64;
            *backoff += 150_000;
            Ok(page_data(0))
        });
        let (_, backoff) = r.expect("transient read recovers");
        assert_eq!(backoff, 150_000);
        let io = pool.take_io();
        assert_eq!(io.retry_ios, 2);
        assert_eq!(io.retry_bytes, 2 * PAGE_SIZE as u64);
        // Base classification is unchanged: first read is still random.
        assert_eq!(io.random_ios, 1);
    }

    #[test]
    fn fault_plan_is_installed_and_visible_to_loads() {
        use eco_simhw::fault::FaultPlan;
        let pool = BufferPool::new(8);
        assert!(pool.fault_plan().is_none());
        pool.set_fault_plan(FaultPlan::new(7, 250_000));
        assert_eq!(pool.fault_plan().rate_ppm(), 250_000);
        let r: Result<_, ()> = pool.get_checked(id(1, 0), |plan, _, _| {
            assert_eq!(plan.seed(), 7);
            Ok(page_data(0))
        });
        assert!(r.is_ok());
    }

    #[test]
    fn index_probe_charges_v4_and_preserves_scan_streaming() {
        let pool = BufferPool::new(64);
        // A scan cursor is mid-run...
        pool.get(id(1, 1), || page_data(1));
        pool.get(id(1, 2), || page_data(2));
        pool.take_io();
        // ...an index probe lands between its reads...
        let r: Result<_, ()> = pool.get_index_checked(id(1, 9), |_, _, _| Ok(page_data(9)));
        let (_, io, backoff) = r.expect("probe succeeds");
        assert_eq!(backoff, 0);
        assert_eq!(io.index_ios, 1);
        assert_eq!(io.index_bytes, PAGE_SIZE as u64);
        assert_eq!(io.random_ios, 0, "probe never charges the v1 class");
        assert_eq!(io.sequential_bytes, 0);
        // Probe charges are returned, not accumulated in the pool.
        assert!(pool.take_io().is_empty());
        // ...and the scan keeps streaming as if the probe never happened.
        pool.get(id(1, 3), || page_data(3));
        let io = pool.take_io();
        assert_eq!(io.sequential_bytes, PAGE_SIZE as u64);
        assert_eq!(io.random_ios, 0);
        // A probe hit on a cached page charges nothing.
        let r: Result<_, ()> = pool.get_index_checked(id(1, 9), |_, _, _| panic!("hit"));
        let (_, io, _) = r.expect("hit");
        assert!(io.index_ios == 0 && io.index_bytes == 0);
    }

    #[test]
    fn warm_reread_charges_periodically() {
        let pool = BufferPool::new(8);
        pool.set_warm_reread_every(Some(10));
        pool.get(id(1, 0), || page_data(0));
        pool.take_io();
        for _ in 0..30 {
            pool.get(id(1, 0), || panic!("hit expected"));
        }
        let io = pool.take_io();
        assert_eq!(io.random_ios, 3, "3 re-reads over 30 hits at every=10");
    }
}
