//! # eco-storage — the storage engine under ecoDB
//!
//! Two storage profiles mirror the paper's two systems under test:
//!
//! * a **memory engine** ([`heap::HeapTable`]) standing in for MySQL's
//!   `MEMORY` storage engine (paper §3.3/§4 use it "to stress the CPU");
//! * a **disk engine** ([`disk_table::DiskTable`] + [`bufferpool::BufferPool`])
//!   standing in for the commercial DBMS: tuples live in 8 KB slotted
//!   pages behind an LRU buffer pool, and every miss charges simulated
//!   disk I/O — which is how the warm/cold experiment of paper §3.5
//!   arises naturally.
//!
//! The engine stores real tuples and returns real bytes; only the
//! *pricing* of I/O is simulated (see `eco-simhw`).
//!
//! # Compressed columnar mirrors (ledger schema v3)
//!
//! Both engines expose lazily-built columnar mirrors of their tuples
//! ([`heap::HeapTable::columns`], [`disk_table::DiskTable::columnar`]),
//! and — since schema v3 — *encoded* mirrors next to them
//! ([`heap::HeapTable::encoded`], [`ColumnarExtents::extent_encoded`]):
//! dictionary encoding for strings/chars, run-length and
//! frame-of-reference bit-packing for ints/dates, one bitmap bit per
//! bool, auto-selected per column from build-time stats (see
//! [`encode`]). The encoded mirrors never replace the raw data — under
//! the default raw pricing mode they are never even built, and every
//! pre-v3 ledger figure stays bit-identical. Under the opt-in
//! compressed pricing mode (`PricingMode::Compressed` in `eco-simhw`),
//! scans price [`encode::EncodedChunk::avg_tuple_bytes`] — the encoded
//! byte count per row — as memory traffic, and kernels that read
//! through a dictionary charge the v3 `DictLookup` op class, so
//! compression ratio becomes measurable joules.
//!
//! # B-tree secondary indexes (ledger schema v4)
//!
//! Disk tables can carry paged B-tree secondary indexes
//! ([`btree::BTreeIndex`], registered via [`Catalog::create_index`]):
//! fixed-fanout interior/leaf pages stored through the same
//! [`page::Page`]/[`bufferpool::BufferPool`] machinery as table pages,
//! bulk-loaded (I/O-free) from the sorted column. Probes route every
//! page miss — index nodes *and* the base-row fetches they drive —
//! through the v4 **index random I/O** classes, priced exactly like
//! random I/O but ledgered separately, so index-free runs stay
//! bit-identical while index plans make the paper's fig5
//! random-vs-sequential energy split measurable from real query plans.
//! See the [`btree`] module docs for the pricing model, and the
//! repository's `docs/ARCHITECTURE.md` for how v4 fits the versioned
//! pricing-schema history.
//!
//! # Write-ahead logging (ledger schema v5)
//!
//! Mutations go through a redo-only [`wal::WriteAheadLog`]:
//! length-prefixed, checksummed records with commit markers, torn-tail
//! detection, and deterministic crash injection. Every redo record
//! charges the v5 `LogRecord` op class, and each fsync charges the
//! pending tail rounded up to whole 8 KB blocks as **log sequential
//! I/O** (`log_ios`/`log_bytes`, ledgered apart from table I/O) — the
//! rounding is what makes group commit an energy optimization rather
//! than just a latency one. [`Catalog::apply_wal_record`] is the
//! single mutation entry point shared by live execution and recovery
//! replay, so crash recovery provably lands on the committed-prefix
//! state. Read-only workloads log nothing and stay bit-identical to
//! every pre-v5 ledger.

pub mod btree;
pub mod bufferpool;
pub mod catalog;
pub mod column;
pub mod disk_table;
pub mod encode;
pub mod heap;
pub mod loader;
pub mod page;
pub mod value;
pub mod wal;

pub use btree::{BTreeIndex, IndexProbe, KeyBound};
pub use bufferpool::{BufferPool, PageId};
pub use catalog::{Catalog, IndexEntry, IndexError, StoredTable, TableData};
pub use column::{ColumnChunk, ColumnData, DataChunk};
pub use disk_table::{ColumnarExtents, IoError};
pub use encode::{BitPacked, EncodedChunk, EncodedColumn};
pub use heap::HeapTable;
pub use loader::{load_tbl, load_tpch, parse_tbl, EngineKind, LoadError};
pub use value::{tuple_width, Column, ColumnType, Schema, Tuple, Value};
pub use wal::{Recovery, WalError, WalRecord, WriteAheadLog};
