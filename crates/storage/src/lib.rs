//! # eco-storage — the storage engine under ecoDB
//!
//! Two storage profiles mirror the paper's two systems under test:
//!
//! * a **memory engine** ([`heap::HeapTable`]) standing in for MySQL's
//!   `MEMORY` storage engine (paper §3.3/§4 use it "to stress the CPU");
//! * a **disk engine** ([`disk_table::DiskTable`] + [`bufferpool::BufferPool`])
//!   standing in for the commercial DBMS: tuples live in 8 KB slotted
//!   pages behind an LRU buffer pool, and every miss charges simulated
//!   disk I/O — which is how the warm/cold experiment of paper §3.5
//!   arises naturally.
//!
//! The engine stores real tuples and returns real bytes; only the
//! *pricing* of I/O is simulated (see `eco-simhw`).

pub mod bufferpool;
pub mod catalog;
pub mod column;
pub mod disk_table;
pub mod heap;
pub mod loader;
pub mod page;
pub mod value;

pub use bufferpool::{BufferPool, PageId};
pub use catalog::{Catalog, StoredTable, TableData};
pub use column::{ColumnChunk, ColumnData, DataChunk};
pub use disk_table::{ColumnarExtents, IoError};
pub use heap::HeapTable;
pub use loader::{load_tbl, load_tpch, parse_tbl, EngineKind, LoadError};
pub use value::{tuple_width, Column, ColumnType, Schema, Tuple, Value};
