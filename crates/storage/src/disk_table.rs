//! Paged table behind the buffer pool — the "commercial disk-based
//! DBMS" profile.
//!
//! Tuples are packed into 8 KB slotted pages at load time; reads go
//! through the shared [`BufferPool`], which charges simulated I/O on
//! misses. Pages decode to tuple vectors once per residency and are
//! shared via `Arc` (the decode cost is charged by the executor as
//! tuple-fetch work, same as the memory engine — the engines differ in
//! I/O, not in tuple-access accounting).

use std::sync::{Arc, OnceLock};

use eco_simhw::fault::{FaultPlan, PageFault, BACKOFF_BASE_NS, MAX_READ_RETRIES};
use eco_simhw::trace::DiskWork;

use crate::bufferpool::{BufferPool, PageId, EXTENT_PAGES};
use crate::column::DataChunk;
use crate::encode::EncodedChunk;
use crate::page::{Page, PAGE_SIZE};
use crate::value::{Schema, Tuple};

/// A page read that could not be satisfied: every attempt within the
/// bounded retry budget ([`MAX_READ_RETRIES`] re-reads) failed.
///
/// Checked reads ([`DiskTable::read_page_checked`]) surface this as a
/// typed error instead of panicking, so a fault fails only the query
/// (and, one level up, only the owning session) that hit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoError {
    /// The installed [`FaultPlan`] marks this page permanently
    /// unreadable (an unrecoverable sector).
    Permanent {
        /// Owning table.
        table: u32,
        /// Failing page number.
        page: u32,
    },
    /// The page image failed checksum verification on every attempt —
    /// genuine on-disk corruption rather than a transient read fault.
    Corrupt {
        /// Owning table.
        table: u32,
        /// Failing page number.
        page: u32,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Permanent { table, page } => write!(
                f,
                "permanent read fault on table {table} page {page} \
                 (retry budget of {MAX_READ_RETRIES} exhausted)"
            ),
            IoError::Corrupt { table, page } => write!(
                f,
                "checksum mismatch on table {table} page {page} \
                 (page image is corrupt; {MAX_READ_RETRIES} re-reads did not help)"
            ),
        }
    }
}

impl std::error::Error for IoError {}

/// The columnar mirror of a [`DiskTable`]: one [`DataChunk`] per disk
/// *extent* (the I/O scheduling granule, [`EXTENT_PAGES`] pages), plus
/// the page → row mapping needed to translate page-range scan bounds
/// into chunk row windows.
///
/// The mirror is decoded once, lazily, straight from the table's pages
/// — never through the buffer pool, so building it charges no I/O. The
/// columnar scan still drives every covered page through the pool for
/// its ledger charges (misses, hits, warm re-reads), exactly like the
/// row scan; only the tuple *data* comes from the mirror.
#[derive(Debug)]
pub struct ColumnarExtents {
    /// Cumulative tuple offsets per page: page `p` holds rows
    /// `[page_rows[p], page_rows[p + 1])`. Length `num_pages + 1`.
    page_rows: Vec<usize>,
    /// One chunk per extent, in extent order.
    extents: Vec<Arc<DataChunk>>,
    /// Lazily-built encoded mirror of each extent (see
    /// [`ColumnarExtents::extent_encoded`]): row indices align exactly
    /// with the raw extent chunks, so selection vectors transfer.
    encoded: Vec<OnceLock<Arc<EncodedChunk>>>,
    /// Per-row priced byte charge for compressed-mode scans, averaged
    /// over the whole table (see [`ColumnarExtents::avg_encoded_tuple_bytes`]).
    avg_encoded_bytes: OnceLock<u64>,
}

impl ColumnarExtents {
    /// Number of extents.
    pub fn num_extents(&self) -> usize {
        self.extents.len()
    }

    /// The chunk holding extent `e`'s rows.
    pub fn extent_chunk(&self, e: usize) -> &Arc<DataChunk> {
        &self.extents[e]
    }

    /// The *encoded* mirror of extent `e` (dictionary / RLE /
    /// bit-packed per column; see [`crate::encode`]), built lazily —
    /// raw-pricing scans never build it. Extent-relative row indices
    /// align with [`ColumnarExtents::extent_chunk`].
    pub fn extent_encoded(&self, e: usize) -> &Arc<EncodedChunk> {
        self.encoded[e].get_or_init(|| Arc::new(EncodedChunk::encode(&self.extents[e])))
    }

    /// The deterministic integer per-row byte charge compressed-mode
    /// scans price over this table: the mean of the per-extent encoded
    /// footprints, computed once over all extents so every scan
    /// geometry (serial, morsel-parallel, any batch size) charges
    /// identically per row.
    pub fn avg_encoded_tuple_bytes(&self) -> u64 {
        *self.avg_encoded_bytes.get_or_init(|| {
            let rows: usize = self.extents.iter().map(|e| e.len()).sum();
            if rows == 0 {
                return 1;
            }
            let total: u64 = (0..self.extents.len())
                .map(|e| self.extent_encoded(e).encoded_bytes())
                .sum();
            (total / rows as u64).max(1) + 2
        })
    }

    /// First table-global row of extent `e`.
    pub fn extent_row_start(&self, e: usize) -> usize {
        self.page_rows[e * EXTENT_PAGES as usize]
    }

    /// Table-global row range `[start, end)` covered by pages
    /// `[page_start, page_end)`.
    pub fn page_row_range(&self, page_start: usize, page_end: usize) -> (usize, usize) {
        (self.page_rows[page_start], self.page_rows[page_end])
    }
}

/// A read-only paged table.
pub struct DiskTable {
    table_id: u32,
    schema: Schema,
    pages: Vec<Page>,
    /// Per-page FNV-1a checksums computed at load time and verified on
    /// every checked buffer-pool miss (see
    /// [`DiskTable::read_page_checked`]).
    checksums: Vec<u64>,
    num_tuples: usize,
    pool: Arc<BufferPool>,
    columnar: OnceLock<ColumnarExtents>,
    /// Cumulative tuple offsets per page (lazily built; length
    /// `num_pages + 1`) for row-id → page translation on the index
    /// fetch path.
    row_offsets: OnceLock<Vec<usize>>,
}

impl DiskTable {
    /// Pack `tuples` into pages and register with the pool.
    /// Panics if any tuple fails the schema or exceeds a page.
    pub fn load(table_id: u32, schema: Schema, tuples: &[Tuple], pool: Arc<BufferPool>) -> Self {
        let mut pages = Vec::new();
        let mut current = Page::new();
        for t in tuples {
            assert!(
                schema.check(t),
                "tuple does not match schema {:?}",
                schema.names()
            );
            if !current.insert(t) {
                assert!(
                    !current.is_empty(),
                    "tuple wider than a {PAGE_SIZE}-byte page"
                );
                pages.push(std::mem::take(&mut current));
                assert!(current.insert(t), "tuple wider than an empty page");
            }
        }
        if !current.is_empty() {
            pages.push(current);
        }
        let checksums = pages.iter().map(Page::checksum).collect();
        Self {
            table_id,
            schema,
            pages,
            checksums,
            num_tuples: tuples.len(),
            pool,
            columnar: OnceLock::new(),
            row_offsets: OnceLock::new(),
        }
    }

    /// The lazily-built columnar mirror (see [`ColumnarExtents`]).
    pub fn columnar(&self) -> &ColumnarExtents {
        self.columnar.get_or_init(|| {
            let mut page_rows = Vec::with_capacity(self.pages.len() + 1);
            page_rows.push(0usize);
            let mut total = 0usize;
            for p in &self.pages {
                total += p.len();
                page_rows.push(total);
            }
            let extent = EXTENT_PAGES as usize;
            let mut extents = Vec::with_capacity(self.pages.len().div_ceil(extent));
            for chunk_pages in self.pages.chunks(extent) {
                let mut rows = Vec::new();
                for p in chunk_pages {
                    rows.extend(p.all_tuples());
                }
                extents.push(Arc::new(DataChunk::from_rows(&self.schema, &rows)));
            }
            let encoded = (0..extents.len()).map(|_| OnceLock::new()).collect();
            ColumnarExtents {
                page_rows,
                extents,
                encoded,
                avg_encoded_bytes: OnceLock::new(),
            }
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Table id (used in page ids).
    pub fn table_id(&self) -> u32 {
        self.table_id
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.num_tuples
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.num_tuples == 0
    }

    /// Total size on disk, bytes (full pages — I/O is page-granular).
    pub fn bytes_on_disk(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    /// Average tuple width, bytes.
    pub fn avg_tuple_bytes(&self) -> u64 {
        let used: usize = self.pages.iter().map(Page::used_bytes).sum();
        used.checked_div(self.num_tuples).unwrap_or(0) as u64
    }

    /// Decode column `col` of every tuple in row order, straight from
    /// the pages — never through the buffer pool, so an index build
    /// charges no I/O (the same rule as the columnar mirror; see
    /// [`ColumnarExtents`]).
    pub fn column_with_row_ids(&self, col: usize) -> Vec<(crate::value::Value, usize)> {
        let mut out = Vec::with_capacity(self.num_tuples);
        let mut row = 0usize;
        for page in &self.pages {
            for t in page.all_tuples() {
                out.push((t[col].clone(), row));
                row += 1;
            }
        }
        out
    }

    /// Every tuple in row order, straight from the pages — never
    /// through the buffer pool, so no I/O is charged. This is the
    /// mutating write path's rebuild source: a logical single-row
    /// mutation of a paged table is modelled as collect → mutate →
    /// reload under the same table id (after evicting the stale pages;
    /// see [`BufferPool::evict_table`]).
    pub fn all_tuples(&self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.num_tuples);
        for page in &self.pages {
            out.extend(page.all_tuples());
        }
        out
    }

    /// Read one page through the buffer pool (charging I/O on a miss).
    pub fn read_page(&self, page_no: usize) -> Arc<Vec<Tuple>> {
        assert!(page_no < self.pages.len(), "page {page_no} out of range");
        let id = PageId {
            table: self.table_id,
            page: page_no as u32,
        };
        self.pool
            .get(id, || Arc::new(self.pages[page_no].all_tuples()))
    }

    /// Read one page on a private scan stream (see
    /// [`BufferPool::get_stream`]), returning the I/O this access
    /// charged so the caller can attribute it to its own ledger.
    pub fn read_page_stream(
        &self,
        page_no: usize,
        stream: u64,
    ) -> (Arc<Vec<Tuple>>, eco_simhw::trace::DiskWork) {
        assert!(page_no < self.pages.len(), "page {page_no} out of range");
        let id = PageId {
            table: self.table_id,
            page: page_no as u32,
        };
        self.pool
            .get_stream(id, stream, || Arc::new(self.pages[page_no].all_tuples()))
    }

    /// Checked twin of [`Self::read_page`]: verifies the page's
    /// load-time checksum on every buffer-pool miss, consults the
    /// pool's installed [`FaultPlan`], and retries failed attempts with
    /// bounded exponential backoff. Charges land in the pool ledger
    /// exactly like the unchecked path; the returned value is this
    /// access's backoff idle time in nanoseconds (zero unless a fault
    /// fired). Fault-free checked reads are charge-identical to
    /// unchecked reads.
    pub fn read_page_checked(&self, page_no: usize) -> Result<(Arc<Vec<Tuple>>, u64), IoError> {
        assert!(page_no < self.pages.len(), "page {page_no} out of range");
        let id = PageId {
            table: self.table_id,
            page: page_no as u32,
        };
        self.pool.get_checked(id, |plan, io, backoff_ns| {
            self.load_page_verified(page_no, plan, io, backoff_ns)
        })
    }

    /// Locate row `row` as `(page_no, slot)` — the translation an index
    /// probe's row-id payload needs before it can fetch the base tuple.
    /// Panics on an out-of-range row.
    pub fn row_location(&self, row: usize) -> (usize, usize) {
        assert!(row < self.num_tuples, "row {row} out of range");
        let offsets = self.row_offsets.get_or_init(|| {
            let mut v = Vec::with_capacity(self.pages.len() + 1);
            v.push(0usize);
            let mut total = 0usize;
            for p in &self.pages {
                total += p.len();
                v.push(total);
            }
            v
        });
        // partition_point: first page whose end offset exceeds `row`.
        let page = offsets.partition_point(|&end| end <= row) - 1;
        (page, row - offsets[page])
    }

    /// Checked read of one page on the **index charge path** (ledger
    /// schema v4): a miss is charged as index random I/O
    /// ([`BufferPool::get_index_checked`]) and never disturbs scan
    /// stream positions — base-row fetches driven by an index probe are
    /// random accesses wherever they land, and keeping them out of the
    /// v1 classes keeps scan plans' sequential/random split pure.
    /// Returns this access's I/O and backoff directly.
    pub fn read_page_index_checked(
        &self,
        page_no: usize,
    ) -> Result<(Arc<Vec<Tuple>>, DiskWork, u64), IoError> {
        assert!(page_no < self.pages.len(), "page {page_no} out of range");
        let id = PageId {
            table: self.table_id,
            page: page_no as u32,
        };
        self.pool.get_index_checked(id, |plan, io, backoff_ns| {
            self.load_page_verified(page_no, plan, io, backoff_ns)
        })
    }

    /// Checked twin of [`Self::read_page_stream`]: like
    /// [`Self::read_page_checked`] but on a private scan stream,
    /// returning this access's I/O directly.
    pub fn read_page_stream_checked(
        &self,
        page_no: usize,
        stream: u64,
    ) -> Result<(Arc<Vec<Tuple>>, DiskWork, u64), IoError> {
        assert!(page_no < self.pages.len(), "page {page_no} out of range");
        let id = PageId {
            table: self.table_id,
            page: page_no as u32,
        };
        self.pool
            .get_stream_checked(id, stream, |plan, io, backoff_ns| {
                self.load_page_verified(page_no, plan, io, backoff_ns)
            })
    }

    /// The miss-path attempt loop: read the page image, verify its
    /// checksum, and retry on failure (injected or genuine) up to
    /// [`MAX_READ_RETRIES`] times with exponential backoff.
    ///
    /// Accounting: the *initial* read is already charged by the buffer
    /// pool's miss classification (sequential or random). Each failed
    /// attempt charges one re-read to the v2 **retry random I/O** class
    /// (`retry_ios`/`retry_bytes`) and `BACKOFF_BASE_NS << attempt` of
    /// **backoff halt residency** — so a transient fault with `f`
    /// failures charges exactly `f` retry I/Os and
    /// [`eco_simhw::fault::backoff_ns_for`]`(f)` nanoseconds, and a
    /// fault-free read charges exactly nothing extra.
    fn load_page_verified(
        &self,
        page_no: usize,
        plan: FaultPlan,
        io: &mut DiskWork,
        backoff_ns: &mut u64,
    ) -> Result<Arc<Vec<Tuple>>, IoError> {
        let fault = plan.fault_for(self.table_id, page_no as u64);
        let mut injected_failures = match fault {
            Some(PageFault::Transient { failures }) => failures,
            Some(PageFault::Permanent) => u32::MAX,
            Some(PageFault::Stall { ns }) => {
                *backoff_ns += ns;
                0
            }
            None => 0,
        };
        for attempt in 0..=MAX_READ_RETRIES {
            let injected = injected_failures > 0;
            if injected {
                injected_failures -= 1;
            }
            let page = &self.pages[page_no];
            if !injected && page.checksum() == self.checksums[page_no] {
                return Ok(Arc::new(page.all_tuples()));
            }
            if attempt < MAX_READ_RETRIES {
                // Re-read: reposition + burst the block again, after an
                // exponential backoff sleep (halt-priced idle time).
                io.retry_ios += 1;
                io.retry_bytes += PAGE_SIZE as u64;
                *backoff_ns += BACKOFF_BASE_NS << attempt;
            }
        }
        Err(match fault {
            Some(PageFault::Permanent) => IoError::Permanent {
                table: self.table_id,
                page: page_no as u32,
            },
            _ => IoError::Corrupt {
                table: self.table_id,
                page: page_no as u32,
            },
        })
    }

    /// Corrupt one byte of a page's raw image *without* refreshing its
    /// stored checksum — a test hook: the next checked read of the page
    /// must detect the mismatch, exhaust its retries and report
    /// [`IoError::Corrupt`].
    pub fn corrupt_page(&mut self, page_no: usize, offset: usize) {
        self.pages[page_no].flip_byte(offset);
    }

    /// The buffer pool this table reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Release a finished scan stream's position tracking (see
    /// [`BufferPool::end_stream`]).
    pub fn end_stream(&self, stream: u64) {
        self.pool.end_stream(self.table_id, stream);
    }
}

impl std::fmt::Debug for DiskTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskTable")
            .field("table_id", &self.table_id)
            .field("pages", &self.pages.len())
            .field("tuples", &self.num_tuples)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColumnType, Value};

    fn schema() -> Schema {
        Schema::new(&[("k", ColumnType::Int), ("s", ColumnType::Str)])
    }

    fn tuples(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| vec![Value::Int(i as i64), Value::str(format!("value-{i:06}"))])
            .collect()
    }

    #[test]
    fn load_packs_multiple_pages() {
        let pool = Arc::new(BufferPool::new(64));
        let data = tuples(2000);
        let t = DiskTable::load(1, schema(), &data, pool);
        assert!(t.num_pages() > 1, "2000 tuples should span pages");
        assert_eq!(t.len(), 2000);
        // Read everything back in order.
        let mut seen = 0usize;
        for p in 0..t.num_pages() {
            for tup in t.read_page(p).iter() {
                assert_eq!(tup[0], Value::Int(seen as i64));
                seen += 1;
            }
        }
        assert_eq!(seen, 2000);
    }

    #[test]
    fn full_scan_charges_mostly_sequential_io() {
        let pool = Arc::new(BufferPool::new(256));
        let t = DiskTable::load(1, schema(), &tuples(2000), Arc::clone(&pool));
        pool.take_io();
        for p in 0..t.num_pages() {
            t.read_page(p);
        }
        let io = pool.take_io();
        // One repositioning per extent, streaming within extents.
        let extents = t
            .num_pages()
            .div_ceil(crate::bufferpool::EXTENT_PAGES as usize);
        assert_eq!(io.random_ios as usize, extents);
        assert_eq!(
            io.sequential_bytes as usize,
            (t.num_pages() - extents) * PAGE_SIZE
        );
    }

    #[test]
    fn warm_scan_is_io_free() {
        let pool = Arc::new(BufferPool::new(256));
        let t = DiskTable::load(1, schema(), &tuples(2000), Arc::clone(&pool));
        for p in 0..t.num_pages() {
            t.read_page(p);
        }
        pool.take_io();
        for p in 0..t.num_pages() {
            t.read_page(p);
        }
        assert!(pool.take_io().is_empty(), "warm scan must not hit disk");
    }

    #[test]
    fn small_pool_thrashes_on_rescan() {
        // A pool smaller than the table forces a full re-read on the
        // second scan (the classic sequential-flooding pattern).
        let pool = Arc::new(BufferPool::new(2));
        let t = DiskTable::load(1, schema(), &tuples(2000), Arc::clone(&pool));
        for p in 0..t.num_pages() {
            t.read_page(p);
        }
        pool.take_io();
        for p in 0..t.num_pages() {
            t.read_page(p);
        }
        let io = pool.take_io();
        assert!(
            io.total_bytes() as usize >= (t.num_pages() - 1) * PAGE_SIZE,
            "rescan should re-read nearly everything"
        );
    }

    #[test]
    fn columnar_mirror_matches_pages() {
        let pool = Arc::new(BufferPool::new(256));
        let data = tuples(2000);
        let t = DiskTable::load(1, schema(), &data, pool);
        let cols = t.columnar();
        let extent = crate::bufferpool::EXTENT_PAGES as usize;
        assert_eq!(cols.num_extents(), t.num_pages().div_ceil(extent));
        // Every extent chunk reproduces the exact page tuples.
        let mut global = 0usize;
        for e in 0..cols.num_extents() {
            let chunk = cols.extent_chunk(e);
            assert_eq!(cols.extent_row_start(e), global);
            for i in 0..chunk.len() {
                assert_eq!(chunk.row(i), data[global + i], "extent {e} row {i}");
            }
            global += chunk.len();
        }
        assert_eq!(global, 2000);
        // Page row ranges are consistent with the pages themselves.
        let (s, end) = cols.page_row_range(0, t.num_pages());
        assert_eq!((s, end), (0, 2000));
    }

    #[test]
    fn encoded_extents_roundtrip_and_price_fewer_bytes() {
        let pool = Arc::new(BufferPool::new(256));
        let data = tuples(2000);
        let t = DiskTable::load(1, schema(), &data, pool);
        let cols = t.columnar();
        for e in 0..cols.num_extents() {
            let enc = cols.extent_encoded(e);
            let raw = cols.extent_chunk(e);
            assert_eq!(enc.rows(), raw.len());
            for (i, col) in enc.columns().iter().enumerate() {
                assert_eq!(col.decode(), raw.column(i).data, "extent {e} column {i}");
            }
        }
        // `k` is a sorted int (packs small) and `s` has a shared prefix
        // but unique payloads (stays plain); the average must not exceed
        // the raw width and must be stable across calls.
        let avg = cols.avg_encoded_tuple_bytes();
        assert!(
            avg <= t.avg_tuple_bytes(),
            "{avg} > {}",
            t.avg_tuple_bytes()
        );
        assert_eq!(avg, cols.avg_encoded_tuple_bytes());
    }

    #[test]
    fn empty_table() {
        let pool = Arc::new(BufferPool::new(4));
        let t = DiskTable::load(1, schema(), &[], pool);
        assert!(t.is_empty());
        assert_eq!(t.num_pages(), 0);
        assert_eq!(t.avg_tuple_bytes(), 0);
    }

    #[test]
    fn checked_scan_is_charge_identical_to_unchecked_when_fault_free() {
        let data = tuples(2000);
        let pa = Arc::new(BufferPool::new(256));
        let pb = Arc::new(BufferPool::new(256));
        let a = DiskTable::load(1, schema(), &data, Arc::clone(&pa));
        let b = DiskTable::load(1, schema(), &data, Arc::clone(&pb));
        pa.take_io();
        pb.take_io();
        for p in 0..a.num_pages() {
            let ta = a.read_page(p);
            let (tb, backoff) = b.read_page_checked(p).expect("fault-free read");
            assert_eq!(*ta, *tb);
            assert_eq!(backoff, 0, "no fault ⇒ no backoff");
        }
        let (ia, ib) = (pa.take_io(), pb.take_io());
        assert_eq!(ia, ib, "bit-identical I/O ledgers");
        assert_eq!(ib.retry_ios, 0);
        assert_eq!(ib.retry_bytes, 0);
    }

    /// With a saturated plan every page faults; pick one of each kind.
    fn fault_of_kind(
        plan: &eco_simhw::fault::FaultPlan,
        table: u32,
        pages: u64,
        want_transient: Option<bool>,
    ) -> Option<(u64, PageFault)> {
        plan.faults_in_table(table, pages)
            .into_iter()
            .find(|(_, f)| {
                matches!(
                    (want_transient, f),
                    (Some(true), PageFault::Transient { .. })
                        | (Some(false), PageFault::Permanent)
                        | (None, PageFault::Stall { .. })
                )
            })
    }

    #[test]
    fn transient_fault_retries_with_exact_ledger_charges() {
        let pool = Arc::new(BufferPool::new(256));
        let t = DiskTable::load(1, schema(), &tuples(2000), Arc::clone(&pool));
        pool.take_io();
        let plan = FaultPlan::new(42, 1_000_000);
        pool.set_fault_plan(plan);
        let (page, fault) = fault_of_kind(&plan, 1, t.num_pages() as u64, Some(true))
            .expect("saturated plan has a transient fault");
        let PageFault::Transient { failures } = fault else {
            unreachable!()
        };
        let (data, backoff) = t
            .read_page_checked(page as usize)
            .expect("transient fault recovers within the retry budget");
        assert!(!data.is_empty(), "recovered read returns real tuples");
        assert_eq!(backoff, eco_simhw::fault::backoff_ns_for(failures));
        let io = pool.take_io();
        assert_eq!(io.retry_ios, failures as u64, "one re-read per failure");
        assert_eq!(io.retry_bytes, failures as u64 * PAGE_SIZE as u64);
        // Re-reading the now-cached page is a hit: no further charges.
        let (_, backoff2) = t.read_page_checked(page as usize).expect("hit");
        assert_eq!(backoff2, 0);
        assert!(pool.take_io().is_empty());
    }

    #[test]
    fn permanent_fault_reports_a_typed_error() {
        let pool = Arc::new(BufferPool::new(256));
        let t = DiskTable::load(1, schema(), &tuples(20_000), Arc::clone(&pool));
        pool.take_io();
        let plan = FaultPlan::new(42, 1_000_000);
        pool.set_fault_plan(plan);
        let (page, _) = fault_of_kind(&plan, 1, t.num_pages() as u64, Some(false))
            .expect("saturated plan has a permanent fault");
        let err = t.read_page_checked(page as usize).unwrap_err();
        assert_eq!(
            err,
            IoError::Permanent {
                table: 1,
                page: page as u32
            }
        );
        assert!(err.to_string().contains("permanent read fault"));
        // The failed attempt's charges are discarded with it.
        assert!(pool.take_io().is_empty());
    }

    #[test]
    fn stall_fault_charges_backoff_only() {
        let pool = Arc::new(BufferPool::new(256));
        let t = DiskTable::load(1, schema(), &tuples(20_000), Arc::clone(&pool));
        pool.take_io();
        let plan = FaultPlan::new(42, 1_000_000);
        pool.set_fault_plan(plan);
        let (page, fault) = fault_of_kind(&plan, 1, t.num_pages() as u64, None)
            .expect("saturated plan has a stall fault");
        let PageFault::Stall { ns } = fault else {
            unreachable!()
        };
        let (_, backoff) = t.read_page_checked(page as usize).expect("stall succeeds");
        assert_eq!(backoff, ns);
        let io = pool.take_io();
        assert_eq!(io.retry_ios, 0, "a stall is not a retry");
    }

    #[test]
    fn corrupted_page_is_detected_and_reported() {
        let pool = Arc::new(BufferPool::new(256));
        let mut t = DiskTable::load(1, schema(), &tuples(2000), Arc::clone(&pool));
        t.corrupt_page(3, 100);
        pool.take_io();
        let err = t.read_page_checked(3).unwrap_err();
        assert_eq!(err, IoError::Corrupt { table: 1, page: 3 });
        assert!(err.to_string().contains("checksum mismatch"));
        // Neighbouring pages are unaffected.
        assert!(t.read_page_checked(2).is_ok());
        assert!(t.read_page_checked(4).is_ok());
        // The unchecked path does not verify — it still decodes
        // whatever the (possibly garbled) page image yields, so
        // corruption detection is the checked path's job.
    }

    #[test]
    fn stream_checked_reads_return_io_directly() {
        let pool = Arc::new(BufferPool::new(256));
        let t = DiskTable::load(1, schema(), &tuples(2000), Arc::clone(&pool));
        pool.take_io();
        let plan = FaultPlan::new(42, 1_000_000);
        pool.set_fault_plan(plan);
        let (page, fault) = fault_of_kind(&plan, 1, t.num_pages() as u64, Some(true))
            .expect("saturated plan has a transient fault");
        let PageFault::Transient { failures } = fault else {
            unreachable!()
        };
        let (_, io, backoff) = t
            .read_page_stream_checked(page as usize, 77)
            .expect("recovers");
        assert_eq!(io.retry_ios, failures as u64);
        assert_eq!(backoff, eco_simhw::fault::backoff_ns_for(failures));
        // Stream charges are returned, not pooled.
        assert!(pool.take_io().is_empty());
        t.end_stream(77);
    }
}
