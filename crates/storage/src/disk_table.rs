//! Paged table behind the buffer pool — the "commercial disk-based
//! DBMS" profile.
//!
//! Tuples are packed into 8 KB slotted pages at load time; reads go
//! through the shared [`BufferPool`], which charges simulated I/O on
//! misses. Pages decode to tuple vectors once per residency and are
//! shared via `Arc` (the decode cost is charged by the executor as
//! tuple-fetch work, same as the memory engine — the engines differ in
//! I/O, not in tuple-access accounting).

use std::sync::{Arc, OnceLock};

use crate::bufferpool::{BufferPool, PageId, EXTENT_PAGES};
use crate::column::DataChunk;
use crate::page::{Page, PAGE_SIZE};
use crate::value::{Schema, Tuple};

/// The columnar mirror of a [`DiskTable`]: one [`DataChunk`] per disk
/// *extent* (the I/O scheduling granule, [`EXTENT_PAGES`] pages), plus
/// the page → row mapping needed to translate page-range scan bounds
/// into chunk row windows.
///
/// The mirror is decoded once, lazily, straight from the table's pages
/// — never through the buffer pool, so building it charges no I/O. The
/// columnar scan still drives every covered page through the pool for
/// its ledger charges (misses, hits, warm re-reads), exactly like the
/// row scan; only the tuple *data* comes from the mirror.
#[derive(Debug)]
pub struct ColumnarExtents {
    /// Cumulative tuple offsets per page: page `p` holds rows
    /// `[page_rows[p], page_rows[p + 1])`. Length `num_pages + 1`.
    page_rows: Vec<usize>,
    /// One chunk per extent, in extent order.
    extents: Vec<Arc<DataChunk>>,
}

impl ColumnarExtents {
    /// Number of extents.
    pub fn num_extents(&self) -> usize {
        self.extents.len()
    }

    /// The chunk holding extent `e`'s rows.
    pub fn extent_chunk(&self, e: usize) -> &Arc<DataChunk> {
        &self.extents[e]
    }

    /// First table-global row of extent `e`.
    pub fn extent_row_start(&self, e: usize) -> usize {
        self.page_rows[e * EXTENT_PAGES as usize]
    }

    /// Table-global row range `[start, end)` covered by pages
    /// `[page_start, page_end)`.
    pub fn page_row_range(&self, page_start: usize, page_end: usize) -> (usize, usize) {
        (self.page_rows[page_start], self.page_rows[page_end])
    }
}

/// A read-only paged table.
pub struct DiskTable {
    table_id: u32,
    schema: Schema,
    pages: Vec<Page>,
    num_tuples: usize,
    pool: Arc<BufferPool>,
    columnar: OnceLock<ColumnarExtents>,
}

impl DiskTable {
    /// Pack `tuples` into pages and register with the pool.
    /// Panics if any tuple fails the schema or exceeds a page.
    pub fn load(table_id: u32, schema: Schema, tuples: &[Tuple], pool: Arc<BufferPool>) -> Self {
        let mut pages = Vec::new();
        let mut current = Page::new();
        for t in tuples {
            assert!(
                schema.check(t),
                "tuple does not match schema {:?}",
                schema.names()
            );
            if !current.insert(t) {
                assert!(
                    !current.is_empty(),
                    "tuple wider than a {PAGE_SIZE}-byte page"
                );
                pages.push(std::mem::take(&mut current));
                assert!(current.insert(t), "tuple wider than an empty page");
            }
        }
        if !current.is_empty() {
            pages.push(current);
        }
        Self {
            table_id,
            schema,
            pages,
            num_tuples: tuples.len(),
            pool,
            columnar: OnceLock::new(),
        }
    }

    /// The lazily-built columnar mirror (see [`ColumnarExtents`]).
    pub fn columnar(&self) -> &ColumnarExtents {
        self.columnar.get_or_init(|| {
            let mut page_rows = Vec::with_capacity(self.pages.len() + 1);
            page_rows.push(0usize);
            let mut total = 0usize;
            for p in &self.pages {
                total += p.len();
                page_rows.push(total);
            }
            let extent = EXTENT_PAGES as usize;
            let mut extents = Vec::with_capacity(self.pages.len().div_ceil(extent));
            for chunk_pages in self.pages.chunks(extent) {
                let mut rows = Vec::new();
                for p in chunk_pages {
                    rows.extend(p.all_tuples());
                }
                extents.push(Arc::new(DataChunk::from_rows(&self.schema, &rows)));
            }
            ColumnarExtents { page_rows, extents }
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Table id (used in page ids).
    pub fn table_id(&self) -> u32 {
        self.table_id
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.num_tuples
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.num_tuples == 0
    }

    /// Total size on disk, bytes (full pages — I/O is page-granular).
    pub fn bytes_on_disk(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    /// Average tuple width, bytes.
    pub fn avg_tuple_bytes(&self) -> u64 {
        let used: usize = self.pages.iter().map(Page::used_bytes).sum();
        used.checked_div(self.num_tuples).unwrap_or(0) as u64
    }

    /// Read one page through the buffer pool (charging I/O on a miss).
    pub fn read_page(&self, page_no: usize) -> Arc<Vec<Tuple>> {
        assert!(page_no < self.pages.len(), "page {page_no} out of range");
        let id = PageId {
            table: self.table_id,
            page: page_no as u32,
        };
        self.pool
            .get(id, || Arc::new(self.pages[page_no].all_tuples()))
    }

    /// Read one page on a private scan stream (see
    /// [`BufferPool::get_stream`]), returning the I/O this access
    /// charged so the caller can attribute it to its own ledger.
    pub fn read_page_stream(
        &self,
        page_no: usize,
        stream: u64,
    ) -> (Arc<Vec<Tuple>>, eco_simhw::trace::DiskWork) {
        assert!(page_no < self.pages.len(), "page {page_no} out of range");
        let id = PageId {
            table: self.table_id,
            page: page_no as u32,
        };
        self.pool
            .get_stream(id, stream, || Arc::new(self.pages[page_no].all_tuples()))
    }

    /// The buffer pool this table reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Release a finished scan stream's position tracking (see
    /// [`BufferPool::end_stream`]).
    pub fn end_stream(&self, stream: u64) {
        self.pool.end_stream(self.table_id, stream);
    }
}

impl std::fmt::Debug for DiskTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskTable")
            .field("table_id", &self.table_id)
            .field("pages", &self.pages.len())
            .field("tuples", &self.num_tuples)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColumnType, Value};

    fn schema() -> Schema {
        Schema::new(&[("k", ColumnType::Int), ("s", ColumnType::Str)])
    }

    fn tuples(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| vec![Value::Int(i as i64), Value::str(format!("value-{i:06}"))])
            .collect()
    }

    #[test]
    fn load_packs_multiple_pages() {
        let pool = Arc::new(BufferPool::new(64));
        let data = tuples(2000);
        let t = DiskTable::load(1, schema(), &data, pool);
        assert!(t.num_pages() > 1, "2000 tuples should span pages");
        assert_eq!(t.len(), 2000);
        // Read everything back in order.
        let mut seen = 0usize;
        for p in 0..t.num_pages() {
            for tup in t.read_page(p).iter() {
                assert_eq!(tup[0], Value::Int(seen as i64));
                seen += 1;
            }
        }
        assert_eq!(seen, 2000);
    }

    #[test]
    fn full_scan_charges_mostly_sequential_io() {
        let pool = Arc::new(BufferPool::new(256));
        let t = DiskTable::load(1, schema(), &tuples(2000), Arc::clone(&pool));
        pool.take_io();
        for p in 0..t.num_pages() {
            t.read_page(p);
        }
        let io = pool.take_io();
        // One repositioning per extent, streaming within extents.
        let extents = t
            .num_pages()
            .div_ceil(crate::bufferpool::EXTENT_PAGES as usize);
        assert_eq!(io.random_ios as usize, extents);
        assert_eq!(
            io.sequential_bytes as usize,
            (t.num_pages() - extents) * PAGE_SIZE
        );
    }

    #[test]
    fn warm_scan_is_io_free() {
        let pool = Arc::new(BufferPool::new(256));
        let t = DiskTable::load(1, schema(), &tuples(2000), Arc::clone(&pool));
        for p in 0..t.num_pages() {
            t.read_page(p);
        }
        pool.take_io();
        for p in 0..t.num_pages() {
            t.read_page(p);
        }
        assert!(pool.take_io().is_empty(), "warm scan must not hit disk");
    }

    #[test]
    fn small_pool_thrashes_on_rescan() {
        // A pool smaller than the table forces a full re-read on the
        // second scan (the classic sequential-flooding pattern).
        let pool = Arc::new(BufferPool::new(2));
        let t = DiskTable::load(1, schema(), &tuples(2000), Arc::clone(&pool));
        for p in 0..t.num_pages() {
            t.read_page(p);
        }
        pool.take_io();
        for p in 0..t.num_pages() {
            t.read_page(p);
        }
        let io = pool.take_io();
        assert!(
            io.total_bytes() as usize >= (t.num_pages() - 1) * PAGE_SIZE,
            "rescan should re-read nearly everything"
        );
    }

    #[test]
    fn columnar_mirror_matches_pages() {
        let pool = Arc::new(BufferPool::new(256));
        let data = tuples(2000);
        let t = DiskTable::load(1, schema(), &data, pool);
        let cols = t.columnar();
        let extent = crate::bufferpool::EXTENT_PAGES as usize;
        assert_eq!(cols.num_extents(), t.num_pages().div_ceil(extent));
        // Every extent chunk reproduces the exact page tuples.
        let mut global = 0usize;
        for e in 0..cols.num_extents() {
            let chunk = cols.extent_chunk(e);
            assert_eq!(cols.extent_row_start(e), global);
            for i in 0..chunk.len() {
                assert_eq!(chunk.row(i), data[global + i], "extent {e} row {i}");
            }
            global += chunk.len();
        }
        assert_eq!(global, 2000);
        // Page row ranges are consistent with the pages themselves.
        let (s, end) = cols.page_row_range(0, t.num_pages());
        assert_eq!((s, end), (0, 2000));
    }

    #[test]
    fn empty_table() {
        let pool = Arc::new(BufferPool::new(4));
        let t = DiskTable::load(1, schema(), &[], pool);
        assert!(t.is_empty());
        assert_eq!(t.num_pages(), 0);
        assert_eq!(t.avg_tuple_bytes(), 0);
    }
}
