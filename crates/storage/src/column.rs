//! Columnar storage: typed column vectors and data chunks.
//!
//! A [`DataChunk`] holds one contiguous typed array per column
//! ([`ColumnData`]) plus an optional per-column validity mask
//! ([`ColumnChunk`]) — the decomposed (DSM) mirror of a run of row
//! tuples. The columnar execution path in `eco-query` streams these
//! chunks through operators instead of `Vec<Tuple>` rows, so hot loops
//! run over `&[i64]` / `&[i32]` slices with no per-value enum dispatch
//! and no per-row allocation.
//!
//! Chunks are *mirrors*, not a second source of truth: they are built
//! from the same tuples the row engines store, and
//! [`DataChunk::row`] materializes back the exact `Tuple` the row path
//! would have produced. The energy ledger never charges for building a
//! mirror — the columnar executor charges the same per-tuple op classes
//! as the row executor (see `eco-query::ops` docs), which is what keeps
//! scalar/batch/columnar ledgers bit-identical.
//!
//! Validity masks exist for forward compatibility with NULL-bearing
//! sources: no TPC-H loader produces NULLs, so end-to-end executions
//! always see fully-valid chunks, and the masks are exercised by the
//! selection-vector unit tests (an invalid value fails every
//! comparison, like SQL `NULL`).

use std::sync::Arc;

use crate::value::{ColumnType, Schema, Tuple, Value};

/// One typed column vector.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers (also fixed-point money in cents).
    Int(Vec<i64>),
    /// Strings (shared; a gather clones only the `Arc`).
    Str(Vec<Arc<str>>),
    /// Dates as day offsets.
    Date(Vec<i32>),
    /// Single characters.
    Char(Vec<char>),
    /// Booleans (predicate results).
    Bool(Vec<bool>),
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn empty(ty: ColumnType) -> Self {
        Self::with_capacity(ty, 0)
    }

    /// An empty column of the given type with reserved capacity.
    pub fn with_capacity(ty: ColumnType, cap: usize) -> Self {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            ColumnType::Str => ColumnData::Str(Vec::with_capacity(cap)),
            ColumnType::Date => ColumnData::Date(Vec::with_capacity(cap)),
            ColumnType::Char => ColumnData::Char(Vec::with_capacity(cap)),
            ColumnType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Char(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            ColumnData::Int(_) => ColumnType::Int,
            ColumnData::Str(_) => ColumnType::Str,
            ColumnData::Date(_) => ColumnType::Date,
            ColumnData::Char(_) => ColumnType::Char,
            ColumnData::Bool(_) => ColumnType::Bool,
        }
    }

    /// Append one `Value`; panics on a type mismatch.
    pub fn push(&mut self, v: &Value) {
        match (self, v) {
            (ColumnData::Int(c), Value::Int(x)) => c.push(*x),
            (ColumnData::Str(c), Value::Str(x)) => c.push(Arc::clone(x)),
            (ColumnData::Date(c), Value::Date(x)) => c.push(*x),
            (ColumnData::Char(c), Value::Char(x)) => c.push(*x),
            (ColumnData::Bool(c), Value::Bool(x)) => c.push(*x),
            (c, v) => panic!("cannot push {v:?} into a {:?} column", c.column_type()),
        }
    }

    /// The value at `i` as a row-engine [`Value`] (materialization).
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Str(v) => Value::Str(Arc::clone(&v[i])),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Char(v) => Value::Char(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Typed access: `&[i64]` when this is an `Int` column.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Typed access: `&[i32]` when this is a `Date` column.
    pub fn as_dates(&self) -> Option<&[i32]> {
        match self {
            ColumnData::Date(v) => Some(v),
            _ => None,
        }
    }

    /// Typed access: `&[bool]` when this is a `Bool` column.
    pub fn as_bools(&self) -> Option<&[bool]> {
        match self {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Gather the values at `indices` into a fresh column (strings cost
    /// one `Arc` bump each). Indices may repeat (join fan-out).
    pub fn gather(&self, indices: &[u32]) -> ColumnData {
        let mut out = ColumnData::empty(self.column_type());
        self.gather_into(indices, &mut out);
        out
    }

    /// Gather the values at `indices` into `out`, reusing `out`'s
    /// allocation when its type already matches (the per-chunk scratch
    /// discipline: callers that gather in a loop keep one scratch
    /// column per output column instead of allocating per call).
    /// Replaces `out` with a fresh column on a type mismatch.
    pub fn gather_into(&self, indices: &[u32], out: &mut ColumnData) {
        if out.column_type() != self.column_type() {
            *out = ColumnData::empty(self.column_type());
        }
        match (self, out) {
            (ColumnData::Int(v), ColumnData::Int(o)) => {
                o.clear();
                o.extend(indices.iter().map(|&i| v[i as usize]));
            }
            (ColumnData::Str(v), ColumnData::Str(o)) => {
                o.clear();
                o.extend(indices.iter().map(|&i| Arc::clone(&v[i as usize])));
            }
            (ColumnData::Date(v), ColumnData::Date(o)) => {
                o.clear();
                o.extend(indices.iter().map(|&i| v[i as usize]));
            }
            (ColumnData::Char(v), ColumnData::Char(o)) => {
                o.clear();
                o.extend(indices.iter().map(|&i| v[i as usize]));
            }
            (ColumnData::Bool(v), ColumnData::Bool(o)) => {
                o.clear();
                o.extend(indices.iter().map(|&i| v[i as usize]));
            }
            _ => unreachable!("gather_into aligned the output type above"),
        }
    }
}

/// One column of a chunk: data plus an optional validity mask
/// (`None` = every value valid; the common case everywhere).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnChunk {
    /// The typed values.
    pub data: ColumnData,
    /// Per-row validity: `false` marks a NULL. Must match `data.len()`
    /// when present.
    pub validity: Option<Vec<bool>>,
}

impl ColumnChunk {
    /// A fully-valid column.
    pub fn new(data: ColumnData) -> Self {
        Self {
            data,
            validity: None,
        }
    }

    /// A column with a validity mask; panics if the lengths differ.
    pub fn with_validity(data: ColumnData, validity: Vec<bool>) -> Self {
        assert_eq!(data.len(), validity.len(), "validity mask length mismatch");
        Self {
            data,
            validity: Some(validity),
        }
    }

    /// True when row `i` holds a valid (non-NULL) value.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v[i])
    }

    /// Gather rows `indices` into a fresh column, carrying validity.
    pub fn gather(&self, indices: &[u32]) -> ColumnChunk {
        ColumnChunk {
            data: self.data.gather(indices),
            validity: self
                .validity
                .as_ref()
                .map(|v| indices.iter().map(|&i| v[i as usize]).collect()),
        }
    }
}

/// A run of rows in decomposed (columnar) form: one [`ColumnChunk`] per
/// schema column, all the same length.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataChunk {
    columns: Vec<ColumnChunk>,
    len: usize,
}

impl DataChunk {
    /// Build from columns; panics if lengths disagree.
    pub fn new(columns: Vec<ColumnChunk>) -> Self {
        let len = columns.first().map_or(0, |c| c.data.len());
        for c in &columns {
            assert_eq!(c.data.len(), len, "ragged chunk");
        }
        Self { columns, len }
    }

    /// Decompose row tuples into a chunk, using `schema` for the column
    /// types (required so empty runs still carry typed columns).
    pub fn from_rows(schema: &Schema, rows: &[Tuple]) -> Self {
        let mut cols: Vec<ColumnData> = schema
            .columns()
            .iter()
            .map(|c| ColumnData::with_capacity(c.ty, rows.len()))
            .collect();
        for row in rows {
            assert_eq!(row.len(), cols.len(), "row arity mismatch");
            for (col, v) in cols.iter_mut().zip(row) {
                col.push(v);
            }
        }
        Self {
            columns: cols.into_iter().map(ColumnChunk::new).collect(),
            len: rows.len(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All columns in order.
    pub fn columns(&self) -> &[ColumnChunk] {
        &self.columns
    }

    /// One column.
    pub fn column(&self, i: usize) -> &ColumnChunk {
        &self.columns[i]
    }

    /// Materialize row `i` back into the row-engine tuple it mirrors.
    pub fn row(&self, i: usize) -> Tuple {
        self.columns.iter().map(|c| c.data.value(i)).collect()
    }

    /// The value at (`col`, `row`).
    pub fn value(&self, col: usize, row: usize) -> Value {
        self.columns[col].data.value(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType as T;

    fn schema() -> Schema {
        Schema::new(&[("k", T::Int), ("s", T::Str), ("d", T::Date), ("c", T::Char)])
    }

    fn rows() -> Vec<Tuple> {
        (0..5)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("s{i}")),
                    Value::Date(i as i32 * 10),
                    Value::Char(char::from(b'a' + i as u8)),
                ]
            })
            .collect()
    }

    #[test]
    fn from_rows_roundtrips() {
        let rows = rows();
        let chunk = DataChunk::from_rows(&schema(), &rows);
        assert_eq!(chunk.len(), 5);
        assert_eq!(chunk.arity(), 4);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&chunk.row(i), r, "row {i}");
        }
        assert_eq!(chunk.column(0).data.as_ints().unwrap(), &[0, 1, 2, 3, 4]);
        assert_eq!(
            chunk.column(2).data.as_dates().unwrap(),
            &[0, 10, 20, 30, 40]
        );
    }

    #[test]
    fn empty_chunk_keeps_types() {
        let chunk = DataChunk::from_rows(&schema(), &[]);
        assert!(chunk.is_empty());
        assert_eq!(chunk.arity(), 4);
        assert_eq!(chunk.column(1).data.column_type(), T::Str);
    }

    #[test]
    fn validity_defaults_to_all_valid() {
        let col = ColumnChunk::new(ColumnData::Int(vec![1, 2]));
        assert!(col.is_valid(0) && col.is_valid(1));
        let masked = ColumnChunk::with_validity(ColumnData::Int(vec![1, 2]), vec![true, false]);
        assert!(masked.is_valid(0));
        assert!(!masked.is_valid(1));
    }

    #[test]
    fn gather_into_reuses_scratch_across_calls() {
        let col = ColumnData::Int((0..100).collect());
        let mut scratch = ColumnData::empty(T::Int);
        col.gather_into(&[5, 5, 99, 0], &mut scratch);
        assert_eq!(scratch.as_ints().unwrap(), &[5, 5, 99, 0]);
        // Second gather reuses the same buffer and fully replaces it.
        col.gather_into(&[1, 2], &mut scratch);
        assert_eq!(scratch.as_ints().unwrap(), &[1, 2]);
        // A type mismatch replaces the scratch instead of panicking.
        let strs = ColumnData::Str(vec![Arc::from("a"), Arc::from("b")]);
        strs.gather_into(&[1, 0], &mut scratch);
        assert_eq!(
            scratch,
            ColumnData::Str(vec![Arc::from("b"), Arc::from("a")])
        );
        assert_eq!(strs.gather(&[1, 0]), scratch, "gather matches gather_into");
    }

    #[test]
    #[should_panic(expected = "ragged chunk")]
    fn ragged_chunk_rejected() {
        DataChunk::new(vec![
            ColumnChunk::new(ColumnData::Int(vec![1])),
            ColumnChunk::new(ColumnData::Int(vec![1, 2])),
        ]);
    }

    #[test]
    #[should_panic(expected = "cannot push")]
    fn typed_push_rejects_mismatch() {
        let mut c = ColumnData::Int(vec![]);
        c.push(&Value::str("nope"));
    }
}
