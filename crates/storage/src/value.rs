//! Values, tuples and schemas.
//!
//! The type system is deliberately small — exactly what TPC-H needs:
//! 64-bit integers (keys, quantities, fixed-point money in cents),
//! strings, calendar dates (day offsets) and single characters (status
//! flags). Comparisons between values of the same type are total, which
//! the expression evaluator relies on.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer (also fixed-point money in cents).
    Int,
    /// Variable-length string.
    Str,
    /// Calendar date as days since the TPC-H epoch.
    Date,
    /// Single character (status flags).
    Char,
    /// Boolean (expression results; no TPC-H column uses it).
    Bool,
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Integer / money.
    Int(i64),
    /// String (shared — tuples are copied freely during execution).
    Str(Arc<str>),
    /// Date as a day offset.
    Date(i32),
    /// Single character.
    Char(char),
    /// Boolean (produced by predicates).
    Bool(bool),
}

impl Value {
    /// Type of this value.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int(_) => ColumnType::Int,
            Value::Str(_) => ColumnType::Str,
            Value::Date(_) => ColumnType::Date,
            Value::Char(_) => ColumnType::Char,
            Value::Bool(_) => ColumnType::Bool,
        }
    }

    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Date payload, if this is a `Date`.
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate stored width in bytes (drives scan byte accounting).
    pub fn width_bytes(&self) -> u64 {
        match self {
            Value::Int(_) => 8,
            Value::Str(s) => 2 + s.len() as u64,
            Value::Date(_) => 4,
            Value::Char(_) => 1,
            Value::Bool(_) => 1,
        }
    }

    /// Total order within a type; `None` across types.
    pub fn partial_cmp_typed(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Char(a), Value::Char(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "@{d}"),
            Value::Char(c) => write!(f, "{c}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A tuple: one row of values.
pub type Tuple = Vec<Value>;

/// Stored width of a tuple in bytes.
pub fn tuple_width(t: &Tuple) -> u64 {
    2 + t.iter().map(Value::width_bytes).sum::<u64>()
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lower-case TPC-H convention, e.g. `l_quantity`).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Schema from `(name, type)` pairs.
    pub fn new(cols: &[(&str, ColumnType)]) -> Self {
        let columns = cols
            .iter()
            .map(|(n, t)| Column {
                name: (*n).to_string(),
                ty: *t,
            })
            .collect();
        Self { columns }
    }

    /// Columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Index of a column by name, panicking with a useful message if
    /// absent (planner-internal use where absence is a bug).
    pub fn expect_index(&self, name: &str) -> usize {
        self.index_of(name)
            .unwrap_or_else(|| panic!("no column named {name:?} in schema {:?}", self.names()))
    }

    /// All column names.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Project a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }

    /// Validate a tuple against this schema.
    pub fn check(&self, t: &Tuple) -> bool {
        t.len() == self.columns.len()
            && t.iter()
                .zip(&self.columns)
                .all(|(v, c)| v.column_type() == c.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(&[
            ("id", ColumnType::Int),
            ("name", ColumnType::Str),
            ("d", ColumnType::Date),
            ("flag", ColumnType::Char),
        ])
    }

    #[test]
    fn index_lookup() {
        let s = schema();
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.expect_index("flag"), 3);
        assert_eq!(s.arity(), 4);
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn expect_index_panics_with_context() {
        schema().expect_index("missing");
    }

    #[test]
    fn tuple_check() {
        let s = schema();
        let good: Tuple = vec![
            Value::Int(1),
            Value::str("x"),
            Value::Date(10),
            Value::Char('A'),
        ];
        let bad: Tuple = vec![
            Value::Int(1),
            Value::Int(2),
            Value::Date(10),
            Value::Char('A'),
        ];
        assert!(s.check(&good));
        assert!(!s.check(&bad));
        assert!(!s.check(&good[..3].to_vec()));
    }

    #[test]
    fn value_ordering_within_types() {
        assert_eq!(
            Value::Int(1).partial_cmp_typed(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("b").partial_cmp_typed(&Value::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(1).partial_cmp_typed(&Value::str("a")), None);
    }

    #[test]
    fn join_and_project() {
        let a = Schema::new(&[("x", ColumnType::Int)]);
        let b = Schema::new(&[("y", ColumnType::Str)]);
        let j = a.join(&b);
        assert_eq!(j.arity(), 2);
        assert_eq!(j.names(), vec!["x", "y"]);
        let p = j.project(&[1]);
        assert_eq!(p.names(), vec!["y"]);
    }

    #[test]
    fn widths() {
        assert_eq!(Value::Int(5).width_bytes(), 8);
        assert_eq!(Value::str("abc").width_bytes(), 5);
        let t: Tuple = vec![Value::Int(1), Value::str("ab")];
        assert_eq!(tuple_width(&t), 2 + 8 + 4);
    }
}
