//! Load a TPC-H database into a catalog, under either engine profile —
//! from the in-memory generator ([`load_tpch`]) or from dbgen-style
//! pipe-delimited `.tbl` text ([`parse_tbl`] / [`load_tbl`]).
//!
//! Schemas follow TPC-H column naming; money is `Int` cents, dates are
//! `Date` day offsets (see `eco-tpch::rows` for the conventions).
//!
//! The text path never panics on malformed input: a truncated file, a
//! record with the wrong field count, or an unparsable field comes
//! back as a typed [`LoadError`] carrying the table name and 1-based
//! line number, and the catalog is left without the broken table.

use eco_tpch::TpchDb;

use crate::catalog::Catalog;
use crate::heap::HeapTable;
use crate::value::{Column, ColumnType as T, Schema, Tuple, Value};

/// Which storage profile to load into (the paper's two systems).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// MySQL-memory-engine profile: all tables in heap storage.
    Memory,
    /// Commercial-disk-DBMS profile: all tables paged behind the pool.
    Disk,
}

impl EngineKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Memory => "memory",
            EngineKind::Disk => "disk",
        }
    }
}

/// Schema of the `region` table.
pub fn region_schema() -> Schema {
    Schema::new(&[
        ("r_regionkey", T::Int),
        ("r_name", T::Str),
        ("r_comment", T::Str),
    ])
}

/// Schema of the `nation` table.
pub fn nation_schema() -> Schema {
    Schema::new(&[
        ("n_nationkey", T::Int),
        ("n_name", T::Str),
        ("n_regionkey", T::Int),
        ("n_comment", T::Str),
    ])
}

/// Schema of the `supplier` table.
pub fn supplier_schema() -> Schema {
    Schema::new(&[
        ("s_suppkey", T::Int),
        ("s_name", T::Str),
        ("s_address", T::Str),
        ("s_nationkey", T::Int),
        ("s_phone", T::Str),
        ("s_acctbal", T::Int),
        ("s_comment", T::Str),
    ])
}

/// Schema of the `customer` table.
pub fn customer_schema() -> Schema {
    Schema::new(&[
        ("c_custkey", T::Int),
        ("c_name", T::Str),
        ("c_address", T::Str),
        ("c_nationkey", T::Int),
        ("c_phone", T::Str),
        ("c_acctbal", T::Int),
        ("c_mktsegment", T::Str),
        ("c_comment", T::Str),
    ])
}

/// Schema of the `part` table.
pub fn part_schema() -> Schema {
    Schema::new(&[
        ("p_partkey", T::Int),
        ("p_name", T::Str),
        ("p_mfgr", T::Str),
        ("p_brand", T::Str),
        ("p_type", T::Str),
        ("p_size", T::Int),
        ("p_container", T::Str),
        ("p_retailprice", T::Int),
        ("p_comment", T::Str),
    ])
}

/// Schema of the `partsupp` table.
pub fn partsupp_schema() -> Schema {
    Schema::new(&[
        ("ps_partkey", T::Int),
        ("ps_suppkey", T::Int),
        ("ps_availqty", T::Int),
        ("ps_supplycost", T::Int),
        ("ps_comment", T::Str),
    ])
}

/// Schema of the `orders` table.
pub fn orders_schema() -> Schema {
    Schema::new(&[
        ("o_orderkey", T::Int),
        ("o_custkey", T::Int),
        ("o_orderstatus", T::Char),
        ("o_totalprice", T::Int),
        ("o_orderdate", T::Date),
        ("o_orderpriority", T::Str),
        ("o_clerk", T::Str),
        ("o_shippriority", T::Int),
        ("o_comment", T::Str),
    ])
}

/// Schema of the `lineitem` table.
pub fn lineitem_schema() -> Schema {
    Schema::new(&[
        ("l_orderkey", T::Int),
        ("l_partkey", T::Int),
        ("l_suppkey", T::Int),
        ("l_linenumber", T::Int),
        ("l_quantity", T::Int),
        ("l_extendedprice", T::Int),
        ("l_discount", T::Int),
        ("l_tax", T::Int),
        ("l_returnflag", T::Char),
        ("l_linestatus", T::Char),
        ("l_shipdate", T::Date),
        ("l_commitdate", T::Date),
        ("l_receiptdate", T::Date),
        ("l_shipinstruct", T::Str),
        ("l_shipmode", T::Str),
        ("l_comment", T::Str),
    ])
}

fn region_tuples(db: &TpchDb) -> Vec<Tuple> {
    db.region
        .iter()
        .map(|r| {
            vec![
                Value::Int(r.r_regionkey),
                Value::str(&r.r_name),
                Value::str(&r.r_comment),
            ]
        })
        .collect()
}

fn nation_tuples(db: &TpchDb) -> Vec<Tuple> {
    db.nation
        .iter()
        .map(|n| {
            vec![
                Value::Int(n.n_nationkey),
                Value::str(&n.n_name),
                Value::Int(n.n_regionkey),
                Value::str(&n.n_comment),
            ]
        })
        .collect()
}

fn supplier_tuples(db: &TpchDb) -> Vec<Tuple> {
    db.supplier
        .iter()
        .map(|s| {
            vec![
                Value::Int(s.s_suppkey),
                Value::str(&s.s_name),
                Value::str(&s.s_address),
                Value::Int(s.s_nationkey),
                Value::str(&s.s_phone),
                Value::Int(s.s_acctbal),
                Value::str(&s.s_comment),
            ]
        })
        .collect()
}

fn customer_tuples(db: &TpchDb) -> Vec<Tuple> {
    db.customer
        .iter()
        .map(|c| {
            vec![
                Value::Int(c.c_custkey),
                Value::str(&c.c_name),
                Value::str(&c.c_address),
                Value::Int(c.c_nationkey),
                Value::str(&c.c_phone),
                Value::Int(c.c_acctbal),
                Value::str(&c.c_mktsegment),
                Value::str(&c.c_comment),
            ]
        })
        .collect()
}

fn part_tuples(db: &TpchDb) -> Vec<Tuple> {
    db.part
        .iter()
        .map(|p| {
            vec![
                Value::Int(p.p_partkey),
                Value::str(&p.p_name),
                Value::str(&p.p_mfgr),
                Value::str(&p.p_brand),
                Value::str(&p.p_type),
                Value::Int(p.p_size),
                Value::str(&p.p_container),
                Value::Int(p.p_retailprice),
                Value::str(&p.p_comment),
            ]
        })
        .collect()
}

fn partsupp_tuples(db: &TpchDb) -> Vec<Tuple> {
    db.partsupp
        .iter()
        .map(|ps| {
            vec![
                Value::Int(ps.ps_partkey),
                Value::Int(ps.ps_suppkey),
                Value::Int(ps.ps_availqty),
                Value::Int(ps.ps_supplycost),
                Value::str(&ps.ps_comment),
            ]
        })
        .collect()
}

fn orders_tuples(db: &TpchDb) -> Vec<Tuple> {
    db.orders
        .iter()
        .map(|o| {
            vec![
                Value::Int(o.o_orderkey),
                Value::Int(o.o_custkey),
                Value::Char(o.o_orderstatus),
                Value::Int(o.o_totalprice),
                Value::Date(o.o_orderdate.0),
                Value::str(&o.o_orderpriority),
                Value::str(&o.o_clerk),
                Value::Int(o.o_shippriority),
                Value::str(&o.o_comment),
            ]
        })
        .collect()
}

fn lineitem_tuples(db: &TpchDb) -> Vec<Tuple> {
    db.lineitem
        .iter()
        .map(|l| {
            vec![
                Value::Int(l.l_orderkey),
                Value::Int(l.l_partkey),
                Value::Int(l.l_suppkey),
                Value::Int(l.l_linenumber),
                Value::Int(l.l_quantity),
                Value::Int(l.l_extendedprice),
                Value::Int(l.l_discount),
                Value::Int(l.l_tax),
                Value::Char(l.l_returnflag),
                Value::Char(l.l_linestatus),
                Value::Date(l.l_shipdate.0),
                Value::Date(l.l_commitdate.0),
                Value::Date(l.l_receiptdate.0),
                Value::str(&l.l_shipinstruct),
                Value::str(&l.l_shipmode),
                Value::str(&l.l_comment),
            ]
        })
        .collect()
}

/// Load a TPC-H database into a fresh catalog under the given engine
/// profile. `pool_pages` sizes the buffer pool (ignored by the memory
/// engine, which never touches it).
pub fn load_tpch(db: &TpchDb, kind: EngineKind, pool_pages: usize) -> Catalog {
    let mut cat = Catalog::new(pool_pages);
    let tables: [(&str, Schema, Vec<Tuple>); 8] = [
        ("region", region_schema(), region_tuples(db)),
        ("nation", nation_schema(), nation_tuples(db)),
        ("supplier", supplier_schema(), supplier_tuples(db)),
        ("customer", customer_schema(), customer_tuples(db)),
        ("part", part_schema(), part_tuples(db)),
        ("partsupp", partsupp_schema(), partsupp_tuples(db)),
        ("orders", orders_schema(), orders_tuples(db)),
        ("lineitem", lineitem_schema(), lineitem_tuples(db)),
    ];
    for (name, schema, tuples) in tables {
        match kind {
            EngineKind::Memory => {
                cat.add_memory_table(name, HeapTable::from_tuples(schema, tuples));
            }
            EngineKind::Disk => {
                cat.add_disk_table(name, schema, &tuples);
            }
        }
    }
    cat
}

/// Why loading a pipe-delimited `.tbl` text table failed. Every
/// variant carries the table name and the 1-based line number of the
/// offending record, so a bad or cut-short dump is reported instead of
/// panicking mid-load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The input ended mid-record: a non-empty line without the
    /// dbgen-style terminating `|` (the signature of a truncated file).
    Truncated {
        /// Table being loaded.
        table: String,
        /// 1-based line number of the cut-off record.
        line: usize,
    },
    /// A record had the wrong number of fields for the table's schema.
    WrongArity {
        /// Table being loaded.
        table: String,
        /// 1-based line number.
        line: usize,
        /// Fields the schema requires.
        want: usize,
        /// Fields the record actually had.
        got: usize,
    },
    /// A field failed to parse as its column's type.
    BadField {
        /// Table being loaded.
        table: String,
        /// 1-based line number.
        line: usize,
        /// Column whose value was malformed.
        column: String,
        /// The raw field text.
        value: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Truncated { table, line } => write!(
                f,
                "table {table:?} line {line}: record is truncated (no terminating '|')"
            ),
            LoadError::WrongArity {
                table,
                line,
                want,
                got,
            } => write!(
                f,
                "table {table:?} line {line}: expected {want} fields, found {got}"
            ),
            LoadError::BadField {
                table,
                line,
                column,
                value,
            } => write!(
                f,
                "table {table:?} line {line}: column {column:?} cannot parse {value:?}"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// Parse dbgen-style `.tbl` text (`field|field|...|` per line, one
/// trailing `|` per record) against a schema. Money columns are
/// integer cents, dates are `YYYY-MM-DD`, `Char` columns are exactly
/// one character, `Bool` columns are `true`/`false`.
pub fn parse_tbl(table: &str, schema: &Schema, text: &str) -> Result<Vec<Tuple>, LoadError> {
    let mut tuples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.is_empty() {
            continue;
        }
        let body = raw.strip_suffix('|').ok_or_else(|| LoadError::Truncated {
            table: table.to_string(),
            line,
        })?;
        let fields: Vec<&str> = if body.is_empty() {
            Vec::new()
        } else {
            body.split('|').collect()
        };
        if fields.len() != schema.arity() {
            return Err(LoadError::WrongArity {
                table: table.to_string(),
                line,
                want: schema.arity(),
                got: fields.len(),
            });
        }
        let mut tuple = Vec::with_capacity(fields.len());
        for (col, field) in schema.columns().iter().zip(&fields) {
            tuple.push(parse_field(table, line, col, field)?);
        }
        tuples.push(tuple);
    }
    Ok(tuples)
}

fn parse_field(table: &str, line: usize, col: &Column, field: &str) -> Result<Value, LoadError> {
    let bad = || LoadError::BadField {
        table: table.to_string(),
        line,
        column: col.name.clone(),
        value: field.to_string(),
    };
    match col.ty {
        T::Int => field.parse::<i64>().map(Value::Int).map_err(|_| bad()),
        T::Str => Ok(Value::str(field)),
        T::Date => parse_tbl_date(field).map(Value::Date).ok_or_else(bad),
        T::Char => {
            let mut chars = field.chars();
            match (chars.next(), chars.next()) {
                (Some(c), None) => Ok(Value::Char(c)),
                _ => Err(bad()),
            }
        }
        T::Bool => match field {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(bad()),
        },
    }
}

/// Parse `YYYY-MM-DD` into the storage day offset.
fn parse_tbl_date(s: &str) -> Option<i32> {
    let mut it = s.split('-');
    let y: i32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(eco_tpch::Date::from_ymd(y, m, d).0)
}

/// Parse `.tbl` text and register the table in `cat` under the given
/// engine profile. On error nothing is added — the catalog never holds
/// a half-loaded table.
pub fn load_tbl(
    cat: &mut Catalog,
    name: &str,
    schema: Schema,
    text: &str,
    kind: EngineKind,
) -> Result<(), LoadError> {
    let tuples = parse_tbl(name, &schema, text)?;
    match kind {
        EngineKind::Memory => {
            cat.add_memory_table(name, HeapTable::from_tuples(schema, tuples));
        }
        EngineKind::Disk => {
            cat.add_disk_table(name, schema, &tuples);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_tpch::TpchGenerator;

    #[test]
    fn loads_all_eight_tables_both_engines() {
        let db = TpchGenerator::new(0.001).generate();
        for kind in [EngineKind::Memory, EngineKind::Disk] {
            let cat = load_tpch(&db, kind, 1024);
            assert_eq!(cat.len(), 8, "{kind:?}");
            assert_eq!(cat.expect("lineitem").len(), db.lineitem.len());
            assert_eq!(cat.expect("orders").len(), db.orders.len());
            assert_eq!(cat.expect("region").len(), 5);
            assert_eq!(cat.expect("nation").len(), 25);
        }
    }

    #[test]
    fn schemas_match_tuples() {
        let db = TpchGenerator::new(0.001).generate();
        let cat = load_tpch(&db, EngineKind::Memory, 0);
        for name in cat.names() {
            let t = cat.expect(&name);
            if let crate::catalog::TableData::Memory(h) = &t.data {
                for tup in h.tuples().iter().take(10) {
                    assert!(t.schema().check(tup), "{name} tuple fails schema");
                }
            }
        }
    }

    #[test]
    fn tbl_text_roundtrips_the_region_table() {
        let text = "0|AFRICA|lar deposits|\n\
                    1|AMERICA|hs use ironic requests|\n\
                    2|ASIA|ges. thinly even pinto beans|\n";
        for kind in [EngineKind::Memory, EngineKind::Disk] {
            let mut cat = Catalog::new(1024);
            load_tbl(&mut cat, "region", region_schema(), text, kind)
                .unwrap_or_else(|e| panic!("{e}"));
            let t = cat.expect("region");
            assert_eq!(t.len(), 3, "{kind:?}");
        }
        let tuples = parse_tbl("region", &region_schema(), text).unwrap();
        assert_eq!(tuples[2][0], Value::Int(2));
        assert_eq!(tuples[2][1], Value::str("ASIA"));
    }

    #[test]
    fn truncated_tbl_is_a_typed_error_not_a_panic() {
        // The file is cut mid-record: the final line lost its
        // terminating '|' (and part of its last field).
        let text = "0|AFRICA|lar deposits|\n1|AMERICA|hs use iron";
        let err = parse_tbl("region", &region_schema(), text).unwrap_err();
        assert_eq!(
            err,
            LoadError::Truncated {
                table: "region".into(),
                line: 2
            }
        );
        // A failed load leaves the catalog without the table.
        let mut cat = Catalog::new(1024);
        let r = load_tbl(
            &mut cat,
            "region",
            region_schema(),
            text,
            EngineKind::Memory,
        );
        assert!(r.is_err());
        assert!(cat.get("region").is_none());
        assert_eq!(cat.len(), 0);
    }

    #[test]
    fn short_records_report_arity_with_line_numbers() {
        // Line 2 lost a field but kept its terminator.
        let text = "0|AFRICA|lar deposits|\n1|AMERICA|\n";
        let err = parse_tbl("region", &region_schema(), text).unwrap_err();
        assert_eq!(
            err,
            LoadError::WrongArity {
                table: "region".into(),
                line: 2,
                want: 3,
                got: 2
            }
        );
    }

    #[test]
    fn malformed_fields_name_the_column() {
        // o_orderdate is not a date; errors point at column and line.
        let text = "1|7|O|17288106|not-a-date|5-LOW|Clerk#000000951|0|egular courts|\n";
        let err = parse_tbl("orders", &orders_schema(), text).unwrap_err();
        assert_eq!(
            err,
            LoadError::BadField {
                table: "orders".into(),
                line: 1,
                column: "o_orderdate".into(),
                value: "not-a-date".into()
            }
        );
        // A bad integer likewise.
        let text = "x|AFRICA|lar deposits|\n";
        let err = parse_tbl("region", &region_schema(), text).unwrap_err();
        assert!(matches!(
            err,
            LoadError::BadField { ref column, .. } if column == "r_regionkey"
        ));
        // Char columns must be exactly one character.
        let text = "1|7|OPEN|17288106|1996-01-02|5-LOW|Clerk#000000951|0|egular courts|\n";
        let err = parse_tbl("orders", &orders_schema(), text).unwrap_err();
        assert!(matches!(
            err,
            LoadError::BadField { ref column, .. } if column == "o_orderstatus"
        ));
    }

    #[test]
    fn generated_rows_survive_a_tbl_round_trip() {
        // Dump the generated region+nation tables as .tbl text, parse
        // them back, and compare tuples exactly.
        let db = TpchGenerator::new(0.001).generate();
        let mem = load_tpch(&db, EngineKind::Memory, 0);
        for name in ["region", "nation"] {
            let t = mem.expect(name);
            let crate::catalog::TableData::Memory(h) = &t.data else {
                panic!("memory expected")
            };
            let mut text = String::new();
            for tup in h.tuples() {
                for v in tup {
                    match v {
                        Value::Int(n) => text.push_str(&n.to_string()),
                        Value::Str(s) => text.push_str(s),
                        Value::Char(c) => text.push(*c),
                        Value::Bool(b) => text.push_str(if *b { "true" } else { "false" }),
                        Value::Date(d) => {
                            let (y, m, dd) = eco_tpch::Date(*d).to_ymd();
                            text.push_str(&format!("{y:04}-{m:02}-{dd:02}"));
                        }
                    }
                    text.push('|');
                }
                text.push('\n');
            }
            let parsed = parse_tbl(name, t.schema(), &text).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(h.tuples(), &parsed[..], "{name} round trip");
        }
    }

    #[test]
    fn disk_engine_roundtrips_tuples() {
        let db = TpchGenerator::new(0.001).generate();
        let mem = load_tpch(&db, EngineKind::Memory, 0);
        let disk = load_tpch(&db, EngineKind::Disk, 4096);
        let m = mem.expect("lineitem");
        let d = disk.expect("lineitem");
        let crate::catalog::TableData::Memory(h) = &m.data else {
            panic!("memory expected")
        };
        let crate::catalog::TableData::Disk(dt) = &d.data else {
            panic!("disk expected")
        };
        let mut from_disk = Vec::new();
        for p in 0..dt.num_pages() {
            from_disk.extend(dt.read_page(p).iter().cloned());
        }
        assert_eq!(
            h.tuples(),
            &from_disk[..],
            "page roundtrip must preserve tuples"
        );
    }
}
