//! The catalog: named tables plus the shared buffer pool.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::bufferpool::BufferPool;
use crate::disk_table::DiskTable;
use crate::heap::HeapTable;
use crate::value::Schema;

/// Physical storage of one table.
#[derive(Debug)]
pub enum TableData {
    /// Memory-engine table.
    Memory(HeapTable),
    /// Disk-engine table behind the buffer pool.
    Disk(DiskTable),
}

/// A named stored table.
#[derive(Debug)]
pub struct StoredTable {
    /// Table name.
    pub name: String,
    /// Physical storage.
    pub data: TableData,
}

impl StoredTable {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        match &self.data {
            TableData::Memory(t) => t.schema(),
            TableData::Disk(t) => t.schema(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        match &self.data {
            TableData::Memory(t) => t.len(),
            TableData::Disk(t) => t.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Average stored tuple width in bytes.
    pub fn avg_tuple_bytes(&self) -> u64 {
        match &self.data {
            TableData::Memory(t) => t.avg_tuple_bytes(),
            TableData::Disk(t) => t.avg_tuple_bytes(),
        }
    }
}

/// Named tables + the shared buffer pool.
#[derive(Debug)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<StoredTable>>,
    pool: Arc<BufferPool>,
    next_table_id: u32,
}

impl Catalog {
    /// Empty catalog with a pool of `pool_pages` pages.
    pub fn new(pool_pages: usize) -> Self {
        Self {
            tables: BTreeMap::new(),
            pool: Arc::new(BufferPool::new(pool_pages)),
            next_table_id: 1,
        }
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Register a memory-engine table. Panics on duplicate names.
    pub fn add_memory_table(&mut self, name: &str, table: HeapTable) {
        self.insert(name, TableData::Memory(table));
    }

    /// Register a disk-engine table built from `tuples`.
    pub fn add_disk_table(&mut self, name: &str, schema: Schema, tuples: &[crate::value::Tuple]) {
        let id = self.next_table_id;
        self.next_table_id += 1;
        let table = DiskTable::load(id, schema, tuples, Arc::clone(&self.pool));
        self.insert(name, TableData::Disk(table));
    }

    fn insert(&mut self, name: &str, data: TableData) {
        let prev = self.tables.insert(
            name.to_string(),
            Arc::new(StoredTable {
                name: name.to_string(),
                data,
            }),
        );
        assert!(prev.is_none(), "duplicate table {name:?}");
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Option<Arc<StoredTable>> {
        self.tables.get(name).cloned()
    }

    /// Look up a table, panicking with context if absent.
    pub fn expect(&self, name: &str) -> Arc<StoredTable> {
        self.get(name)
            .unwrap_or_else(|| panic!("no table named {name:?}; have {:?}", self.names()))
    }

    /// All table names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColumnType, Value};

    fn schema() -> Schema {
        Schema::new(&[("k", ColumnType::Int)])
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new(16);
        c.add_memory_table(
            "m",
            HeapTable::from_tuples(schema(), vec![vec![Value::Int(1)]]),
        );
        c.add_disk_table("d", schema(), &[vec![Value::Int(2)], vec![Value::Int(3)]]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.names(), vec!["d", "m"]);
        assert_eq!(c.expect("m").len(), 1);
        assert_eq!(c.expect("d").len(), 2);
        assert!(c.get("x").is_none());
        assert!(matches!(c.expect("d").data, TableData::Disk(_)));
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_rejected() {
        let mut c = Catalog::new(16);
        c.add_memory_table("t", HeapTable::new(schema()));
        c.add_memory_table("t", HeapTable::new(schema()));
    }

    #[test]
    #[should_panic(expected = "no table named")]
    fn expect_missing_panics() {
        Catalog::new(16).expect("ghost");
    }
}
