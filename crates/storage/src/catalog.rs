//! The catalog: named tables, secondary indexes, and the shared buffer
//! pool.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::btree::{BTreeIndex, FIRST_INDEX_ID};
use crate::bufferpool::BufferPool;
use crate::disk_table::DiskTable;
use crate::heap::HeapTable;
use crate::value::{Schema, Tuple};
use crate::wal::{WalError, WalRecord};

/// Physical storage of one table.
#[derive(Debug)]
pub enum TableData {
    /// Memory-engine table.
    Memory(HeapTable),
    /// Disk-engine table behind the buffer pool.
    Disk(DiskTable),
}

/// A named stored table.
#[derive(Debug)]
pub struct StoredTable {
    /// Table name.
    pub name: String,
    /// Physical storage.
    pub data: TableData,
}

impl StoredTable {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        match &self.data {
            TableData::Memory(t) => t.schema(),
            TableData::Disk(t) => t.schema(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        match &self.data {
            TableData::Memory(t) => t.len(),
            TableData::Disk(t) => t.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Average stored tuple width in bytes.
    pub fn avg_tuple_bytes(&self) -> u64 {
        match &self.data {
            TableData::Memory(t) => t.avg_tuple_bytes(),
            TableData::Disk(t) => t.avg_tuple_bytes(),
        }
    }
}

/// Why a `CREATE INDEX` was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// An index with this name already exists.
    DuplicateIndex(String),
    /// The named table is not in the catalog.
    NoSuchTable(String),
    /// The named column is not in the table's schema.
    NoSuchColumn {
        /// Target table.
        table: String,
        /// Missing column.
        column: String,
    },
    /// Secondary indexes are paged structures over the disk engine;
    /// the memory engine (the paper's CPU-stress profile) has none.
    NotDiskTable(String),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::DuplicateIndex(n) => write!(f, "index {n:?} already exists"),
            IndexError::NoSuchTable(t) => write!(f, "no table named {t:?}"),
            IndexError::NoSuchColumn { table, column } => {
                write!(f, "no column {column:?} in table {table:?}")
            }
            IndexError::NotDiskTable(t) => {
                write!(
                    f,
                    "table {t:?} is not a disk table; only disk tables can be indexed"
                )
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// One registered secondary index.
#[derive(Debug)]
pub struct IndexEntry {
    /// Index name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed column.
    pub column: String,
    /// The B-tree itself.
    pub index: Arc<BTreeIndex>,
}

/// Named tables + the shared buffer pool.
#[derive(Debug)]
pub struct Catalog {
    /// Interior-mutable since the write path landed: a WAL replay
    /// applies mutations through `&self` (the executor holds the
    /// catalog shared), swapping each mutated table's `Arc` for a
    /// rebuilt copy — copy-on-write at table granularity.
    tables: Mutex<BTreeMap<String, Arc<StoredTable>>>,
    pool: Arc<BufferPool>,
    next_table_id: u32,
    /// Secondary indexes, by index name. Interior-mutable because
    /// `CREATE INDEX` arrives through the `&self` statement path (the
    /// executor holds the catalog shared).
    indexes: Mutex<BTreeMap<String, Arc<IndexEntry>>>,
    next_index_id: Mutex<u32>,
}

impl Catalog {
    /// Empty catalog with a pool of `pool_pages` pages.
    pub fn new(pool_pages: usize) -> Self {
        Self {
            tables: Mutex::new(BTreeMap::new()),
            pool: Arc::new(BufferPool::new(pool_pages)),
            next_table_id: 1,
            indexes: Mutex::new(BTreeMap::new()),
            next_index_id: Mutex::new(FIRST_INDEX_ID),
        }
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Register a memory-engine table. Panics on duplicate names.
    pub fn add_memory_table(&mut self, name: &str, table: HeapTable) {
        self.insert(name, TableData::Memory(table));
    }

    /// Register a disk-engine table built from `tuples`.
    pub fn add_disk_table(&mut self, name: &str, schema: Schema, tuples: &[crate::value::Tuple]) {
        let id = self.next_table_id;
        self.next_table_id += 1;
        let table = DiskTable::load(id, schema, tuples, Arc::clone(&self.pool));
        self.insert(name, TableData::Disk(table));
    }

    fn insert(&mut self, name: &str, data: TableData) {
        let prev = self.tables.lock().insert(
            name.to_string(),
            Arc::new(StoredTable {
                name: name.to_string(),
                data,
            }),
        );
        assert!(prev.is_none(), "duplicate table {name:?}");
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Option<Arc<StoredTable>> {
        self.tables.lock().get(name).cloned()
    }

    /// Look up a table, panicking with context if absent.
    pub fn expect(&self, name: &str) -> Arc<StoredTable> {
        self.get(name)
            .unwrap_or_else(|| panic!("no table named {name:?}; have {:?}", self.names()))
    }

    /// All table names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tables.lock().keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.lock().len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.lock().is_empty()
    }

    /// Apply one redo record to table state — the single entry point
    /// both live execution (after its commit fsync) and crash recovery
    /// use, which is what makes recovered state bit-identical to a
    /// clean replay. Commit markers are no-ops here (durability is the
    /// log's business); mutations validate against the *current* table
    /// state and fail with a typed [`WalError`] — never a panic — so a
    /// corrupt or misdirected record fails only its own transaction.
    pub fn apply_wal_record(&self, rec: &WalRecord) -> Result<(), WalError> {
        match rec {
            WalRecord::Commit { .. } => Ok(()),
            WalRecord::Insert { table, tuple } => self.apply_mutation(table, Mutation::Insert(tuple)),
            WalRecord::Update { table, row, tuple } => {
                self.apply_mutation(table, Mutation::Update(*row, tuple))
            }
            WalRecord::Delete { table, row } => self.apply_mutation(table, Mutation::Delete(*row)),
        }
    }

    fn apply_mutation(&self, table: &str, m: Mutation<'_>) -> Result<(), WalError> {
        let stored = self.get(table).ok_or_else(|| WalError::NoSuchTable {
            table: table.to_string(),
        })?;
        match &m {
            Mutation::Insert(t) | Mutation::Update(_, t) => {
                if !stored.schema().check(t) {
                    return Err(WalError::SchemaMismatch {
                        table: table.to_string(),
                    });
                }
            }
            Mutation::Delete(_) => {}
        }
        if let Mutation::Update(row, _) | Mutation::Delete(row) = m {
            if row >= stored.len() {
                return Err(WalError::RowOutOfRange {
                    table: table.to_string(),
                    row,
                    len: stored.len(),
                });
            }
        }
        let data = match &stored.data {
            TableData::Memory(heap) => {
                let mut h = heap.clone();
                match m {
                    Mutation::Insert(t) => h.insert(t.clone()),
                    Mutation::Update(row, t) => h.set_row(row, t.clone()),
                    Mutation::Delete(row) => {
                        h.remove_row(row);
                    }
                }
                TableData::Memory(h)
            }
            TableData::Disk(disk) => {
                let mut tuples = disk.all_tuples();
                match m {
                    Mutation::Insert(t) => tuples.push(t.clone()),
                    Mutation::Update(row, t) => tuples[row] = t.clone(),
                    Mutation::Delete(row) => {
                        tuples.remove(row);
                    }
                }
                // The rebuilt table reuses its id, so stale cached
                // pages must go first.
                self.pool.evict_table(disk.table_id());
                TableData::Disk(DiskTable::load(
                    disk.table_id(),
                    disk.schema().clone(),
                    &tuples,
                    Arc::clone(&self.pool),
                ))
            }
        };
        self.tables.lock().insert(
            table.to_string(),
            Arc::new(StoredTable {
                name: table.to_string(),
                data,
            }),
        );
        self.rebuild_indexes_on(table);
        Ok(())
    }

    /// Rebuild every secondary index over `table` from its mutated
    /// pages, reusing each index's id (after evicting its stale node
    /// pages). Bulk rebuilds are I/O-free like initial builds; the
    /// energy cost of the mutation itself is charged by the write path.
    fn rebuild_indexes_on(&self, table: &str) {
        let Some(stored) = self.get(table) else {
            return;
        };
        let TableData::Disk(disk) = &stored.data else {
            return;
        };
        let mut indexes = self.indexes.lock();
        let names: Vec<String> = indexes
            .values()
            .filter(|e| e.table == table)
            .map(|e| e.name.clone())
            .collect();
        for name in names {
            let Some(entry) = indexes.get(&name).cloned() else {
                continue;
            };
            let Some(col) = disk.schema().index_of(&entry.column) else {
                continue;
            };
            let key_type = disk.schema().columns()[col].ty;
            let id = entry.index.index_id();
            self.pool.evict_table(id);
            let rebuilt = Arc::new(BTreeIndex::build(
                id,
                key_type,
                disk.column_with_row_ids(col),
                Arc::clone(&self.pool),
            ));
            indexes.insert(
                name.clone(),
                Arc::new(IndexEntry {
                    name,
                    table: entry.table.clone(),
                    column: entry.column.clone(),
                    index: rebuilt,
                }),
            );
        }
    }

    /// Build and register a B-tree secondary index named `name` over
    /// `table.column`. Bulk-loads from the column straight off the
    /// table's pages (no I/O charged — see [`crate::btree`]); probes
    /// later charge the v4 index classes through the shared pool.
    pub fn create_index(
        &self,
        name: &str,
        table: &str,
        column: &str,
    ) -> Result<Arc<IndexEntry>, IndexError> {
        let stored = self
            .get(table)
            .ok_or_else(|| IndexError::NoSuchTable(table.to_string()))?;
        let TableData::Disk(disk) = &stored.data else {
            return Err(IndexError::NotDiskTable(table.to_string()));
        };
        let col = stored
            .schema()
            .index_of(column)
            .ok_or_else(|| IndexError::NoSuchColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        let key_type = stored.schema().columns()[col].ty;
        let mut indexes = self.indexes.lock();
        if indexes.contains_key(name) {
            return Err(IndexError::DuplicateIndex(name.to_string()));
        }
        let id = {
            let mut next = self.next_index_id.lock();
            let id = *next;
            *next += 1;
            id
        };
        let entries = disk.column_with_row_ids(col);
        let index = Arc::new(BTreeIndex::build(
            id,
            key_type,
            entries,
            Arc::clone(&self.pool),
        ));
        let entry = Arc::new(IndexEntry {
            name: name.to_string(),
            table: table.to_string(),
            column: column.to_string(),
            index,
        });
        indexes.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Look up an index by name.
    pub fn index(&self, name: &str) -> Option<Arc<IndexEntry>> {
        self.indexes.lock().get(name).cloned()
    }

    /// The index on `table.column`, if one exists (first by name when
    /// several cover the same column).
    pub fn index_on(&self, table: &str, column: &str) -> Option<Arc<IndexEntry>> {
        self.indexes
            .lock()
            .values()
            .find(|e| e.table == table && e.column == column)
            .cloned()
    }

    /// All index names, sorted.
    pub fn index_names(&self) -> Vec<String> {
        self.indexes.lock().keys().cloned().collect()
    }

    /// Every registered index entry, sorted by name. Crash recovery
    /// uses this to re-create the crashed catalog's indexes over the
    /// rebuilt tables (indexes are derivable state, not WAL-logged).
    pub fn index_entries(&self) -> Vec<Arc<IndexEntry>> {
        self.indexes.lock().values().cloned().collect()
    }
}

/// A validated single-row mutation, borrowed out of a [`WalRecord`].
enum Mutation<'a> {
    Insert(&'a Tuple),
    Update(usize, &'a Tuple),
    Delete(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColumnType, Value};

    fn schema() -> Schema {
        Schema::new(&[("k", ColumnType::Int)])
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new(16);
        c.add_memory_table(
            "m",
            HeapTable::from_tuples(schema(), vec![vec![Value::Int(1)]]),
        );
        c.add_disk_table("d", schema(), &[vec![Value::Int(2)], vec![Value::Int(3)]]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.names(), vec!["d".to_string(), "m".to_string()]);
        assert_eq!(c.expect("m").len(), 1);
        assert_eq!(c.expect("d").len(), 2);
        assert!(c.get("x").is_none());
        assert!(matches!(c.expect("d").data, TableData::Disk(_)));
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_rejected() {
        let mut c = Catalog::new(16);
        c.add_memory_table("t", HeapTable::new(schema()));
        c.add_memory_table("t", HeapTable::new(schema()));
    }

    #[test]
    #[should_panic(expected = "no table named")]
    fn expect_missing_panics() {
        Catalog::new(16).expect("ghost");
    }

    #[test]
    fn apply_wal_record_mutates_both_engines() {
        let mut c = Catalog::new(16);
        c.add_memory_table(
            "m",
            HeapTable::from_tuples(schema(), vec![vec![Value::Int(1)], vec![Value::Int(2)]]),
        );
        c.add_disk_table("d", schema(), &[vec![Value::Int(1)], vec![Value::Int(2)]]);
        for t in ["m", "d"] {
            c.apply_wal_record(&WalRecord::Insert {
                table: t.to_string(),
                tuple: vec![Value::Int(3)],
            })
            .expect("insert");
            c.apply_wal_record(&WalRecord::Update {
                table: t.to_string(),
                row: 0,
                tuple: vec![Value::Int(10)],
            })
            .expect("update");
            c.apply_wal_record(&WalRecord::Delete {
                table: t.to_string(),
                row: 1,
            })
            .expect("delete");
            assert_eq!(c.expect(t).len(), 2, "{t}");
        }
        // Memory engine state is directly inspectable…
        let m = c.expect("m");
        let TableData::Memory(h) = &m.data else {
            panic!("m is memory");
        };
        assert_eq!(h.tuples(), &[vec![Value::Int(10)], vec![Value::Int(3)]]);
        // …and the rebuilt disk table reads back the same rows.
        let d = c.expect("d");
        let TableData::Disk(t) = &d.data else {
            panic!("d is disk");
        };
        assert_eq!(t.all_tuples(), vec![vec![Value::Int(10)], vec![Value::Int(3)]]);
        // Commit markers are no-ops.
        c.apply_wal_record(&WalRecord::Commit { txn: 1 }).expect("commit");
    }

    #[test]
    fn apply_wal_record_rejects_bad_records_with_typed_errors() {
        let mut c = Catalog::new(16);
        c.add_memory_table("m", HeapTable::from_tuples(schema(), vec![vec![Value::Int(1)]]));
        assert_eq!(
            c.apply_wal_record(&WalRecord::Insert {
                table: "ghost".into(),
                tuple: vec![Value::Int(1)],
            })
            .unwrap_err(),
            crate::wal::WalError::NoSuchTable {
                table: "ghost".into()
            }
        );
        assert_eq!(
            c.apply_wal_record(&WalRecord::Insert {
                table: "m".into(),
                tuple: vec![Value::str("wrong type")],
            })
            .unwrap_err(),
            crate::wal::WalError::SchemaMismatch { table: "m".into() }
        );
        assert_eq!(
            c.apply_wal_record(&WalRecord::Delete {
                table: "m".into(),
                row: 5,
            })
            .unwrap_err(),
            crate::wal::WalError::RowOutOfRange {
                table: "m".into(),
                row: 5,
                len: 1
            }
        );
        // Failed records leave the table untouched.
        assert_eq!(c.expect("m").len(), 1);
    }

    #[test]
    fn disk_mutation_rebuilds_indexes_and_evicts_stale_pages() {
        let mut c = Catalog::new(64);
        let rows: Vec<_> = (0..2000).map(|i| vec![Value::Int(i)]).collect();
        c.add_disk_table("d", schema(), &rows);
        let e = c.create_index("ix", "d", "k").expect("create");
        assert_eq!(e.index.len(), 2000);
        // Warm the pool with pre-mutation pages.
        let d = c.expect("d");
        let TableData::Disk(t) = &d.data else {
            panic!("disk")
        };
        for p in 0..t.num_pages() {
            t.read_page(p);
        }
        c.pool().take_io();
        c.apply_wal_record(&WalRecord::Insert {
            table: "d".into(),
            tuple: vec![Value::Int(9999)],
        })
        .expect("insert");
        // The index was rebuilt over the mutated table, same id.
        let ix = c.index("ix").expect("still registered");
        assert_eq!(ix.index.len(), 2001);
        assert_eq!(ix.index.index_id(), e.index.index_id());
        // Reads now go to the rebuilt table and see the new row (a
        // stale cached page would have hidden it).
        let d = c.expect("d");
        let TableData::Disk(t) = &d.data else {
            panic!("disk")
        };
        let last = t.read_page(t.num_pages() - 1);
        assert_eq!(last.last(), Some(&vec![Value::Int(9999)]));
    }

    #[test]
    fn create_index_and_lookup() {
        let mut c = Catalog::new(16);
        c.add_disk_table("d", schema(), &[vec![Value::Int(2)], vec![Value::Int(3)]]);
        let e = c.create_index("ix_d_k", "d", "k").expect("create");
        assert_eq!(e.index.len(), 2);
        assert!(c.index("ix_d_k").is_some());
        assert!(c.index_on("d", "k").is_some());
        assert!(c.index_on("d", "missing").is_none());
        assert_eq!(c.index_names(), vec!["ix_d_k".to_string()]);
        // Typed rejections, not panics.
        assert_eq!(
            c.create_index("ix_d_k", "d", "k").unwrap_err(),
            IndexError::DuplicateIndex("ix_d_k".to_string())
        );
        assert_eq!(
            c.create_index("x", "ghost", "k").unwrap_err(),
            IndexError::NoSuchTable("ghost".to_string())
        );
        assert_eq!(
            c.create_index("x", "d", "ghost").unwrap_err(),
            IndexError::NoSuchColumn {
                table: "d".to_string(),
                column: "ghost".to_string()
            }
        );
        c.add_memory_table(
            "m",
            HeapTable::from_tuples(schema(), vec![vec![Value::Int(1)]]),
        );
        assert_eq!(
            c.create_index("x", "m", "k").unwrap_err(),
            IndexError::NotDiskTable("m".to_string())
        );
    }
}
