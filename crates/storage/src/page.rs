//! Slotted pages: the on-"disk" representation of tuples.
//!
//! Classic layout: a header (slot count), a slot directory growing from
//! the front, and tuple payloads packed from the back. Values use a
//! compact tagged serialization. Pages are fixed at 8 KB — a tuple that
//! cannot fit an empty page is rejected at load time (TPC-H's widest
//! rows are far below that).

use crate::value::{Tuple, Value};

/// Page size in bytes.
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 4; // u16 slot_count + u16 free_end
const SLOT: usize = 4; // u16 offset + u16 len

/// A fixed-size slotted page of serialized tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// An empty page.
    pub fn new() -> Self {
        let mut p = Self {
            buf: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_slot_count(0);
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.buf[0], self.buf[1]])
    }
    fn set_slot_count(&mut self, n: u16) {
        self.buf[0..2].copy_from_slice(&n.to_le_bytes());
    }
    fn free_end(&self) -> u16 {
        u16::from_le_bytes([self.buf[2], self.buf[3]])
    }
    fn set_free_end(&mut self, n: u16) {
        self.buf[2..4].copy_from_slice(&n.to_le_bytes());
    }

    /// Number of tuples stored.
    pub fn len(&self) -> usize {
        self.slot_count() as usize
    }

    /// True when the page holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of free space remaining.
    pub fn free_space(&self) -> usize {
        let used_front = HEADER + self.len() * SLOT;
        (self.free_end() as usize).saturating_sub(used_front)
    }

    /// Try to append a tuple; returns `false` when it does not fit.
    pub fn insert(&mut self, tuple: &Tuple) -> bool {
        let payload = serialize_tuple(tuple);
        if payload.len() + SLOT > self.free_space() {
            return false;
        }
        let end = self.free_end() as usize;
        let start = end - payload.len();
        self.buf[start..end].copy_from_slice(&payload);
        let slot = self.slot_count() as usize;
        let off = HEADER + slot * SLOT;
        self.buf[off..off + 2].copy_from_slice(&(start as u16).to_le_bytes());
        self.buf[off + 2..off + 4].copy_from_slice(&(payload.len() as u16).to_le_bytes());
        self.set_slot_count((slot + 1) as u16);
        self.set_free_end(start as u16);
        true
    }

    /// Read the tuple in a slot. Panics on an out-of-range slot.
    pub fn get(&self, slot: usize) -> Tuple {
        assert!(slot < self.len(), "slot {slot} out of range {}", self.len());
        let off = HEADER + slot * SLOT;
        let start = u16::from_le_bytes([self.buf[off], self.buf[off + 1]]) as usize;
        let len = u16::from_le_bytes([self.buf[off + 2], self.buf[off + 3]]) as usize;
        deserialize_tuple(&self.buf[start..start + len])
    }

    /// Decode every tuple on the page.
    pub fn all_tuples(&self) -> Vec<Tuple> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Bytes occupied (header + slots + payloads); the I/O cost of
    /// reading this page is nevertheless always the full `PAGE_SIZE`.
    pub fn used_bytes(&self) -> usize {
        HEADER + self.len() * SLOT + (PAGE_SIZE - self.free_end() as usize)
    }

    /// FNV-1a 64-bit checksum over the raw page image. Computed once
    /// at load time and verified on every buffer-pool read so a
    /// corrupted page is detected before its tuples are decoded.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.buf.iter() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Corrupt one byte of the raw page image (a fault-injection /
    /// test hook: the next checksum verification must detect it).
    pub fn flip_byte(&mut self, offset: usize) {
        self.buf[offset % PAGE_SIZE] ^= 0xFF;
    }
}

// --- value serialization --------------------------------------------------

const TAG_INT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_DATE: u8 = 3;
const TAG_CHAR: u8 = 4;
const TAG_BOOL: u8 = 5;

fn serialize_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            let b = s.as_bytes();
            assert!(b.len() <= u16::MAX as usize, "string too long for page");
            out.extend_from_slice(&(b.len() as u16).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Char(c) => {
            out.push(TAG_CHAR);
            let mut b = [0u8; 4];
            let s = c.encode_utf8(&mut b);
            out.push(s.len() as u8);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
    }
}

/// Serialize a tuple to bytes (u16 arity + tagged values).
pub fn serialize_tuple(t: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + t.len() * 10);
    out.extend_from_slice(&(t.len() as u16).to_le_bytes());
    for v in t {
        serialize_value(v, &mut out);
    }
    out
}

/// Deserialize a tuple from bytes produced by [`serialize_tuple`].
pub fn deserialize_tuple(buf: &[u8]) -> Tuple {
    let arity = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    let mut pos = 2;
    let mut out = Vec::with_capacity(arity);
    for _ in 0..arity {
        let tag = buf[pos];
        pos += 1;
        let v = match tag {
            TAG_INT => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&buf[pos..pos + 8]);
                pos += 8;
                Value::Int(i64::from_le_bytes(b))
            }
            TAG_STR => {
                let len = u16::from_le_bytes([buf[pos], buf[pos + 1]]) as usize;
                pos += 2;
                let s = match std::str::from_utf8(&buf[pos..pos + len]) {
                    Ok(s) => s,
                    Err(e) => panic!("corrupt page: bad utf8 ({e})"),
                };
                pos += len;
                Value::str(s)
            }
            TAG_DATE => {
                let mut b = [0u8; 4];
                b.copy_from_slice(&buf[pos..pos + 4]);
                pos += 4;
                Value::Date(i32::from_le_bytes(b))
            }
            TAG_CHAR => {
                let len = buf[pos] as usize;
                pos += 1;
                let s = match std::str::from_utf8(&buf[pos..pos + len]) {
                    Ok(s) => s,
                    Err(e) => panic!("corrupt page: bad utf8 ({e})"),
                };
                pos += len;
                let c = match s.chars().next() {
                    Some(c) => c,
                    None => panic!("corrupt page: empty char payload"),
                };
                Value::Char(c)
            }
            TAG_BOOL => {
                let b = buf[pos] != 0;
                pos += 1;
                Value::Bool(b)
            }
            other => panic!("corrupt page: unknown value tag {other}"),
        };
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        vec![
            Value::Int(-42),
            Value::str("hello world"),
            Value::Date(1234),
            Value::Char('Z'),
        ]
    }

    #[test]
    fn tuple_roundtrip() {
        let t = sample();
        assert_eq!(deserialize_tuple(&serialize_tuple(&t)), t);
    }

    #[test]
    fn unicode_roundtrip() {
        let t: Tuple = vec![Value::str("naïve — 日本"), Value::Char('é')];
        assert_eq!(deserialize_tuple(&serialize_tuple(&t)), t);
    }

    #[test]
    fn page_insert_and_get() {
        let mut p = Page::new();
        assert!(p.is_empty());
        for i in 0..10 {
            let mut t = sample();
            t[0] = Value::Int(i);
            assert!(p.insert(&t));
        }
        assert_eq!(p.len(), 10);
        for i in 0..10 {
            assert_eq!(p.get(i)[0], Value::Int(i as i64));
        }
        assert_eq!(p.all_tuples().len(), 10);
    }

    #[test]
    fn page_fills_up_and_rejects() {
        let mut p = Page::new();
        let t = sample();
        let mut n = 0;
        while p.insert(&t) {
            n += 1;
            assert!(n < 10_000, "page never filled");
        }
        // A reasonable number of ~40-byte tuples fit an 8 KB page.
        assert!(n > 100, "only {n} tuples fit");
        assert!(!p.insert(&t));
        // Everything already stored is still readable.
        assert_eq!(p.len(), n);
        assert_eq!(p.get(n - 1), t);
    }

    #[test]
    fn free_space_decreases_monotonically() {
        let mut p = Page::new();
        let mut prev = p.free_space();
        for _ in 0..20 {
            p.insert(&sample());
            let now = p.free_space();
            assert!(now < prev);
            prev = now;
        }
        assert!(p.used_bytes() + p.free_space() <= PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        Page::new().get(0);
    }

    #[test]
    fn checksum_detects_any_flipped_byte() {
        let mut p = Page::new();
        for i in 0..10 {
            let mut t = sample();
            t[0] = Value::Int(i);
            assert!(p.insert(&t));
        }
        let clean = p.checksum();
        for offset in [0usize, 3, 17, PAGE_SIZE / 2, PAGE_SIZE - 1] {
            p.flip_byte(offset);
            assert_ne!(p.checksum(), clean, "flip at {offset} went undetected");
            p.flip_byte(offset); // restore
            assert_eq!(p.checksum(), clean);
        }
    }
}
