//! Paged B-tree secondary indexes (ledger schema v4).
//!
//! A [`BTreeIndex`] maps one column of a [`crate::disk_table::DiskTable`]
//! to row ids. It is bulk-loaded bottom-up from the sorted column into
//! fixed-fanout [`Page`]s — leaves hold `[key, row_id]` entries, interior
//! nodes hold `[separator_key, child_page]` entries — and those pages are
//! read back through the shared [`BufferPool`] exactly like table pages.
//!
//! # Random-I/O pricing (the point of the exercise)
//!
//! The paper's fig5 shows the drive's two personalities: sequential
//! streaming runs at the full transfer rate with flat energy/KB, while
//! every random access pays a multi-millisecond repositioning before a
//! slow in-block burst. A table scan enjoys the first personality; an
//! index probe is the second — the descent jumps between unrelated
//! pages, and the base-row fetches it drives land wherever the row ids
//! point. Accordingly, **every** buffer-pool miss taken on behalf of an
//! index probe is charged to the v4 index classes
//! ([`eco_simhw::trace::DiskWork::index_ios`] /
//! [`eco_simhw::trace::DiskWork::index_bytes`]), which the disk model
//! prices *exactly* like random I/O ([`eco_simhw::disk::DiskSpec::cost`])
//! but which are ledgered apart, so:
//!
//! * index-free runs charge nothing to the v4 classes and every
//!   pre-existing figure stays bit-identical;
//! * scan-shaped plans keep a *pure* sequential/random split even when
//!   probes interleave with them (probes never touch the pool's
//!   sequential-position trackers — see
//!   [`BufferPool::get_index_checked`]);
//! * the scan-vs-probe energy crossover becomes a real, measurable
//!   function of selectivity and p-state instead of a synthetic
//!   raw-disk experiment.
//!
//! CPU-side, each binary-search step inside a node charges one
//! [`eco_simhw::trace::OpClass::NodeSearch`] (also v4, also zero on
//! index-free runs).
//!
//! Building the index reads the table's pages directly — never through
//! the buffer pool — so, like the columnar mirror
//! ([`crate::disk_table::ColumnarExtents`]), *building* charges no I/O;
//! only probes do.

use std::cmp::Ordering;
use std::sync::Arc;

use eco_simhw::fault::{FaultPlan, PageFault, BACKOFF_BASE_NS, MAX_READ_RETRIES};
use eco_simhw::trace::DiskWork;

use crate::bufferpool::{BufferPool, PageId};
use crate::disk_table::IoError;
use crate::page::{Page, PAGE_SIZE};
use crate::value::{ColumnType, Tuple, Value};

/// Maximum entries per node (leaf or interior). Real fanout is the
/// smaller of this and what fits an 8 KB page; the fixed cap keeps tree
/// shape (and therefore probe I/O counts) independent of key width
/// jitter for the common integer/date keys.
pub const BTREE_FANOUT: usize = 256;

/// First index id. Index page ids share the buffer pool's `(table,
/// page)` namespace with tables, so index ids live in their own upper
/// range — a catalog would need billions of tables to collide.
pub const FIRST_INDEX_ID: u32 = 0x8000_0000;

/// One bound of a range probe.
#[derive(Debug, Clone, Copy)]
pub enum KeyBound<'a> {
    /// No bound on this side.
    Unbounded,
    /// Bound included in the result.
    Inclusive(&'a Value),
    /// Bound excluded from the result.
    Exclusive(&'a Value),
}

impl KeyBound<'_> {
    fn value(&self) -> Option<&Value> {
        match self {
            KeyBound::Unbounded => None,
            KeyBound::Inclusive(v) | KeyBound::Exclusive(v) => Some(v),
        }
    }
}

/// What one probe did: the matching row ids plus everything the caller
/// must charge to its energy ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexProbe {
    /// Matching base-table row ids, ascending — so an index scan emits
    /// rows in table order and its output is bit-identical to the
    /// equivalent full-scan-plus-filter plan.
    pub row_ids: Vec<usize>,
    /// Disk charges of the probe (v4 index classes on misses; v2 retry
    /// classes if a fault fired).
    pub io: DiskWork,
    /// Retry-backoff idle time, nanoseconds (zero unless a fault fired).
    pub backoff_ns: u64,
    /// Binary-search steps taken inside nodes; the caller charges one
    /// [`eco_simhw::trace::OpClass::NodeSearch`] each.
    pub node_searches: u64,
}

/// A paged, read-only B-tree secondary index over one column.
pub struct BTreeIndex {
    index_id: u32,
    key_type: ColumnType,
    /// All nodes, leaves first: pages `[0, leaf_count)` are the leaf
    /// level in key order (so a range walk is `page + 1`), upper levels
    /// follow, root last.
    pages: Vec<Page>,
    checksums: Vec<u64>,
    leaf_count: usize,
    height: usize,
    len: usize,
    pool: Arc<BufferPool>,
}

impl BTreeIndex {
    /// Bulk-load from `(key, row_id)` entries (any order; duplicates
    /// allowed). Panics if a key's type differs from `key_type`.
    /// Building charges no I/O — see the module docs.
    pub fn build(
        index_id: u32,
        key_type: ColumnType,
        mut entries: Vec<(Value, usize)>,
        pool: Arc<BufferPool>,
    ) -> Self {
        for (k, _) in &entries {
            assert!(
                k.column_type() == key_type,
                "index key {k:?} does not have type {key_type:?}"
            );
        }
        entries.sort_by(|a, b| cmp_keys(&a.0, &b.0).then(a.1.cmp(&b.1)));
        let len = entries.len();

        // Leaf level: [key, row_id] entries packed at fixed fanout.
        let mut pages: Vec<Page> = Vec::new();
        let mut seps: Vec<(Value, usize)> = Vec::new(); // (first key, page no)
        {
            let mut cur = Page::new();
            let mut cur_n = 0usize;
            for (key, row) in &entries {
                let t: Tuple = vec![key.clone(), Value::Int(*row as i64)];
                if cur_n == BTREE_FANOUT || !cur.insert(&t) {
                    pages.push(std::mem::take(&mut cur));
                    cur_n = 0;
                    assert!(cur.insert(&t), "index entry wider than an empty page");
                }
                if cur_n == 0 {
                    seps.push((key.clone(), pages.len()));
                }
                cur_n += 1;
            }
            if cur_n > 0 {
                pages.push(cur);
            }
        }
        let leaf_count = pages.len();
        let mut height = usize::from(leaf_count > 0);

        // Interior levels, bottom-up, until one root remains.
        while seps.len() > 1 {
            let level = std::mem::take(&mut seps);
            let mut cur = Page::new();
            let mut cur_n = 0usize;
            for (key, child) in &level {
                let t: Tuple = vec![key.clone(), Value::Int(*child as i64)];
                if cur_n == BTREE_FANOUT || !cur.insert(&t) {
                    pages.push(std::mem::take(&mut cur));
                    cur_n = 0;
                    assert!(cur.insert(&t), "separator wider than an empty page");
                }
                if cur_n == 0 {
                    seps.push((key.clone(), pages.len()));
                }
                cur_n += 1;
            }
            if cur_n > 0 {
                pages.push(cur);
            }
            height += 1;
        }

        let checksums = pages.iter().map(Page::checksum).collect();
        Self {
            index_id,
            key_type,
            pages,
            checksums,
            leaf_count,
            height,
            len,
            pool,
        }
    }

    /// This index's id (the `table` half of its buffer-pool page ids).
    pub fn index_id(&self) -> u32 {
        self.index_id
    }

    /// Type of the indexed column.
    pub fn key_type(&self) -> ColumnType {
        self.key_type
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total node pages (leaves + interior).
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Tree height in levels (0 for an empty index, 1 for a single
    /// leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Size on disk, bytes (full pages — I/O is page-granular).
    pub fn bytes_on_disk(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    /// Point probe: all rows whose key equals `key`.
    pub fn probe_point(&self, key: &Value) -> Result<IndexProbe, IoError> {
        self.probe_range(KeyBound::Inclusive(key), KeyBound::Inclusive(key))
    }

    /// Range probe over `[lo, hi]` with per-side bound semantics.
    /// Returns matching row ids ascending plus the probe's ledger
    /// charges; a bound whose type differs from the key column matches
    /// nothing. A fault on an index page surfaces as the typed
    /// [`IoError`] after the bounded retry budget, exactly like a table
    /// page.
    pub fn probe_range(&self, lo: KeyBound<'_>, hi: KeyBound<'_>) -> Result<IndexProbe, IoError> {
        let mut probe = IndexProbe::default();
        if self.leaf_count == 0 {
            return Ok(probe);
        }
        for b in [&lo, &hi] {
            if let Some(v) = b.value() {
                if v.column_type() != self.key_type {
                    return Ok(probe);
                }
            }
        }

        // Descend from the root to the first leaf that can hold `lo`.
        let mut page_no = self.pages.len() - 1;
        loop {
            let node = self.read_node(page_no, &mut probe)?;
            if page_no < self.leaf_count {
                break;
            }
            // Largest child whose separator is strictly below the lower
            // bound — duplicates of `lo` may start in that child.
            let pos = match lo.value() {
                Some(v) => lower_bound(&node, v, &mut probe.node_searches).saturating_sub(1),
                None => 0,
            };
            page_no = match node[pos][1].as_int() {
                Some(c) => c as usize,
                None => {
                    return Err(IoError::Corrupt {
                        table: self.index_id,
                        page: page_no as u32,
                    })
                }
            };
        }

        // Walk leaves rightward from the lower bound.
        let mut leaf = page_no;
        let mut entries = self.read_node(leaf, &mut probe)?;
        let mut idx = match lo.value() {
            Some(v) => lower_bound(&entries, v, &mut probe.node_searches),
            None => 0,
        };
        loop {
            if idx == entries.len() {
                leaf += 1;
                if leaf >= self.leaf_count {
                    break;
                }
                entries = self.read_node(leaf, &mut probe)?;
                idx = 0;
                continue;
            }
            let entry = &entries[idx];
            probe.node_searches += 1; // one key compare per entry walked
            let key = &entry[0];
            let in_lo = match lo {
                KeyBound::Unbounded => true,
                KeyBound::Inclusive(v) => cmp_keys(key, v) != Ordering::Less,
                KeyBound::Exclusive(v) => cmp_keys(key, v) == Ordering::Greater,
            };
            let (in_hi, past_hi) = match hi {
                KeyBound::Unbounded => (true, false),
                KeyBound::Inclusive(v) => {
                    let c = cmp_keys(key, v);
                    (c != Ordering::Greater, c == Ordering::Greater)
                }
                KeyBound::Exclusive(v) => {
                    let c = cmp_keys(key, v);
                    (c == Ordering::Less, c != Ordering::Less)
                }
            };
            if past_hi {
                break;
            }
            if in_lo && in_hi {
                match entry[1].as_int() {
                    Some(r) => probe.row_ids.push(r as usize),
                    None => {
                        return Err(IoError::Corrupt {
                            table: self.index_id,
                            page: leaf as u32,
                        })
                    }
                }
            }
            idx += 1;
        }

        // Duplicate keys interleave row ids across key groups; emit in
        // table order so index output matches scan output exactly.
        probe.row_ids.sort_unstable();
        Ok(probe)
    }

    /// Read one node through the buffer pool on the index charge path,
    /// merging this access's I/O and backoff into `probe`.
    fn read_node(&self, page_no: usize, probe: &mut IndexProbe) -> Result<Vec<Tuple>, IoError> {
        let id = PageId {
            table: self.index_id,
            page: page_no as u32,
        };
        let (tuples, io, backoff_ns) =
            self.pool.get_index_checked(id, |plan, io, backoff_ns| {
                self.load_node_verified(page_no, plan, io, backoff_ns)
            })?;
        probe.io.merge(&io);
        probe.backoff_ns += backoff_ns;
        Ok(Arc::unwrap_or_clone(tuples))
    }

    /// Miss-path attempt loop — the index twin of
    /// `DiskTable::load_page_verified`: verify the node's load-time
    /// checksum, consult the installed [`FaultPlan`], retry with
    /// exponential backoff. Retries charge the v2 retry classes (a
    /// re-read is a re-read, whatever kind of page it re-reads).
    fn load_node_verified(
        &self,
        page_no: usize,
        plan: FaultPlan,
        io: &mut DiskWork,
        backoff_ns: &mut u64,
    ) -> Result<Arc<Vec<Tuple>>, IoError> {
        let fault = plan.fault_for(self.index_id, page_no as u64);
        let mut injected_failures = match fault {
            Some(PageFault::Transient { failures }) => failures,
            Some(PageFault::Permanent) => u32::MAX,
            Some(PageFault::Stall { ns }) => {
                *backoff_ns += ns;
                0
            }
            None => 0,
        };
        for attempt in 0..=MAX_READ_RETRIES {
            let injected = injected_failures > 0;
            if injected {
                injected_failures -= 1;
            }
            let page = &self.pages[page_no];
            if !injected && page.checksum() == self.checksums[page_no] {
                return Ok(Arc::new(page.all_tuples()));
            }
            if attempt < MAX_READ_RETRIES {
                io.retry_ios += 1;
                io.retry_bytes += PAGE_SIZE as u64;
                *backoff_ns += BACKOFF_BASE_NS << attempt;
            }
        }
        Err(match fault {
            Some(PageFault::Permanent) => IoError::Permanent {
                table: self.index_id,
                page: page_no as u32,
            },
            _ => IoError::Corrupt {
                table: self.index_id,
                page: page_no as u32,
            },
        })
    }
}

impl std::fmt::Debug for BTreeIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTreeIndex")
            .field("index_id", &self.index_id)
            .field("key_type", &self.key_type)
            .field("entries", &self.len)
            .field("pages", &self.pages.len())
            .field("leaves", &self.leaf_count)
            .field("height", &self.height)
            .finish()
    }
}

/// Total order for same-typed keys (build-time assertions and probe
/// type checks guarantee the cross-type arm is unreachable).
fn cmp_keys(a: &Value, b: &Value) -> Ordering {
    a.partial_cmp_typed(b).unwrap_or(Ordering::Equal)
}

/// First entry whose key is `>= key`, counting one node-search step per
/// binary-search iteration.
fn lower_bound(entries: &[Tuple], key: &Value, steps: &mut u64) -> usize {
    let (mut lo, mut hi) = (0usize, entries.len());
    while lo < hi {
        *steps += 1;
        let mid = (lo + hi) / 2;
        if cmp_keys(&entries[mid][0], key) == Ordering::Less {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(1024))
    }

    fn int_index(keys: &[i64]) -> BTreeIndex {
        let entries = keys
            .iter()
            .enumerate()
            .map(|(row, &k)| (Value::Int(k), row))
            .collect();
        BTreeIndex::build(FIRST_INDEX_ID, ColumnType::Int, entries, pool())
    }

    fn rows(ix: &BTreeIndex, lo: KeyBound<'_>, hi: KeyBound<'_>) -> Vec<usize> {
        ix.probe_range(lo, hi).expect("fault-free probe").row_ids
    }

    #[test]
    fn empty_index_probes_nothing_and_charges_nothing() {
        let ix = int_index(&[]);
        assert!(ix.is_empty());
        assert_eq!(ix.height(), 0);
        assert_eq!(ix.num_pages(), 0);
        let p = ix.probe_point(&Value::Int(7)).expect("empty probe");
        assert!(p.row_ids.is_empty());
        assert!(p.io.is_empty());
        assert_eq!(p.node_searches, 0);
    }

    #[test]
    fn point_probe_finds_exactly_the_matching_rows() {
        // Keys shuffled relative to row order on purpose.
        let keys: Vec<i64> = (0..5000).map(|i| (i * 37) % 1000).collect();
        let ix = int_index(&keys);
        assert_eq!(ix.len(), 5000);
        assert!(ix.height() >= 2, "5000 entries should need interior nodes");
        for probe_key in [0i64, 1, 499, 999] {
            let expect: Vec<usize> = keys
                .iter()
                .enumerate()
                .filter(|(_, &k)| k == probe_key)
                .map(|(r, _)| r)
                .collect();
            let got = rows(
                &ix,
                KeyBound::Inclusive(&Value::Int(probe_key)),
                KeyBound::Inclusive(&Value::Int(probe_key)),
            );
            assert_eq!(got, expect, "key {probe_key}");
        }
        // A key outside the domain matches nothing.
        assert!(rows(
            &ix,
            KeyBound::Inclusive(&Value::Int(5000)),
            KeyBound::Inclusive(&Value::Int(5000)),
        )
        .is_empty());
    }

    #[test]
    fn duplicate_keys_spanning_leaves_are_all_found() {
        // One long run of duplicates wider than any single leaf, with
        // neighbours on both sides.
        let mut keys = vec![1i64; 10];
        keys.extend(std::iter::repeat_n(2i64, 3 * BTREE_FANOUT));
        keys.extend(std::iter::repeat_n(3i64, 10));
        let ix = int_index(&keys);
        let got = rows(
            &ix,
            KeyBound::Inclusive(&Value::Int(2)),
            KeyBound::Inclusive(&Value::Int(2)),
        );
        assert_eq!(got, (10..10 + 3 * BTREE_FANOUT).collect::<Vec<_>>());
    }

    #[test]
    fn range_bounds_at_page_boundaries() {
        // Sorted keys ⇒ row id == key; leaves break exactly every
        // BTREE_FANOUT entries, so FANOUT−1 / FANOUT / FANOUT+1 exercise
        // last-of-leaf, first-of-leaf and straddling bounds.
        let n = 4 * BTREE_FANOUT as i64;
        let keys: Vec<i64> = (0..n).collect();
        let ix = int_index(&keys);
        let f = BTREE_FANOUT as i64;
        for (lo, hi) in [
            (f - 1, f + 1),
            (f, f),
            (f, 2 * f - 1),
            (0, n - 1),
            (2 * f - 1, 2 * f),
        ] {
            let got = rows(
                &ix,
                KeyBound::Inclusive(&Value::Int(lo)),
                KeyBound::Inclusive(&Value::Int(hi)),
            );
            assert_eq!(got, (lo as usize..=hi as usize).collect::<Vec<_>>());
            // Exclusive bounds shave exactly the endpoints.
            let got = rows(
                &ix,
                KeyBound::Exclusive(&Value::Int(lo)),
                KeyBound::Exclusive(&Value::Int(hi)),
            );
            assert_eq!(
                got,
                (lo as usize + 1..hi as usize).collect::<Vec<_>>(),
                "exclusive ({lo}, {hi})"
            );
        }
        // Half-open ranges.
        assert_eq!(
            rows(
                &ix,
                KeyBound::Unbounded,
                KeyBound::Exclusive(&Value::Int(3))
            ),
            vec![0, 1, 2]
        );
        assert_eq!(
            rows(
                &ix,
                KeyBound::Inclusive(&Value::Int(n - 2)),
                KeyBound::Unbounded
            ),
            vec![n as usize - 2, n as usize - 1]
        );
    }

    #[test]
    fn probe_charges_v4_index_io_only() {
        let keys: Vec<i64> = (0..5000).collect();
        let ix = int_index(&keys);
        let p = ix.probe_point(&Value::Int(1234)).expect("probe");
        // Cold probe: one miss per level of the descent.
        assert_eq!(p.io.index_ios, ix.height() as u64);
        assert_eq!(p.io.index_bytes, ix.height() as u64 * PAGE_SIZE as u64);
        assert_eq!(p.io.random_ios, 0, "probes never charge the v1 classes");
        assert_eq!(p.io.sequential_bytes, 0);
        assert_eq!(p.io.retry_ios, 0);
        assert_eq!(p.backoff_ns, 0);
        assert!(p.node_searches > 0);
        // Warm re-probe of the same key: pure CPU, no I/O at all.
        let q = ix.probe_point(&Value::Int(1234)).expect("warm probe");
        assert!(q.io.is_empty());
        assert_eq!(q.row_ids, p.row_ids);
    }

    #[test]
    fn probe_io_is_returned_not_pooled() {
        let keys: Vec<i64> = (0..5000).collect();
        let p = pool();
        let entries = keys
            .iter()
            .enumerate()
            .map(|(row, &k)| (Value::Int(k), row))
            .collect();
        let ix = BTreeIndex::build(FIRST_INDEX_ID, ColumnType::Int, entries, Arc::clone(&p));
        ix.probe_point(&Value::Int(42)).expect("probe");
        assert!(p.take_io().is_empty(), "probe charges belong to the caller");
    }

    #[test]
    fn mismatched_key_type_matches_nothing() {
        let ix = int_index(&[1, 2, 3]);
        let p = ix.probe_point(&Value::str("x")).expect("typed miss");
        assert!(p.row_ids.is_empty());
        assert!(p.io.is_empty());
    }

    #[test]
    fn string_keys_work() {
        let names = ["delta", "alpha", "echo", "bravo", "alpha"];
        let entries = names
            .iter()
            .enumerate()
            .map(|(row, n)| (Value::str(n), row))
            .collect();
        let ix = BTreeIndex::build(FIRST_INDEX_ID, ColumnType::Str, entries, pool());
        let p = ix.probe_point(&Value::str("alpha")).expect("probe");
        assert_eq!(p.row_ids, vec![1, 4]);
        let r = ix
            .probe_range(
                KeyBound::Inclusive(&Value::str("b")),
                KeyBound::Exclusive(&Value::str("e")),
            )
            .expect("range");
        assert_eq!(r.row_ids, vec![0, 3], "bravo and delta");
    }

    #[test]
    fn faulted_index_page_reports_typed_error_with_index_id() {
        use eco_simhw::fault::FaultPlan;
        let keys: Vec<i64> = (0..5000).collect();
        let p = pool();
        let entries = keys
            .iter()
            .enumerate()
            .map(|(row, &k)| (Value::Int(k), row))
            .collect();
        let ix = BTreeIndex::build(FIRST_INDEX_ID, ColumnType::Int, entries, Arc::clone(&p));
        // Saturated plan: every page of the index faults somehow. Find a
        // probe that dies on a permanently-unreadable page.
        let plan = FaultPlan::new(42, 1_000_000);
        p.set_fault_plan(plan);
        let Some((page, _)) = plan
            .faults_in_table(ix.index_id(), ix.num_pages() as u64)
            .into_iter()
            .find(|(_, f)| matches!(f, PageFault::Permanent))
        else {
            panic!("saturated plan has a permanent fault");
        };
        // Probing every key must eventually touch that page.
        let mut saw_permanent = false;
        for k in 0..5000 {
            match ix.probe_point(&Value::Int(k)) {
                Ok(_) => {}
                Err(IoError::Permanent { table, page: pg }) => {
                    assert_eq!(table, ix.index_id());
                    assert_eq!(u64::from(pg), page);
                    saw_permanent = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_permanent, "some probe crosses the dead page");
    }
}
