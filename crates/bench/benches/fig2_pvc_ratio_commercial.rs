//! Fig 2: commercial profile — energy-ratio vs time-ratio for small and
//! medium voltage settings, with the iso-EDP reference curve.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::{bench_db_commercial, BENCH_SCALE};
use eco_core::experiments;
use eco_core::metrics::{distance_to_iso_edp, iso_edp_curve};
use eco_core::pvc::PvcSweep;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fig = experiments::fig2(BENCH_SCALE);
    println!(
        "{}",
        experiments::pvc_report("Fig 2: commercial profile, small + medium voltage", &fig)
    );
    println!(
        "iso-EDP curve samples: {:?}\n",
        iso_edp_curve(&[0.4, 0.6, 0.8, 1.0])
    );

    let db = bench_db_commercial();
    db.warm_up();
    let (_, trace) = db.trace_q5_workload();
    c.bench_function("fig2/paper_grid_sweep", |b| {
        b.iter(|| black_box(PvcSweep::paper_grid(db.machine(), black_box(&trace))))
    });
    c.bench_function("fig2/iso_edp_distance", |b| {
        b.iter(|| black_box(distance_to_iso_edp(black_box(0.61), black_box(1.03))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
