//! Ablation: residual warm-run disk traffic (paper §3.5 observes the
//! disk stays busy even with a warm, memory-resident database).

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::bench_db_commercial;
use eco_simhw::machine::MachineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("Ablation: warm re-read interval (commercial profile)");
    for every in [None, Some(5000u64), Some(2500), Some(500)] {
        let db = bench_db_commercial();
        db.catalog().pool().set_warm_reread_every(every);
        db.warm_up();
        let r = db.run_q5_workload(MachineConfig::stock());
        println!(
            "  every {:>6}: {:.3}s, disk {:.2} J, disk/CPU {:.3}",
            every.map_or("off".to_string(), |e| e.to_string()),
            r.measurement.elapsed_s,
            r.measurement.disk_joules,
            r.measurement.disk_joules / r.measurement.cpu_joules
        );
    }
    println!();

    let db = bench_db_commercial();
    db.warm_up();
    let mut g = c.benchmark_group("ablation_warm_reread");
    g.sample_size(10);
    g.bench_function("warm_workload", |b| {
        b.iter(|| black_box(db.run_q5_workload(MachineConfig::stock())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
