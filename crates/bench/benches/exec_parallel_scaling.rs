//! Morsel-driven parallel execution vs single-threaded batch execution
//! over TPC-H Q1/Q5/Q6 on the memory engine — the wall-clock payoff of
//! `exec::execute_parallel`, whose merged energy ledger is bit-identical
//! to serial execution at every worker count
//! (`tests/integration_parallel.rs`).
//!
//! Prints an explicit speedup summary first (median of several timed
//! runs per worker count), then registers the individual criterion
//! benchmarks. Speedups track the host's physical core count: on a
//! single-core container expect ~1.0x; the CI `bench-smoke` job records
//! the multi-core numbers as `BENCH_parallel_scaling.json`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::bench_db_memory;
use eco_core::server::EcoDb;
use eco_query::context::ExecCtx;
use eco_query::exec::execute_parallel;
use eco_query::ops::BoxedOp;
use eco_query::plans;
use std::hint::black_box;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

type PlanFn = fn(&EcoDb) -> BoxedOp;

fn q1(db: &EcoDb) -> BoxedOp {
    plans::q1_plan(db.catalog(), 90)
}

fn q5(db: &EcoDb) -> BoxedOp {
    plans::q5_plan(db.catalog(), &eco_tpch::Q5Params::new("ASIA", 1994))
}

fn q6(db: &EcoDb) -> BoxedOp {
    plans::q6_plan(db.catalog(), 1994, 6, 24)
}

const QUERIES: [(&str, PlanFn); 3] = [("q1", q1), ("q5", q5), ("q6", q6)];

fn run(db: &EcoDb, plan_fn: PlanFn, workers: usize) -> usize {
    let mut plan = plan_fn(db);
    let mut ctx = ExecCtx::new();
    execute_parallel(plan.as_mut(), &mut ctx, workers).len()
}

fn median_time(mut f: impl FnMut() -> usize, samples: usize) -> Duration {
    black_box(f()); // warm-up
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn speedup_report(db: &EcoDb) {
    println!("== morsel-driven parallel execution (memory engine) ==");
    for (name, plan_fn) in QUERIES {
        let base = median_time(|| run(db, plan_fn, 1), 7);
        print!("{name}: 1w {:>9.3} ms ", base.as_secs_f64() * 1e3);
        for workers in &WORKER_COUNTS[1..] {
            let t = median_time(|| run(db, plan_fn, *workers), 7);
            print!(
                " {workers}w {:>9.3} ms ({:.2}x)",
                t.as_secs_f64() * 1e3,
                base.as_secs_f64() / t.as_secs_f64()
            );
        }
        println!();
    }
}

fn bench(c: &mut Criterion) {
    let db = bench_db_memory();
    speedup_report(&db);

    let mut g = c.benchmark_group("exec_parallel_scaling");
    g.sample_size(10);
    for (name, plan_fn) in QUERIES {
        for workers in WORKER_COUNTS {
            g.bench_function(format!("{name}/workers={workers}"), |b| {
                b.iter(|| black_box(run(&db, plan_fn, workers)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
