//! Fig 1: TPC-H Q5 workload on the commercial profile — joules vs
//! seconds for stock + settings A/B/C (5/10/15 % underclock, medium
//! voltage downgrade).

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::{bench_db_commercial, BENCH_SCALE};
use eco_core::experiments;
use eco_core::pvc::PvcSweep;
use eco_simhw::cpu::VoltageSetting;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::pvc_report(
            "Fig 1: Q5 workload, commercial profile (medium voltage)",
            &experiments::fig1(BENCH_SCALE)
        )
    );

    let db = bench_db_commercial();
    db.warm_up();
    let (_, trace) = db.trace_q5_workload();

    // The sweep itself: price the workload under the A/B/C settings.
    c.bench_function("fig1/pvc_sweep_medium", |b| {
        b.iter(|| {
            black_box(PvcSweep::run(
                db.machine(),
                black_box(&trace),
                &[0.05, 0.10, 0.15],
                &[VoltageSetting::Medium],
            ))
        })
    });

    // The workload execution that produces the trace (engine work).
    let mut g = c.benchmark_group("fig1/execute");
    g.sample_size(10);
    g.bench_function("q5_workload_warm", |b| {
        b.iter(|| black_box(db.trace_q5_workload()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
