//! Fig 5: disk throughput and energy/KB for random vs sequential reads
//! at 4/8/16/32 KB block sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_core::experiments;
use eco_simhw::disk::{AccessPattern, DiskSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig5_report(&experiments::fig5()));

    let disk = DiskSpec::default();
    let total: u64 = (16u64 << 30) / 10;
    for pattern in [AccessPattern::Sequential, AccessPattern::Random] {
        for block in [4u64 << 10, 32 << 10] {
            let name = format!("fig5/{}_{}k", pattern.name(), block >> 10);
            c.bench_function(&name, |b| {
                b.iter(|| {
                    black_box(disk.access_cost(
                        black_box(pattern),
                        black_box(total),
                        black_box(block),
                    ))
                })
            });
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
