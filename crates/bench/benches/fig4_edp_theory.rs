//! Fig 4: observed EDP vs the theoretical `EDP ∝ V²/F` model for the
//! small and medium voltage settings.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::{bench_db_memory, BENCH_SCALE};
use eco_core::experiments;
use eco_core::pvc::theoretical_edp_ratio;
use eco_simhw::cpu::{CpuConfig, VoltageSetting};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::fig4_report(&experiments::fig4(BENCH_SCALE))
    );

    let db = bench_db_memory();
    c.bench_function("fig4/theoretical_model", |b| {
        b.iter(|| {
            black_box(theoretical_edp_ratio(
                db.machine(),
                black_box(&CpuConfig::underclocked(0.10, VoltageSetting::Medium)),
                black_box(0.94),
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
