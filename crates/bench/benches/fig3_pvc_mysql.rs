//! Fig 3: MySQL memory-engine profile — energy vs time ratios for the
//! PVC grid (the CPU-bound case with smaller savings).

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::{bench_db_memory, BENCH_SCALE};
use eco_core::experiments;
use eco_core::pvc::PvcSweep;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::pvc_report(
            "Fig 3: MySQL memory-engine profile",
            &experiments::fig3(BENCH_SCALE)
        )
    );

    let db = bench_db_memory();
    let (_, trace) = db.trace_q5_workload();
    c.bench_function("fig3/paper_grid_sweep", |b| {
        b.iter(|| black_box(PvcSweep::paper_grid(db.machine(), black_box(&trace))))
    });
    let mut g = c.benchmark_group("fig3/execute");
    g.sample_size(10);
    g.bench_function("q5_workload_memory", |b| {
        b.iter(|| black_box(db.trace_q5_workload()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
