//! Ablation: short-circuit vs exhaustive disjunction evaluation in the
//! QED merged scan (DESIGN.md §5: short-circuiting is what produces the
//! sublinear growth — and hence the diminishing returns — in Fig 6).

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::bench_db_memory;
use eco_core::qed::run_qed;
use eco_simhw::machine::MachineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let db = bench_db_memory();
    println!("Ablation: QED disjunction evaluation (batch 40)");
    for (name, sc) in [("short-circuit", true), ("exhaustive", false)] {
        let o = run_qed(&db, 40, MachineConfig::stock(), sc);
        println!(
            "  {name:14}: E ratio {:.3}, resp ratio {:.3}, EDP ratio {:.3}",
            o.energy_ratio, o.response_ratio, o.edp_ratio
        );
    }
    println!();

    let mut g = c.benchmark_group("ablation_qed");
    g.sample_size(10);
    g.bench_function("short_circuit", |b| {
        b.iter(|| black_box(db.trace_merged_selection(&eco_tpch::qed_workload(40), true)))
    });
    g.bench_function("exhaustive", |b| {
        b.iter(|| black_box(db.trace_merged_selection(&eco_tpch::qed_workload(40), false)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
