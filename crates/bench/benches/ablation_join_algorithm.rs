//! Ablation: operator-level energy — hash join vs sort-merge join on
//! the same input (paper §2: "rethinking join algorithms in this
//! context").

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::BENCH_SCALE;
use eco_core::experiments;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = experiments::operator_energy(BENCH_SCALE);
    println!("{}", experiments::operator_energy_report(&rows));

    let mut g = c.benchmark_group("ablation_join_algorithm");
    g.sample_size(10);
    g.bench_function("study", |b| {
        b.iter(|| black_box(experiments::operator_energy(black_box(0.004))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
