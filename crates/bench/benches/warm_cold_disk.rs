//! §3.5: warm vs cold runs — CPU vs disk joules split.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::{bench_db_commercial, BENCH_SCALE};
use eco_core::experiments;
use eco_simhw::machine::MachineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::warm_cold_report(&experiments::warm_cold(BENCH_SCALE))
    );

    let db = bench_db_commercial();
    let mut g = c.benchmark_group("warm_cold");
    g.sample_size(10);
    g.bench_function("cold_workload", |b| {
        b.iter(|| {
            db.flush_cache();
            black_box(db.run_q5_workload(MachineConfig::stock()))
        })
    });
    db.warm_up();
    g.bench_function("warm_workload", |b| {
        b.iter(|| black_box(db.run_q5_workload(MachineConfig::stock())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
