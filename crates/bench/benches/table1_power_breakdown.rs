//! Table 1: system power breakdown — bench the component power model
//! and print the reproduced build-up rows.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_core::experiments;
use eco_simhw::power::{table1_breakdown, CpuPowerModel};
use eco_simhw::psu::PsuSpec;
use eco_simhw::CpuSpec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::table1_report());
    let model = CpuPowerModel::new(CpuSpec::e8500());
    let psu = PsuSpec::default();
    c.bench_function("table1/power_breakdown", |b| {
        b.iter(|| black_box(table1_breakdown(black_box(&model), black_box(&psu))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
