//! Ablation: load-dependent voltage droop.
//!
//! The droop term is the mechanism behind the commercial-vs-MySQL
//! savings gap (DESIGN.md §5.4). This bench prints the medium-voltage
//! energy ratio at both utilization extremes and measures the pricing
//! path.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::{bench_db_commercial, bench_db_memory};
use eco_simhw::cpu::{CpuConfig, VoltageSetting};
use eco_simhw::machine::MachineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let pvc = MachineConfig::with_cpu(CpuConfig::underclocked(0.05, VoltageSetting::Medium));

    println!("Ablation: voltage droop (5% UC / medium, energy ratio vs stock)");
    for (name, db) in [
        ("commercial (low util)", bench_db_commercial()),
        ("mysql-memory (high util)", bench_db_memory()),
    ] {
        if name.starts_with("commercial") {
            db.warm_up();
        }
        let (_, trace) = db.trace_q5_workload();
        let stock = db.price(&trace, MachineConfig::stock());
        let m = db.price(&trace, pvc);
        println!(
            "  {name:26}: util {:.2}, E ratio {:.3}, busy V {:.3}",
            stock.utilization,
            m.cpu_joules / stock.cpu_joules,
            m.busy_voltage_v
        );
    }
    println!();

    let db = bench_db_memory();
    let (_, trace) = db.trace_q5_workload();
    c.bench_function("ablation_droop/price_pvc_setting", |b| {
        b.iter(|| black_box(db.price(black_box(&trace), pvc)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
