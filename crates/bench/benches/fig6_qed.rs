//! Fig 6: QED energy vs average per-query response time for batch
//! sizes 35/40/45/50 against the sequential baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::{bench_db_memory, BENCH_SCALE};
use eco_core::experiments;
use eco_core::qed::run_qed;
use eco_simhw::machine::MachineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::fig6_report(&experiments::fig6(BENCH_SCALE))
    );

    let db = bench_db_memory();
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    // Real engine work: merged scan vs the 35 individual scans.
    g.bench_function("merged_batch_35", |b| {
        b.iter(|| black_box(db.trace_merged_selection(&eco_tpch::qed_workload(35), true)))
    });
    g.bench_function("sequential_35", |b| {
        b.iter(|| {
            for q in eco_tpch::qed_workload(35) {
                black_box(db.trace_selection(&q));
            }
        })
    });
    g.bench_function("qed_experiment_batch_50", |b| {
        b.iter(|| black_box(run_qed(&db, 50, MachineConfig::stock(), true)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
