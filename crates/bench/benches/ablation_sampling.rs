//! Ablation: the paper's 1 Hz GUI-sampling methodology vs exact energy
//! integration (§3.1 discusses the sensor's drawbacks).

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::bench_db_memory;
use eco_simhw::machine::MachineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let db = bench_db_memory();
    let (_, trace) = db.trace_q5_workload();
    let m = db.price(&trace, MachineConfig::stock());
    let err = (m.cpu_joules_epu - m.cpu_joules).abs() / m.cpu_joules;
    println!("Ablation: EPU 1 Hz sampling vs exact integration");
    println!(
        "  exact {:.2} J, sampled {:.2} J, relative error {:.2}% over {:.2}s\n",
        m.cpu_joules,
        m.cpu_joules_epu,
        err * 100.0,
        m.elapsed_s
    );

    c.bench_function("ablation_sampling/measure_with_epu", |b| {
        b.iter(|| black_box(db.price(black_box(&trace), MachineConfig::stock())))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
