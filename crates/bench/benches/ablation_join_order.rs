//! Ablation: energy-aware plan choice — the same Q5 under two join
//! orders (filter pushdown vs late filtering) priced in joules (paper
//! §2's "query-level" opportunity).

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::bench_db_memory;
use eco_core::advisor::rank_plans_by_energy;
use eco_query::plans;
use eco_simhw::machine::MachineConfig;
use eco_tpch::Q5Params;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let db = bench_db_memory();
    let params = Q5Params::new("ASIA", 1994);
    let ranked = rank_plans_by_energy(
        &db,
        vec![
            ("pushdown", plans::q5_plan(db.catalog(), &params)),
            (
                "late-filter",
                plans::q5_plan_late_filter(db.catalog(), &params),
            ),
        ],
        MachineConfig::stock(),
    );
    println!("Ablation: Q5 join-order energy comparison");
    for p in &ranked {
        println!(
            "  {:<12}: {:.4} s, {:.3} J, EDP {:.4}",
            p.name,
            p.seconds,
            p.cpu_joules,
            p.edp()
        );
    }
    println!();

    let mut g = c.benchmark_group("ablation_join_order");
    g.sample_size(10);
    g.bench_function("pushdown_plan", |b| {
        b.iter(|| {
            let mut plan = plans::q5_plan(db.catalog(), &params);
            let mut ctx = eco_query::context::ExecCtx::new();
            black_box(eco_query::exec::execute(plan.as_mut(), &mut ctx))
        })
    });
    g.bench_function("late_filter_plan", |b| {
        b.iter(|| {
            let mut plan = plans::q5_plan_late_filter(db.catalog(), &params);
            let mut ctx = eco_query::context::ExecCtx::new();
            black_box(eco_query::exec::execute(plan.as_mut(), &mut ctx))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
