//! Scalar (tuple-at-a-time) vs batch (vectorized `Vec<Tuple>`) vs
//! columnar (typed column vectors + selection vectors) execution over
//! TPC-H Q1/Q3/Q5/Q6 on the memory engine — the wall-clock payoff of
//! the `next_batch` and `next_chunk` paths, whose energy ledgers are
//! bit-identical to scalar execution by construction
//! (`tests/integration_vectorized.rs`, `tests/integration_columnar.rs`).
//!
//! Prints an explicit speedup summary first (median of several timed
//! runs per mode), then registers the individual criterion benchmarks.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::bench_db_memory;
use eco_core::server::EcoDb;
use eco_query::context::ExecCtx;
use eco_query::exec::{execute, execute_columnar, execute_scalar};
use eco_query::ops::BoxedOp;
use eco_query::plans;
use std::hint::black_box;

type PlanFn = fn(&EcoDb) -> BoxedOp;

fn q1(db: &EcoDb) -> BoxedOp {
    plans::q1_plan(db.catalog(), 90)
}

fn q3(db: &EcoDb) -> BoxedOp {
    plans::q3_plan(
        db.catalog(),
        "BUILDING",
        eco_tpch::Date::from_ymd(1995, 3, 15),
    )
}

fn q5(db: &EcoDb) -> BoxedOp {
    plans::q5_plan(db.catalog(), &eco_tpch::Q5Params::new("ASIA", 1994))
}

fn q6(db: &EcoDb) -> BoxedOp {
    plans::q6_plan(db.catalog(), 1994, 6, 24)
}

const QUERIES: [(&str, PlanFn); 4] = [("q1", q1), ("q3", q3), ("q5", q5), ("q6", q6)];

fn run_scalar(db: &EcoDb, plan_fn: PlanFn) -> usize {
    let mut plan = plan_fn(db);
    let mut ctx = ExecCtx::new().with_batch_size(1);
    execute_scalar(plan.as_mut(), &mut ctx).len()
}

fn run_batch(db: &EcoDb, plan_fn: PlanFn) -> usize {
    let mut plan = plan_fn(db);
    let mut ctx = ExecCtx::new(); // default batch size (1024)
    execute(plan.as_mut(), &mut ctx).len()
}

fn run_columnar(db: &EcoDb, plan_fn: PlanFn) -> usize {
    let mut plan = plan_fn(db);
    let mut ctx = ExecCtx::new(); // default chunk size (1024)
    execute_columnar(plan.as_mut(), &mut ctx).len()
}

fn median_time(mut f: impl FnMut() -> usize, samples: usize) -> Duration {
    black_box(f()); // warm-up
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn speedup_report(db: &EcoDb) {
    println!("== scalar vs batch vs columnar execution (memory engine) ==");
    for (name, plan_fn) in QUERIES {
        let scalar = median_time(|| run_scalar(db, plan_fn), 7);
        let batch = median_time(|| run_batch(db, plan_fn), 7);
        let columnar = median_time(|| run_columnar(db, plan_fn), 7);
        let batch_speedup = scalar.as_secs_f64() / batch.as_secs_f64();
        let col_speedup = scalar.as_secs_f64() / columnar.as_secs_f64();
        let col_vs_batch = batch.as_secs_f64() / columnar.as_secs_f64();
        println!(
            "{name}: scalar {:>9.3} ms  batch {:>9.3} ms ({batch_speedup:.2}x)  \
             columnar {:>9.3} ms ({col_speedup:.2}x, {col_vs_batch:.2}x over batch)",
            scalar.as_secs_f64() * 1e3,
            batch.as_secs_f64() * 1e3,
            columnar.as_secs_f64() * 1e3,
        );
    }
}

fn bench(c: &mut Criterion) {
    let db = bench_db_memory();
    speedup_report(&db);

    let mut g = c.benchmark_group("exec_batch_vs_scalar");
    g.sample_size(10);
    for (name, plan_fn) in QUERIES {
        g.bench_function(format!("{name}/scalar"), |b| {
            b.iter(|| black_box(run_scalar(&db, plan_fn)))
        });
        g.bench_function(format!("{name}/batch"), |b| {
            b.iter(|| black_box(run_batch(&db, plan_fn)))
        });
        g.bench_function(format!("{name}/columnar"), |b| {
            b.iter(|| black_box(run_columnar(&db, plan_fn)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
