//! Ablation: p-state capping vs FSB underclocking (paper §3's
//! motivating comparison — capping is coarse and loses upper p-states;
//! underclocking is fine-grained and keeps them all).

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::bench_db_memory;
use eco_simhw::cpu::{CpuConfig, VoltageSetting};
use eco_simhw::machine::MachineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let db = bench_db_memory();
    let (_, trace) = db.trace_q5_workload();
    let stock = db.price(&trace, MachineConfig::stock());

    println!("Ablation: p-state capping vs underclocking (medium voltage)");
    let settings = [
        ("cap x9", CpuConfig::capped(9.0, VoltageSetting::Medium)),
        ("cap x8", CpuConfig::capped(8.0, VoltageSetting::Medium)),
        ("cap x7", CpuConfig::capped(7.0, VoltageSetting::Medium)),
        (
            "5% UC",
            CpuConfig::underclocked(0.05, VoltageSetting::Medium),
        ),
        (
            "10% UC",
            CpuConfig::underclocked(0.10, VoltageSetting::Medium),
        ),
        (
            "15% UC",
            CpuConfig::underclocked(0.15, VoltageSetting::Medium),
        ),
    ];
    for (name, cfg) in settings {
        let m = db.price(&trace, MachineConfig::with_cpu(cfg));
        println!(
            "  {name:7}: {:.2} GHz, E ratio {:.3}, T ratio {:.3}, EDP ratio {:.3}",
            cfg.top_freq_hz(&db.machine().cpu_spec) / 1e9,
            m.cpu_joules / stock.cpu_joules,
            m.elapsed_s / stock.elapsed_s,
            (m.cpu_joules * m.elapsed_s) / (stock.cpu_joules * stock.elapsed_s)
        );
    }
    println!();

    c.bench_function("ablation_pstate/price_capped", |b| {
        b.iter(|| {
            black_box(db.price(
                black_box(&trace),
                MachineConfig::with_cpu(CpuConfig::capped(7.0, VoltageSetting::Medium)),
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
