//! # eco-bench — benchmark harness for the ecoDB reproduction
//!
//! One Criterion bench per table/figure of Lang & Patel (CIDR 2009),
//! plus ablation benches for the design choices called out in
//! `DESIGN.md` §4. The `repro` binary prints every table and figure
//! (`cargo run -p eco-bench --bin repro --release`), and is what
//! `EXPERIMENTS.md` records.

use eco_core::server::{EcoDb, EngineProfile};

pub mod artifact;
pub use artifact::{artifact_path, write_artifact};

/// Scale factor used by the benches (small enough for Criterion's
/// repeated sampling; reproduction shapes are scale-free).
pub const BENCH_SCALE: f64 = 0.01;

/// Shared setup: a memory-engine database at the bench scale.
pub fn bench_db_memory() -> EcoDb {
    EcoDb::tpch(EngineProfile::MemoryEngine, BENCH_SCALE)
}

/// Shared setup: a commercial-profile database at the bench scale.
pub fn bench_db_commercial() -> EcoDb {
    EcoDb::tpch(EngineProfile::CommercialDisk, BENCH_SCALE)
}
