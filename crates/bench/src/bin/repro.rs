//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p eco-bench --bin repro --release [-- <scale>] [table1|fig1|...|all]
//! ```
//!
//! Prints the same rows/series the paper reports, at a configurable
//! scale factor (default 0.02; the paper used SF 1.0 for the commercial
//! DBMS, 0.125 for MySQL, 0.5 for QED on real hardware).

use eco_core::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = exp::DEFAULT_SCALE;
    let mut which: Vec<String> = Vec::new();
    for a in &args {
        if let Ok(s) = a.parse::<f64>() {
            scale = s;
        } else {
            which.push(a.to_lowercase());
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = [
            "table1", "fig1", "fig2", "fig3", "fig4", "warmcold", "fig5", "fig6", "openergy",
            "parallel", "index",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    println!("ecoDB reproduction of Lang & Patel, CIDR 2009 (scale factor {scale})");
    println!("====================================================================\n");

    for w in which {
        match w.as_str() {
            "table1" => println!("{}", exp::table1_report()),
            "fig1" => println!(
                "{}",
                exp::pvc_report(
                    "Fig 1: TPC-H Q5 workload on the commercial profile (medium voltage)",
                    &exp::fig1(scale)
                )
            ),
            "fig2" => println!(
                "{}",
                exp::pvc_report(
                    "Fig 2: commercial profile, small + medium voltage (ratios vs stock)",
                    &exp::fig2(scale)
                )
            ),
            "fig3" => println!(
                "{}",
                exp::pvc_report(
                    "Fig 3: MySQL memory-engine profile (ratios vs stock)",
                    &exp::fig3(scale)
                )
            ),
            "fig4" => println!("{}", exp::fig4_report(&exp::fig4(scale))),
            "warmcold" => println!("{}", exp::warm_cold_report(&exp::warm_cold(scale))),
            "fig5" => println!("{}", exp::fig5_report(&exp::fig5())),
            "fig6" => println!("{}", exp::fig6_report(&exp::fig6(scale))),
            "openergy" => println!(
                "{}",
                exp::operator_energy_report(&exp::operator_energy(scale))
            ),
            "parallel" => println!(
                "{}",
                exp::parallel_scaling_report(&exp::parallel_scaling(scale))
            ),
            "index" => println!(
                "{}",
                exp::index_crossover_report(&exp::index_crossover(scale))
            ),
            other => eprintln!(
                "unknown experiment {other:?} (try: table1 fig1..fig6 warmcold openergy parallel index all)"
            ),
        }
    }
}
