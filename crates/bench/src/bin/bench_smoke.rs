//! `bench_smoke` — the CI perf-trajectory recorder.
//!
//! Measures the morsel-parallel executor's wall-clock scaling on TPC-H
//! Q1/Q5/Q6 (memory engine), verifies the merged parallel ledger is
//! bit-identical to serial execution at every worker count, and writes
//! the medians + speedups as JSON for the workflow artifact:
//!
//! ```text
//! cargo run -p eco-bench --bin bench_smoke --release [-- <out.json>]
//! ```
//!
//! Defaults to `BENCH_parallel_scaling.json` in the current directory
//! (CI runs it from the repo root). Exits non-zero if any ledger or
//! row-identity check fails, so the smoke job guards correctness, not
//! just timing.

use std::time::{Duration, Instant};

use eco_bench::bench_db_memory;
use eco_core::server::EcoDb;
use eco_query::context::ExecCtx;
use eco_query::exec::{execute, execute_parallel};
use eco_query::ops::BoxedOp;
use eco_query::plans;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SAMPLES: usize = 7;

type PlanFn = fn(&EcoDb) -> BoxedOp;

fn q1(db: &EcoDb) -> BoxedOp {
    plans::q1_plan(db.catalog(), 90)
}

fn q5(db: &EcoDb) -> BoxedOp {
    plans::q5_plan(db.catalog(), &eco_tpch::Q5Params::new("ASIA", 1994))
}

fn q6(db: &EcoDb) -> BoxedOp {
    plans::q6_plan(db.catalog(), 1994, 6, 24)
}

const QUERIES: [(&str, PlanFn); 3] = [("q1", q1), ("q5", q5), ("q6", q6)];

fn median_ns(mut f: impl FnMut(), samples: usize) -> u128 {
    f(); // warm-up
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2].as_nanos()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel_scaling.json".to_string());
    let host_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let db = bench_db_memory();
    let mut failures = 0usize;
    let mut query_blobs = Vec::new();

    for (name, plan_fn) in QUERIES {
        // Serial reference for identity checks.
        let mut sctx = ExecCtx::new();
        let serial_rows = execute(plan_fn(&db).as_mut(), &mut sctx);

        let base_ns = median_ns(
            || {
                let mut plan = plan_fn(&db);
                let mut ctx = ExecCtx::new();
                std::hint::black_box(execute_parallel(plan.as_mut(), &mut ctx, 1).len());
            },
            SAMPLES,
        );

        let mut worker_blobs = Vec::new();
        for workers in WORKER_COUNTS {
            // Identity check at this worker count.
            let mut pctx = ExecCtx::new();
            let rows = execute_parallel(plan_fn(&db).as_mut(), &mut pctx, workers);
            let ledger_identical = rows == serial_rows
                && pctx.cpu == sctx.cpu
                && pctx.mem_stream_bytes == sctx.mem_stream_bytes
                && pctx.mem_random_accesses == sctx.mem_random_accesses
                && pctx.disk == sctx.disk;
            if !ledger_identical {
                eprintln!("FAIL: {name} at {workers} workers diverged from serial");
                failures += 1;
            }

            let ns = if workers == 1 {
                base_ns
            } else {
                median_ns(
                    || {
                        let mut plan = plan_fn(&db);
                        let mut ctx = ExecCtx::new();
                        std::hint::black_box(
                            execute_parallel(plan.as_mut(), &mut ctx, workers).len(),
                        );
                    },
                    SAMPLES,
                )
            };
            let speedup = base_ns as f64 / ns as f64;
            println!(
                "{name} workers={workers}: median {:.3} ms, speedup {speedup:.2}x, ledger_identical={ledger_identical}",
                ns as f64 / 1e6
            );
            worker_blobs.push(format!(
                "{{\"workers\":{workers},\"median_ns\":{ns},\"speedup\":{speedup:.4},\"ledger_identical\":{ledger_identical}}}"
            ));
        }
        query_blobs.push(format!("\"{name}\":[{}]", worker_blobs.join(",")));
    }

    let json = format!(
        "{{\"bench\":\"exec_parallel_scaling\",\"scale\":{},\"host_parallelism\":{host_workers},\"samples\":{SAMPLES},\"queries\":{{{}}}}}\n",
        eco_bench::BENCH_SCALE,
        query_blobs.join(",")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {out_path}");

    if failures > 0 {
        eprintln!("{failures} ledger-identity check(s) failed");
        std::process::exit(1);
    }
}
