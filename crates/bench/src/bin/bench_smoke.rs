//! `bench_smoke` — the CI perf-trajectory recorder.
//!
//! Two artifacts per run, both guarded by ledger-identity checks that
//! fail the job on mismatch:
//!
//! * `BENCH_parallel_scaling.json` — the morsel-parallel executor's
//!   wall-clock scaling on TPC-H Q1/Q5/Q6 (memory engine), with the
//!   merged parallel ledger verified bit-identical to serial execution
//!   at every worker count;
//! * `BENCH_columnar.json` — batch vs columnar medians and speedups on
//!   TPC-H Q1/Q6 (the scan/aggregate-bound queries the columnar path
//!   targets), with rows and ledgers verified identical across engines;
//! * `BENCH_throughput.json` — the eco-server under saturating session
//!   load: queries/sec × joules/query at 1/64/1k/10k sessions, online
//!   QED batching vs no-batching admission, with per-session
//!   ledger-identity and serial-replay flags verified at every point
//!   (and the ≥2x joules/query gain at 1k sessions enforced);
//! * `BENCH_faults.json` — the commercial-disk server under seeded
//!   recoverable fault plans of rising rate: joules/query and
//!   retry/backoff charges vs injected fault rate, with the zero-rate
//!   point required to carry zero schema-v2 retry classes (the
//!   fault-free bit-identity invariant), the base ledger classes
//!   bit-identical to the fault-free run at every rate, and
//!   per-session ledger identity verified at every point;
//! * `BENCH_compression.json` — compressed columnar pricing (ledger
//!   schema v3) on TPC-H Q1/Q6: per-query compression ratio, priced
//!   memory bytes and joules/query raw vs compressed, with compressed
//!   rows required bit-identical to raw, the priced-byte ratio required
//!   ≥2x, and compressed joules/query required strictly lower;
//! * `BENCH_index.json` — B-tree access paths (ledger schema v4) on
//!   selective `lineitem.l_orderkey` point/range selections: scan vs
//!   `IxScan` medians and speedups (≥10x required on both shapes),
//!   index rows required bit-identical to scan rows, the scan plan's
//!   ledger required bit-identical before/after `CREATE INDEX` with
//!   every v4 class zero on the index-free path, and the probe required
//!   to actually charge v4 index I/O.
//! * `BENCH_wal.json` — the durable write path (ledger schema v5):
//!   group-commit batch size × joules/txn and txns/sec on an all-DML
//!   session mix, with per-session ledger identity and the
//!   serial-replay identity verified at every point, `log_ios` required
//!   to equal the expected fsync count exactly, and the threshold-8
//!   point required ≥2x cheaper in joules/txn than per-statement fsync.
//!
//! ```text
//! cargo run -p eco-bench --bin bench_smoke --release \
//!     [-- <parallel.json> [<columnar.json> [<throughput.json> \
//!      [<faults.json> [<compression.json> [<index.json> [<wal.json>]]]]]]]
//! ```
//!
//! Paths default to `BENCH_parallel_scaling.json` /
//! `BENCH_columnar.json` / `BENCH_throughput.json` / `BENCH_faults.json`
//! / `BENCH_compression.json` / `BENCH_index.json` / `BENCH_wal.json`
//! in the current directory (CI runs it from the repo root). Exits
//! non-zero if any ledger or row-identity check fails, so the smoke
//! job guards correctness, not just timing.

use std::time::{Duration, Instant};

use eco_bench::{artifact_path, bench_db_commercial, bench_db_memory, write_artifact};
use eco_core::server::EcoDb;
use eco_query::context::ExecCtx;
use eco_query::exec::{execute, execute_columnar, execute_parallel, execute_scalar, ExecEngine};
use eco_query::ops::BoxedOp;
use eco_query::plans;
use eco_server::{
    plan_admission, replay_serial, session_workload, AdmissionConfig, EcoServer, Request,
    ServeReport, ServerConfig, SessionId, Statement,
};
use eco_simhw::fault::FaultPlan;
use eco_simhw::machine::MachineConfig;
use eco_simhw::trace::{OpClass, PhaseKind, PricingMode, WorkTrace};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SAMPLES: usize = 7;

type PlanFn = fn(&EcoDb) -> BoxedOp;

fn q1(db: &EcoDb) -> BoxedOp {
    plans::q1_plan(db.catalog(), 90)
}

fn q5(db: &EcoDb) -> BoxedOp {
    plans::q5_plan(db.catalog(), &eco_tpch::Q5Params::new("ASIA", 1994))
}

fn q6(db: &EcoDb) -> BoxedOp {
    plans::q6_plan(db.catalog(), 1994, 6, 24)
}

const QUERIES: [(&str, PlanFn); 3] = [("q1", q1), ("q5", q5), ("q6", q6)];

fn median_ns(mut f: impl FnMut(), samples: usize) -> u128 {
    f(); // warm-up
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2].as_nanos()
}

/// Batch-vs-columnar medians + identity flags for `BENCH_columnar.json`.
/// Returns the JSON blob and the number of identity failures.
fn columnar_report(db: &EcoDb) -> (String, usize) {
    let mut failures = 0usize;
    let mut blobs = Vec::new();
    for (name, plan_fn) in [("q1", q1 as PlanFn), ("q6", q6 as PlanFn)] {
        // Identity: scalar is the reference; batch and columnar must
        // match its rows and its full ledger bit-for-bit.
        let mut sctx = ExecCtx::new().with_batch_size(1);
        let scalar_rows = execute_scalar(plan_fn(db).as_mut(), &mut sctx);
        let mut bctx = ExecCtx::new();
        let batch_rows = execute(plan_fn(db).as_mut(), &mut bctx);
        let mut cctx = ExecCtx::new();
        let columnar_rows = execute_columnar(plan_fn(db).as_mut(), &mut cctx);
        let identical = |ctx: &ExecCtx, rows: &[Vec<eco_storage::Value>]| {
            rows == &scalar_rows[..]
                && ctx.cpu == sctx.cpu
                && ctx.mem_stream_bytes == sctx.mem_stream_bytes
                && ctx.mem_random_accesses == sctx.mem_random_accesses
                && ctx.disk == sctx.disk
                && ctx.pred_evals == sctx.pred_evals
        };
        let batch_identical = identical(&bctx, &batch_rows);
        let columnar_identical = identical(&cctx, &columnar_rows);
        if !batch_identical || !columnar_identical {
            eprintln!(
                "FAIL: {name} engine identity (batch={batch_identical}, columnar={columnar_identical})"
            );
            failures += 1;
        }

        let batch_ns = median_ns(
            || {
                let mut ctx = ExecCtx::new();
                std::hint::black_box(execute(plan_fn(db).as_mut(), &mut ctx).len());
            },
            SAMPLES,
        );
        let columnar_ns = median_ns(
            || {
                let mut ctx = ExecCtx::new();
                std::hint::black_box(execute_columnar(plan_fn(db).as_mut(), &mut ctx).len());
            },
            SAMPLES,
        );
        let speedup = batch_ns as f64 / columnar_ns as f64;
        println!(
            "{name} columnar: batch {:.3} ms, columnar {:.3} ms, speedup {speedup:.2}x, \
             ledger_identical={columnar_identical}",
            batch_ns as f64 / 1e6,
            columnar_ns as f64 / 1e6,
        );
        blobs.push(format!(
            "\"{name}\":{{\"batch_median_ns\":{batch_ns},\"columnar_median_ns\":{columnar_ns},\
             \"speedup\":{speedup:.4},\"batch_ledger_identical\":{batch_identical},\
             \"columnar_ledger_identical\":{columnar_identical}}}"
        ));
    }
    let json = format!(
        "{{\"bench\":\"exec_columnar_vs_batch\",\"scale\":{},\"samples\":{SAMPLES},\"queries\":{{{}}}}}\n",
        eco_bench::BENCH_SCALE,
        blobs.join(",")
    );
    (json, failures)
}

/// Eco-server throughput grid for `BENCH_throughput.json`: queries/sec
/// × joules/query under saturating offered load, online QED batching vs
/// the no-batching admission baseline, every point flagged with the
/// per-session ledger identity and the serve-vs-serial-replay identity.
/// Returns the JSON blob and the number of failed checks.
fn throughput_report() -> (String, usize) {
    const WORKERS: usize = 2;
    const RATE_QPS: f64 = 50_000.0;
    const SEED: u64 = 0xEC0;
    // 10k unbatched = 10k full scans; the baseline stops at 1k, which
    // is where the acceptance ratio is read.
    const SESSIONS: [usize; 4] = [1, 64, 1_000, 10_000];
    const UNBATCHED_CAP: usize = 1_000;

    // Columnar engine: same ledgers as batch execution, traces are just
    // cheaper to produce at 10k sessions.
    let db = bench_db_memory().with_engine(ExecEngine::Columnar);
    let plan = plan_admission(&db, &AdmissionConfig::default());
    let mut failures = 0usize;
    let mut blobs = Vec::new();
    let mut gain_at_1k = 0.0;

    // One JSON entry per (session count, admission mode); `identity`
    // is the per-session fork/merge equality AND the serve-vs-serial-
    // replay equality, both bit-exact.
    let mode_blob = |name: &str, sessions: usize, report: &ServeReport| -> (String, bool) {
        let identity = report.ledger_identity()
            && replay_serial(&db, &report.dispatches, WORKERS, true) == report.ledger;
        if !identity {
            eprintln!("FAIL: {name} at {sessions} sessions broke ledger identity");
        }
        println!(
            "server {sessions} sessions {name}: {:.0} qps, {:.4} mJ/query, ledger_identical={identity}",
            report.queries_per_second(),
            report.joules_per_query() * 1e3,
        );
        let blob = format!(
            "\"{name}\":{{\"served\":{},\"dispatches\":{},\"qps\":{:.4},\
             \"cpu_joules_per_query\":{:.6},\"wall_joules_per_query\":{:.6},\
             \"avg_response_s\":{:.6},\"avg_queue_delay_s\":{:.6},\"ledger_identical\":{identity}}}",
            report.served,
            report.dispatches.len(),
            report.queries_per_second(),
            report.joules_per_query(),
            report.wall_joules_per_query(),
            report.avg_response_s(),
            report.avg_queue_delay_s(),
        );
        (blob, identity)
    };

    for sessions in SESSIONS {
        let requests = session_workload(sessions, RATE_QPS, SEED);
        let batched =
            EcoServer::new(&db, ServerConfig::batched(WORKERS, plan.threshold)).serve(&requests);
        let (blob, identity) = mode_blob("batched", sessions, &batched);
        failures += usize::from(!identity);
        let mut entries = vec![blob];
        if sessions <= UNBATCHED_CAP {
            let unbatched = EcoServer::new(&db, ServerConfig::unbatched(WORKERS)).serve(&requests);
            let (blob, identity) = mode_blob("unbatched", sessions, &unbatched);
            failures += usize::from(!identity);
            entries.push(blob);
            if sessions == 1_000 {
                gain_at_1k = unbatched.joules_per_query() / batched.joules_per_query();
            }
        }
        blobs.push(format!("\"{sessions}\":{{{}}}", entries.join(",")));
    }

    println!("server joules/query gain at 1k sessions: {gain_at_1k:.2}x");
    if gain_at_1k < 2.0 {
        eprintln!("FAIL: joules/query gain at 1k sessions {gain_at_1k:.2} < 2.0");
        failures += 1;
    }
    let json = format!(
        "{{\"bench\":\"server_throughput\",\"scale\":{},\"workers\":{WORKERS},\
         \"threshold\":{},\"rate_qps\":{RATE_QPS},\"gain_at_1k\":{gain_at_1k:.4},\
         \"sessions\":{{{}}}}}\n",
        eco_bench::BENCH_SCALE,
        plan.threshold,
        blobs.join(",")
    );
    (json, failures)
}

/// Joules/query vs injected fault rate for `BENCH_faults.json`: the
/// commercial-disk server serving the same session mix under seeded
/// *recoverable* fault plans of rising rate (permanent faults demoted
/// to worst-case transients, so every point completes in full and the
/// curve isolates the priced cost of fault pressure). Checks at every
/// point: full service, per-session fork/merge ledger identity, and
/// the base ledger classes (retry/backoff zeroed) bit-identical to
/// the zero-rate run; the zero-rate point itself must carry zero
/// schema-v2 retry classes (`retry_ios`, `retry_bytes`, `backoff_ns`)
/// — the fault-free bit-identity invariant on the perf path. Returns
/// the JSON blob and the number of failed checks.
fn faults_report() -> (String, usize) {
    const WORKERS: usize = 2;
    const SESSIONS: usize = 64;
    const RATE_QPS: f64 = 5_000.0;
    const SEED: u64 = 0xFA17;
    const THRESHOLD: usize = 4;
    const FAULT_RATES_PPM: [u32; 5] = [0, 5_000, 20_000, 80_000, 200_000];

    let db = bench_db_commercial();
    let requests = session_workload(SESSIONS, RATE_QPS, SEED);
    let mut failures = 0usize;
    let mut blobs = Vec::new();
    let mut clean_ledger = None;

    for rate_ppm in FAULT_RATES_PPM {
        db.set_fault_plan(FaultPlan::new(SEED, rate_ppm).recoverable());
        db.flush_cache(); // faults fire on buffer-pool misses only
        let report =
            EcoServer::new(&db, ServerConfig::batched(WORKERS, THRESHOLD)).serve(&requests);

        let mut identity = report.ledger_identity() && report.served == SESSIONS;
        let mut base = report.ledger.clone();
        base.disk.retry_ios = 0;
        base.disk.retry_bytes = 0;
        base.backoff_ns = 0;
        match &clean_ledger {
            None => {
                // The zero-rate point: schema-v2 classes must be zero.
                identity &= base == report.ledger;
                clean_ledger = Some(base);
            }
            // Faulted points differ from fault-free only in the
            // explicitly priced v2 retry/backoff classes.
            Some(clean) => identity &= &base == clean,
        }
        if !identity {
            eprintln!("FAIL: fault rate {rate_ppm} ppm broke ledger identity or service");
            failures += 1;
        }
        println!(
            "faults {rate_ppm} ppm: served {}/{SESSIONS}, {:.4} mJ/query, \
             retry_ios {}, backoff {} ns, degraded={}, ledger_identical={identity}",
            report.served,
            report.joules_per_query() * 1e3,
            report.ledger.disk.retry_ios,
            report.ledger.backoff_ns,
            report.degraded,
        );
        blobs.push(format!(
            "{{\"rate_ppm\":{rate_ppm},\"served\":{},\"failed\":{},\"shed\":{},\
             \"io_failed\":{},\"degraded\":{},\"retry_ios\":{},\"retry_bytes\":{},\
             \"backoff_ns\":{},\"cpu_joules_per_query\":{:.6},\
             \"wall_joules_per_query\":{:.6},\"ledger_identical\":{identity}}}",
            report.served,
            report.failed,
            report.shed,
            report.io_failed,
            report.degraded,
            report.ledger.disk.retry_ios,
            report.ledger.disk.retry_bytes,
            report.ledger.backoff_ns,
            report.joules_per_query(),
            report.wall_joules_per_query(),
        ));
    }
    db.set_fault_plan(FaultPlan::none());
    db.flush_cache();

    let json = format!(
        "{{\"bench\":\"server_fault_injection\",\"scale\":{},\"workers\":{WORKERS},\
         \"threshold\":{THRESHOLD},\"sessions\":{SESSIONS},\"rate_qps\":{RATE_QPS},\
         \"seed\":{SEED},\"points\":[{}]}}\n",
        eco_bench::BENCH_SCALE,
        blobs.join(",")
    );
    (json, failures)
}

/// Compressed-pricing gains for `BENCH_compression.json`: per-query
/// priced memory bytes and joules/query under [`PricingMode::Raw`] vs
/// [`PricingMode::Compressed`] on the scan-bound queries (ledger schema
/// v3, columnar engine, memory storage). Three checks fail the job per
/// query: compressed rows must be bit-identical to raw, the priced-byte
/// compression ratio must be ≥2x, and compressed joules/query must be
/// strictly lower. Returns the JSON blob and the failure count.
fn compression_report(db: &EcoDb) -> (String, usize) {
    let mut failures = 0usize;
    let mut blobs = Vec::new();
    let machine = db.machine();
    let config = MachineConfig::stock();

    let run = |pricing: PricingMode, plan_fn: PlanFn, name: &str| {
        let mut ctx = ExecCtx::new().with_columnar(true).with_pricing(pricing);
        let rows = execute_columnar(plan_fn(db).as_mut(), &mut ctx);
        let bytes = ctx.mem_stream_bytes;
        let mut trace = WorkTrace::new();
        trace.push(ctx.take_phase(PhaseKind::Execute, name));
        let m = machine.measure(&trace, &config);
        (rows, bytes, m.cpu_joules + m.dram_joules)
    };

    for (name, plan_fn) in [("q1", q1 as PlanFn), ("q6", q6 as PlanFn)] {
        let (raw_rows, raw_bytes, raw_joules) = run(PricingMode::Raw, plan_fn, name);
        let (comp_rows, comp_bytes, comp_joules) = run(PricingMode::Compressed, plan_fn, name);

        let rows_identical = comp_rows == raw_rows;
        let ratio = raw_bytes as f64 / comp_bytes as f64;
        let ratio_ok = ratio >= 2.0;
        let joules_ok = comp_joules < raw_joules;
        if !rows_identical || !ratio_ok || !joules_ok {
            eprintln!(
                "FAIL: {name} compression (rows_identical={rows_identical}, \
                 ratio={ratio:.2}, joules {comp_joules:.6} vs {raw_joules:.6})"
            );
            failures += 1;
        }
        println!(
            "{name} compressed: priced bytes {raw_bytes} -> {comp_bytes} ({ratio:.2}x), \
             joules/query {raw_joules:.5} -> {comp_joules:.5}, rows_identical={rows_identical}"
        );
        blobs.push(format!(
            "\"{name}\":{{\"raw_priced_bytes\":{raw_bytes},\"compressed_priced_bytes\":{comp_bytes},\
             \"compression_ratio\":{ratio:.4},\"raw_joules_per_query\":{raw_joules:.6},\
             \"compressed_joules_per_query\":{comp_joules:.6},\"rows_identical\":{rows_identical},\
             \"ratio_ge_2x\":{ratio_ok},\"joules_lower\":{joules_ok}}}"
        ));
    }
    let json = format!(
        "{{\"bench\":\"compressed_pricing\",\"scale\":{},\"queries\":{{{}}}}}\n",
        eco_bench::BENCH_SCALE,
        blobs.join(",")
    );
    (json, failures)
}

/// Scan-vs-B-tree access paths for `BENCH_index.json` (ledger schema
/// v4): warm point and narrow-range selections on
/// `lineitem.l_orderkey`, each run as a full sequential scan and as an
/// `IxScan` probe. Checks that fail the job: index rows bit-identical
/// to scan rows; probe ≥10x faster than the scan on both shapes;
/// `CREATE INDEX` leaves the scan plan's ledger bit-identical with
/// every v4 class zero (the index-free bit-identity invariant on the
/// perf path); and the first (cold) probe actually charges v4 index
/// I/O. Returns the JSON blob and the failure count.
fn index_report() -> (String, usize) {
    const MIN_SPEEDUP: f64 = 10.0;
    let db = bench_db_commercial();
    // The commercial profile's residual warm re-reads advance a
    // pool-wide hit counter, smearing a few disk charges across runs;
    // silence them so warm before/after ledgers compare bit-for-bit.
    db.catalog().pool().set_warm_reread_every(None);
    let mut failures = 0usize;

    let li = &db.source().lineitem;
    let min_key = li.iter().map(|l| l.l_orderkey).min().unwrap_or(1);
    let max_key = li.iter().map(|l| l.l_orderkey).max().unwrap_or(1);
    let point_key = li[li.len() / 2].l_orderkey;
    let range_hi = min_key + (max_key - min_key) / 500; // ~0.2 % of keyspace
    let shapes: [(&str, i64, i64); 2] = [
        ("point", point_key, point_key),
        ("range", min_key, range_hi),
    ];

    let run_scan = |lo: i64, hi: i64| {
        let mut ctx = ExecCtx::new();
        let rows = execute(
            plans::orderkey_range_plan(db.catalog(), lo, hi).as_mut(),
            &mut ctx,
        );
        (rows, ctx)
    };

    // Warm the pool, then record the index-free scan ledgers.
    let _ = run_scan(min_key, max_key);
    let before: Vec<_> = shapes.iter().map(|&(_, lo, hi)| run_scan(lo, hi)).collect();

    db.create_index("ix_lineitem_orderkey", "lineitem", "l_orderkey")
        .expect("disk profile indexes l_orderkey");

    let mut blobs = Vec::new();
    for (&(name, lo, hi), (scan_rows, scan_ctx)) in shapes.iter().zip(&before) {
        // Creating the index must not disturb the scan plan's ledger.
        let (rows_after, ctx_after) = run_scan(lo, hi);
        let scan_ledger_identical = rows_after == *scan_rows
            && ctx_after.cpu == scan_ctx.cpu
            && ctx_after.mem_stream_bytes == scan_ctx.mem_stream_bytes
            && ctx_after.mem_random_accesses == scan_ctx.mem_random_accesses
            && ctx_after.disk == scan_ctx.disk;
        let v4_zero = ctx_after.disk.index_ios == 0
            && ctx_after.disk.index_bytes == 0
            && ctx_after.cpu.count(OpClass::NodeSearch) == 0;

        // First probe: index pages are cold (they materialize lazily),
        // so this run must carry the v4 index-I/O charges.
        let mut ictx = ExecCtx::new();
        let ix_rows = execute(
            plans::orderkey_range_plan_indexed(db.catalog(), lo, hi)
                .expect("index registered above")
                .as_mut(),
            &mut ictx,
        );
        let rows_identical = ix_rows == *scan_rows;
        let index_ios = ictx.disk.index_ios;
        let probe_charged = index_ios > 0 && ictx.cpu.count(OpClass::NodeSearch) > 0;

        let scan_ns = median_ns(
            || {
                let mut ctx = ExecCtx::new();
                std::hint::black_box(
                    execute(
                        plans::orderkey_range_plan(db.catalog(), lo, hi).as_mut(),
                        &mut ctx,
                    )
                    .len(),
                );
            },
            SAMPLES,
        );
        let index_ns = median_ns(
            || {
                let mut ctx = ExecCtx::new();
                std::hint::black_box(
                    execute(
                        plans::orderkey_range_plan_indexed(db.catalog(), lo, hi)
                            .expect("index registered above")
                            .as_mut(),
                        &mut ctx,
                    )
                    .len(),
                );
            },
            SAMPLES,
        );
        let speedup = scan_ns as f64 / index_ns as f64;
        let fast_enough = speedup >= MIN_SPEEDUP;
        if !rows_identical || !scan_ledger_identical || !v4_zero || !probe_charged || !fast_enough {
            eprintln!(
                "FAIL: index {name} (rows_identical={rows_identical}, \
                 scan_ledger_identical={scan_ledger_identical}, v4_zero={v4_zero}, \
                 probe_charged={probe_charged}, speedup={speedup:.2})"
            );
            failures += 1;
        }
        println!(
            "{name} index: scan {:.3} ms, probe {:.4} ms, speedup {speedup:.1}x, rows {}, \
             index_ios {index_ios}, ledger_identical={scan_ledger_identical}",
            scan_ns as f64 / 1e6,
            index_ns as f64 / 1e6,
            scan_rows.len(),
        );
        blobs.push(format!(
            "\"{name}\":{{\"rows\":{},\"scan_median_ns\":{scan_ns},\"index_median_ns\":{index_ns},\
             \"speedup\":{speedup:.4},\"cold_index_ios\":{index_ios},\
             \"rows_identical\":{rows_identical},\
             \"scan_ledger_identical\":{scan_ledger_identical},\"v4_zero_on_scan\":{v4_zero},\
             \"probe_charged_v4\":{probe_charged}}}",
            scan_rows.len(),
        ));
    }
    let json = format!(
        "{{\"bench\":\"index_access_path\",\"scale\":{},\"samples\":{SAMPLES},\
         \"min_speedup\":{MIN_SPEEDUP},\"queries\":{{{}}}}}\n",
        eco_bench::BENCH_SCALE,
        blobs.join(",")
    );
    (json, failures)
}

/// Group-commit economics for `BENCH_wal.json` (ledger schema v5): a
/// pure-DML session mix on the commercial-disk profile served at
/// rising group-commit batch sizes, recording joules/txn and txns/sec
/// per point. `commit_threshold = 1` is the per-statement-durability
/// baseline (every insert fsyncs its own block-rounded tail); larger
/// thresholds share one fsync across the group. Checks that fail the
/// job: full service, per-session fork/merge ledger identity, the
/// serve ledger bit-identical to a serial replay of the dispatch
/// transcript on a fresh database (DML transcripts mutate state, so
/// the replay db must start from the same bytes), `log_ios` exactly
/// `ceil(sessions / threshold)`, and the batched (threshold 8) point
/// ≥2x cheaper in joules/txn than the per-statement baseline. Returns
/// the JSON blob and the failure count.
fn wal_report() -> (String, usize) {
    const WORKERS: usize = 2;
    const SESSIONS: usize = 64;
    // Saturating offered load: writers arrive faster than fsyncs
    // complete, so the joules/txn curve measures the write path's
    // execution energy rather than the shared idle floor.
    const RATE_QPS: f64 = 1_000_000.0;
    const THRESHOLDS: [usize; 5] = [1, 2, 4, 8, 16];
    const GATED_THRESHOLD: usize = 8;
    const MIN_GAIN: f64 = 2.0;

    // A deterministic all-DML arrival schedule: every session inserts
    // one fresh region row, evenly spaced at the offered rate.
    let requests: Vec<Request> = (0..SESSIONS)
        .map(|i| {
            let key = 1000 + i;
            Request {
                session: SessionId(i as u64),
                arrival_s: i as f64 / RATE_QPS,
                statement: Statement::Sql(format!(
                    "INSERT INTO region VALUES ({key}, 'W{key}', 'wal-bench')"
                )),
            }
        })
        .collect();

    let mut failures = 0usize;
    let mut blobs = Vec::new();
    let mut solo_jpt = 0.0;
    let mut batched_jpt = 0.0;

    for commit_threshold in THRESHOLDS {
        // Fresh database per point: the workload mutates `region`.
        let db = bench_db_commercial();
        let mut cfg = ServerConfig::batched(WORKERS, 4);
        cfg.commit_threshold = commit_threshold;
        let report = EcoServer::new(&db, cfg).serve(&requests);

        let expected_fsyncs = (SESSIONS as u64).div_ceil(commit_threshold as u64);
        let replay_db = bench_db_commercial();
        let identity = report.served == SESSIONS
            && report.ledger_identity()
            && report.ledger.disk.log_ios == expected_fsyncs
            && replay_serial(&replay_db, &report.dispatches, WORKERS, cfg.short_circuit)
                == report.ledger;
        if !identity {
            eprintln!(
                "FAIL: wal commit_threshold={commit_threshold} broke ledger identity \
                 (served {}/{SESSIONS}, log_ios {} want {expected_fsyncs})",
                report.served, report.ledger.disk.log_ios
            );
            failures += 1;
        }

        let jpt = report.wall_joules_per_query();
        if commit_threshold == 1 {
            solo_jpt = jpt;
        }
        if commit_threshold == GATED_THRESHOLD {
            batched_jpt = jpt;
        }
        println!(
            "wal commit_threshold={commit_threshold}: {:.0} txns/sec, {:.4} mJ/txn, \
             log_ios {}, log_bytes {}, ledger_identical={identity}",
            report.queries_per_second(),
            jpt * 1e3,
            report.ledger.disk.log_ios,
            report.ledger.disk.log_bytes,
        );
        blobs.push(format!(
            "{{\"commit_threshold\":{commit_threshold},\"served\":{},\"txns_per_sec\":{:.4},\
             \"wall_joules_per_txn\":{:.6},\"cpu_joules_per_txn\":{:.6},\"log_ios\":{},\
             \"log_bytes\":{},\"avg_response_s\":{:.6},\"ledger_identical\":{identity}}}",
            report.served,
            report.queries_per_second(),
            jpt,
            report.joules_per_query(),
            report.ledger.disk.log_ios,
            report.ledger.disk.log_bytes,
            report.avg_response_s(),
        ));
    }

    let gain = solo_jpt / batched_jpt;
    println!("wal joules/txn gain at commit_threshold={GATED_THRESHOLD}: {gain:.2}x");
    if gain < MIN_GAIN {
        eprintln!(
            "FAIL: group-commit joules/txn gain {gain:.2} < {MIN_GAIN} \
             (per-statement {solo_jpt:.6} J, batched {batched_jpt:.6} J)"
        );
        failures += 1;
    }
    let json = format!(
        "{{\"bench\":\"wal_group_commit\",\"scale\":{},\"workers\":{WORKERS},\
         \"sessions\":{SESSIONS},\"rate_qps\":{RATE_QPS},\"min_gain\":{MIN_GAIN},\
         \"gain_at_{GATED_THRESHOLD}\":{gain:.4},\"points\":[{}]}}\n",
        eco_bench::BENCH_SCALE,
        blobs.join(",")
    );
    (json, failures)
}

fn main() {
    let out_path = artifact_path(std::env::args().nth(1), "BENCH_parallel_scaling.json");
    let columnar_path = artifact_path(std::env::args().nth(2), "BENCH_columnar.json");
    let throughput_path = artifact_path(std::env::args().nth(3), "BENCH_throughput.json");
    let faults_path = artifact_path(std::env::args().nth(4), "BENCH_faults.json");
    let compression_path = artifact_path(std::env::args().nth(5), "BENCH_compression.json");
    let index_path = artifact_path(std::env::args().nth(6), "BENCH_index.json");
    let wal_path = artifact_path(std::env::args().nth(7), "BENCH_wal.json");
    let host_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let db = bench_db_memory();
    let mut failures = 0usize;
    let mut query_blobs = Vec::new();

    for (name, plan_fn) in QUERIES {
        // Serial reference for identity checks.
        let mut sctx = ExecCtx::new();
        let serial_rows = execute(plan_fn(&db).as_mut(), &mut sctx);

        let base_ns = median_ns(
            || {
                let mut plan = plan_fn(&db);
                let mut ctx = ExecCtx::new();
                std::hint::black_box(execute_parallel(plan.as_mut(), &mut ctx, 1).len());
            },
            SAMPLES,
        );

        let mut worker_blobs = Vec::new();
        for workers in WORKER_COUNTS {
            // Identity check at this worker count.
            let mut pctx = ExecCtx::new();
            let rows = execute_parallel(plan_fn(&db).as_mut(), &mut pctx, workers);
            let ledger_identical = rows == serial_rows
                && pctx.cpu == sctx.cpu
                && pctx.mem_stream_bytes == sctx.mem_stream_bytes
                && pctx.mem_random_accesses == sctx.mem_random_accesses
                && pctx.disk == sctx.disk;
            if !ledger_identical {
                eprintln!("FAIL: {name} at {workers} workers diverged from serial");
                failures += 1;
            }

            let ns = if workers == 1 {
                base_ns
            } else {
                median_ns(
                    || {
                        let mut plan = plan_fn(&db);
                        let mut ctx = ExecCtx::new();
                        std::hint::black_box(
                            execute_parallel(plan.as_mut(), &mut ctx, workers).len(),
                        );
                    },
                    SAMPLES,
                )
            };
            let speedup = base_ns as f64 / ns as f64;
            println!(
                "{name} workers={workers}: median {:.3} ms, speedup {speedup:.2}x, ledger_identical={ledger_identical}",
                ns as f64 / 1e6
            );
            worker_blobs.push(format!(
                "{{\"workers\":{workers},\"median_ns\":{ns},\"speedup\":{speedup:.4},\"ledger_identical\":{ledger_identical}}}"
            ));
        }
        query_blobs.push(format!("\"{name}\":[{}]", worker_blobs.join(",")));
    }

    let json = format!(
        "{{\"bench\":\"exec_parallel_scaling\",\"scale\":{},\"host_parallelism\":{host_workers},\"samples\":{SAMPLES},\"queries\":{{{}}}}}\n",
        eco_bench::BENCH_SCALE,
        query_blobs.join(",")
    );
    write_artifact(&out_path, &json);

    let (columnar_json, columnar_failures) = columnar_report(&db);
    failures += columnar_failures;
    write_artifact(&columnar_path, &columnar_json);

    let (throughput_json, throughput_failures) = throughput_report();
    failures += throughput_failures;
    write_artifact(&throughput_path, &throughput_json);

    let (faults_json, faults_failures) = faults_report();
    failures += faults_failures;
    write_artifact(&faults_path, &faults_json);

    let (compression_json, compression_failures) = compression_report(&db);
    failures += compression_failures;
    write_artifact(&compression_path, &compression_json);

    let (index_json, index_failures) = index_report();
    failures += index_failures;
    write_artifact(&index_path, &index_json);

    let (wal_json, wal_failures) = wal_report();
    failures += wal_failures;
    write_artifact(&wal_path, &wal_json);

    if failures > 0 {
        eprintln!("{failures} ledger-identity check(s) failed");
        std::process::exit(1);
    }
}
