//! Shared helpers for CI benchmark artifacts.
//!
//! Every `bench_smoke` report ends the same way: serialize a JSON blob
//! to a caller-chosen path, or abort the job with exit code 2 when the
//! filesystem refuses. Factoring the write keeps the per-report
//! functions focused on measurement and identity checking.

/// Write `json` to `path`, printing a confirmation line. Exits the
/// process with code 2 on I/O failure — a missing artifact must fail
/// the CI job loudly, not silently upload nothing.
pub fn write_artifact(path: &str, json: &str) {
    std::fs::write(path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {path}");
}

/// Default an `Option<String>` CLI argument to a fixed artifact name.
pub fn artifact_path(arg: Option<String>, default: &str) -> String {
    arg.unwrap_or_else(|| default.to_string())
}
