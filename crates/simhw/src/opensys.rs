//! Open-system multicore model: served traffic priced end-to-end.
//!
//! [`MultiCoreMachine::measure`] is a *closed-system* model: all work is
//! present at time zero, the measurement ends when the slowest core
//! crosses the barrier. A server is an **open system**: queries arrive
//! over time on an [`ArrivalSchedule`], the machine alternates between
//! *bursts* (a dispatched batch runs on the cores) and *idle gaps*
//! (the queue is empty or still accumulating toward a batch threshold),
//! and the idle gaps are not free — each core halts through its
//! governor's p-state step-down, the DRAM and disk floors keep drawing,
//! and the PSU sits at the inefficient bottom of its load curve.
//!
//! [`OpenSystemRun`] is the accumulator the eco-server scheduler drives:
//! call [`burst`](OpenSystemRun::burst) for each dispatched batch (one
//! trace per core, priced exactly like a closed-system
//! [`MultiCoreMachine::measure_uniform`] call) and
//! [`idle`](OpenSystemRun::idle) for each gap between bursts, then
//! [`finish`](OpenSystemRun::finish) for the end-to-end
//! [`OpenSystemMeasurement`]. Because bursts are priced by the *same*
//! closed-system code path, the busy-window energy of an open-system run
//! is bit-identical to measuring the same traces back to back — the
//! open model only *adds* the idle-tail residency between bursts.
//!
//! Arrival schedules are fully deterministic: `uniform` spaces arrivals
//! evenly; `poisson` draws exponential inter-arrival gaps from a seeded
//! splitmix64 generator, so the same seed always yields the same trace
//! of arrivals (a requirement for the ledger-identity invariant that
//! guards every reproduced figure).

use crate::calib;
use crate::machine::MachineConfig;
use crate::multicore::{MultiCoreMachine, MultiCoreMeasurement};
use crate::trace::WorkTrace;

/// Deterministic arrival times (seconds from run start) for an open
/// system, sorted nondecreasing.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSchedule {
    times: Vec<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform deviate in `(0, 1]` — never zero, so `ln` is finite.
fn unit_open(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

impl ArrivalSchedule {
    /// `n` arrivals evenly spaced at `rate_qps` queries per second; the
    /// first arrival is at time zero.
    pub fn uniform(n: usize, rate_qps: f64) -> Self {
        assert!(rate_qps > 0.0, "arrival rate must be positive");
        let gap = 1.0 / rate_qps;
        Self {
            times: (0..n).map(|i| i as f64 * gap).collect(),
        }
    }

    /// `n` arrivals with exponential inter-arrival gaps of mean
    /// `1/rate_qps` (a Poisson process), drawn deterministically from
    /// `seed`. The first arrival is at time zero so runs start promptly.
    pub fn poisson(n: usize, rate_qps: f64, seed: u64) -> Self {
        assert!(rate_qps > 0.0, "arrival rate must be positive");
        let mut state = seed;
        let mut t = 0.0;
        let times = (0..n)
            .map(|i| {
                if i > 0 {
                    t += -unit_open(&mut state).ln() / rate_qps;
                }
                t
            })
            .collect();
        Self { times }
    }

    /// Arrival instants, seconds, sorted nondecreasing.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the schedule has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// The priced energy of one idle gap between bursts: every core halted
/// through its governor's p-state step-down, the shared DRAM and disk
/// floors, and the PSU at the bottom of its load curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleMeasurement {
    /// Gap length, seconds.
    pub seconds: f64,
    /// Summed halt energy of all cores, joules.
    pub cpu_joules: f64,
    /// Shared-DRAM idle-floor energy, joules.
    pub dram_joules: f64,
    /// Shared-disk idle-floor energy, joules.
    pub disk_joules: f64,
    /// Wall energy through the PSU, joules.
    pub wall_joules: f64,
}

impl MultiCoreMachine {
    /// Price an idle gap of `seconds` with every core halted under
    /// `config` — the open-system analogue of the idle-tail pricing in
    /// [`MultiCoreMachine::measure`], applied machine-wide: each core's
    /// governor splits the gap across halt p-states, the shared DRAM
    /// and disk floors are charged once, and the summed DC idle draw
    /// goes through the PSU efficiency curve.
    pub fn price_idle(&self, seconds: f64, config: &MachineConfig) -> IdleMeasurement {
        assert!(seconds >= 0.0, "idle gap must be nonnegative");
        let m = &self.machine;
        if seconds == 0.0 {
            return IdleMeasurement {
                seconds: 0.0,
                cpu_joules: 0.0,
                dram_joules: 0.0,
                disk_joules: 0.0,
                wall_joules: 0.0,
            };
        }

        let cpu_model = m.cpu_power();
        let top_p = config.cpu.active_top_pstate(&m.cpu_spec);
        let bottom_p = m.cpu_spec.bottom_pstate();
        let res = config.governor.idle_residency(seconds);
        let per_core = res.top_s * cpu_model.package_halt_w(&config.cpu, top_p, 0.0)
            + res.bottom_s * cpu_model.package_halt_w(&config.cpu, bottom_p, 0.0);
        let cpu_joules = per_core * self.cores as f64;

        let dram_joules = m.mem.power_w(0.0, config.cpu.underclock) * seconds;
        let disk_joules = m.disk.idle_power_w() * seconds;

        let dc_avg =
            (cpu_joules + dram_joules + disk_joules) / seconds + calib::MOBO_DC_W + calib::GPU_DC_W;
        let wall_joules = m.psu.wall_power_w(dc_avg) * seconds;

        IdleMeasurement {
            seconds,
            cpu_joules,
            dram_joules,
            disk_joules,
            wall_joules,
        }
    }
}

/// End-to-end measurement of an open-system serving run: the busy
/// window (sum of burst makespans, priced by the closed-system model)
/// plus every idle gap between bursts.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenSystemMeasurement {
    /// Number of dispatched bursts.
    pub bursts: usize,
    /// Summed burst makespans, seconds.
    pub busy_window_s: f64,
    /// Summed idle-gap time, seconds.
    pub idle_s: f64,
    /// Total served time: `busy_window_s + idle_s`, seconds.
    pub makespan_s: f64,
    /// Total CPU package energy (busy + halt), joules.
    pub cpu_joules: f64,
    /// Total shared-DRAM energy, joules.
    pub dram_joules: f64,
    /// Total shared-disk energy, joules.
    pub disk_joules: f64,
    /// Total wall energy through the PSU, joules.
    pub wall_joules: f64,
}

impl OpenSystemMeasurement {
    /// Average wall power over the whole run, watts.
    pub fn avg_wall_w(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.wall_joules / self.makespan_s
        } else {
            0.0
        }
    }
}

/// Accumulator for one open-system serving run. The scheduler drives it
/// burst by burst; pricing is incremental so the scheduler can advance
/// its virtual clock by each burst's makespan as it goes.
#[derive(Debug, Clone)]
pub struct OpenSystemRun<'a> {
    machine: &'a MultiCoreMachine,
    config: MachineConfig,
    bursts: usize,
    busy_window_s: f64,
    idle_s: f64,
    cpu_joules: f64,
    dram_joules: f64,
    disk_joules: f64,
    wall_joules: f64,
}

impl<'a> OpenSystemRun<'a> {
    /// Start a run on `machine` with one uniform `config` for all cores.
    pub fn new(machine: &'a MultiCoreMachine, config: MachineConfig) -> Self {
        Self {
            machine,
            config,
            bursts: 0,
            busy_window_s: 0.0,
            idle_s: 0.0,
            cpu_joules: 0.0,
            dram_joules: 0.0,
            disk_joules: 0.0,
            wall_joules: 0.0,
        }
    }

    /// Price one dispatched burst (one trace per core, exactly as
    /// [`MultiCoreMachine::measure_uniform`]) and fold it into the run.
    /// Returns the burst measurement so the caller can advance its
    /// virtual clock by `elapsed_s` and compute per-query response
    /// times.
    pub fn burst(&mut self, core_traces: &[WorkTrace]) -> MultiCoreMeasurement {
        let m = self.machine.measure_uniform(core_traces, &self.config);
        self.bursts += 1;
        self.busy_window_s += m.elapsed_s;
        self.cpu_joules += m.cpu_joules;
        self.dram_joules += m.dram_joules;
        self.disk_joules += m.disk_joules;
        self.wall_joules += m.wall_joules;
        m
    }

    /// Price an idle gap between bursts and fold it into the run.
    pub fn idle(&mut self, seconds: f64) -> IdleMeasurement {
        let m = self.machine.price_idle(seconds, &self.config);
        self.idle_s += m.seconds;
        self.cpu_joules += m.cpu_joules;
        self.dram_joules += m.dram_joules;
        self.disk_joules += m.disk_joules;
        self.wall_joules += m.wall_joules;
        m
    }

    /// Seconds of virtual time accumulated so far (busy + idle).
    pub fn clock_s(&self) -> f64 {
        self.busy_window_s + self.idle_s
    }

    /// Close the run.
    pub fn finish(self) -> OpenSystemMeasurement {
        OpenSystemMeasurement {
            bursts: self.bursts,
            busy_window_s: self.busy_window_s,
            idle_s: self.idle_s,
            makespan_s: self.busy_window_s + self.idle_s,
            cpu_joules: self.cpu_joules,
            dram_joules: self.dram_joules,
            disk_joules: self.disk_joules,
            wall_joules: self.wall_joules,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{OpClass, Phase};

    fn work_trace(ops: u64) -> WorkTrace {
        let mut t = WorkTrace::new();
        let mut p = Phase::execute("w");
        p.cpu.add(OpClass::PredEval, ops);
        p.cpu.add(OpClass::TupleFetch, ops);
        p.mem_stream_bytes = 8 << 20;
        t.push(p);
        t
    }

    #[test]
    fn single_burst_matches_closed_system() {
        let mc = MultiCoreMachine::paper_sut(4);
        let cfg = MachineConfig::stock();
        let traces: Vec<WorkTrace> = (0..4).map(|_| work_trace(1_000_000)).collect();

        let closed = mc.measure_uniform(&traces, &cfg);
        let mut run = OpenSystemRun::new(&mc, cfg);
        let burst = run.burst(&traces);
        let open = run.finish();

        assert_eq!(burst.elapsed_s, closed.elapsed_s);
        assert_eq!(open.cpu_joules, closed.cpu_joules);
        assert_eq!(open.dram_joules, closed.dram_joules);
        assert_eq!(open.disk_joules, closed.disk_joules);
        assert_eq!(open.wall_joules, closed.wall_joules);
        assert_eq!(open.idle_s, 0.0);
        assert_eq!(open.makespan_s, closed.elapsed_s);
    }

    #[test]
    fn idle_gaps_add_floor_energy_below_busy_power() {
        let mc = MultiCoreMachine::paper_sut(2);
        let cfg = MachineConfig::stock();
        let traces: Vec<WorkTrace> = (0..2).map(|_| work_trace(2_000_000)).collect();

        let mut busy_only = OpenSystemRun::new(&mc, cfg);
        busy_only.burst(&traces);
        busy_only.burst(&traces);
        let busy = busy_only.finish();

        let mut with_gap = OpenSystemRun::new(&mc, cfg);
        with_gap.burst(&traces);
        let idle = with_gap.idle(5.0);
        with_gap.burst(&traces);
        let gapped = with_gap.finish();

        // The gap adds exactly its own floor energy on every rail.
        assert!((gapped.wall_joules - busy.wall_joules - idle.wall_joules).abs() < 1e-9);
        assert!((gapped.makespan_s - busy.makespan_s - 5.0).abs() < 1e-12);
        assert!(idle.cpu_joules > 0.0 && idle.wall_joules > 0.0);

        // Idle wall power sits well below busy wall power.
        let idle_w = idle.wall_joules / idle.seconds;
        let busy_w = busy.wall_joules / busy.makespan_s;
        assert!(idle_w < busy_w, "idle {idle_w} W !< busy {busy_w} W");
    }

    #[test]
    fn zero_length_idle_is_free() {
        let mc = MultiCoreMachine::paper_sut(2);
        let m = mc.price_idle(0.0, &MachineConfig::stock());
        assert_eq!(m.wall_joules, 0.0);
        assert_eq!(m.cpu_joules, 0.0);
    }

    #[test]
    fn uniform_schedule_spaces_arrivals_evenly() {
        let s = ArrivalSchedule::uniform(5, 10.0);
        assert_eq!(s.len(), 5);
        assert_eq!(s.times()[0], 0.0);
        for w in s.times().windows(2) {
            assert!((w[1] - w[0] - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_schedule_is_deterministic_and_has_roughly_the_right_rate() {
        let a = ArrivalSchedule::poisson(2_000, 50.0, 42);
        let b = ArrivalSchedule::poisson(2_000, 50.0, 42);
        assert_eq!(a, b, "same seed must reproduce the same arrivals");
        let c = ArrivalSchedule::poisson(2_000, 50.0, 43);
        assert_ne!(a, c, "different seeds must differ");

        assert!(a.times().windows(2).all(|w| w[1] >= w[0]));
        // Mean inter-arrival ≈ 1/rate (law of large numbers, loose bound).
        let span = a.times()[a.len() - 1] - a.times()[0];
        let mean_gap = span / (a.len() - 1) as f64;
        assert!(
            (mean_gap - 0.02).abs() < 0.004,
            "mean gap {mean_gap} far from 1/50"
        );
    }

    #[test]
    fn empty_run_measures_zero() {
        let mc = MultiCoreMachine::paper_sut(1);
        let run = OpenSystemRun::new(&mc, MachineConfig::stock());
        let m = run.finish();
        assert_eq!(m.bursts, 0);
        assert_eq!(m.wall_joules, 0.0);
        assert_eq!(m.makespan_s, 0.0);
    }
}
