//! Work traces: the ledger of everything a piece of software did.
//!
//! Query execution (in `eco-query`) and storage (in `eco-storage`) do
//! *real* work over *real* data, and account for it here. The machine
//! model then prices the ledger under a particular hardware
//! configuration. Keeping execution and pricing separate is what makes
//! a PVC sweep cheap: one execution, many configurations.

use crate::calib;

/// Version of the ledger schema.
///
/// * **v1** — op-class counts, memory stream bytes, random memory
///   accesses, and three disk classes (sequential bytes, random I/Os,
///   random bytes).
/// * **v2** — adds the fault-tolerance charge classes: **retry random
///   I/O** ([`DiskWork::retry_ios`] / [`DiskWork::retry_bytes`], the
///   re-reads a checksum-verified page read pays after an injected or
///   real fault) and **backoff halt residency** ([`Phase::backoff_ns`],
///   the exponential-backoff idle time between retry attempts, priced
///   like a client gap through the governor's halt residency).
///
/// The v2 classes are zero on any fault-free run, so every v1 figure
/// is byte-for-byte unchanged; a run with faults prices its robustness
/// overhead through these classes and nowhere else.
///
/// * **v3** — adds the opt-in **compressed pricing mode**
///   ([`PricingMode::Compressed`]) and the dictionary-lookup charge
///   class ([`OpClass::DictLookup`], one id→payload translation when an
///   execution kernel reads through a dictionary-encoded column). Under
///   [`PricingMode::Raw`] (the default) no `DictLookup` is ever
///   charged and every scan prices its *raw* tuple bytes, so every
///   v1/v2 figure stays byte-for-byte unchanged; under
///   [`PricingMode::Compressed`] scans price the *encoded* byte counts
///   as memory traffic and compressed kernels charge `DictLookup`, so
///   compression ratio becomes measurable joules.
///
/// * **v4** — adds the secondary-index charge classes: **index random
///   I/O** ([`DiskWork::index_ios`] / [`DiskWork::index_bytes`], the
///   page reads a B-tree probe and its base-row fetches pay through the
///   buffer pool — priced exactly like random I/O but ledgered apart so
///   scan-shaped plans keep their pure sequential/random split) and the
///   node-search CPU class ([`OpClass::NodeSearch`], one binary-search
///   step inside a B-tree page). Index-free runs charge nothing to the
///   v4 classes, so every v1–v3 figure stays byte-for-byte unchanged;
///   an index plan prices its probe overhead through these classes and
///   nowhere else, which is what makes the paper's fig5
///   random-vs-sequential energy split reproducible from real plans.
///
/// * **v5** — adds the durability charge classes: **log I/O**
///   ([`DiskWork::log_ios`] / [`DiskWork::log_bytes`], the write-ahead
///   log appends an fsync pushes to stable storage — priced as
///   *sequential* transfer because the log is an append-only stream the
///   head never leaves, with no per-fsync seek) and the log-record CPU
///   class ([`OpClass::LogRecord`], formatting + checksumming one WAL
///   record). Read-only runs charge nothing to the v5 classes, so every
///   v1–v4 figure stays byte-for-byte unchanged; a mutating workload
///   prices its durability overhead through these classes and nowhere
///   else, which is what makes group commit (fsync batching as
///   QED-for-writes) measurable as joules per transaction.
pub const LEDGER_SCHEMA_VERSION: u32 = 5;

/// How the ledger prices column-store memory traffic (ledger schema
/// v3; see [`LEDGER_SCHEMA_VERSION`]).
///
/// * [`PricingMode::Raw`] — every scan charges the raw (uncompressed)
///   tuple bytes and no [`OpClass::DictLookup`] is ever recorded. This
///   is the bit-identical mode every reproduced figure is priced
///   under: op-class counts, memory bytes, random accesses and disk
///   I/O are invariant across scalar/batch/columnar/parallel
///   execution.
/// * [`PricingMode::Compressed`] — scans over encoded columnar
///   mirrors charge the *encoded* bytes per tuple as memory traffic,
///   and kernels that read through a dictionary charge one
///   [`OpClass::DictLookup`] per id translation. CPU op counts may
///   legitimately differ from raw mode (a dictionary predicate
///   compares once per *distinct* value; an RLE aggregate accumulates
///   once per *run*), so compressed-mode ledgers are comparable to
///   each other, not to raw-mode ledgers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PricingMode {
    /// Raw tuple bytes; bit-identical to every pre-v3 ledger.
    #[default]
    Raw,
    /// Encoded bytes as memory traffic + `DictLookup` charges (v3).
    Compressed,
}

/// Classes of CPU work with distinct cycle costs and switching-activity
/// levels. The split matters for power: a tight predicate-evaluation
/// loop keeps the out-of-order core saturated (high switching activity,
/// high watts) while result copying is memory-bound (low activity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpClass {
    /// Advance to the next tuple in a scan (pointer chase + header decode).
    TupleFetch = 0,
    /// Evaluate one predicate term against a tuple (interpreted expression tree).
    PredEval = 1,
    /// Insert one row into a hash table (hash + bucket write).
    HashBuild = 2,
    /// Probe a hash table with one key.
    HashProbe = 3,
    /// One scalar arithmetic step in an expression (add/mul/compare on values).
    Arith = 4,
    /// Update one aggregate accumulator.
    AggUpdate = 5,
    /// Materialize one output row into the result buffer.
    ResultEmit = 6,
    /// Per-token parse / plan / admission work for one statement.
    Parse = 7,
    /// One comparison inside a sort.
    SortCmp = 8,
    /// Copy one row between buffers (client-side, JDBC-style).
    RowCopy = 9,
    /// Route one aggregated-result row back to its originating query
    /// (the QED application-side split).
    SplitRoute = 10,
    /// Translate one dictionary id to its payload (or match a
    /// pre-evaluated id) inside a compressed execution kernel. Charged
    /// only under [`PricingMode::Compressed`] (ledger schema v3) —
    /// raw-mode ledgers never record it, keeping every pre-v3 figure
    /// bit-identical.
    DictLookup = 11,
    /// One binary-search step inside a B-tree index page (key compare +
    /// child-slot narrowing). Charged only by index probes (ledger
    /// schema v4) — index-free runs never record it, keeping every
    /// pre-v4 figure bit-identical.
    NodeSearch = 12,
    /// Format and checksum one write-ahead-log record (serialize the
    /// mutation + FNV over the payload). Charged only by the mutating
    /// write path (ledger schema v5) — read-only runs never record it,
    /// keeping every pre-v5 figure bit-identical.
    LogRecord = 13,
}

/// Number of [`OpClass`] variants.
pub const N_OP_CLASSES: usize = 14;

/// All op classes, in discriminant order.
pub const ALL_OP_CLASSES: [OpClass; N_OP_CLASSES] = [
    OpClass::TupleFetch,
    OpClass::PredEval,
    OpClass::HashBuild,
    OpClass::HashProbe,
    OpClass::Arith,
    OpClass::AggUpdate,
    OpClass::ResultEmit,
    OpClass::Parse,
    OpClass::SortCmp,
    OpClass::RowCopy,
    OpClass::SplitRoute,
    OpClass::DictLookup,
    OpClass::NodeSearch,
    OpClass::LogRecord,
];

impl OpClass {
    /// Stable index into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Cycles consumed by one operation of this class (at any frequency;
    /// cycle counts are frequency-independent, wall time is not).
    #[inline]
    pub fn cycles(self) -> f64 {
        calib::OP_CYCLES[self.index()]
    }

    /// Switching-activity factor in `[0, 1]`: the fraction of peak
    /// dynamic power the core draws while executing this class.
    #[inline]
    pub fn activity(self) -> f64 {
        calib::OP_ACTIVITY[self.index()]
    }

    /// Human-readable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::TupleFetch => "tuple_fetch",
            OpClass::PredEval => "pred_eval",
            OpClass::HashBuild => "hash_build",
            OpClass::HashProbe => "hash_probe",
            OpClass::Arith => "arith",
            OpClass::AggUpdate => "agg_update",
            OpClass::ResultEmit => "result_emit",
            OpClass::Parse => "parse",
            OpClass::SortCmp => "sort_cmp",
            OpClass::RowCopy => "row_copy",
            OpClass::SplitRoute => "split_route",
            OpClass::DictLookup => "dict_lookup",
            OpClass::NodeSearch => "node_search",
            OpClass::LogRecord => "log_record",
        }
    }
}

/// Per-class operation counts for one phase of execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CpuWork {
    counts: [u64; N_OP_CLASSES],
}

impl CpuWork {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` operations of class `class`.
    #[inline]
    pub fn add(&mut self, class: OpClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Number of operations recorded for `class`.
    #[inline]
    pub fn count(&self, class: OpClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total operations across all classes.
    pub fn total_ops(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total CPU cycles implied by the recorded operations.
    pub fn cycles(&self) -> f64 {
        ALL_OP_CLASSES
            .iter()
            .map(|c| self.counts[c.index()] as f64 * c.cycles())
            .sum()
    }

    /// Cycle-weighted mean switching activity of this work, in `[0, 1]`.
    /// Returns the configured halt activity if the ledger is empty.
    pub fn mean_activity(&self) -> f64 {
        let cycles = self.cycles();
        if cycles <= 0.0 {
            return calib::HALT_ACTIVITY;
        }
        let weighted: f64 = ALL_OP_CLASSES
            .iter()
            .map(|c| self.counts[c.index()] as f64 * c.cycles() * c.activity())
            .sum();
        weighted / cycles
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &CpuWork) {
        for i in 0..N_OP_CLASSES {
            self.counts[i] += other.counts[i];
        }
    }

    /// Subtract `other` from this ledger. Panics if `other` records more
    /// of any class than this ledger — callers only ever subtract a
    /// part from its whole (e.g. a worker's share from a merged total).
    pub fn subtract(&mut self, other: &CpuWork) {
        for i in 0..N_OP_CLASSES {
            self.counts[i] = self.counts[i]
                .checked_sub(other.counts[i])
                .expect("subtracting more work than was recorded");
        }
    }

    /// True when no operations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

/// Disk work performed during a phase, split by access pattern because
/// the two patterns have very different time and energy costs (paper §3.5).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskWork {
    /// Bytes read sequentially (streaming, no repositioning per block).
    pub sequential_bytes: u64,
    /// Number of random accesses (each pays seek + rotation).
    pub random_ios: u64,
    /// Bytes transferred by those random accesses.
    pub random_bytes: u64,
    /// Retry random I/Os: re-reads issued after a failed or
    /// checksum-mismatched page read. Priced exactly like
    /// [`DiskWork::random_ios`] but ledgered separately so fault-free
    /// runs stay bit-identical (ledger schema v2; see
    /// [`LEDGER_SCHEMA_VERSION`]).
    pub retry_ios: u64,
    /// Bytes transferred by those retry I/Os (schema v2).
    pub retry_bytes: u64,
    /// Index random I/Os: page reads issued by a B-tree probe (index
    /// node descent *and* the base-row fetches it drives). Priced
    /// exactly like [`DiskWork::random_ios`] but ledgered separately so
    /// index-free runs stay bit-identical and scan plans keep a pure
    /// sequential/random split (ledger schema v4; see
    /// [`LEDGER_SCHEMA_VERSION`]).
    pub index_ios: u64,
    /// Bytes transferred by those index I/Os (schema v4).
    pub index_bytes: u64,
    /// Log fsyncs: stable-storage syncs of the write-ahead log. Each
    /// fsync pushes the pending log tail as one sequential burst (the
    /// log is append-only, so the head never repositions) — priced like
    /// [`DiskWork::sequential_bytes`] but ledgered separately so
    /// read-only runs stay bit-identical (ledger schema v5; see
    /// [`LEDGER_SCHEMA_VERSION`]).
    pub log_ios: u64,
    /// Bytes pushed to stable storage by those fsyncs, rounded up to
    /// whole device blocks per fsync — which is exactly why group
    /// commit wins: many small commits each pay a full block, one
    /// batched fsync pays it once (schema v5).
    pub log_bytes: u64,
}

impl DiskWork {
    /// No disk activity.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no I/O was recorded.
    pub fn is_empty(&self) -> bool {
        self.sequential_bytes == 0
            && self.random_ios == 0
            && self.random_bytes == 0
            && self.retry_ios == 0
            && self.retry_bytes == 0
            && self.index_ios == 0
            && self.index_bytes == 0
            && self.log_ios == 0
            && self.log_bytes == 0
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.sequential_bytes
            + self.random_bytes
            + self.retry_bytes
            + self.index_bytes
            + self.log_bytes
    }

    /// Merge another disk ledger into this one.
    pub fn merge(&mut self, other: &DiskWork) {
        self.sequential_bytes += other.sequential_bytes;
        self.random_ios += other.random_ios;
        self.random_bytes += other.random_bytes;
        self.retry_ios += other.retry_ios;
        self.retry_bytes += other.retry_bytes;
        self.index_ios += other.index_ios;
        self.index_bytes += other.index_bytes;
        self.log_ios += other.log_ios;
        self.log_bytes += other.log_bytes;
    }

    /// Subtract `other` from this ledger. Panics if `other` records
    /// more I/O than this ledger (see [`CpuWork::subtract`]).
    pub fn subtract(&mut self, other: &DiskWork) {
        self.sequential_bytes = self
            .sequential_bytes
            .checked_sub(other.sequential_bytes)
            .expect("subtracting more sequential I/O than was recorded");
        self.random_ios = self
            .random_ios
            .checked_sub(other.random_ios)
            .expect("subtracting more random I/Os than were recorded");
        self.random_bytes = self
            .random_bytes
            .checked_sub(other.random_bytes)
            .expect("subtracting more random bytes than were recorded");
        self.retry_ios = self
            .retry_ios
            .checked_sub(other.retry_ios)
            .expect("subtracting more retry I/Os than were recorded");
        self.retry_bytes = self
            .retry_bytes
            .checked_sub(other.retry_bytes)
            .expect("subtracting more retry bytes than were recorded");
        self.index_ios = self
            .index_ios
            .checked_sub(other.index_ios)
            .expect("subtracting more index I/Os than were recorded");
        self.index_bytes = self
            .index_bytes
            .checked_sub(other.index_bytes)
            .expect("subtracting more index bytes than were recorded");
        self.log_ios = self
            .log_ios
            .checked_sub(other.log_ios)
            .expect("subtracting more log I/Os than were recorded");
        self.log_bytes = self
            .log_bytes
            .checked_sub(other.log_bytes)
            .expect("subtracting more log bytes than were recorded");
    }
}

/// What kind of interval a phase represents; used for reporting and for
/// p-state policy (the DVFS governor idles the CPU during disk waits and
/// client gaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// CPU executing query work.
    Execute,
    /// Client/server round trip: the CPU sits in active idle (C1)
    /// between a result returning and the next statement arriving.
    ClientGap,
    /// Result post-processing in the client application (QED split).
    ClientCompute,
}

/// One contiguous interval of accounted work.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// What the interval represents.
    pub kind: PhaseKind,
    /// CPU operations performed.
    pub cpu: CpuWork,
    /// Bytes streamed through the memory system (table scans, copies).
    pub mem_stream_bytes: u64,
    /// Latency-bound random memory accesses (hash probes into tables
    /// larger than cache, pointer chases).
    pub mem_random_accesses: u64,
    /// Disk activity (the CPU idles while it waits).
    pub disk: DiskWork,
    /// Wall-clock nanoseconds of enforced gap (client round trips,
    /// think time). Independent of CPU frequency.
    pub gap_ns: u64,
    /// Wall-clock nanoseconds spent in retry backoff after page read
    /// faults. The CPU halts through it, like a gap, but it is ledgered
    /// separately so fault-free runs stay bit-identical (ledger schema
    /// v2; see [`LEDGER_SCHEMA_VERSION`]).
    pub backoff_ns: u64,
    /// Free-form label for reports ("Q5 #3", "qed batch", ...).
    pub label: String,
}

impl Phase {
    /// A new, empty execution phase with the given label.
    pub fn execute(label: impl Into<String>) -> Self {
        Self {
            kind: PhaseKind::Execute,
            cpu: CpuWork::new(),
            mem_stream_bytes: 0,
            mem_random_accesses: 0,
            disk: DiskWork::none(),
            gap_ns: 0,
            backoff_ns: 0,
            label: label.into(),
        }
    }

    /// A client round-trip gap of `ns` nanoseconds.
    pub fn client_gap(ns: u64) -> Self {
        Self {
            kind: PhaseKind::ClientGap,
            cpu: CpuWork::new(),
            mem_stream_bytes: 0,
            mem_random_accesses: 0,
            disk: DiskWork::none(),
            gap_ns: ns,
            backoff_ns: 0,
            label: "client gap".to_string(),
        }
    }

    /// A client-side compute phase (e.g. the QED result split).
    pub fn client_compute(label: impl Into<String>) -> Self {
        Self {
            kind: PhaseKind::ClientCompute,
            ..Self::execute(label)
        }
    }
}

/// A complete trace: the ordered phases of one workload run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkTrace {
    phases: Vec<Phase>,
}

impl WorkTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a phase.
    pub fn push(&mut self, phase: Phase) {
        self.phases.push(phase);
    }

    /// The recorded phases, in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True when the trace has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Concatenate another trace onto this one.
    pub fn extend(&mut self, other: WorkTrace) {
        self.phases.extend(other.phases);
    }

    /// Sum of all CPU work across phases.
    pub fn total_cpu(&self) -> CpuWork {
        let mut w = CpuWork::new();
        for p in &self.phases {
            w.merge(&p.cpu);
        }
        w
    }

    /// Sum of all disk work across phases.
    pub fn total_disk(&self) -> DiskWork {
        let mut d = DiskWork::none();
        for p in &self.phases {
            d.merge(&p.disk);
        }
        d
    }

    /// Total bytes streamed through memory.
    pub fn total_mem_stream_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.mem_stream_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_indices_are_dense_and_unique() {
        for (i, c) in ALL_OP_CLASSES.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn cpu_work_accumulates_and_merges() {
        let mut a = CpuWork::new();
        a.add(OpClass::TupleFetch, 10);
        a.add(OpClass::PredEval, 5);
        let mut b = CpuWork::new();
        b.add(OpClass::PredEval, 7);
        a.merge(&b);
        assert_eq!(a.count(OpClass::PredEval), 12);
        assert_eq!(a.total_ops(), 22);
        assert!(a.cycles() > 0.0);
    }

    #[test]
    fn mean_activity_is_bounded() {
        let mut w = CpuWork::new();
        for c in ALL_OP_CLASSES {
            w.add(c, 3);
        }
        let a = w.mean_activity();
        assert!(a > 0.0 && a <= 1.0, "activity {a} out of range");
    }

    #[test]
    fn empty_work_reports_halt_activity() {
        let w = CpuWork::new();
        assert_eq!(w.mean_activity(), calib::HALT_ACTIVITY);
        assert!(w.is_empty());
    }

    #[test]
    fn high_ilp_work_draws_more_than_copy_work() {
        let mut hot = CpuWork::new();
        hot.add(OpClass::PredEval, 1000);
        let mut cold = CpuWork::new();
        cold.add(OpClass::RowCopy, 1000);
        assert!(hot.mean_activity() > cold.mean_activity());
    }

    #[test]
    fn trace_totals() {
        let mut t = WorkTrace::new();
        let mut p = Phase::execute("a");
        p.cpu.add(OpClass::Arith, 4);
        p.mem_stream_bytes = 100;
        p.disk.sequential_bytes = 50;
        t.push(p);
        let mut q = Phase::execute("b");
        q.cpu.add(OpClass::Arith, 6);
        q.disk.random_ios = 2;
        q.disk.random_bytes = 8192;
        t.push(q);
        assert_eq!(t.total_cpu().count(OpClass::Arith), 10);
        assert_eq!(t.total_disk().sequential_bytes, 50);
        assert_eq!(t.total_disk().random_ios, 2);
        assert_eq!(t.total_mem_stream_bytes(), 100);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn retry_classes_are_separate_and_zero_by_default() {
        // Fault-free construction charges nothing to the v2 classes.
        let p = Phase::execute("clean");
        assert_eq!(p.disk.retry_ios, 0);
        assert_eq!(p.disk.retry_bytes, 0);
        assert_eq!(p.backoff_ns, 0);

        let mut a = DiskWork::none();
        a.retry_ios = 3;
        a.retry_bytes = 3 * 8192;
        assert!(!a.is_empty());
        assert_eq!(a.total_bytes(), 3 * 8192);
        let mut b = DiskWork::none();
        b.retry_ios = 1;
        b.retry_bytes = 8192;
        a.merge(&b);
        assert_eq!(a.retry_ios, 4);
        a.subtract(&b);
        assert_eq!(a.retry_ios, 3);
        // Retry I/O never leaks into the v1 random-I/O class.
        assert_eq!(a.random_ios, 0);
        assert_eq!(a.random_bytes, 0);
    }

    #[test]
    fn index_classes_are_separate_and_zero_by_default() {
        // Index-free construction charges nothing to the v4 classes.
        let p = Phase::execute("scan only");
        assert_eq!(p.disk.index_ios, 0);
        assert_eq!(p.disk.index_bytes, 0);
        assert_eq!(p.cpu.count(OpClass::NodeSearch), 0);

        let mut a = DiskWork::none();
        a.index_ios = 5;
        a.index_bytes = 5 * 8192;
        assert!(!a.is_empty());
        assert_eq!(a.total_bytes(), 5 * 8192);
        let mut b = DiskWork::none();
        b.index_ios = 2;
        b.index_bytes = 2 * 8192;
        a.merge(&b);
        assert_eq!(a.index_ios, 7);
        a.subtract(&b);
        assert_eq!(a.index_ios, 5);
        // Index I/O never leaks into the v1 or v2 disk classes.
        assert_eq!(a.random_ios, 0);
        assert_eq!(a.random_bytes, 0);
        assert_eq!(a.retry_ios, 0);
        assert_eq!(a.sequential_bytes, 0);
    }

    #[test]
    fn log_classes_are_separate_and_zero_by_default() {
        // Read-only construction charges nothing to the v5 classes.
        let p = Phase::execute("read only");
        assert_eq!(p.disk.log_ios, 0);
        assert_eq!(p.disk.log_bytes, 0);
        assert_eq!(p.cpu.count(OpClass::LogRecord), 0);

        let mut a = DiskWork::none();
        a.log_ios = 3;
        a.log_bytes = 3 * 8192;
        assert!(!a.is_empty());
        assert_eq!(a.total_bytes(), 3 * 8192);
        let mut b = DiskWork::none();
        b.log_ios = 1;
        b.log_bytes = 8192;
        a.merge(&b);
        assert_eq!(a.log_ios, 4);
        a.subtract(&b);
        assert_eq!(a.log_ios, 3);
        // Log I/O never leaks into any earlier-schema disk class.
        assert_eq!(a.sequential_bytes, 0);
        assert_eq!(a.random_ios, 0);
        assert_eq!(a.retry_ios, 0);
        assert_eq!(a.index_ios, 0);
    }
}
