//! Hard-disk model with per-rail power accounting.
//!
//! The paper (§3.5) instruments the drive's 5 V (electronics) and 12 V
//! (spindle + actuator) supply lines separately, and studies:
//!
//! * warm vs. cold workload runs (disk joules vs. CPU joules);
//! * random vs. sequential reads of 4/8/16/32 KB blocks (Fig 5):
//!   sequential throughput and energy/KB are flat in block size;
//!   random throughput rises just *under* proportionally with block
//!   size (≈ 1.88× / 3.5× / 6× for 8/16/32 KB relative to 4 KB).

use crate::calib;
use crate::trace::DiskWork;

/// Access pattern for a raw-disk experiment (Fig 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Stream from the current head position.
    Sequential,
    /// Reposition (seek + rotate) before every block.
    Random,
}

impl AccessPattern {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AccessPattern::Sequential => "sequential",
            AccessPattern::Random => "random",
        }
    }
}

/// Time and per-rail energy of a disk activity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskCost {
    /// Busy time, seconds (the CPU idles while waiting).
    pub busy_s: f64,
    /// Seconds of that time spent repositioning (seek + rotation).
    pub seek_s: f64,
    /// Seconds spent transferring data.
    pub transfer_s: f64,
    /// Energy drawn from the 5 V rail during the busy time, joules.
    pub joules_5v: f64,
    /// Energy drawn from the 12 V rail during the busy time, joules.
    pub joules_12v: f64,
}

impl DiskCost {
    /// Total busy-time energy across both rails, joules. Idle-floor
    /// energy for the rest of a run is added by the machine model.
    pub fn busy_joules(&self) -> f64 {
        self.joules_5v + self.joules_12v
    }
}

/// Drive specification (defaults model the paper's WD Caviar SE16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskSpec {
    /// Sustained sequential rate, bytes/s.
    pub seq_rate: f64,
    /// Mean random service overhead (seek + rotation), seconds.
    pub rand_overhead_s: f64,
    /// In-block burst transfer rate for random accesses, bytes/s.
    pub rand_burst_rate: f64,
    /// 5 V rail idle current, A.
    pub idle_5v_a: f64,
    /// 5 V rail extra current while transferring, A.
    pub xfer_5v_extra_a: f64,
    /// 12 V rail idle current, A.
    pub idle_12v_a: f64,
    /// 12 V rail extra current while seeking, A.
    pub seek_12v_extra_a: f64,
}

impl Default for DiskSpec {
    fn default() -> Self {
        Self {
            seq_rate: calib::DISK_SEQ_RATE,
            rand_overhead_s: calib::DISK_RAND_OVERHEAD_S,
            rand_burst_rate: calib::DISK_RAND_BURST_RATE,
            idle_5v_a: calib::DISK_5V_IDLE_A,
            xfer_5v_extra_a: calib::DISK_5V_XFER_EXTRA_A,
            idle_12v_a: calib::DISK_12V_IDLE_A,
            seek_12v_extra_a: calib::DISK_12V_SEEK_EXTRA_A,
        }
    }
}

impl DiskSpec {
    /// Idle power across both rails, watts. Matches the paper's warm-run
    /// floor of ≈ 4.4 W (214.7 J / 48.5 s).
    pub fn idle_power_w(&self) -> f64 {
        5.0 * self.idle_5v_a + 12.0 * self.idle_12v_a
    }

    /// Cost of the disk work recorded in a trace phase. Retry I/O
    /// (ledger schema v2) and index I/O (schema v4) price exactly like
    /// random I/O — a re-read or a B-tree probe repositions the head
    /// and bursts the block again — they are only *ledgered* separately
    /// so fault-free and index-free runs stay bit-identical. Log I/O
    /// (schema v5) prices exactly like *sequential* transfer: the
    /// write-ahead log is an append-only stream the head never leaves,
    /// so an fsync pays streaming-rate bytes and no seek.
    pub fn cost(&self, work: &DiskWork) -> DiskCost {
        let seq_xfer = (work.sequential_bytes + work.log_bytes) as f64 / self.seq_rate;
        let rand_seek =
            (work.random_ios + work.retry_ios + work.index_ios) as f64 * self.rand_overhead_s;
        let rand_xfer =
            (work.random_bytes + work.retry_bytes + work.index_bytes) as f64 / self.rand_burst_rate;
        self.cost_parts(rand_seek, seq_xfer + rand_xfer)
    }

    /// Cost of reading `total_bytes` in `block` -byte requests under the
    /// given pattern — the raw-disk experiment of Fig 5.
    pub fn access_cost(&self, pattern: AccessPattern, total_bytes: u64, block: u64) -> DiskCost {
        assert!(block > 0, "block size must be positive");
        let blocks = total_bytes.div_ceil(block);
        let work = match pattern {
            AccessPattern::Sequential => DiskWork {
                sequential_bytes: total_bytes,
                ..DiskWork::none()
            },
            AccessPattern::Random => DiskWork {
                random_ios: blocks,
                random_bytes: total_bytes,
                ..DiskWork::none()
            },
        };
        self.cost(&work)
    }

    /// Throughput of an access experiment, bytes/s.
    pub fn throughput(&self, pattern: AccessPattern, total_bytes: u64, block: u64) -> f64 {
        let c = self.access_cost(pattern, total_bytes, block);
        if c.busy_s <= 0.0 {
            return 0.0;
        }
        total_bytes as f64 / c.busy_s
    }

    /// Busy-time energy per KB retrieved, joules/KB (Fig 5(b)). The
    /// paper's per-KB figures are for the active experiment, so the
    /// idle floor during the busy window is included (the drive draws
    /// its idle currents whether or not it is also seeking).
    pub fn energy_per_kb(&self, pattern: AccessPattern, total_bytes: u64, block: u64) -> f64 {
        let c = self.access_cost(pattern, total_bytes, block);
        c.busy_joules() / (total_bytes as f64 / 1024.0)
    }

    fn cost_parts(&self, seek_s: f64, transfer_s: f64) -> DiskCost {
        let busy_s = seek_s + transfer_s;
        // Idle currents flow throughout; extras flow during their phase.
        let joules_5v = 5.0 * (self.idle_5v_a * busy_s + self.xfer_5v_extra_a * transfer_s);
        let joules_12v = 12.0 * (self.idle_12v_a * busy_s + self.seek_12v_extra_a * seek_s);
        DiskCost {
            busy_s,
            seek_s,
            transfer_s,
            joules_5v,
            joules_12v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn sequential_throughput_flat_in_block_size() {
        // Fig 5(a): "sequential access throughput is constant regardless
        // of the read size."
        let d = DiskSpec::default();
        let total = (16u64) * GB / 10; // 1.6 GB like the paper
        let t4 = d.throughput(AccessPattern::Sequential, total, 4 << 10);
        let t32 = d.throughput(AccessPattern::Sequential, total, 32 << 10);
        assert!((t4 - t32).abs() / t4 < 1e-9);
        assert!((t4 - d.seq_rate).abs() / d.seq_rate < 0.01);
    }

    #[test]
    fn random_throughput_ratios_match_fig5() {
        // Fig 5: 8/16/32 KB improve random throughput by ≈ 1.88× / 3.5× /
        // 6× over 4 KB — "close but does not exactly follow" 2×/4×/8×.
        let d = DiskSpec::default();
        let total = (16u64) * GB / 10;
        let t4 = d.throughput(AccessPattern::Random, total, 4 << 10);
        let r8 = d.throughput(AccessPattern::Random, total, 8 << 10) / t4;
        let r16 = d.throughput(AccessPattern::Random, total, 16 << 10) / t4;
        let r32 = d.throughput(AccessPattern::Random, total, 32 << 10) / t4;
        assert!((1.7..1.99).contains(&r8), "8K ratio {r8}");
        assert!((3.0..3.95).contains(&r16), "16K ratio {r16}");
        assert!((5.0..7.0).contains(&r32), "32K ratio {r32}");
        // Strictly below the ideal doubling at each step.
        assert!(r8 < 2.0 && r16 < 4.0 && r32 < 8.0);
    }

    #[test]
    fn sequential_more_energy_efficient_than_random() {
        // Fig 5(b): "Sequential access is more energy efficient per KB
        // than random access, primarily because it is faster!"
        let d = DiskSpec::default();
        let total = GB / 4;
        for block in [4u64 << 10, 8 << 10, 16 << 10, 32 << 10] {
            let es = d.energy_per_kb(AccessPattern::Sequential, total, block);
            let er = d.energy_per_kb(AccessPattern::Random, total, block);
            assert!(er > es, "block {block}: random {er} vs sequential {es}");
        }
    }

    #[test]
    fn random_energy_per_kb_falls_with_block_size() {
        let d = DiskSpec::default();
        let total = GB / 4;
        let e4 = d.energy_per_kb(AccessPattern::Random, total, 4 << 10);
        let e8 = d.energy_per_kb(AccessPattern::Random, total, 8 << 10);
        let e32 = d.energy_per_kb(AccessPattern::Random, total, 32 << 10);
        assert!(e4 > e8 && e8 > e32);
    }

    #[test]
    fn sequential_energy_per_kb_flat() {
        let d = DiskSpec::default();
        let total = GB / 4;
        let e4 = d.energy_per_kb(AccessPattern::Sequential, total, 4 << 10);
        let e32 = d.energy_per_kb(AccessPattern::Sequential, total, 32 << 10);
        assert!((e4 - e32).abs() / e4 < 1e-9);
    }

    #[test]
    fn idle_floor_matches_warm_run() {
        let d = DiskSpec::default();
        assert!((d.idle_power_w() - 4.4).abs() < 0.1);
    }

    #[test]
    fn cost_additivity() {
        let d = DiskSpec::default();
        let a = DiskWork {
            sequential_bytes: 10 << 20,
            random_ios: 100,
            random_bytes: 100 * 8192,
            ..DiskWork::none()
        };
        let b = DiskWork {
            sequential_bytes: 5 << 20,
            random_ios: 50,
            random_bytes: 50 * 8192,
            ..DiskWork::none()
        };
        let mut ab = a;
        ab.merge(&b);
        let ca = d.cost(&a);
        let cb = d.cost(&b);
        let cab = d.cost(&ab);
        assert!((cab.busy_s - (ca.busy_s + cb.busy_s)).abs() < 1e-9);
        assert!((cab.busy_joules() - (ca.busy_joules() + cb.busy_joules())).abs() < 1e-9);
    }

    #[test]
    fn retry_io_prices_exactly_like_random_io() {
        let d = DiskSpec::default();
        let random = DiskWork {
            random_ios: 40,
            random_bytes: 40 * 8192,
            ..DiskWork::none()
        };
        let retry = DiskWork {
            retry_ios: 40,
            retry_bytes: 40 * 8192,
            ..DiskWork::none()
        };
        let cr = d.cost(&random);
        let ct = d.cost(&retry);
        assert_eq!(cr.busy_s, ct.busy_s);
        assert_eq!(cr.busy_joules(), ct.busy_joules());
    }

    #[test]
    fn index_io_prices_exactly_like_random_io() {
        // Schema v4: a B-tree probe pays seek + burst per page, same as
        // any other random access — the class split is bookkeeping only.
        let d = DiskSpec::default();
        let random = DiskWork {
            random_ios: 40,
            random_bytes: 40 * 8192,
            ..DiskWork::none()
        };
        let index = DiskWork {
            index_ios: 40,
            index_bytes: 40 * 8192,
            ..DiskWork::none()
        };
        let cr = d.cost(&random);
        let ci = d.cost(&index);
        assert_eq!(cr.busy_s, ci.busy_s);
        assert_eq!(cr.busy_joules(), ci.busy_joules());
    }

    #[test]
    fn log_io_prices_exactly_like_sequential_io() {
        // Schema v5: an fsync streams the pending log tail at the
        // drive's sequential rate with no repositioning — the class
        // split is bookkeeping only, and log_ios carry no seek charge.
        let d = DiskSpec::default();
        let sequential = DiskWork {
            sequential_bytes: 40 * 8192,
            ..DiskWork::none()
        };
        let log = DiskWork {
            log_ios: 40,
            log_bytes: 40 * 8192,
            ..DiskWork::none()
        };
        let cs = d.cost(&sequential);
        let cl = d.cost(&log);
        assert_eq!(cs.busy_s, cl.busy_s);
        assert_eq!(cs.busy_joules(), cl.busy_joules());
        assert_eq!(cl.seek_s, 0.0, "fsyncs never seek");
    }

    #[test]
    #[should_panic]
    fn zero_block_rejected() {
        let d = DiskSpec::default();
        let _ = d.access_cost(AccessPattern::Random, 1 << 20, 0);
    }
}
