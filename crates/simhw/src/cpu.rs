//! CPU model: p-states, FSB-derived frequency, voltage settings.
//!
//! Paper §3 distinguishes two knobs and the distinction matters:
//!
//! * **P-state capping** truncates the multiplier list; frequency drops
//!   in coarse `multiplier × FSB` steps and the FSB (and hence memory)
//!   is untouched.
//! * **Underclocking** lowers the FSB itself: every p-state slows by
//!   the same fraction, granularity is fine, and memory slows too
//!   (memory clock is an FSB multiple on the Northbridge).
//!
//! PVC (paper §3.3) uses underclocking plus BIOS voltage downgrades.

use crate::calib;

/// BIOS voltage setting (paper §3.3: stock, "small" and "medium"
/// downgrades; ASUS PC Probe II reported both downgrades stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VoltageSetting {
    /// No downgrade: the board's (generous) stock VID.
    #[default]
    Stock,
    /// Small downgrade.
    Small,
    /// Medium downgrade.
    Medium,
}

impl VoltageSetting {
    /// Configured downgrade below VID, in volts.
    pub fn downgrade_v(self) -> f64 {
        match self {
            VoltageSetting::Stock => 0.0,
            VoltageSetting::Small => calib::VDROP_SMALL,
            VoltageSetting::Medium => calib::VDROP_MEDIUM,
        }
    }

    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            VoltageSetting::Stock => "stock",
            VoltageSetting::Small => "small",
            VoltageSetting::Medium => "medium",
        }
    }

    /// All settings, for sweeps.
    pub const ALL: [VoltageSetting; 3] = [
        VoltageSetting::Stock,
        VoltageSetting::Small,
        VoltageSetting::Medium,
    ];
}

/// One processor performance state: a multiplier plus the VID the part
/// requests at that multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PState {
    /// CPU multiplier applied to the FSB.
    pub multiplier: f64,
    /// Requested core voltage at this p-state, before downgrades.
    pub vid: f64,
}

/// Static description of the processor.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Stock FSB frequency, Hz.
    pub stock_fsb_hz: f64,
    /// Available p-states, lowest multiplier first.
    pub pstates: Vec<PState>,
    /// Core count.
    pub cores: usize,
    /// Effective switching capacitance per core (farads).
    pub ceff_per_core: f64,
    /// Leakage coefficient (watts per volt²).
    pub k_leak: f64,
    /// Uncore coefficient (watts per volt² at stock FSB).
    pub k_uncore: f64,
}

impl Default for CpuSpec {
    fn default() -> Self {
        Self::e8500()
    }
}

impl CpuSpec {
    /// The paper's processor: Intel Core2-Duo E8500.
    pub fn e8500() -> Self {
        let n = calib::MULTIPLIERS.len();
        let pstates = calib::MULTIPLIERS
            .iter()
            .enumerate()
            .map(|(i, &m)| PState {
                multiplier: m,
                // VID interpolates linearly across the multiplier range.
                vid: calib::VID_MIN
                    + (calib::VID_MAX - calib::VID_MIN) * (i as f64) / ((n - 1) as f64),
            })
            .collect();
        Self {
            stock_fsb_hz: calib::STOCK_FSB_HZ,
            pstates,
            cores: calib::N_CORES,
            ceff_per_core: calib::CEFF_PER_CORE,
            k_leak: calib::K_LEAK,
            k_uncore: calib::K_UNCORE,
        }
    }

    /// Highest p-state (top multiplier).
    pub fn top_pstate(&self) -> PState {
        *self.pstates.last().expect("spec has at least one p-state")
    }

    /// Lowest p-state (SpeedStep floor).
    pub fn bottom_pstate(&self) -> PState {
        *self.pstates.first().expect("spec has at least one p-state")
    }

    /// Stock top frequency, Hz.
    pub fn stock_freq_hz(&self) -> f64 {
        self.stock_fsb_hz * self.top_pstate().multiplier
    }

    /// The p-state with the highest multiplier not exceeding `cap`.
    /// Models traditional p-state capping (paper §3's foil to
    /// underclocking). Falls back to the bottom p-state if the cap is
    /// below every multiplier.
    pub fn capped_top(&self, cap: f64) -> PState {
        self.pstates
            .iter()
            .rev()
            .find(|p| p.multiplier <= cap)
            .copied()
            .unwrap_or_else(|| self.bottom_pstate())
    }
}

/// A concrete clocking/voltage configuration of the CPU — one point in
/// the PVC search space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// FSB underclock fraction `u` in `[0, 1)`: FSB runs at
    /// `stock · (1 − u)` (paper evaluates u ∈ {0, 5 %, 10 %, 15 %}).
    pub underclock: f64,
    /// BIOS voltage setting.
    pub voltage: VoltageSetting,
    /// Optional multiplier cap (traditional p-state power management).
    /// `None` leaves all p-states available — the property the paper
    /// highlights as underclocking's advantage.
    pub multiplier_cap: Option<f64>,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::stock()
    }
}

impl CpuConfig {
    /// Stock setting: no underclock, no downgrade, no cap.
    pub fn stock() -> Self {
        Self {
            underclock: 0.0,
            voltage: VoltageSetting::Stock,
            multiplier_cap: None,
        }
    }

    /// Underclocked configuration (fraction, e.g. `0.05` for 5 %).
    pub fn underclocked(u: f64, voltage: VoltageSetting) -> Self {
        assert!(
            (0.0..1.0).contains(&u),
            "underclock fraction {u} out of range"
        );
        Self {
            underclock: u,
            voltage,
            multiplier_cap: None,
        }
    }

    /// P-state-capped configuration at stock FSB.
    pub fn capped(cap: f64, voltage: VoltageSetting) -> Self {
        Self {
            underclock: 0.0,
            voltage,
            multiplier_cap: Some(cap),
        }
    }

    /// Effective FSB under this configuration, Hz.
    pub fn fsb_hz(&self, spec: &CpuSpec) -> f64 {
        spec.stock_fsb_hz * (1.0 - self.underclock)
    }

    /// The top p-state available under this configuration.
    pub fn active_top_pstate(&self, spec: &CpuSpec) -> PState {
        match self.multiplier_cap {
            Some(cap) => spec.capped_top(cap),
            None => spec.top_pstate(),
        }
    }

    /// Peak core frequency under this configuration, Hz.
    pub fn top_freq_hz(&self, spec: &CpuSpec) -> f64 {
        self.fsb_hz(spec) * self.active_top_pstate(spec).multiplier
    }

    /// Effective core voltage at a p-state under this configuration,
    /// accounting for load-line droop: under sustained load the
    /// regulator gives back part of the configured downgrade
    /// (`utilization` in `[0, 1]` is the workload's CPU-busy fraction).
    pub fn effective_voltage(&self, pstate: PState, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let droop_return = calib::DROOP_AT_FULL_LOAD * u;
        let effective_drop = self.voltage.downgrade_v() * (1.0 - droop_return);
        (pstate.vid - effective_drop).max(0.75)
    }

    /// Short human-readable label, e.g. `"5% UC / medium"`.
    pub fn label(&self) -> String {
        let uc = format!("{:.0}% UC", self.underclock * 100.0);
        match self.multiplier_cap {
            Some(cap) => format!("cap x{cap} / {} / {}", self.voltage.name(), uc),
            None => {
                if self.underclock == 0.0 && self.voltage == VoltageSetting::Stock {
                    "stock".to_string()
                } else {
                    format!("{uc} / {}", self.voltage.name())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8500_stock_frequency_is_3_16_ghz() {
        let spec = CpuSpec::e8500();
        let f = spec.stock_freq_hz();
        assert!((f - 3.1635e9).abs() < 1e7, "stock freq {f}");
    }

    #[test]
    fn underclocking_scales_all_pstates() {
        let spec = CpuSpec::e8500();
        let cfg = CpuConfig::underclocked(0.05, VoltageSetting::Medium);
        assert!((cfg.fsb_hz(&spec) - 0.95 * calib::STOCK_FSB_HZ).abs() < 1.0);
        // All multipliers remain available.
        assert_eq!(cfg.active_top_pstate(&spec).multiplier, 9.5);
        assert!((cfg.top_freq_hz(&spec) - 0.95 * spec.stock_freq_hz()).abs() < 1e6);
    }

    #[test]
    fn capping_truncates_multipliers_but_keeps_fsb() {
        // Paper §3's example: capping at 7 on a 333 MHz FSB gives 2.33 GHz.
        let spec = CpuSpec::e8500();
        let cfg = CpuConfig::capped(7.0, VoltageSetting::Stock);
        assert_eq!(cfg.active_top_pstate(&spec).multiplier, 7.0);
        let f = cfg.top_freq_hz(&spec);
        assert!(
            (f - 7.0 * calib::STOCK_FSB_HZ).abs() < 1.0,
            "capped freq {f}"
        );
    }

    #[test]
    fn capped_top_falls_back_to_bottom() {
        let spec = CpuSpec::e8500();
        assert_eq!(spec.capped_top(1.0).multiplier, 6.0);
    }

    #[test]
    fn medium_downgrade_lowers_voltage_more_than_small() {
        let spec = CpuSpec::e8500();
        let p = spec.top_pstate();
        let stock = CpuConfig::stock().effective_voltage(p, 0.5);
        let small = CpuConfig::underclocked(0.05, VoltageSetting::Small).effective_voltage(p, 0.5);
        let medium =
            CpuConfig::underclocked(0.05, VoltageSetting::Medium).effective_voltage(p, 0.5);
        assert!(stock > small && small > medium);
    }

    #[test]
    fn droop_reduces_downgrade_under_load() {
        // The CPU-bound workload sees a smaller effective downgrade
        // (mechanism behind MySQL's smaller savings, Fig 3 vs Fig 2).
        let spec = CpuSpec::e8500();
        let p = spec.top_pstate();
        let cfg = CpuConfig::underclocked(0.05, VoltageSetting::Medium);
        let light = cfg.effective_voltage(p, 0.3);
        let heavy = cfg.effective_voltage(p, 1.0);
        assert!(heavy > light, "droop must raise voltage under load");
    }

    #[test]
    fn vid_interpolates_monotonically() {
        let spec = CpuSpec::e8500();
        for w in spec.pstates.windows(2) {
            assert!(w[0].vid < w[1].vid);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_underclock() {
        let _ = CpuConfig::underclocked(1.5, VoltageSetting::Stock);
    }
}
