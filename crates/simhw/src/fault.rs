//! Deterministic fault injection: a seeded schedule of disk read
//! faults the simulated storage stack consumes.
//!
//! ## Fault model
//!
//! A [`FaultPlan`] is a *pure function* `(seed, table, page) →
//! Option<PageFault>`: whether a given page read faults, and how, is
//! decided by hashing the plan seed with the page's identity through
//! splitmix64. No interior state, no ordering dependence — the same
//! plan always injects the same faults, regardless of execution
//! engine, worker count, or arrival interleaving. That is what lets a
//! chaos test replay a faulted run and demand bit-identical ledgers.
//!
//! Three fault classes model what a real drive does to a DBMS:
//!
//! * [`PageFault::Transient`] — the read fails (media retry, bus CRC
//!   error, checksum mismatch on the wire) a bounded number of times,
//!   then succeeds. The reader re-reads with exponential backoff.
//! * [`PageFault::Permanent`] — the page is unrecoverable: every
//!   attempt fails (a genuinely corrupted sector). After the retry
//!   budget is exhausted the error surfaces as a typed I/O error.
//! * [`PageFault::Stall`] — the read succeeds first try but only
//!   after an extra service delay (drive-internal recovery, thermal
//!   recalibration). Priced as backoff idle time.
//!
//! ## Retry/backoff policy and pricing
//!
//! The storage layer (`eco-storage`) verifies a per-page checksum on
//! every buffer-pool miss and retries failed attempts up to
//! [`MAX_READ_RETRIES`] times, sleeping [`BACKOFF_BASE_NS`]` << attempt`
//! between attempts (bounded exponential backoff). Each failed
//! attempt's re-read is charged to the **retry random I/O** ledger
//! class and each backoff sleep to **backoff halt residency** — the
//! v2 ledger classes (see [`crate::trace::LEDGER_SCHEMA_VERSION`]),
//! which are exactly zero when no fault fires, so fault-free runs
//! stay bit-identical to every v1 figure.

/// Maximum re-read attempts after a failed page read before the error
/// is reported as permanent.
pub const MAX_READ_RETRIES: u32 = 4;

/// Backoff before retry attempt `n` (0-based): `BACKOFF_BASE_NS << n`
/// nanoseconds. With [`MAX_READ_RETRIES`] = 4 the total worst-case
/// backoff is 15 × 50 µs = 750 µs per page.
pub const BACKOFF_BASE_NS: u64 = 50_000;

/// Total backoff idle time for `failures` failed attempts, nanoseconds.
pub fn backoff_ns_for(failures: u32) -> u64 {
    (0..failures).map(|n| BACKOFF_BASE_NS << n).sum()
}

/// How a particular page read faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFault {
    /// The first `failures` attempts fail (1 ≤ `failures` ≤
    /// [`MAX_READ_RETRIES`]), then the read succeeds.
    Transient {
        /// Failed attempts before success.
        failures: u32,
    },
    /// Every attempt fails; the retry budget is exhausted and the read
    /// errors out.
    Permanent,
    /// The read succeeds first try after an extra `ns` of service
    /// delay.
    Stall {
        /// Extra delay, nanoseconds.
        ns: u64,
    },
}

/// How the final, partially-written log record looks after a crash
/// that interrupts an append (ledger schema v5 write path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornTail {
    /// The crash lands exactly on a record boundary: the tail is clean.
    None,
    /// The crash truncates the final record inside its fixed-size
    /// header (length prefix + checksum), leaving fewer header bytes
    /// than a complete header needs.
    MidHeader,
    /// The crash truncates the final record inside its payload: the
    /// header is intact but promises more bytes than survive.
    MidPayload,
}

/// A deterministic crash point on the mutating write path. Like page
/// faults, crash points are data, not control flow: the WAL consults
/// the plan and reports a typed error at the scheduled moment, so the
/// same plan always kills the same workload at the same record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalCrash {
    /// The process dies after `records` log records have been appended;
    /// the on-disk image ends with the fsynced prefix plus a torn
    /// fragment of whatever was appended but not yet synced, shaped by
    /// `torn`.
    KillAfterRecords {
        /// Appends that complete before the kill.
        records: u64,
        /// Shape of the final, partially-written record.
        torn: TornTail,
    },
    /// The `fsync`-th sync call (0-based) fails: the pending tail never
    /// reaches stable storage and the in-flight transactions abort with
    /// a typed error instead of becoming durable.
    FsyncFailure {
        /// Index of the failing sync call.
        fsync: u64,
    },
}

/// A seeded, deterministic schedule of page read faults.
///
/// Construction fixes the seed and the per-read fault rate; whether a
/// given `(table, page)` faults is a pure hash of the three. Fault
/// kind shares within the faulting fraction: 70 % transient, 15 %
/// permanent, 15 % stall. A plan may also carry one [`WalCrash`]
/// point for the mutating write path (schema v5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Faulting page reads per million, in `[0, 1_000_000]`.
    rate_ppm: u32,
    /// Demote permanent faults to worst-case transients (see
    /// [`FaultPlan::recoverable`]).
    recoverable_only: bool,
    /// Scheduled crash on the write-ahead-log path, if any.
    wal_crash: Option<WalCrash>,
}

impl FaultPlan {
    /// A plan injecting faults into `rate_ppm` per million page reads
    /// (clamped to 1 000 000), keyed by `seed`.
    pub fn new(seed: u64, rate_ppm: u32) -> Self {
        Self {
            seed,
            rate_ppm: rate_ppm.min(1_000_000),
            recoverable_only: false,
            wal_crash: None,
        }
    }

    /// The same plan with a scheduled write-path crash point installed.
    pub fn with_wal_crash(mut self, crash: WalCrash) -> Self {
        self.wal_crash = Some(crash);
        self
    }

    /// The scheduled write-path crash point, if any.
    pub fn wal_crash(&self) -> Option<WalCrash> {
        self.wal_crash
    }

    /// The same plan with every [`PageFault::Permanent`] draw demoted
    /// to a worst-case transient (`failures = `[`MAX_READ_RETRIES`]):
    /// every read still succeeds within the retry budget, at maximum
    /// retry and backoff cost. Transient and stall draws are
    /// untouched.
    ///
    /// This is how the fault-rate energy curve (`BENCH_faults.json`)
    /// is charted: a single permanent fault on a scanned table fails
    /// every query that touches it, so the *priced* cost of fault
    /// pressure — retry random I/O plus backoff halt residency — is
    /// only visible on plans where service completes.
    pub fn recoverable(mut self) -> Self {
        self.recoverable_only = true;
        self
    }

    /// A plan that never faults.
    pub fn none() -> Self {
        Self::new(0, 0)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's fault rate, parts per million of page reads.
    pub fn rate_ppm(&self) -> u32 {
        self.rate_ppm
    }

    /// True when this plan can never inject a fault — no page faults
    /// and no scheduled write-path crash.
    pub fn is_none(&self) -> bool {
        self.rate_ppm == 0 && self.wal_crash.is_none()
    }

    /// The fault (if any) injected into reads of `page` in `table`.
    /// Pure: same inputs, same answer, forever.
    pub fn fault_for(&self, table: u32, page: u64) -> Option<PageFault> {
        if self.rate_ppm == 0 {
            return None;
        }
        let mut state = self
            .seed
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add((table as u64) << 32)
            .wrapping_add(page);
        let draw = splitmix64(&mut state);
        if draw % 1_000_000 >= self.rate_ppm as u64 {
            return None;
        }
        // Kind draw, independent of the rate draw.
        let kind = splitmix64(&mut state) % 100;
        Some(if kind < 70 {
            let failures = (splitmix64(&mut state) % MAX_READ_RETRIES as u64) as u32 + 1;
            PageFault::Transient { failures }
        } else if kind < 85 {
            if self.recoverable_only {
                PageFault::Transient {
                    failures: MAX_READ_RETRIES,
                }
            } else {
                PageFault::Permanent
            }
        } else {
            let ns = 100_000 + splitmix64(&mut state) % 900_000; // 0.1–1 ms
            PageFault::Stall { ns }
        })
    }

    /// Enumerate the faults this plan injects into the first `pages`
    /// pages of `table` — what a full cold scan of the table would
    /// encounter. Used by tests to compute the exact expected retry
    /// charge.
    pub fn faults_in_table(&self, table: u32, pages: u64) -> Vec<(u64, PageFault)> {
        (0..pages)
            .filter_map(|p| self.fault_for(table, p).map(|f| (p, f)))
            .collect()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_pure_function_of_seed_and_page() {
        let a = FaultPlan::new(42, 200_000);
        let b = FaultPlan::new(42, 200_000);
        for table in [1u32, 2, 9] {
            for page in 0..500u64 {
                assert_eq!(a.fault_for(table, page), b.fault_for(table, page));
            }
        }
    }

    #[test]
    fn none_plan_never_faults() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for page in 0..10_000u64 {
            assert_eq!(p.fault_for(1, page), None);
        }
    }

    #[test]
    fn rate_controls_fault_density() {
        let pages = 20_000u64;
        let low = FaultPlan::new(7, 10_000).faults_in_table(1, pages).len();
        let high = FaultPlan::new(7, 300_000).faults_in_table(1, pages).len();
        assert!(low > 0, "1% of {pages} pages should fault");
        assert!(high > low * 5, "30% rate ({high}) vs 1% rate ({low})");
        // Saturated plan faults every page.
        let all = FaultPlan::new(7, 1_000_000).faults_in_table(1, pages);
        assert_eq!(all.len() as u64, pages);
    }

    #[test]
    fn different_seeds_fault_different_pages() {
        let a = FaultPlan::new(1, 50_000).faults_in_table(1, 10_000);
        let b = FaultPlan::new(2, 50_000).faults_in_table(1, 10_000);
        assert_ne!(a, b);
    }

    #[test]
    fn transient_failures_respect_the_retry_budget() {
        let plan = FaultPlan::new(99, 1_000_000);
        for (_, fault) in plan.faults_in_table(3, 5_000) {
            if let PageFault::Transient { failures } = fault {
                assert!((1..=MAX_READ_RETRIES).contains(&failures));
            }
        }
    }

    #[test]
    fn recoverable_plans_demote_permanents_and_nothing_else() {
        let base = FaultPlan::new(11, 1_000_000);
        let soft = base.recoverable();
        for page in 0..5_000u64 {
            match (base.fault_for(1, page), soft.fault_for(1, page)) {
                (Some(PageFault::Permanent), got) => assert_eq!(
                    got,
                    Some(PageFault::Transient {
                        failures: MAX_READ_RETRIES
                    })
                ),
                (other, got) => assert_eq!(got, other),
            }
        }
        assert!(base
            .faults_in_table(1, 5_000)
            .iter()
            .any(|(_, f)| matches!(f, PageFault::Permanent)));
        assert!(!soft
            .faults_in_table(1, 5_000)
            .iter()
            .any(|(_, f)| matches!(f, PageFault::Permanent)));
    }

    #[test]
    fn wal_crash_points_ride_along_without_touching_page_faults() {
        let base = FaultPlan::new(5, 120_000);
        let crash = base.with_wal_crash(WalCrash::KillAfterRecords {
            records: 7,
            torn: TornTail::MidPayload,
        });
        assert_eq!(base.wal_crash(), None);
        assert_eq!(
            crash.wal_crash(),
            Some(WalCrash::KillAfterRecords {
                records: 7,
                torn: TornTail::MidPayload,
            })
        );
        // Page-fault draws are untouched by the crash point.
        for page in 0..2_000u64 {
            assert_eq!(base.fault_for(1, page), crash.fault_for(1, page));
        }
        // A crash point alone makes the plan non-trivial even with a
        // zero page-fault rate.
        let crash_only =
            FaultPlan::none().with_wal_crash(WalCrash::FsyncFailure { fsync: 0 });
        assert!(!crash_only.is_none());
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        assert_eq!(backoff_ns_for(0), 0);
        assert_eq!(backoff_ns_for(1), BACKOFF_BASE_NS);
        assert_eq!(backoff_ns_for(2), 3 * BACKOFF_BASE_NS);
        assert_eq!(backoff_ns_for(4), 15 * BACKOFF_BASE_NS);
    }
}
