//! A SpeedStep-like DVFS governor.
//!
//! The paper leaves Intel SpeedStep enabled ("we allowed Intel
//! Speedstep to act freely", §3.1), so the CPU transitions to lower
//! p-states on its own when idle or waiting on the disk. Underclocking
//! deliberately preserves this: *all* multiplier steps stay available,
//! just on a slower base clock (§3) — unlike p-state capping, which
//! removes the upper steps.

use crate::cpu::{CpuConfig, CpuSpec, PState};
use crate::trace::PhaseKind;

/// How long the governor dwells at the top p-state after work ends
/// before stepping down, seconds (demand-based switching hysteresis).
pub const STEP_DOWN_DWELL_S: f64 = 2.0e-3;

/// Governor policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GovernorPolicy {
    /// Demand-driven (SpeedStep-like): top state when busy, bottom
    /// state when idle past the dwell window.
    #[default]
    Demand,
    /// Pinned to the top available p-state (a "performance" governor).
    Performance,
}

/// Residency of an idle interval across p-states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleResidency {
    /// Seconds spent halted at the top p-state (pre-step-down dwell).
    pub top_s: f64,
    /// Seconds spent halted at the bottom p-state.
    pub bottom_s: f64,
}

/// The governor: maps execution context to p-states.
#[derive(Debug, Clone, Copy, Default)]
pub struct Governor {
    /// Active policy.
    pub policy: GovernorPolicy,
}

impl Governor {
    /// Governor with the given policy.
    pub fn new(policy: GovernorPolicy) -> Self {
        Self { policy }
    }

    /// P-state used while actively executing the given phase kind.
    pub fn run_pstate(&self, spec: &CpuSpec, cfg: &CpuConfig, kind: PhaseKind) -> PState {
        match kind {
            // Compute phases always demand the top available state.
            PhaseKind::Execute | PhaseKind::ClientCompute => cfg.active_top_pstate(spec),
            PhaseKind::ClientGap => match self.policy {
                GovernorPolicy::Performance => cfg.active_top_pstate(spec),
                GovernorPolicy::Demand => cfg.active_top_pstate(spec),
            },
        }
    }

    /// Split an idle interval (disk wait or client gap) into top-state
    /// and bottom-state residency. Short gaps never see the step-down;
    /// long waits spend almost everything at the bottom state.
    pub fn idle_residency(&self, idle_s: f64) -> IdleResidency {
        assert!(idle_s >= 0.0);
        match self.policy {
            GovernorPolicy::Performance => IdleResidency {
                top_s: idle_s,
                bottom_s: 0.0,
            },
            GovernorPolicy::Demand => {
                let top = idle_s.min(STEP_DOWN_DWELL_S);
                IdleResidency {
                    top_s: top,
                    bottom_s: idle_s - top,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::VoltageSetting;

    #[test]
    fn execute_runs_at_top_state() {
        let spec = CpuSpec::e8500();
        let cfg = CpuConfig::stock();
        let g = Governor::default();
        assert_eq!(
            g.run_pstate(&spec, &cfg, PhaseKind::Execute).multiplier,
            9.5
        );
    }

    #[test]
    fn capped_config_limits_run_pstate() {
        let spec = CpuSpec::e8500();
        let cfg = CpuConfig::capped(7.0, VoltageSetting::Stock);
        let g = Governor::default();
        assert_eq!(
            g.run_pstate(&spec, &cfg, PhaseKind::Execute).multiplier,
            7.0
        );
    }

    #[test]
    fn short_gap_stays_at_top_state() {
        let g = Governor::default();
        let r = g.idle_residency(1.0e-3);
        assert_eq!(r.top_s, 1.0e-3);
        assert_eq!(r.bottom_s, 0.0);
    }

    #[test]
    fn long_wait_mostly_bottom_state() {
        let g = Governor::default();
        let r = g.idle_residency(1.0);
        assert!(r.bottom_s > 0.99);
        assert!((r.top_s - STEP_DOWN_DWELL_S).abs() < 1e-12);
    }

    #[test]
    fn performance_policy_never_steps_down() {
        let g = Governor::new(GovernorPolicy::Performance);
        let r = g.idle_residency(5.0);
        assert_eq!(r.bottom_s, 0.0);
        assert_eq!(r.top_s, 5.0);
    }

    #[test]
    fn residency_conserves_time() {
        let g = Governor::default();
        for idle in [0.0, 1e-4, 1e-2, 3.7] {
            let r = g.idle_residency(idle);
            assert!((r.top_s + r.bottom_s - idle).abs() < 1e-12);
        }
    }
}
