//! CPU package power model and the Table-1 system power breakdown.
//!
//! The CPU model follows the paper's own §3.4 law — dynamic power
//! `C·V²·F` — extended with the two voltage-scaled, time-proportional
//! terms (leakage and uncore) that a `C·V²·F`-only model lacks. Those
//! terms are what make *deep* underclocking counterproductive: dynamic
//! energy per instruction is frequency-independent, but leakage joules
//! accrue over the (longer) runtime.

use crate::calib;
use crate::cpu::{CpuConfig, CpuSpec, PState};
use crate::psu::PsuSpec;

/// CPU package power model.
#[derive(Debug, Clone, Default)]
pub struct CpuPowerModel {
    /// Processor this model prices.
    pub spec: CpuSpec,
}

impl CpuPowerModel {
    /// Model for a given processor.
    pub fn new(spec: CpuSpec) -> Self {
        Self { spec }
    }

    /// Dynamic power of one core at voltage `v`, frequency `f_hz` and
    /// switching activity `activity`, watts.
    pub fn core_dynamic_w(&self, v: f64, f_hz: f64, activity: f64) -> f64 {
        self.spec.ceff_per_core * v * v * f_hz * activity.clamp(0.0, 1.0)
    }

    /// Package leakage at voltage `v`, watts (frequency-independent).
    pub fn leakage_w(&self, v: f64) -> f64 {
        self.spec.k_leak * v * v
    }

    /// Uncore/bus-interface power at voltage `v` and FSB `fsb_hz`, watts.
    pub fn uncore_w(&self, v: f64, fsb_hz: f64) -> f64 {
        self.spec.k_uncore * v * v * (fsb_hz / calib::STOCK_FSB_HZ)
    }

    /// Package power with one core executing at `activity` and the
    /// remaining cores halted, at p-state `p` under `cfg`, with the
    /// workload's CPU utilization (for voltage droop), watts.
    pub fn package_busy_w(
        &self,
        cfg: &CpuConfig,
        p: PState,
        utilization: f64,
        activity: f64,
    ) -> f64 {
        let v = cfg.effective_voltage(p, utilization);
        let f = cfg.fsb_hz(&self.spec) * p.multiplier;
        let busy_core = self.core_dynamic_w(v, f, activity);
        let halted = (self.spec.cores - 1) as f64 * self.core_dynamic_w(v, f, calib::HALT_ACTIVITY);
        busy_core + halted + self.leakage_w(v) + self.uncore_w(v, cfg.fsb_hz(&self.spec))
    }

    /// Package power with *all* cores halted at p-state `p`, watts.
    pub fn package_halt_w(&self, cfg: &CpuConfig, p: PState, utilization: f64) -> f64 {
        let v = cfg.effective_voltage(p, utilization);
        let f = cfg.fsb_hz(&self.spec) * p.multiplier;
        let halted = self.spec.cores as f64 * self.core_dynamic_w(v, f, calib::HALT_ACTIVITY);
        halted + self.leakage_w(v) + self.uncore_w(v, cfg.fsb_hz(&self.spec))
    }

    /// Package power sitting at the BIOS: halted at the top p-state,
    /// stock configuration, no load (the state of Table 1's +CPU row).
    pub fn bios_idle_w(&self) -> f64 {
        let cfg = CpuConfig::stock();
        self.package_halt_w(&cfg, self.spec.top_pstate(), 0.0)
    }
}

/// A component included in a Table-1-style incremental build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// Motherboard (powered).
    Mobo,
    /// CPU with stock fan, idling at the BIOS.
    Cpu,
    /// One 1 GB DDR3 DIMM.
    Dimm,
    /// Discrete GPU.
    Gpu,
}

/// One row of the system power breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Row label (mirrors the paper's Table 1).
    pub label: String,
    /// Whether the system is powered on.
    pub sys_on: bool,
    /// Measured wall power, watts.
    pub wall_w: f64,
}

/// Reproduce the paper's Table 1: wall power as the machine is built up
/// component by component (no disk, no OS — exactly the paper's §3.2
/// methodology).
pub fn table1_breakdown(cpu: &CpuPowerModel, psu: &PsuSpec) -> Vec<BreakdownRow> {
    let stages: [(&str, &[Component]); 6] = [
        ("PSU + MOBO (sys off)", &[]),
        ("PSU + MOBO", &[Component::Mobo]),
        ("+ CPU", &[Component::Mobo, Component::Cpu]),
        (
            "+ 1G RAM",
            &[Component::Mobo, Component::Cpu, Component::Dimm],
        ),
        (
            "+ 2G RAM",
            &[
                Component::Mobo,
                Component::Cpu,
                Component::Dimm,
                Component::Dimm,
            ],
        ),
        (
            "+ GPU (full system)",
            &[
                Component::Mobo,
                Component::Cpu,
                Component::Dimm,
                Component::Dimm,
                Component::Gpu,
            ],
        ),
    ];

    stages
        .iter()
        .enumerate()
        .map(|(i, (label, comps))| {
            let sys_on = i > 0;
            let wall_w = if !sys_on {
                psu.standby_power_w()
            } else {
                let dc: f64 = comps.iter().map(|c| component_dc_w(*c, cpu)).sum();
                psu.wall_power_w(dc)
            };
            BreakdownRow {
                label: label.to_string(),
                sys_on,
                wall_w,
            }
        })
        .collect()
}

/// DC draw of one component in the BIOS-idle build-up state, watts.
pub fn component_dc_w(c: Component, cpu: &CpuPowerModel) -> f64 {
    match c {
        Component::Mobo => calib::MOBO_DC_W,
        Component::Cpu => cpu.bios_idle_w(),
        Component::Dimm => calib::DIMM_IDLE_W + calib::MEM_CTRL_ACTIVE_W / calib::N_DIMMS as f64,
        Component::Gpu => calib::GPU_DC_W,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::VoltageSetting;

    fn model() -> CpuPowerModel {
        CpuPowerModel::new(CpuSpec::e8500())
    }

    #[test]
    fn dynamic_power_follows_cv2f() {
        let m = model();
        let p1 = m.core_dynamic_w(1.0, 1.0e9, 1.0);
        assert!((m.core_dynamic_w(2.0, 1.0e9, 1.0) / p1 - 4.0).abs() < 1e-9);
        assert!((m.core_dynamic_w(1.0, 2.0e9, 1.0) / p1 - 2.0).abs() < 1e-9);
        assert!((m.core_dynamic_w(1.0, 1.0e9, 0.5) / p1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn busy_exceeds_halt_exceeds_bottom_halt() {
        let m = model();
        let cfg = CpuConfig::stock();
        let top = m.spec.top_pstate();
        let bottom = m.spec.bottom_pstate();
        let busy = m.package_busy_w(&cfg, top, 1.0, 1.0);
        let halt_top = m.package_halt_w(&cfg, top, 0.0);
        let halt_bottom = m.package_halt_w(&cfg, bottom, 0.0);
        assert!(busy > halt_top, "busy {busy} vs halt {halt_top}");
        assert!(halt_top > halt_bottom);
    }

    #[test]
    fn voltage_downgrade_reduces_package_power() {
        let m = model();
        let top = m.spec.top_pstate();
        let stock = m.package_busy_w(&CpuConfig::stock(), top, 0.5, 0.9);
        let medium = m.package_busy_w(
            &CpuConfig::underclocked(0.05, VoltageSetting::Medium),
            top,
            0.5,
            0.9,
        );
        assert!(medium < stock * 0.75, "medium {medium} vs stock {stock}");
    }

    #[test]
    fn table1_shape_matches_paper() {
        // Paper Table 1: 9.2 / 20.1 / 49.7 / 54.0 / 55.7 / 69.3 W.
        let rows = table1_breakdown(&model(), &PsuSpec::default());
        assert_eq!(rows.len(), 6);
        let targets = [9.2, 20.1, 49.7, 54.0, 55.7, 69.3];
        for (row, target) in rows.iter().zip(targets) {
            let rel = (row.wall_w - target).abs() / target;
            assert!(
                rel < 0.15,
                "{}: modeled {:.1} W vs paper {:.1} W",
                row.label,
                row.wall_w,
                target
            );
        }
        // Strictly increasing build-up.
        for w in rows.windows(2) {
            assert!(w[1].wall_w > w[0].wall_w);
        }
        // CPU more than doubles the powered-on draw (paper §3.2).
        assert!(rows[2].wall_w > 2.0 * rows[1].wall_w);
    }

    #[test]
    fn bios_idle_cpu_in_plausible_range() {
        let w = model().bios_idle_w();
        assert!(w > 12.0 && w < 30.0, "BIOS-idle CPU {w} W");
    }
}
