//! Power-supply model: standby draw plus a load-dependent efficiency
//! curve.
//!
//! The paper measures everything at the wall through a Corsair VX450W
//! (80plus) and estimates ≈ 83 % efficiency near its ≈ 20 % load point
//! (§3.2), noting that Table 1 therefore "contains a significant amount
//! of PSU losses".

use crate::calib;

/// PSU specification: rated output and an efficiency curve sampled at
/// a few load fractions (linearly interpolated, clamped at the ends).
#[derive(Debug, Clone, PartialEq)]
pub struct PsuSpec {
    /// Rated DC output, watts.
    pub rated_w: f64,
    /// Wall draw with the system soft-off, watts.
    pub standby_w: f64,
    /// (load_fraction, efficiency) anchors, ascending in load.
    pub eff_curve: Vec<(f64, f64)>,
}

impl Default for PsuSpec {
    fn default() -> Self {
        Self {
            rated_w: calib::PSU_RATED_W,
            standby_w: calib::WALL_STANDBY_W,
            eff_curve: calib::PSU_EFF_CURVE.to_vec(),
        }
    }
}

impl PsuSpec {
    /// Efficiency at a DC load, in `(0, 1]`.
    pub fn efficiency(&self, dc_load_w: f64) -> f64 {
        let f = (dc_load_w / self.rated_w).max(0.0);
        let curve = &self.eff_curve;
        if f <= curve[0].0 {
            return curve[0].1;
        }
        if f >= curve[curve.len() - 1].0 {
            return curve[curve.len() - 1].1;
        }
        for w in curve.windows(2) {
            let (f0, e0) = w[0];
            let (f1, e1) = w[1];
            if f <= f1 {
                let t = (f - f0) / (f1 - f0);
                return e0 + t * (e1 - e0);
            }
        }
        curve[curve.len() - 1].1
    }

    /// Wall power for a DC load on a powered-on system, watts.
    /// Includes the always-present standby circuitry.
    pub fn wall_power_w(&self, dc_load_w: f64) -> f64 {
        assert!(dc_load_w >= 0.0, "negative DC load");
        self.standby_w + dc_load_w / self.efficiency(dc_load_w)
    }

    /// Wall power with the system soft-off, watts (Table 1 row 1).
    pub fn standby_power_w(&self) -> f64 {
        self.standby_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_interpolates_and_clamps() {
        let p = PsuSpec::default();
        // Below the first anchor.
        assert_eq!(p.efficiency(0.0), calib::PSU_EFF_CURVE[0].1);
        // At an anchor.
        let (f, e) = calib::PSU_EFF_CURVE[3];
        assert!((p.efficiency(f * p.rated_w) - e).abs() < 1e-12);
        // Above the last anchor.
        assert_eq!(
            p.efficiency(p.rated_w * 2.0),
            calib::PSU_EFF_CURVE[calib::PSU_EFF_CURVE.len() - 1].1
        );
    }

    #[test]
    fn near_20pct_load_efficiency_is_about_83pct() {
        // Paper §3.2: "we estimate that the power efficiency of the PSU
        // is around 83%, given the near 20% load".
        let p = PsuSpec::default();
        let e = p.efficiency(0.20 * p.rated_w);
        assert!((e - 0.83).abs() < 0.01, "efficiency {e}");
    }

    #[test]
    fn wall_exceeds_dc() {
        let p = PsuSpec::default();
        for dc in [5.0, 20.0, 60.0, 120.0] {
            assert!(p.wall_power_w(dc) > dc);
        }
    }

    #[test]
    fn wall_power_monotone_in_load() {
        let p = PsuSpec::default();
        let mut prev = p.wall_power_w(0.0);
        for dc in 1..200 {
            let w = p.wall_power_w(dc as f64);
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn standby_matches_table1_row1() {
        assert!((PsuSpec::default().standby_power_w() - 9.2).abs() < 1e-9);
    }
}
