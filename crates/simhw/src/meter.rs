//! Power measurement instruments.
//!
//! The paper measures CPU power through the ASUS EPU on-board sensor,
//! *sampled graphically about once per second* from the 6-Engine GUI,
//! and reports joules as `average sampled watts × workload runtime`
//! (§3.1). We keep both the exact integral of the simulated power
//! timeline and the 1 Hz sampled estimate, so the paper's measurement
//! methodology is itself reproducible (and its error is testable — see
//! the `ablation_sampling` bench).

use crate::calib;

/// A piecewise-constant power timeline: ordered `(seconds, watts)`
/// segments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerTimeline {
    segments: Vec<(f64, f64)>,
}

impl PowerTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a segment of `seconds` at `watts`. Zero-length segments
    /// are dropped.
    pub fn push(&mut self, seconds: f64, watts: f64) {
        assert!(seconds >= 0.0, "negative duration");
        assert!(watts >= 0.0, "negative power");
        if seconds > 0.0 {
            self.segments.push((seconds, watts));
        }
    }

    /// Total duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.segments.iter().map(|(s, _)| s).sum()
    }

    /// Exact energy: the integral of power over time, joules.
    pub fn exact_joules(&self) -> f64 {
        self.segments.iter().map(|(s, w)| s * w).sum()
    }

    /// Exact average power, watts (0 for an empty timeline).
    pub fn avg_watts(&self) -> f64 {
        let d = self.duration_s();
        if d <= 0.0 {
            0.0
        } else {
            self.exact_joules() / d
        }
    }

    /// Instantaneous power at time `t` seconds from the start.
    pub fn power_at(&self, t: f64) -> f64 {
        let mut acc = 0.0;
        for &(s, w) in &self.segments {
            acc += s;
            if t < acc {
                return w;
            }
        }
        self.segments.last().map(|&(_, w)| w).unwrap_or(0.0)
    }

    /// The paper's estimate: sample the display at a fixed period
    /// (midpoint sampling, quantized to the GUI's resolution), average
    /// the samples, multiply by the runtime. Short runs relative to the
    /// period are the worst case — which is why the paper builds 10-query
    /// workloads "usually many minutes long" (§3.1).
    pub fn sampled_joules(&self, period_s: f64, quantum_w: f64) -> f64 {
        assert!(period_s > 0.0);
        let d = self.duration_s();
        if d <= 0.0 {
            return 0.0;
        }
        let mut t = period_s / 2.0;
        let mut sum = 0.0;
        let mut n = 0u64;
        while t < d {
            let w = self.power_at(t);
            let q = if quantum_w > 0.0 {
                (w / quantum_w).round() * quantum_w
            } else {
                w
            };
            sum += q;
            n += 1;
            t += period_s;
        }
        if n == 0 {
            // Run shorter than one sample period: the GUI shows one
            // reading; use the midpoint.
            return self.power_at(d / 2.0) * d;
        }
        (sum / n as f64) * d
    }

    /// Sampled estimate with the paper's instrument parameters (1 Hz,
    /// 0.1 W display quantum).
    pub fn epu_joules(&self) -> f64 {
        self.sampled_joules(calib::EPU_SAMPLE_PERIOD_S, calib::EPU_QUANTUM_W)
    }

    /// Concatenate another timeline after this one.
    pub fn extend(&mut self, other: &PowerTimeline) {
        self.segments.extend_from_slice(&other.segments);
    }

    /// Raw segments (for plotting/debug).
    pub fn segments(&self) -> &[(f64, f64)] {
        &self.segments
    }
}

/// Run several repetitions, discard the min and max, average the middle
/// — the paper's five-run protocol (§3.1): "we run each workload five
/// times and discard the top and bottom readings, and average the
/// middle three readings."
pub fn trimmed_mean(readings: &[f64]) -> f64 {
    assert!(
        readings.len() >= 3,
        "trimmed mean needs at least 3 readings"
    );
    let mut v: Vec<f64> = readings.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN readings"));
    let inner = &v[1..v.len() - 1];
    inner.iter().sum::<f64>() / inner.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_integration() {
        let mut t = PowerTimeline::new();
        t.push(2.0, 10.0);
        t.push(3.0, 20.0);
        assert!((t.exact_joules() - 80.0).abs() < 1e-12);
        assert!((t.duration_s() - 5.0).abs() < 1e-12);
        assert!((t.avg_watts() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn power_at_picks_correct_segment() {
        let mut t = PowerTimeline::new();
        t.push(1.0, 5.0);
        t.push(1.0, 7.0);
        assert_eq!(t.power_at(0.5), 5.0);
        assert_eq!(t.power_at(1.5), 7.0);
        assert_eq!(t.power_at(99.0), 7.0);
    }

    #[test]
    fn sampling_converges_for_long_runs() {
        // A long alternating workload: the 1 Hz estimate should be
        // within a few percent of the exact integral.
        // Segment period is incommensurate with the 1 Hz sampling so
        // the samples dephase; a commensurate period would alias (a
        // real hazard of the paper's methodology, covered by the
        // `ablation_sampling` bench).
        let mut t = PowerTimeline::new();
        for _ in 0..300 {
            t.push(0.73, 30.0);
            t.push(0.34, 12.0);
        }
        let exact = t.exact_joules();
        let est = t.epu_joules();
        assert!(
            (est - exact).abs() / exact < 0.05,
            "exact {exact}, sampled {est}"
        );
    }

    #[test]
    fn sampling_handles_sub_period_runs() {
        let mut t = PowerTimeline::new();
        t.push(0.4, 25.0);
        let est = t.epu_joules();
        assert!((est - 10.0).abs() < 0.2, "estimate {est}");
    }

    #[test]
    fn zero_length_segments_ignored() {
        let mut t = PowerTimeline::new();
        t.push(0.0, 100.0);
        assert_eq!(t.duration_s(), 0.0);
        assert_eq!(t.exact_joules(), 0.0);
        assert_eq!(t.avg_watts(), 0.0);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let v = [10.0, 100.0, 12.0, 11.0, 0.0];
        assert!((trimmed_mean(&v) - 11.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn trimmed_mean_requires_three() {
        let _ = trimmed_mean(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn negative_power_rejected() {
        let mut t = PowerTimeline::new();
        t.push(1.0, -5.0);
    }
}
