//! DDR3 memory model.
//!
//! The memory clock is a multiple of the FSB (paper §3: "Main memory is
//! on the Northbridge, and its operating frequency is a multiple of the
//! FSB"), so underclocking slows DRAM along with the CPU. Two effects
//! follow and both matter to the PVC results:
//!
//! 1. memory-bound time grows when underclocked — superlinearly, via a
//!    contention factor, because the controller's service rate drops
//!    while the request stream does not thin;
//! 2. DRAM power drops slightly (lower clock, fewer transfers/s),
//!    which the paper notes as a side benefit of underclocking.

use crate::calib;

/// Memory subsystem specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemSpec {
    /// Stream bandwidth at stock FSB, bytes/s.
    pub stream_bw_stock: f64,
    /// Random access latency at stock FSB, seconds.
    pub random_latency_stock_s: f64,
    /// Number of DIMMs installed.
    pub dimms: usize,
}

impl Default for MemSpec {
    fn default() -> Self {
        Self {
            stream_bw_stock: calib::MEM_BW_STOCK,
            random_latency_stock_s: calib::MEM_LAT_STOCK_NS * 1e-9,
            dimms: calib::N_DIMMS,
        }
    }
}

impl MemSpec {
    /// Contention multiplier for memory time at underclock fraction `u`:
    /// `(1/(1-u))^MEM_CONTENTION_EXP`. Equals 1 at stock and grows
    /// superlinearly — the queueing term behind the paper's observation
    /// that the time penalty "overwhelms any CPU power gains" beyond
    /// 5 % underclocking (§3.4).
    pub fn contention_factor(&self, underclock: f64) -> f64 {
        assert!((0.0..1.0).contains(&underclock));
        (1.0 / (1.0 - underclock)).powf(calib::MEM_CONTENTION_EXP)
    }

    /// Time to stream `bytes` through memory at underclock `u`, seconds.
    pub fn stream_time_s(&self, bytes: u64, underclock: f64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let base = bytes as f64 / self.stream_bw_stock;
        base * self.contention_factor(underclock)
    }

    /// Time for `accesses` latency-bound random accesses at underclock `u`.
    pub fn random_time_s(&self, accesses: u64, underclock: f64) -> f64 {
        if accesses == 0 {
            return 0.0;
        }
        accesses as f64 * self.random_latency_stock_s * self.contention_factor(underclock)
    }

    /// DC power of the memory subsystem, watts.
    ///
    /// `bw_utilization` in `[0,1]` is the fraction of peak stream
    /// bandwidth in use; `underclock` scales the active component with
    /// the clock (lower clock ⇒ fewer transfers ⇒ less switching).
    pub fn power_w(&self, bw_utilization: f64, underclock: f64) -> f64 {
        let util = bw_utilization.clamp(0.0, 1.0);
        let clock_scale = 1.0 - underclock;
        let idle = self.dimms as f64 * calib::DIMM_IDLE_W;
        let active = self.dimms as f64 * calib::DIMM_ACTIVE_EXTRA_W * util * clock_scale
            + calib::MEM_CTRL_ACTIVE_W * util * clock_scale;
        idle + active
    }

    /// Idle DC power, watts.
    pub fn idle_power_w(&self) -> f64 {
        self.power_w(0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_is_one_at_stock_and_grows() {
        let m = MemSpec::default();
        assert!((m.contention_factor(0.0) - 1.0).abs() < 1e-12);
        let c5 = m.contention_factor(0.05);
        let c10 = m.contention_factor(0.10);
        let c15 = m.contention_factor(0.15);
        assert!(c5 > 1.0 && c10 > c5 && c15 > c10);
        // Superlinear: growth from 10→15 % exceeds growth from 5→10 %.
        assert!(c15 - c10 > c10 - c5);
    }

    #[test]
    fn stream_time_scales_with_bytes() {
        let m = MemSpec::default();
        let t1 = m.stream_time_s(1 << 20, 0.0);
        let t2 = m.stream_time_s(2 << 20, 0.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert_eq!(m.stream_time_s(0, 0.0), 0.0);
    }

    #[test]
    fn underclock_slows_memory() {
        let m = MemSpec::default();
        assert!(m.stream_time_s(1 << 24, 0.10) > m.stream_time_s(1 << 24, 0.0));
        assert!(m.random_time_s(1000, 0.10) > m.random_time_s(1000, 0.0));
    }

    #[test]
    fn dram_power_drops_when_underclocked() {
        // Paper §3: "underclocking also slows the main memory, which in
        // turn reduces the amount of energy consumed by main memory."
        let m = MemSpec::default();
        assert!(m.power_w(0.8, 0.15) < m.power_w(0.8, 0.0));
    }

    #[test]
    fn idle_power_near_table1_ram_rows() {
        // Table 1: two DIMMs draw ≈ 6 W at the wall incl. controller;
        // the DC idle floor should be a couple of watts.
        let m = MemSpec::default();
        let p = m.idle_power_w();
        assert!(p > 1.5 && p < 4.0, "idle DRAM power {p} W");
    }
}
