//! Multi-core machine: N CPU cores, each with its own DVFS governor and
//! power timeline, over shared DRAM, disk and PSU.
//!
//! The paper measures a single-socket machine; production deployments
//! run a query across many cores, each with its own SpeedStep governor.
//! This module prices *per-core* [`WorkTrace`]s — one trace per worker,
//! produced by the morsel-driven parallel executor in `eco-query` —
//! under per-core [`MachineConfig`]s:
//!
//! * **CPU**: each core is an independent [`Machine`] pricing of its own
//!   trace (own governor, own exact-integral power timeline). Cores that
//!   finish before the slowest core halt for the remaining *idle tail*,
//!   split across p-states by that core's governor — exactly how the
//!   single-core model prices disk waits and client gaps.
//! * **DRAM / disk**: shared rails. Each per-core measurement carries its
//!   own idle-floor integral, so the shared floor is re-based: charged
//!   once over the barrier makespan, plus every core's activity *above*
//!   the floor.
//! * **PSU**: the summed DC draw of all components feeds the shared
//!   efficiency curve — N busy cores push the supply up its load curve,
//!   which is why per-core energy is not simply `single-core ÷ N`.
//!
//! With one core and the core's own trace, [`MultiCoreMachine::measure`]
//! reproduces [`Machine::measure`] exactly (enforced by tests), so the
//! multi-core model is a strict generalization.
//!
//! The FSB (and therefore the underclock setting) is shared by all
//! cores on a socket, so per-core configs may differ in voltage and
//! p-state cap but must agree on `underclock`; `measure` asserts this.

use crate::calib;
use crate::machine::{Machine, MachineConfig, Measurement};
use crate::trace::WorkTrace;

/// A machine with `cores` identical CPU cores sharing memory, disk and
/// power supply.
#[derive(Debug, Clone)]
pub struct MultiCoreMachine {
    /// The per-core hardware model (CPU spec) plus the shared
    /// memory/disk/PSU specs.
    pub machine: Machine,
    /// Number of cores.
    pub cores: usize,
}

/// The result of pricing per-core traces on a [`MultiCoreMachine`].
#[derive(Debug, Clone)]
pub struct MultiCoreMeasurement {
    /// Per-core single-core measurements (each over its own trace only;
    /// the aggregate fields below re-base the shared rails).
    pub per_core: Vec<Measurement>,
    /// Barrier makespan: the slowest core's elapsed time, seconds.
    pub elapsed_s: f64,
    /// Total CPU package energy across all cores, including the halt
    /// energy of cores idling in the tail, joules.
    pub cpu_joules: f64,
    /// Shared-DRAM energy, joules (idle floor charged once).
    pub dram_joules: f64,
    /// Shared-disk energy, joules (idle floor charged once).
    pub disk_joules: f64,
    /// Wall energy through the shared PSU, joules.
    pub wall_joules: f64,
    /// Summed CPU-busy seconds across cores.
    pub busy_s: f64,
    /// Aggregate utilization: `busy_s / (cores × elapsed_s)`.
    pub utilization: f64,
    /// Average wall power, watts.
    pub avg_wall_w: f64,
}

impl MultiCoreMeasurement {
    /// Energy-delay product on CPU joules, `joules × seconds`.
    pub fn edp(&self) -> f64 {
        self.cpu_joules * self.elapsed_s
    }

    /// Energy-delay product on wall joules.
    pub fn wall_edp(&self) -> f64 {
        self.wall_joules * self.elapsed_s
    }

    /// Wall-clock speedup vs a single-core baseline measurement.
    pub fn speedup_vs(&self, serial: &Measurement) -> f64 {
        if self.elapsed_s > 0.0 {
            serial.elapsed_s / self.elapsed_s
        } else {
            f64::INFINITY
        }
    }
}

impl MultiCoreMachine {
    /// The paper's system under test scaled out to `cores` cores.
    pub fn paper_sut(cores: usize) -> Self {
        assert!(cores >= 1, "need at least one core");
        Self {
            machine: Machine::paper_sut(),
            cores,
        }
    }

    /// Price one trace per core under one config per core. Traces and
    /// configs must both have exactly `cores` entries, and all configs
    /// must share the same (socket-wide) underclock setting.
    pub fn measure(&self, traces: &[WorkTrace], configs: &[MachineConfig]) -> MultiCoreMeasurement {
        assert_eq!(traces.len(), self.cores, "one trace per core");
        assert_eq!(configs.len(), self.cores, "one config per core");
        let u = configs[0].cpu.underclock;
        assert!(
            configs.iter().all(|c| c.cpu.underclock == u),
            "the FSB is shared: all cores must agree on the underclock"
        );

        let m = &self.machine;
        let per_core: Vec<Measurement> = traces
            .iter()
            .zip(configs)
            .map(|(t, c)| m.measure(t, c))
            .collect();
        let elapsed_s = per_core.iter().map(|mm| mm.elapsed_s).fold(0.0, f64::max);
        let busy_s: f64 = per_core.iter().map(|mm| mm.busy_s).sum();

        // CPU: per-core integrals plus the halt energy of the idle tail
        // each faster core spends waiting at the barrier.
        let cpu_model = m.cpu_power();
        let bottom_p = m.cpu_spec.bottom_pstate();
        let mut cpu_joules = 0.0;
        for (mm, cfg) in per_core.iter().zip(configs) {
            cpu_joules += mm.cpu_joules;
            let tail = elapsed_s - mm.elapsed_s;
            if tail > 0.0 {
                let top_p = cfg.cpu.active_top_pstate(&m.cpu_spec);
                let res = cfg.governor.idle_residency(tail);
                cpu_joules += res.top_s * cpu_model.package_halt_w(&cfg.cpu, top_p, mm.utilization);
                cpu_joules +=
                    res.bottom_s * cpu_model.package_halt_w(&cfg.cpu, bottom_p, mm.utilization);
            }
        }

        // DRAM: shared DIMMs. Each per-core measurement includes the
        // idle floor over its own elapsed time; charge the floor once
        // over the makespan plus every core's activity above it.
        let dram_idle_w = m.mem.power_w(0.0, u);
        let dram_joules = dram_idle_w * elapsed_s
            + per_core
                .iter()
                .map(|mm| (mm.dram_joules - dram_idle_w * mm.elapsed_s).max(0.0))
                .sum::<f64>();

        // Disk: shared spindle, same re-basing (active I/O energy is
        // additive; the idle floor spins once for the whole makespan).
        let disk_idle_w = m.disk.idle_power_w();
        let disk_joules = disk_idle_w * elapsed_s
            + per_core
                .iter()
                .map(|mm| {
                    let disk_busy: f64 = mm.phases.iter().map(|p| p.disk_s).sum();
                    (mm.disk_joules - disk_idle_w * (mm.elapsed_s - disk_busy)).max(0.0)
                        - disk_idle_w * disk_busy
                })
                .map(|active| active.max(0.0))
                .sum::<f64>();

        // PSU: summed DC draw of every component through the shared
        // efficiency curve.
        let wall_joules = if elapsed_s > 0.0 {
            let dc_avg = (cpu_joules + dram_joules + disk_joules) / elapsed_s
                + calib::MOBO_DC_W
                + calib::GPU_DC_W;
            m.psu.wall_power_w(dc_avg) * elapsed_s
        } else {
            0.0
        };

        let denom = self.cores as f64 * elapsed_s;
        MultiCoreMeasurement {
            per_core,
            elapsed_s,
            cpu_joules,
            dram_joules,
            disk_joules,
            wall_joules,
            busy_s,
            utilization: if denom > 0.0 {
                (busy_s / denom).clamp(0.0, 1.0)
            } else {
                0.0
            },
            avg_wall_w: if elapsed_s > 0.0 {
                wall_joules / elapsed_s
            } else {
                0.0
            },
        }
    }

    /// Price per-core traces with the same config on every core.
    pub fn measure_uniform(
        &self,
        traces: &[WorkTrace],
        config: &MachineConfig,
    ) -> MultiCoreMeasurement {
        self.measure(traces, &vec![*config; self.cores])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuConfig, VoltageSetting};
    use crate::trace::{OpClass, Phase};

    fn work_trace(ops: u64) -> WorkTrace {
        let mut t = WorkTrace::new();
        let mut p = Phase::execute("w");
        p.cpu.add(OpClass::PredEval, ops);
        p.cpu.add(OpClass::TupleFetch, ops);
        p.mem_stream_bytes = 32 << 20;
        t.push(p);
        t
    }

    fn split_trace(ops: u64, cores: usize) -> Vec<WorkTrace> {
        (0..cores).map(|_| work_trace(ops / cores as u64)).collect()
    }

    #[test]
    fn one_core_reproduces_single_core_machine() {
        let mc = MultiCoreMachine::paper_sut(1);
        let trace = work_trace(4_000_000);
        let cfg = MachineConfig::stock();
        let single = mc.machine.measure(&trace, &cfg);
        let multi = mc.measure_uniform(std::slice::from_ref(&trace), &cfg);
        assert!((multi.elapsed_s - single.elapsed_s).abs() < 1e-12);
        assert!((multi.cpu_joules - single.cpu_joules).abs() < 1e-9);
        assert!((multi.dram_joules - single.dram_joules).abs() < 1e-9);
        assert!((multi.disk_joules - single.disk_joules).abs() < 1e-9);
        assert!((multi.wall_joules - single.wall_joules).abs() < 1e-6);
    }

    #[test]
    fn four_cores_cut_makespan_but_draw_more_wall_power() {
        let serial_m = MultiCoreMachine::paper_sut(1);
        let cfg = MachineConfig::stock();
        let serial = serial_m.machine.measure(&work_trace(8_000_000), &cfg);

        let mc = MultiCoreMachine::paper_sut(4);
        let multi = mc.measure_uniform(&split_trace(8_000_000, 4), &cfg);
        let speedup = multi.speedup_vs(&serial);
        assert!(
            speedup > 3.0 && speedup <= 4.0 + 1e-9,
            "near-linear simulated scaling, got {speedup}"
        );
        assert!(
            multi.avg_wall_w > serial.avg_wall_w,
            "4 busy cores draw more"
        );
        // Wall energy for the same total work should not quadruple.
        assert!(multi.wall_joules < 2.0 * serial.wall_joules);
    }

    #[test]
    fn straggler_sets_the_makespan_and_idle_cores_halt_cheaply() {
        let mc = MultiCoreMachine::paper_sut(2);
        let cfg = MachineConfig::stock();
        let traces = vec![work_trace(8_000_000), work_trace(1_000_000)];
        let multi = mc.measure_uniform(&traces, &cfg);
        assert!((multi.elapsed_s - multi.per_core[0].elapsed_s).abs() < 1e-12);
        // The idle tail adds energy at halt power — well below the
        // fast core's busy power.
        let tail_j = multi.cpu_joules - multi.per_core[0].cpu_joules - multi.per_core[1].cpu_joules;
        let tail_s = multi.elapsed_s - multi.per_core[1].elapsed_s;
        assert!(tail_j > 0.0 && tail_s > 0.0);
        let tail_w = tail_j / tail_s;
        let busy_w = multi.per_core[1].cpu_joules / multi.per_core[1].elapsed_s;
        assert!(tail_w < busy_w, "halt {tail_w} W !< busy {busy_w} W");
    }

    #[test]
    fn per_core_pstate_cap_slows_only_the_capped_core() {
        let mc = MultiCoreMachine::paper_sut(2);
        let traces = split_trace(8_000_000, 2);
        let stock = MachineConfig::stock();
        let capped = MachineConfig::with_cpu(CpuConfig::capped(7.0, VoltageSetting::Stock));
        let multi = mc.measure(&traces, &[stock, capped]);
        assert!(
            multi.per_core[1].elapsed_s > multi.per_core[0].elapsed_s,
            "capped core must be slower"
        );
        // Makespan follows the capped core.
        assert!((multi.elapsed_s - multi.per_core[1].elapsed_s).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "FSB is shared")]
    fn mismatched_underclock_rejected() {
        let mc = MultiCoreMachine::paper_sut(2);
        let traces = split_trace(1_000_000, 2);
        let a = MachineConfig::stock();
        let b = MachineConfig::with_cpu(CpuConfig::underclocked(0.05, VoltageSetting::Stock));
        let _ = mc.measure(&traces, &[a, b]);
    }

    #[test]
    fn empty_traces_measure_zero() {
        let mc = MultiCoreMachine::paper_sut(3);
        let traces = vec![WorkTrace::new(), WorkTrace::new(), WorkTrace::new()];
        let m = mc.measure_uniform(&traces, &MachineConfig::stock());
        assert_eq!(m.elapsed_s, 0.0);
        assert_eq!(m.cpu_joules, 0.0);
        assert_eq!(m.wall_joules, 0.0);
    }
}
