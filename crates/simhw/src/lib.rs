//! # eco-simhw — simulated hardware substrate for ecoDB
//!
//! This crate reproduces, in simulation, the hardware test bed of
//! Lang & Patel, *Towards Eco-friendly Database Management Systems*
//! (CIDR 2009): an Intel Core2-class CPU with p-states, FSB
//! underclocking and BIOS voltage downgrades; DDR3 memory whose clock is
//! coupled to the FSB; a 7200 rpm SATA disk with separately-metered
//! 5 V / 12 V rails; an 80plus power supply; and the paper's two power
//! measurement instruments (a wall-power meter and a 1 Hz on-board CPU
//! power sensor).
//!
//! The central abstraction is the [`machine::Machine`]: software above
//! this crate *executes real work* and records what it did in a
//! [`trace::WorkTrace`] (instruction-class counts, bytes streamed,
//! random memory accesses, disk I/O, client round-trip gaps). The
//! machine then converts that trace, under a given
//! [`machine::MachineConfig`] (underclock percentage, voltage setting,
//! p-state policy), into a [`machine::Measurement`]: elapsed time, CPU
//! joules, DRAM joules, disk joules, and wall joules.
//!
//! [`multicore::MultiCoreMachine`] scales the model out to N cores —
//! one trace and one DVFS governor per core, idle-tail halt pricing at
//! the barrier, shared DRAM/disk rails charged once, and the summed DC
//! draw through the shared PSU efficiency curve — which is how the
//! morsel-driven parallel executor in `eco-query` gets priced.
//!
//! All tuned constants live in [`calib`] with provenance notes tying
//! them back to the paper's reported data points.

pub mod calib;
pub mod cpu;
pub mod disk;
pub mod dvfs;
pub mod fault;
pub mod machine;
pub mod mem;
pub mod meter;
pub mod multicore;
pub mod opensys;
pub mod power;
pub mod psu;
pub mod trace;

pub use cpu::{CpuConfig, CpuSpec, PState, VoltageSetting};
pub use disk::{AccessPattern, DiskSpec};
pub use fault::{FaultPlan, PageFault, BACKOFF_BASE_NS, MAX_READ_RETRIES};
pub use machine::{Machine, MachineConfig, Measurement};
pub use multicore::{MultiCoreMachine, MultiCoreMeasurement};
pub use opensys::{ArrivalSchedule, IdleMeasurement, OpenSystemMeasurement, OpenSystemRun};
pub use trace::{
    CpuWork, DiskWork, OpClass, Phase, PhaseKind, PricingMode, WorkTrace, LEDGER_SCHEMA_VERSION,
};
