//! The machine: assembles CPU, memory, disk and PSU models and prices a
//! [`WorkTrace`] under a [`MachineConfig`].
//!
//! Separating *what the software did* (the trace) from *what the
//! hardware charged for it* (this module) is what makes a PVC sweep
//! cheap and deterministic: execute once, measure under every
//! voltage/frequency setting.

use crate::calib;
use crate::cpu::{CpuConfig, CpuSpec};
use crate::disk::DiskSpec;
use crate::dvfs::Governor;
use crate::mem::MemSpec;
use crate::meter::PowerTimeline;
use crate::power::CpuPowerModel;
use crate::psu::PsuSpec;
use crate::trace::{Phase, PhaseKind, WorkTrace};

/// Everything configurable about the machine for one run: the PVC
/// setting plus the DVFS governor.
#[derive(Debug, Clone, Copy, Default)]
pub struct MachineConfig {
    /// CPU clocking/voltage configuration (the PVC knob).
    pub cpu: CpuConfig,
    /// DVFS governor (SpeedStep stays enabled in the paper).
    pub governor: Governor,
}

impl MachineConfig {
    /// Stock machine configuration.
    pub fn stock() -> Self {
        Self::default()
    }

    /// Configuration with the given CPU setting and a demand governor.
    pub fn with_cpu(cpu: CpuConfig) -> Self {
        Self {
            cpu,
            governor: Governor::default(),
        }
    }
}

/// Per-phase measurement detail.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMeasurement {
    /// Phase label (copied from the trace).
    pub label: String,
    /// Phase kind.
    pub kind: PhaseKind,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
    /// Seconds the CPU was executing (incl. memory stalls).
    pub busy_s: f64,
    /// Seconds waiting on the disk.
    pub disk_s: f64,
    /// CPU package joules.
    pub cpu_joules: f64,
}

/// The result of pricing one trace under one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Total wall-clock time, seconds.
    pub elapsed_s: f64,
    /// CPU package energy, joules (exact integral — what the EPU sensor
    /// approximates).
    pub cpu_joules: f64,
    /// CPU energy as the paper would have measured it: 1 Hz sampled,
    /// average × runtime.
    pub cpu_joules_epu: f64,
    /// DRAM energy, joules.
    pub dram_joules: f64,
    /// Disk energy across both rails, joules (incl. idle floor).
    pub disk_joules: f64,
    /// Wall (meter) energy, joules.
    pub wall_joules: f64,
    /// CPU-busy seconds.
    pub busy_s: f64,
    /// CPU utilization: busy / elapsed.
    pub utilization: f64,
    /// Average CPU package power, watts.
    pub avg_cpu_w: f64,
    /// Average wall power, watts.
    pub avg_wall_w: f64,
    /// Effective core voltage during busy execution, volts.
    pub busy_voltage_v: f64,
    /// Peak core frequency under the configuration, Hz.
    pub top_freq_hz: f64,
    /// Per-phase detail.
    pub phases: Vec<PhaseMeasurement>,
}

impl Measurement {
    /// Energy-delay product on CPU joules (the paper's headline metric):
    /// `joules × seconds`.
    pub fn edp(&self) -> f64 {
        self.cpu_joules * self.elapsed_s
    }

    /// Energy-delay product on wall joules.
    pub fn wall_edp(&self) -> f64 {
        self.wall_joules * self.elapsed_s
    }
}

/// Internal: frequency-dependent timing of one phase.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseTiming {
    cpu_s: f64,
    stall_s: f64,
    disk_s: f64,
    disk_joules_active: f64,
    gap_s: f64,
    backoff_s: f64,
}

impl PhaseTiming {
    fn busy_s(&self) -> f64 {
        self.cpu_s + self.stall_s
    }
    fn elapsed_s(&self) -> f64 {
        self.busy_s() + self.disk_s + self.gap_s + self.backoff_s
    }
}

/// The simulated system under test.
#[derive(Debug, Clone, Default)]
pub struct Machine {
    /// Processor specification.
    pub cpu_spec: CpuSpec,
    /// Memory specification.
    pub mem: MemSpec,
    /// Disk specification.
    pub disk: DiskSpec,
    /// Power supply specification.
    pub psu: PsuSpec,
}

impl Machine {
    /// The paper's system under test (§3.1).
    pub fn paper_sut() -> Self {
        Self::default()
    }

    /// CPU power model for this machine.
    pub fn cpu_power(&self) -> CpuPowerModel {
        CpuPowerModel::new(self.cpu_spec.clone())
    }

    /// Price a trace under a configuration.
    pub fn measure(&self, trace: &WorkTrace, config: &MachineConfig) -> Measurement {
        let u = config.cpu.underclock;
        let cpu_model = self.cpu_power();
        let top_freq = config.cpu.top_freq_hz(&self.cpu_spec);

        // Pass 1: timing (voltage-independent).
        let timings: Vec<PhaseTiming> = trace
            .phases()
            .iter()
            .map(|p| self.phase_timing(p, config, top_freq))
            .collect();

        let busy_s: f64 = timings.iter().map(|t| t.busy_s()).sum();
        let elapsed_s: f64 = timings.iter().map(|t| t.elapsed_s()).sum();
        let utilization = if elapsed_s > 0.0 {
            (busy_s / elapsed_s).clamp(0.0, 1.0)
        } else {
            0.0
        };

        // Pass 2: power, with droop-adjusted voltage from utilization.
        let top_p = config.cpu.active_top_pstate(&self.cpu_spec);
        let bottom_p = self.cpu_spec.bottom_pstate();
        let busy_voltage = config.cpu.effective_voltage(top_p, utilization);

        let mut cpu_tl = PowerTimeline::new();
        let mut dram_joules = 0.0;
        let mut disk_active_joules = 0.0;
        let mut phases_out = Vec::with_capacity(trace.len());

        for (phase, t) in trace.phases().iter().zip(&timings) {
            let mut phase_cpu_j = 0.0;

            // Busy interval.
            if t.busy_s() > 0.0 {
                let act_ops = phase.cpu.mean_activity();
                let act = if t.busy_s() > 0.0 {
                    (t.cpu_s * act_ops + t.stall_s * calib::STALL_ACTIVITY) / t.busy_s()
                } else {
                    act_ops
                };
                let w = cpu_model.package_busy_w(&config.cpu, top_p, utilization, act);
                cpu_tl.push(t.busy_s(), w);
                phase_cpu_j += w * t.busy_s();
                // DRAM active in proportion to the stall share.
                let bw_util = if t.busy_s() > 0.0 {
                    (t.stall_s / t.busy_s()).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                dram_joules += self.mem.power_w(bw_util, u) * t.busy_s();
            }

            // Idle intervals: disk waits, client gaps, and retry
            // backoff (the v2 "backoff halt residency" charge class —
            // the CPU halts through it like a gap), split across
            // p-states by the governor.
            let idle_s = t.disk_s + t.gap_s + t.backoff_s;
            if idle_s > 0.0 {
                let res = config.governor.idle_residency(idle_s);
                let w_top = cpu_model.package_halt_w(&config.cpu, top_p, utilization);
                let w_bot = cpu_model.package_halt_w(&config.cpu, bottom_p, utilization);
                if res.top_s > 0.0 {
                    cpu_tl.push(res.top_s, w_top);
                    phase_cpu_j += w_top * res.top_s;
                }
                if res.bottom_s > 0.0 {
                    cpu_tl.push(res.bottom_s, w_bot);
                    phase_cpu_j += w_bot * res.bottom_s;
                }
                dram_joules += self.mem.power_w(0.0, u) * idle_s;
            }

            disk_active_joules += t.disk_joules_active;

            phases_out.push(PhaseMeasurement {
                label: phase.label.clone(),
                kind: phase.kind,
                elapsed_s: t.elapsed_s(),
                busy_s: t.busy_s(),
                disk_s: t.disk_s,
                cpu_joules: phase_cpu_j,
            });
        }

        let cpu_joules = cpu_tl.exact_joules();
        let cpu_joules_epu = cpu_tl.epu_joules();

        // Disk: active costs already priced; idle floor for the rest of
        // the run (the drive spins throughout).
        let disk_busy_s: f64 = timings.iter().map(|t| t.disk_s).sum();
        let disk_joules =
            disk_active_joules + self.disk.idle_power_w() * (elapsed_s - disk_busy_s).max(0.0);

        // Wall power: DC sum of all components through the PSU,
        // averaged over the run (fine for energy; per-segment wall
        // detail is not needed by any experiment).
        let wall_joules = if elapsed_s > 0.0 {
            let dc_avg = cpu_joules / elapsed_s
                + dram_joules / elapsed_s
                + disk_joules / elapsed_s
                + calib::MOBO_DC_W
                + calib::GPU_DC_W;
            self.psu.wall_power_w(dc_avg) * elapsed_s
        } else {
            0.0
        };

        Measurement {
            elapsed_s,
            cpu_joules,
            cpu_joules_epu,
            dram_joules,
            disk_joules,
            wall_joules,
            busy_s,
            utilization,
            avg_cpu_w: if elapsed_s > 0.0 {
                cpu_joules / elapsed_s
            } else {
                0.0
            },
            avg_wall_w: if elapsed_s > 0.0 {
                wall_joules / elapsed_s
            } else {
                0.0
            },
            busy_voltage_v: busy_voltage,
            top_freq_hz: top_freq,
            phases: phases_out,
        }
    }

    /// Busy (CPU + memory-stall) seconds a phase would take at stock
    /// settings. Used to size frequency-*independent* intervals (client
    /// round trips, think time) proportionally to the work they follow.
    pub fn stock_busy_seconds(&self, phase: &Phase) -> f64 {
        let cfg = MachineConfig::stock();
        let t = self.phase_timing(phase, &cfg, cfg.cpu.top_freq_hz(&self.cpu_spec));
        t.busy_s()
    }

    fn phase_timing(&self, phase: &Phase, config: &MachineConfig, top_freq: f64) -> PhaseTiming {
        let u = config.cpu.underclock;
        let cpu_s = phase.cpu.cycles() / top_freq;
        let mem_raw = self.mem.stream_time_s(phase.mem_stream_bytes, u)
            + self.mem.random_time_s(phase.mem_random_accesses, u);
        let stall_s = mem_raw * (1.0 - calib::MEM_OVERLAP);
        let dcost = self.disk.cost(&phase.disk);
        PhaseTiming {
            cpu_s,
            stall_s,
            disk_s: dcost.busy_s,
            disk_joules_active: dcost.busy_joules(),
            gap_s: phase.gap_ns as f64 * 1e-9,
            backoff_s: phase.backoff_ns as f64 * 1e-9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::VoltageSetting;
    use crate::trace::{DiskWork, OpClass};

    fn cpu_heavy_trace(scale: u64) -> WorkTrace {
        let mut t = WorkTrace::new();
        let mut p = Phase::execute("cpu");
        p.cpu.add(OpClass::PredEval, 2_000_000 * scale);
        p.cpu.add(OpClass::TupleFetch, 2_000_000 * scale);
        p.mem_stream_bytes = 64 << 20;
        t.push(p);
        t
    }

    fn mixed_trace() -> WorkTrace {
        let mut t = WorkTrace::new();
        let mut p = Phase::execute("q");
        p.cpu.add(OpClass::PredEval, 3_000_000);
        p.mem_stream_bytes = 256 << 20;
        p.disk = DiskWork {
            sequential_bytes: 256 << 20,
            random_ios: 500,
            random_bytes: 500 * 8192,
            ..DiskWork::none()
        };
        t.push(p);
        t.push(Phase::client_gap(50_000_000)); // 50 ms
        t
    }

    #[test]
    fn underclocking_slows_and_downgrade_saves() {
        let m = Machine::paper_sut();
        let trace = cpu_heavy_trace(4);
        let stock = m.measure(&trace, &MachineConfig::stock());
        let pvc = m.measure(
            &trace,
            &MachineConfig::with_cpu(CpuConfig::underclocked(0.05, VoltageSetting::Medium)),
        );
        assert!(pvc.elapsed_s > stock.elapsed_s, "underclock must be slower");
        assert!(
            pvc.cpu_joules < stock.cpu_joules,
            "downgrade must save energy: {} vs {}",
            pvc.cpu_joules,
            stock.cpu_joules
        );
    }

    #[test]
    fn energy_rises_again_with_deep_underclock() {
        // Paper Fig 1: settings B and C (10/15 %) consume *more* energy
        // than setting A (5 %) at the same voltage downgrade.
        let m = Machine::paper_sut();
        let trace = cpu_heavy_trace(4);
        let e = |u: f64| {
            m.measure(
                &trace,
                &MachineConfig::with_cpu(CpuConfig::underclocked(u, VoltageSetting::Medium)),
            )
            .cpu_joules
        };
        let (e5, e10, e15) = (e(0.05), e(0.10), e(0.15));
        assert!(e10 > e5, "10% ({e10}) must exceed 5% ({e5})");
        assert!(e15 > e10, "15% ({e15}) must exceed 10% ({e10})");
    }

    #[test]
    fn edp_optimum_at_shallow_underclock() {
        let m = Machine::paper_sut();
        let trace = cpu_heavy_trace(4);
        let edp = |u: f64| {
            m.measure(
                &trace,
                &MachineConfig::with_cpu(CpuConfig::underclocked(u, VoltageSetting::Medium)),
            )
            .edp()
        };
        let stock = m.measure(&trace, &MachineConfig::stock()).edp();
        assert!(edp(0.05) < stock, "5% must beat stock EDP");
        assert!(edp(0.05) < edp(0.10));
        assert!(edp(0.10) < edp(0.15));
    }

    #[test]
    fn utilization_and_components_sane() {
        let m = Machine::paper_sut();
        let meas = m.measure(&mixed_trace(), &MachineConfig::stock());
        assert!(meas.utilization > 0.0 && meas.utilization < 1.0);
        assert!(meas.cpu_joules > 0.0);
        assert!(meas.dram_joules > 0.0);
        assert!(meas.disk_joules > 0.0);
        assert!(meas.wall_joules > meas.cpu_joules + meas.dram_joules + meas.disk_joules);
        assert_eq!(meas.phases.len(), 2);
        let phase_sum: f64 = meas.phases.iter().map(|p| p.elapsed_s).sum();
        assert!((phase_sum - meas.elapsed_s).abs() < 1e-9);
        let phase_cpu: f64 = meas.phases.iter().map(|p| p.cpu_joules).sum();
        assert!((phase_cpu - meas.cpu_joules).abs() / meas.cpu_joules < 1e-9);
    }

    #[test]
    fn epu_estimate_tracks_exact_for_long_runs() {
        let m = Machine::paper_sut();
        let trace = cpu_heavy_trace(64);
        let meas = m.measure(&trace, &MachineConfig::stock());
        assert!(meas.elapsed_s > 2.0, "need a multi-second run");
        let rel = (meas.cpu_joules_epu - meas.cpu_joules).abs() / meas.cpu_joules;
        assert!(rel < 0.05, "EPU estimate off by {rel}");
    }

    #[test]
    fn empty_trace_measures_zero() {
        let m = Machine::paper_sut();
        let meas = m.measure(&WorkTrace::new(), &MachineConfig::stock());
        assert_eq!(meas.elapsed_s, 0.0);
        assert_eq!(meas.cpu_joules, 0.0);
        assert_eq!(meas.wall_joules, 0.0);
    }

    #[test]
    fn trace_scaling_scales_energy_linearly() {
        let m = Machine::paper_sut();
        let m1 = m.measure(&cpu_heavy_trace(1), &MachineConfig::stock());
        let m4 = m.measure(&cpu_heavy_trace(4), &MachineConfig::stock());
        // 4× ops and ~same activity: close to 4× time and energy
        // (mem bytes fixed, so not exactly — allow 20 %).
        assert!((m4.elapsed_s / m1.elapsed_s - 4.0).abs() < 0.9);
        assert!((m4.cpu_joules / m1.cpu_joules - 4.0).abs() < 0.9);
    }

    #[test]
    fn pstate_cap_is_coarser_than_underclock() {
        // Paper §3: capping to 7 drops frequency by ~26 %; underclocking
        // 5 % drops it 5 % — finer granularity, all states retained.
        let m = Machine::paper_sut();
        let spec = &m.cpu_spec;
        let cap = CpuConfig::capped(7.0, VoltageSetting::Stock);
        let uc = CpuConfig::underclocked(0.05, VoltageSetting::Stock);
        assert!(cap.top_freq_hz(spec) < uc.top_freq_hz(spec));
    }

    #[test]
    fn backoff_prices_exactly_like_a_client_gap() {
        // Backoff halt residency (ledger schema v2) is gap-like idle:
        // same governor residency split, same halt watts.
        let m = Machine::paper_sut();
        let cfg = MachineConfig::stock();
        let mut gap_trace = WorkTrace::new();
        gap_trace.push(Phase::client_gap(30_000_000));
        let mut backoff_trace = WorkTrace::new();
        let mut p = Phase::execute("retrying");
        p.backoff_ns = 30_000_000;
        backoff_trace.push(p);
        let g = m.measure(&gap_trace, &cfg);
        let b = m.measure(&backoff_trace, &cfg);
        assert_eq!(g.elapsed_s, b.elapsed_s);
        assert_eq!(g.cpu_joules, b.cpu_joules);
    }

    #[test]
    fn disk_wait_lowers_avg_cpu_power() {
        let m = Machine::paper_sut();
        let cfg = MachineConfig::stock();
        let busy = m.measure(&cpu_heavy_trace(4), &cfg);
        let mixed = m.measure(&mixed_trace(), &cfg);
        assert!(mixed.avg_cpu_w < busy.avg_cpu_w);
    }
}
