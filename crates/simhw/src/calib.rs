//! Calibration constants for the simulated hardware.
//!
//! Every tuned number in the model lives here, with a note tying it to
//! the data point in Lang & Patel (CIDR 2009) that motivates it. The
//! calibration targets are *shapes* — who wins, trend directions,
//! crossover locations — per the reproduction policy in `DESIGN.md` §2.
//!
//! System under test (paper §3.1): ASUS P5Q3 Deluxe, Intel Core2-Duo
//! E8500 (333 MHz FSB, top multiplier 9.5 ⇒ 3.16 GHz), 2×1 GB DDR3,
//! GeForce 8400GS, WD Caviar SE16 320 GB SATA, Corsair VX450W PSU.

use crate::trace::N_OP_CLASSES;

// ---------------------------------------------------------------------------
// CPU clocking (paper §3: p-states, FSB underclocking)
// ---------------------------------------------------------------------------

/// Stock front-side bus frequency in Hz (E8500: 333 MHz quad-pumped base).
pub const STOCK_FSB_HZ: f64 = 333.0e6;

/// Available CPU multipliers, lowest p-state first (E8500 supports
/// half-multipliers; SpeedStep floor is 6.0, top is 9.5).
pub const MULTIPLIERS: [f64; 5] = [6.0, 7.0, 8.0, 9.0, 9.5];

/// Core VID at the lowest multiplier (volts). Intel 45 nm mobile/desktop
/// VID floor region.
pub const VID_MIN: f64 = 1.000;

/// Core VID at the top multiplier (volts). The board runs the E8500
/// with headroom near the top of its VID range, which is what makes the
/// BIOS "voltage downgrade" settings so effective (paper Fig 1: −49 %
/// CPU energy at 5 % underclock + medium downgrade).
pub const VID_MAX: f64 = 1.3625;

/// BIOS "small" voltage downgrade, volts below VID (paper §3.3).
pub const VDROP_SMALL: f64 = 0.210;

/// BIOS "medium" voltage downgrade, volts below VID (paper §3.3).
pub const VDROP_MEDIUM: f64 = 0.420;

/// Load-line droop compensation: fraction of the configured downgrade
/// that the voltage regulator gives back under sustained load
/// ("CPU loadline: light", paper §3.3). This is the mechanism by which
/// the CPU-bound MySQL memory-engine workload (util ≈ 1) sees a smaller
/// effective downgrade — and therefore smaller savings (paper Fig 3
/// vs Fig 2: −20 % vs −49 %).
pub const DROOP_AT_FULL_LOAD: f64 = 0.70;

// ---------------------------------------------------------------------------
// CPU power (paper §3.4: P = C·V²·F; plus leakage & idle states)
// ---------------------------------------------------------------------------

/// Effective switching capacitance per core, farads. Chosen so one core
/// at full activity, stock V/F draws ≈ 17 W dynamic: with both static
/// terms below, package power for a single-threaded DB workload averages
/// in the mid-20 W range (paper §3.3: 1228.7 J / 48.5 s ≈ 25.3 W).
pub const CEFF_PER_CORE: f64 = 5.6e-9;

/// Number of cores (E8500 is a dual-core part; the DB workload in the
/// paper is effectively single-threaded, the second core idles).
pub const N_CORES: usize = 2;

/// Leakage coefficient: P_leak = K_LEAK · V² (whole package, watts at
/// V in volts). ≈ 45 nm-era leakage ≈ 30 % of package power; the
/// V²-scaled, *time-proportional* term is what makes deep underclocking
/// lose (paper §3.4: EDP worsens beyond 5 %).
pub const K_LEAK: f64 = 4.6;

/// Uncore/chipset-interface power coefficient: P_uncore = K_UNCORE·V²·F_fsb/STOCK_FSB.
pub const K_UNCORE: f64 = 2.6;

/// Switching activity of a halted (C1) core relative to full activity.
pub const HALT_ACTIVITY: f64 = 0.18;

/// Switching activity of a core stalled on memory (spinning in the
/// load/store path, prefetchers active) relative to full activity.
pub const STALL_ACTIVITY: f64 = 0.34;

/// Multiplier the SpeedStep governor drops to when the CPU is idle
/// (disk waits, client gaps).
pub const IDLE_MULTIPLIER: f64 = 6.0;

// ---------------------------------------------------------------------------
// Per-op-class cycle costs and switching activity
// ---------------------------------------------------------------------------
// Cycle weights are per-operation, frequency-independent. Activity
// factors express how hard each class drives the core: interpreted
// predicate evaluation saturates the pipeline; row copies stall on
// memory. Indexed by `OpClass as usize`:
//   [TupleFetch, PredEval, HashBuild, HashProbe, Arith, AggUpdate,
//    ResultEmit, Parse, SortCmp, RowCopy, SplitRoute, DictLookup,
//    NodeSearch, LogRecord]

/// Cycles per operation for each [`crate::trace::OpClass`].
pub const OP_CYCLES: [f64; N_OP_CLASSES] = [
    60.0,   // TupleFetch: row pointer advance + header decode
    60.0,   // PredEval: interpreted expression-tree evaluation (MySQL Item-style)
    120.0,  // HashBuild
    90.0,   // HashProbe
    10.0,   // Arith
    35.0,   // AggUpdate
    3000.0, // ResultEmit: row materialization into the wire/result buffer
    2200.0, // Parse: per statement token
    45.0,   // SortCmp
    1800.0, // RowCopy: client-side (JDBC-style) row materialization
    800.0,  // SplitRoute: QED split bookkeeping per result row
    4.0,    // DictLookup: one dictionary id translation (array index, L1-resident)
    70.0,   // NodeSearch: one B-tree binary-search step (key compare + slot pick)
    150.0,  // LogRecord: serialize one WAL record + FNV checksum its payload
];

/// Switching-activity factor per [`crate::trace::OpClass`].
pub const OP_ACTIVITY: [f64; N_OP_CLASSES] = [
    0.72, // TupleFetch
    1.00, // PredEval (tight compute loop)
    0.85, // HashBuild
    0.62, // HashProbe (latency bound)
    0.95, // Arith
    0.90, // AggUpdate
    0.48, // ResultEmit (copy/stream bound)
    0.80, // Parse
    0.88, // SortCmp
    0.40, // RowCopy (memory streaming in the client)
    0.45, // SplitRoute
    0.80, // DictLookup (tight indexed loads, cache-resident dictionary)
    0.65, // NodeSearch (branchy compares, latency-bound page pointer chases)
    0.45, // LogRecord (buffer formatting + streaming checksum, copy-bound)
];

// ---------------------------------------------------------------------------
// Memory system (DDR3 on the Northbridge; clock is an FSB multiple,
// so underclocking slows DRAM too — paper §3)
// ---------------------------------------------------------------------------

/// Sustained stream bandwidth at stock FSB, bytes/second (DDR3-1333
/// single channel effective).
pub const MEM_BW_STOCK: f64 = 6.4e9;

/// Random-access latency at stock FSB, nanoseconds.
pub const MEM_LAT_STOCK_NS: f64 = 75.0;

/// Superlinearity exponent for memory time under FSB underclocking:
/// effective memory time scales as (1/(1−u))^MEM_CONTENTION_EXP.
/// > 1 models queueing at the memory controller as its service rate
/// > drops; this is what makes response time (and hence leakage joules)
/// > grow faster than 1/F and the EDP optimum land at the shallow 5 %
/// > setting (paper Figs 1–4).
pub const MEM_CONTENTION_EXP: f64 = 1.5;

/// Fraction of memory time that overlaps with CPU compute
/// (out-of-order window hides part of the stalls).
pub const MEM_OVERLAP: f64 = 0.30;

/// DC power of the memory controller path when memory is active, watts.
pub const MEM_CTRL_ACTIVE_W: f64 = 1.9;

/// DC power per DIMM, idle, watts (paper Table 1: +1 GB ≈ 4.3 W wall
/// incl. controller, second +1 GB ≈ 1.7 W wall; "about 6 W for 2 DIMMs").
pub const DIMM_IDLE_W: f64 = 1.15;

/// Extra DC power per DIMM at full stream bandwidth, watts.
pub const DIMM_ACTIVE_EXTRA_W: f64 = 2.1;

/// DIMMs installed in the system under test.
pub const N_DIMMS: usize = 2;

// ---------------------------------------------------------------------------
// Disk (WD Caviar SE16; paper §3.5 and Fig 5)
// ---------------------------------------------------------------------------

/// Sustained sequential transfer rate, bytes/second. Fig 5(a): the
/// sequential curve is flat regardless of read size.
pub const DISK_SEQ_RATE: f64 = 78.0e6;

/// Average random service overhead per access (short-stroke seek +
/// rotational latency), seconds. Together with the in-block burst rate
/// below this reproduces Fig 5's random-throughput ratios
/// (≈1.88× / 3.5× / 6× for 8/16/32 KB vs 4 KB).
pub const DISK_RAND_OVERHEAD_S: f64 = 6.0e-3;

/// Effective transfer rate *within* a random access, bytes/second
/// (includes head settle and request issue overhead, hence far below
/// the sequential streaming rate).
pub const DISK_RAND_BURST_RATE: f64 = 10.0e6;

/// 5 V rail: electronics idle current, amps.
pub const DISK_5V_IDLE_A: f64 = 0.28;
/// 5 V rail: extra current while transferring, amps.
pub const DISK_5V_XFER_EXTRA_A: f64 = 0.42;
/// 12 V rail: spindle idle current, amps.
pub const DISK_12V_IDLE_A: f64 = 0.25;
/// 12 V rail: extra current while seeking, amps.
pub const DISK_12V_SEEK_EXTRA_A: f64 = 0.52;

// Paper §3.5 anchor: warm Q5 workload (48.5 s) drew 214.7 J from the
// disk ⇒ ≈ 4.4 W average, i.e. essentially the idle floor:
// 5·0.28 + 12·0.25 = 4.4 W. ✓

// ---------------------------------------------------------------------------
// Other board components (paper Table 1)
// ---------------------------------------------------------------------------

/// Wall power with the system off (PSU standby + board standby), watts.
/// Paper Table 1 row 1: 9.2 W.
pub const WALL_STANDBY_W: f64 = 9.2;

/// Motherboard DC draw when powered on, watts.
pub const MOBO_DC_W: f64 = 7.6;

/// CPU package DC draw sitting in the BIOS (halted at top p-state,
/// stock voltage) — the state in which Table 1's +CPU row was measured.
/// Derived, not a constant: see `power::bios_idle_cpu_w()`.
pub const GPU_DC_W: f64 = 12.3;

/// PSU rated output, watts (Corsair VX450W).
pub const PSU_RATED_W: f64 = 450.0;

/// PSU efficiency curve anchors as (load_fraction, efficiency).
/// Paper §3.2 estimates ≈ 83 % efficiency near 20 % load (per the
/// Enermax-style curves it cites).
pub const PSU_EFF_CURVE: [(f64, f64); 5] = [
    (0.02, 0.58),
    (0.05, 0.68),
    (0.10, 0.78),
    (0.20, 0.83),
    (0.50, 0.86),
];

// ---------------------------------------------------------------------------
// Measurement instruments (paper §3.1)
// ---------------------------------------------------------------------------

/// EPU sensor refresh period, seconds (the paper sampled the 6-Engine
/// GUI "about" once per second).
pub const EPU_SAMPLE_PERIOD_S: f64 = 1.0;

/// Watt quantization of the sensor readout (the GUI displays tenths).
pub const EPU_QUANTUM_W: f64 = 0.1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multipliers_sorted_ascending() {
        for w in MULTIPLIERS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn activities_in_unit_interval() {
        for a in OP_ACTIVITY {
            assert!(a > 0.0 && a <= 1.0);
        }
    }

    #[test]
    fn cycles_positive() {
        for c in OP_CYCLES {
            assert!(c > 0.0);
        }
    }

    #[test]
    fn psu_curve_monotone_in_load() {
        for w in PSU_EFF_CURVE.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn disk_idle_floor_matches_paper_warm_run() {
        // Paper §3.5: 214.7 J over ~48.5 s ⇒ ~4.4 W.
        let idle_w = 5.0 * DISK_5V_IDLE_A + 12.0 * DISK_12V_IDLE_A;
        assert!((idle_w - 4.4).abs() < 0.1, "idle disk power {idle_w} W");
    }

    #[test]
    fn voltage_downgrades_stay_above_vid_floor_region() {
        // Medium downgrade from VID_MAX must stay at a physically
        // plausible operating voltage for a 45 nm part.
        const { assert!(VID_MAX - VDROP_MEDIUM > 0.9) };
        const { assert!(VDROP_SMALL < VDROP_MEDIUM) };
    }
}
