//! SQL abstract syntax.

use crate::expr::AggFunc;
use eco_tpch::Date;

/// Binary operators (comparison, boolean, arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A SQL scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference (bare TPC-H names are globally unique; an
    /// optional `table.` qualifier is accepted and checked).
    Column {
        /// Optional table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Decimal literal pre-scaled to hundredths.
    Decimal(i64),
    /// String literal.
    Str(String),
    /// `DATE 'YYYY-MM-DD'` literal.
    DateLit(Date),
    /// Binary operation.
    Binary(BinOp, Box<SqlExpr>, Box<SqlExpr>),
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `expr BETWEEN lo AND hi` (inclusive).
    Between(Box<SqlExpr>, Box<SqlExpr>, Box<SqlExpr>),
    /// `expr IN (v1, v2, ...)`.
    InList(Box<SqlExpr>, Vec<SqlExpr>),
    /// Aggregate call, e.g. `SUM(expr)`.
    Agg(AggFunc, Box<SqlExpr>),
    /// `COUNT(*)`.
    CountStar,
}

impl SqlExpr {
    /// Bare column reference.
    pub fn col(name: &str) -> SqlExpr {
        SqlExpr::Column {
            table: None,
            name: name.to_string(),
        }
    }

    /// True when the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            SqlExpr::Agg(..) | SqlExpr::CountStar => true,
            SqlExpr::Binary(_, l, r) => l.has_aggregate() || r.has_aggregate(),
            SqlExpr::Not(e) => e.has_aggregate(),
            SqlExpr::Between(a, b, c) => {
                a.has_aggregate() || b.has_aggregate() || c.has_aggregate()
            }
            SqlExpr::InList(e, list) => {
                e.has_aggregate() || list.iter().any(SqlExpr::has_aggregate)
            }
            _ => false,
        }
    }

    /// Collect every column name referenced.
    pub fn columns(&self, out: &mut Vec<String>) {
        match self {
            SqlExpr::Column { name, .. } => out.push(name.clone()),
            SqlExpr::Binary(_, l, r) => {
                l.columns(out);
                r.columns(out);
            }
            SqlExpr::Not(e) | SqlExpr::Agg(_, e) => e.columns(out),
            SqlExpr::Between(a, b, c) => {
                a.columns(out);
                b.columns(out);
                c.columns(out);
            }
            SqlExpr::InList(e, list) => {
                e.columns(out);
                for l in list {
                    l.columns(out);
                }
            }
            _ => {}
        }
    }
}

/// One item in the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// Optional output name.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// The expression and alias of a non-`*` item, or a
    /// [`super::SqlError::Bind`] for `*` — the fallible accessor
    /// consumers (and tests) use instead of panicking on the variant.
    /// (`*` parsed fine; using it where an expression is required is a
    /// binding-shape error, not a syntax one, so no byte offset.)
    pub fn expr_item(&self) -> Result<(&SqlExpr, Option<&str>), super::SqlError> {
        match self {
            SelectItem::Expr { expr, alias } => Ok((expr, alias.as_deref())),
            SelectItem::Star => Err(super::SqlError::Bind(
                "expected expression item, found `*`".to_string(),
            )),
        }
    }
}

/// An `ORDER BY` key: output column name + direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Output column (select alias or column name).
    pub name: String,
    /// Descending when true.
    pub desc: bool,
}

/// A parsed SQL statement: a query, one of the DDL forms, or a DML
/// mutation (write-ahead logged; ledger schema v5).
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(SelectStmt),
    /// `CREATE INDEX name ON table (column)` — builds a B-tree
    /// secondary index (ledger schema v4; disk tables only).
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column (single-column indexes only).
        column: String,
    },
    /// `INSERT INTO table [(cols)] VALUES (...), ...`
    Insert(InsertStmt),
    /// `UPDATE table SET col = expr, ... [WHERE pred]`
    Update(UpdateStmt),
    /// `DELETE FROM table [WHERE pred]`
    Delete(DeleteStmt),
}

/// A parsed `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Explicit column list; empty means schema order.
    pub columns: Vec<String>,
    /// One expression row per `VALUES` tuple.
    pub rows: Vec<Vec<SqlExpr>>,
}

/// A parsed `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `SET` assignments, in statement order.
    pub sets: Vec<(String, SqlExpr)>,
    /// Optional row filter; `None` updates every row.
    pub where_clause: Option<SqlExpr>,
}

/// A parsed `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Optional row filter; `None` deletes every row.
    pub where_clause: Option<SqlExpr>,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// Table names in `FROM` (comma list; joins come from `WHERE`).
    pub from: Vec<String>,
    /// `WHERE` predicate.
    pub where_clause: Option<SqlExpr>,
    /// `GROUP BY` column names.
    pub group_by: Vec<String>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let plain = SqlExpr::Binary(
            BinOp::Add,
            Box::new(SqlExpr::col("a")),
            Box::new(SqlExpr::Int(1)),
        );
        assert!(!plain.has_aggregate());
        let agg = SqlExpr::Binary(
            BinOp::Mul,
            Box::new(SqlExpr::Agg(AggFunc::Sum, Box::new(SqlExpr::col("a")))),
            Box::new(SqlExpr::Int(2)),
        );
        assert!(agg.has_aggregate());
        assert!(SqlExpr::CountStar.has_aggregate());
    }

    #[test]
    fn column_collection() {
        let e = SqlExpr::Between(
            Box::new(SqlExpr::col("x")),
            Box::new(SqlExpr::col("lo")),
            Box::new(SqlExpr::Int(5)),
        );
        let mut cols = Vec::new();
        e.columns(&mut cols);
        assert_eq!(cols, vec!["x", "lo"]);
    }
}
