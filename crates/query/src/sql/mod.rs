//! SQL front-end: lexer, parser, binder and a generic planner.
//!
//! The paper's clients submit SQL over JDBC; this module gives ecoDB a
//! real statement path: `SELECT`-`FROM`-`WHERE`-`GROUP BY`-`ORDER BY`-
//! `LIMIT` over the TPC-H catalog, with implicit (comma + `WHERE`
//! equality) joins planned greedily by estimated cardinality. TPC-H Q5
//! as published parses and plans directly (see the tests).
//!
//! Conventions: the storage layer keeps money in integer cents and
//! percentages in integer hundredths, so SQL literals follow suit
//! (`l_discount <= 7` means 7 %). Decimal literals are scaled by 100
//! (`0.07` ⇒ 7). Dates are written `DATE '1994-01-01'`.

pub mod ast;
pub mod dml;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::{
    BinOp, DeleteStmt, InsertStmt, SelectItem, SelectStmt, SqlExpr, Statement, UpdateStmt,
};
pub use dml::{execute_dml, DmlOutcome};
pub use lexer::{tokenize, tokenize_spanned, Spanned, Token};
pub use parser::{parse_select, parse_statement};
pub use plan::plan_select;

/// Where and how lexing or parsing failed: a typed reason plus the
/// byte offset into the original SQL text where it was detected, so a
/// client can point at the offending character instead of grepping a
/// prose message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the SQL string (equals the string's length
    /// when the input ended too early).
    pub offset: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// An error of `kind` detected at byte `offset`.
    pub fn new(offset: usize, kind: ParseErrorKind) -> Self {
        Self { offset, kind }
    }
}

/// The ways lexing or parsing can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A character no SQL token can start with.
    UnexpectedChar(char),
    /// A string literal with no closing quote.
    UnterminatedString,
    /// An integer literal that overflows `i64`.
    NumberOutOfRange,
    /// A decimal literal with more than two fraction digits (storage
    /// keeps money and percentages in integer hundredths).
    DecimalPrecision,
    /// A malformed `DATE 'YYYY-MM-DD'` literal.
    BadDate(String),
    /// The parser required one construct and saw another.
    Unexpected {
        /// What the grammar required here.
        expected: String,
        /// The token actually found (or "end of input").
        found: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}")?,
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string literal")?,
            ParseErrorKind::NumberOutOfRange => write!(f, "integer literal out of range")?,
            ParseErrorKind::DecimalPrecision => write!(
                f,
                "decimal has more than 2 fraction digits (storage keeps hundredths)"
            )?,
            ParseErrorKind::BadDate(s) => write!(f, "bad date literal {s:?}")?,
            ParseErrorKind::Unexpected { expected, found } => {
                write!(f, "expected {expected}, found {found}")?
            }
        }
        write!(f, " at byte {}", self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Errors from the SQL path.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error, with the byte offset of the offending character.
    Lex(ParseError),
    /// Parse error, with the byte offset of the offending token.
    Parse(ParseError),
    /// Binder/planner error (unknown table/column, unsupported shape).
    Bind(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex(e) => write!(f, "lexical error: {e}"),
            SqlError::Parse(e) => write!(f, "parse error: {e}"),
            SqlError::Bind(m) => write!(f, "binding error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Parse and plan a SQL `SELECT` against a catalog in one step.
pub fn compile(catalog: &eco_storage::Catalog, sql: &str) -> Result<crate::ops::BoxedOp, SqlError> {
    let stmt = parse_select(sql)?;
    plan_select(catalog, &stmt)
}
