//! SQL front-end: lexer, parser, binder and a generic planner.
//!
//! The paper's clients submit SQL over JDBC; this module gives ecoDB a
//! real statement path: `SELECT`-`FROM`-`WHERE`-`GROUP BY`-`ORDER BY`-
//! `LIMIT` over the TPC-H catalog, with implicit (comma + `WHERE`
//! equality) joins planned greedily by estimated cardinality. TPC-H Q5
//! as published parses and plans directly (see the tests).
//!
//! Conventions: the storage layer keeps money in integer cents and
//! percentages in integer hundredths, so SQL literals follow suit
//! (`l_discount <= 7` means 7 %). Decimal literals are scaled by 100
//! (`0.07` ⇒ 7). Dates are written `DATE '1994-01-01'`.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::{BinOp, SelectItem, SelectStmt, SqlExpr};
pub use lexer::{tokenize, Token};
pub use parser::parse_select;
pub use plan::plan_select;

/// Errors from the SQL path.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error with position.
    Lex(String),
    /// Parse error.
    Parse(String),
    /// Binder/planner error (unknown table/column, unsupported shape).
    Bind(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lexical error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Bind(m) => write!(f, "binding error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Parse and plan a SQL `SELECT` against a catalog in one step.
pub fn compile(catalog: &eco_storage::Catalog, sql: &str) -> Result<crate::ops::BoxedOp, SqlError> {
    let stmt = parse_select(sql)?;
    plan_select(catalog, &stmt)
}
