//! SQL lexer: hand-written, byte-offset-reporting.
//!
//! [`tokenize_spanned`] is the real lexer: every token carries the
//! byte offset where it starts in the original SQL text, and every
//! error is a typed [`ParseError`] pointing at the offending byte.
//! [`tokenize`] is the span-dropping convenience wrapper.

use super::{ParseError, ParseErrorKind, SqlError};

/// SQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (stored lower-cased; keywords are matched
    /// case-insensitively by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal, pre-scaled by 100 (storage convention:
    /// `0.07` lexes as `Decimal(7)`).
    Decimal(i64),
    /// Single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `.` (qualified names)
    Dot,
    /// `;`
    Semi,
}

/// One lexed token plus the byte offset where it starts in the SQL
/// text (what the parser reports in its [`ParseError`]s).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Tokenize a SQL string, dropping spans (compatibility wrapper).
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    Ok(tokenize_spanned(sql)
        .map_err(SqlError::Lex)?
        .into_iter()
        .map(|s| s.tok)
        .collect())
}

/// Tokenize a SQL string into byte-offset-spanned tokens.
pub fn tokenize_spanned(sql: &str) -> Result<Vec<Spanned>, ParseError> {
    let b: Vec<(usize, char)> = sql.char_indices().collect();
    let peek = |i: usize| b.get(i).map(|&(_, c)| c);
    let mut i = 0;
    let mut out: Vec<Spanned> = Vec::new();
    while i < b.len() {
        let (off, c) = b[i];
        let mut push1 = |tok: Token| {
            out.push(Spanned { tok, offset: off });
        };
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                push1(Token::Comma);
                i += 1;
            }
            '(' => {
                push1(Token::LParen);
                i += 1;
            }
            ')' => {
                push1(Token::RParen);
                i += 1;
            }
            '*' => {
                push1(Token::Star);
                i += 1;
            }
            '+' => {
                push1(Token::Plus);
                i += 1;
            }
            '-' => {
                // Line comment `--`.
                if peek(i + 1) == Some('-') {
                    while i < b.len() && b[i].1 != '\n' {
                        i += 1;
                    }
                } else {
                    push1(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                push1(Token::Slash);
                i += 1;
            }
            '.' => {
                push1(Token::Dot);
                i += 1;
            }
            ';' => {
                push1(Token::Semi);
                i += 1;
            }
            '=' => {
                push1(Token::Eq);
                i += 1;
            }
            '!' => {
                if peek(i + 1) == Some('=') {
                    push1(Token::Ne);
                    i += 2;
                } else {
                    return Err(ParseError::new(off, ParseErrorKind::UnexpectedChar('!')));
                }
            }
            '<' => match peek(i + 1) {
                Some('=') => {
                    push1(Token::Le);
                    i += 2;
                }
                Some('>') => {
                    push1(Token::Ne);
                    i += 2;
                }
                _ => {
                    push1(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if peek(i + 1) == Some('=') {
                    push1(Token::Ge);
                    i += 2;
                } else {
                    push1(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match peek(i) {
                        None => {
                            // Point at the opening quote, where the
                            // unclosed literal starts.
                            return Err(ParseError::new(off, ParseErrorKind::UnterminatedString));
                        }
                        Some('\'') => {
                            // Doubled quote = escaped quote.
                            if peek(i + 1) == Some('\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    tok: Token::Str(s),
                    offset: off,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && b[i].1.is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i].1 == '.' && peek(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    // Decimal: scale by 100 (two fraction digits max).
                    let whole: i64 = b[start..i]
                        .iter()
                        .map(|&(_, c)| c)
                        .collect::<String>()
                        .parse()
                        .map_err(|_| ParseError::new(off, ParseErrorKind::NumberOutOfRange))?;
                    i += 1; // '.'
                    let fstart = i;
                    while i < b.len() && b[i].1.is_ascii_digit() {
                        i += 1;
                    }
                    let frac_str: String = b[fstart..i].iter().map(|&(_, c)| c).collect();
                    if frac_str.len() > 2 {
                        return Err(ParseError::new(off, ParseErrorKind::DecimalPrecision));
                    }
                    let mut frac: i64 = frac_str.parse().unwrap_or(0);
                    if frac_str.len() == 1 {
                        frac *= 10;
                    }
                    push1(Token::Decimal(whole * 100 + frac));
                } else {
                    let n: i64 = b[start..i]
                        .iter()
                        .map(|&(_, c)| c)
                        .collect::<String>()
                        .parse()
                        .map_err(|_| ParseError::new(off, ParseErrorKind::NumberOutOfRange))?;
                    push1(Token::Int(n));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].1.is_alphanumeric() || b[i].1 == '_') {
                    i += 1;
                }
                push1(Token::Ident(
                    b[start..i]
                        .iter()
                        .map(|&(_, c)| c)
                        .collect::<String>()
                        .to_lowercase(),
                ));
            }
            other => return Err(ParseError::new(off, ParseErrorKind::UnexpectedChar(other))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = tokenize("SELECT a, b FROM t WHERE x >= 10 AND y <> 'it''s'").unwrap();
        assert!(t.contains(&Token::Ident("select".into())));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Str("it's".into())));
        assert!(t.contains(&Token::Int(10)));
    }

    #[test]
    fn decimals_scale_to_hundredths() {
        let t = tokenize("0.07 1.5 2.25").unwrap();
        assert_eq!(
            t,
            vec![Token::Decimal(7), Token::Decimal(150), Token::Decimal(225)]
        );
    }

    #[test]
    fn too_many_fraction_digits_rejected() {
        let e = tokenize_spanned("x = 0.071").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::DecimalPrecision);
        assert_eq!(e.offset, 4, "points at the start of the literal");
        assert!(matches!(tokenize("0.071"), Err(SqlError::Lex(_))));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT -- comment here\n 1").unwrap();
        assert_eq!(t, vec![Token::Ident("select".into()), Token::Int(1)]);
    }

    #[test]
    fn unterminated_string_rejected() {
        let e = tokenize_spanned("x = 'abc").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnterminatedString);
        assert_eq!(e.offset, 4, "points at the opening quote");
        assert!(matches!(tokenize("'abc"), Err(SqlError::Lex(_))));
    }

    #[test]
    fn unexpected_character_reports_its_byte_offset() {
        let e = tokenize_spanned("select @").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnexpectedChar('@'));
        assert_eq!(e.offset, 7);
        // Offsets are *byte* offsets: a multi-byte char before the
        // error shifts it by its UTF-8 width.
        let e = tokenize_spanned("'é' @").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnexpectedChar('@'));
        assert_eq!(e.offset, 5, "é is two bytes plus two quotes and a space");
    }

    #[test]
    fn integer_overflow_is_a_typed_error() {
        let e = tokenize_spanned("99999999999999999999").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::NumberOutOfRange);
        assert_eq!(e.offset, 0);
    }

    #[test]
    fn spans_track_token_starts() {
        let t = tokenize_spanned("SELECT a FROM t").unwrap();
        let offsets: Vec<usize> = t.iter().map(|s| s.offset).collect();
        assert_eq!(offsets, vec![0, 7, 9, 14]);
    }

    #[test]
    fn operators() {
        let t = tokenize("a < b <= c > d >= e = f != g").unwrap();
        assert_eq!(
            t.iter()
                .filter(|t| matches!(
                    t,
                    Token::Lt | Token::Le | Token::Gt | Token::Ge | Token::Eq | Token::Ne
                ))
                .count(),
            6
        );
    }
}
