//! SQL lexer: hand-written, position-reporting.

use super::SqlError;

/// SQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (stored lower-cased; keywords are matched
    /// case-insensitively by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal, pre-scaled by 100 (storage convention:
    /// `0.07` lexes as `Decimal(7)`).
    Decimal(i64),
    /// Single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `.` (qualified names)
    Dot,
    /// `;`
    Semi,
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let b: Vec<char> = sql.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // Line comment `--`.
                if b.get(i + 1) == Some(&'-') {
                    while i < b.len() && b[i] != '\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if b.get(i + 1) == Some(&'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(SqlError::Lex(format!("unexpected '!' at {i}")));
                }
            }
            '<' => match b.get(i + 1) {
                Some('=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some('>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if b.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match b.get(i) {
                        None => return Err(SqlError::Lex("unterminated string".into())),
                        Some('\'') => {
                            // Doubled quote = escaped quote.
                            if b.get(i + 1) == Some(&'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == '.' && b.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    // Decimal: scale by 100 (two fraction digits max).
                    let whole: i64 = b[start..i]
                        .iter()
                        .collect::<String>()
                        .parse()
                        .map_err(|e| SqlError::Lex(format!("bad number: {e}")))?;
                    i += 1; // '.'
                    let fstart = i;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let frac_str: String = b[fstart..i].iter().collect();
                    if frac_str.len() > 2 {
                        return Err(SqlError::Lex(format!(
                            "decimal '{whole}.{frac_str}' has more than 2 fraction digits \
                             (storage keeps hundredths)"
                        )));
                    }
                    let mut frac: i64 = frac_str.parse().unwrap_or(0);
                    if frac_str.len() == 1 {
                        frac *= 10;
                    }
                    out.push(Token::Decimal(whole * 100 + frac));
                } else {
                    let n: i64 = b[start..i]
                        .iter()
                        .collect::<String>()
                        .parse()
                        .map_err(|e| SqlError::Lex(format!("bad number: {e}")))?;
                    out.push(Token::Int(n));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(
                    b[start..i].iter().collect::<String>().to_lowercase(),
                ));
            }
            other => {
                return Err(SqlError::Lex(format!(
                    "unexpected character {other:?} at {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = tokenize("SELECT a, b FROM t WHERE x >= 10 AND y <> 'it''s'").unwrap();
        assert!(t.contains(&Token::Ident("select".into())));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Str("it's".into())));
        assert!(t.contains(&Token::Int(10)));
    }

    #[test]
    fn decimals_scale_to_hundredths() {
        let t = tokenize("0.07 1.5 2.25").unwrap();
        assert_eq!(
            t,
            vec![Token::Decimal(7), Token::Decimal(150), Token::Decimal(225)]
        );
    }

    #[test]
    fn too_many_fraction_digits_rejected() {
        assert!(matches!(tokenize("0.071"), Err(SqlError::Lex(_))));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT -- comment here\n 1").unwrap();
        assert_eq!(t, vec![Token::Ident("select".into()), Token::Int(1)]);
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(matches!(tokenize("'abc"), Err(SqlError::Lex(_))));
    }

    #[test]
    fn operators() {
        let t = tokenize("a < b <= c > d >= e = f != g").unwrap();
        assert_eq!(
            t.iter()
                .filter(|t| matches!(
                    t,
                    Token::Lt | Token::Le | Token::Gt | Token::Ge | Token::Eq | Token::Ne
                ))
                .count(),
            6
        );
    }
}
