//! DML binding and execution: `INSERT`/`UPDATE`/`DELETE` → redo
//! records.
//!
//! Executing a DML statement does **not** mutate anything here — it
//! evaluates the statement against the table's current state and
//! returns the [`WalRecord`]s describing the mutation. The caller
//! (`eco-core`) owns the write protocol: charge
//! [`OpClass::LogRecord`](eco_simhw::trace::OpClass) per record, append
//! to the write-ahead log, commit (fsync, charging the v5 log I/O
//! classes), and only then apply the records through
//! `Catalog::apply_wal_record`. Keeping record *generation* separate
//! from record *application* is what makes crash recovery replay
//! byte-identical to live execution — both sides apply the exact same
//! records.
//!
//! Pricing of the generation pass itself: the row scan a filtered
//! `UPDATE`/`DELETE` performs is charged as **memory streaming** over
//! the table's stored bytes (the mutation reads the resident working
//! copy — the rebuild source — not the paged images; durability I/O is
//! priced separately by the log classes), and every predicate / SET
//! expression evaluation charges its usual op classes through
//! [`Expr::eval`]. An `INSERT` streams each new tuple's width. All of
//! it lands in the caller's [`ExecCtx`] like any read query's work.
//!
//! Deletes are emitted in **descending row order** so each removal
//! leaves the remaining logged row ids stable under in-order replay
//! (see `eco_storage::wal`).

use eco_storage::wal::WalRecord;
use eco_storage::{Catalog, ColumnType, StoredTable, TableData, Tuple, Value};

use super::ast::{DeleteStmt, InsertStmt, Statement, UpdateStmt};
use super::plan::bind_expr;
use super::SqlError;
use crate::context::ExecCtx;
use crate::expr::Expr;

/// What executing a DML statement produced: the redo records to log
/// and the affected-row count to report.
#[derive(Debug, Clone, PartialEq)]
pub struct DmlOutcome {
    /// Redo records in apply order (no commit marker — transaction
    /// framing is the caller's job).
    pub records: Vec<WalRecord>,
    /// Rows inserted / updated / deleted.
    pub affected: u64,
}

/// Evaluate a DML statement against the catalog's current state,
/// charging the work to `ctx`. Returns the redo records; applies
/// nothing. Non-DML statements are a bind error.
pub fn execute_dml(
    catalog: &Catalog,
    stmt: &Statement,
    ctx: &mut ExecCtx,
) -> Result<DmlOutcome, SqlError> {
    match stmt {
        Statement::Insert(i) => insert(catalog, i, ctx),
        Statement::Update(u) => update(catalog, u, ctx),
        Statement::Delete(d) => delete(catalog, d, ctx),
        Statement::Select(_) | Statement::CreateIndex { .. } => Err(SqlError::Bind(
            "statement is not INSERT/UPDATE/DELETE".to_string(),
        )),
    }
}

fn lookup(catalog: &Catalog, table: &str) -> Result<std::sync::Arc<StoredTable>, SqlError> {
    catalog
        .get(table)
        .ok_or_else(|| SqlError::Bind(format!("unknown table {table:?}")))
}

/// The mutation pass's row source: the table's resident tuples, with
/// the scan charged as memory streaming over the stored bytes.
fn scan_rows(stored: &StoredTable, ctx: &mut ExecCtx) -> Vec<Tuple> {
    match &stored.data {
        TableData::Memory(h) => {
            ctx.charge_mem_bytes(h.bytes());
            h.tuples().to_vec()
        }
        TableData::Disk(d) => {
            ctx.charge_mem_bytes(d.avg_tuple_bytes() * d.len() as u64);
            d.all_tuples()
        }
    }
}

/// Fit an evaluated value to its destination column type. Exact
/// matches pass through; the conversions are the ones SQL literals
/// need (a one-character string into a CHAR column, 0/1 or a
/// comparison result into BOOL, an integer day count into DATE).
fn coerce(v: Value, ty: ColumnType) -> Option<Value> {
    match (v, ty) {
        (v @ Value::Int(_), ColumnType::Int)
        | (v @ Value::Str(_), ColumnType::Str)
        | (v @ Value::Date(_), ColumnType::Date)
        | (v @ Value::Char(_), ColumnType::Char)
        | (v @ Value::Bool(_), ColumnType::Bool) => Some(v),
        (Value::Str(s), ColumnType::Char) => {
            let mut chars = s.chars();
            match (chars.next(), chars.next()) {
                (Some(c), None) => Some(Value::Char(c)),
                _ => None,
            }
        }
        (Value::Int(i), ColumnType::Bool) => match i {
            0 => Some(Value::Bool(false)),
            1 => Some(Value::Bool(true)),
            _ => None,
        },
        (Value::Int(i), ColumnType::Date) => i32::try_from(i).ok().map(Value::Date),
        _ => None,
    }
}

fn coerce_or_bind(v: Value, ty: ColumnType, column: &str) -> Result<Value, SqlError> {
    coerce(v, ty).ok_or_else(|| SqlError::Bind(format!("value does not fit column {column:?}")))
}

fn insert(catalog: &Catalog, stmt: &InsertStmt, ctx: &mut ExecCtx) -> Result<DmlOutcome, SqlError> {
    let stored = lookup(catalog, &stmt.table)?;
    let schema = stored.schema();
    // Destination column indices, in VALUES order. An empty column
    // list means schema order; an explicit list must cover every
    // column exactly once (the engine has no column defaults).
    let dests: Vec<usize> = if stmt.columns.is_empty() {
        (0..schema.arity()).collect()
    } else {
        let idxs = stmt
            .columns
            .iter()
            .map(|c| {
                schema.index_of(c).ok_or_else(|| {
                    SqlError::Bind(format!("unknown column {c:?} in table {:?}", stmt.table))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        if sorted != (0..schema.arity()).collect::<Vec<_>>() {
            return Err(SqlError::Bind(format!(
                "INSERT column list must name every column of {:?} exactly once",
                stmt.table
            )));
        }
        idxs
    };
    let mut records = Vec::with_capacity(stmt.rows.len());
    let empty: Tuple = Vec::new();
    for row in &stmt.rows {
        if row.len() != dests.len() {
            return Err(SqlError::Bind(format!(
                "INSERT row has {} values for {} columns",
                row.len(),
                dests.len()
            )));
        }
        let mut tuple: Vec<Option<Value>> = vec![None; schema.arity()];
        for (expr, &dest) in row.iter().zip(&dests) {
            let mut cols = Vec::new();
            expr.columns(&mut cols);
            if !cols.is_empty() {
                return Err(SqlError::Bind(format!(
                    "INSERT values must be constant expressions (found column {:?})",
                    cols[0]
                )));
            }
            let col = &schema.columns()[dest];
            let bound = bind_expr(expr, schema)?;
            let v = bound.eval(&empty, ctx);
            tuple[dest] = Some(coerce_or_bind(v, col.ty, &col.name)?);
        }
        let tuple: Tuple = tuple.into_iter().flatten().collect();
        ctx.charge_mem_bytes(eco_storage::tuple_width(&tuple));
        records.push(WalRecord::Insert {
            table: stmt.table.clone(),
            tuple,
        });
    }
    let affected = records.len() as u64;
    Ok(DmlOutcome { records, affected })
}

fn update(catalog: &Catalog, stmt: &UpdateStmt, ctx: &mut ExecCtx) -> Result<DmlOutcome, SqlError> {
    let stored = lookup(catalog, &stmt.table)?;
    let schema = stored.schema();
    let sets: Vec<(usize, Expr)> = stmt
        .sets
        .iter()
        .map(|(col, expr)| {
            let idx = schema.index_of(col).ok_or_else(|| {
                SqlError::Bind(format!("unknown column {col:?} in table {:?}", stmt.table))
            })?;
            Ok((idx, bind_expr(expr, schema)?))
        })
        .collect::<Result<Vec<_>, SqlError>>()?;
    let pred = stmt
        .where_clause
        .as_ref()
        .map(|w| bind_expr(w, schema))
        .transpose()?;
    let rows = scan_rows(&stored, ctx);
    let mut records = Vec::new();
    for (row_id, row) in rows.iter().enumerate() {
        if let Some(p) = &pred {
            if !p.eval_bool(row, ctx) {
                continue;
            }
        }
        let mut new = row.clone();
        for (idx, expr) in &sets {
            let col = &schema.columns()[*idx];
            new[*idx] = coerce_or_bind(expr.eval(row, ctx), col.ty, &col.name)?;
        }
        records.push(WalRecord::Update {
            table: stmt.table.clone(),
            row: row_id,
            tuple: new,
        });
    }
    let affected = records.len() as u64;
    Ok(DmlOutcome { records, affected })
}

fn delete(catalog: &Catalog, stmt: &DeleteStmt, ctx: &mut ExecCtx) -> Result<DmlOutcome, SqlError> {
    let stored = lookup(catalog, &stmt.table)?;
    let pred = stmt
        .where_clause
        .as_ref()
        .map(|w| bind_expr(w, stored.schema()))
        .transpose()?;
    let rows = scan_rows(&stored, ctx);
    let mut matched = Vec::new();
    for (row_id, row) in rows.iter().enumerate() {
        let keep = match &pred {
            Some(p) => p.eval_bool(row, ctx),
            None => true,
        };
        if keep {
            matched.push(row_id);
        }
    }
    // Descending order: each removal leaves earlier row ids stable.
    let records: Vec<WalRecord> = matched
        .iter()
        .rev()
        .map(|&row| WalRecord::Delete {
            table: stmt.table.clone(),
            row,
        })
        .collect();
    let affected = records.len() as u64;
    Ok(DmlOutcome { records, affected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse_statement;
    use eco_storage::{HeapTable, Schema};

    fn catalog() -> Catalog {
        let schema = Schema::new(&[
            ("k", ColumnType::Int),
            ("s", ColumnType::Str),
            ("flag", ColumnType::Char),
        ]);
        let rows: Vec<Tuple> = (0..10)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("row-{i}")),
                    Value::Char(if i % 2 == 0 { 'E' } else { 'O' }),
                ]
            })
            .collect();
        let mut c = Catalog::new(64);
        c.add_memory_table("t", HeapTable::from_tuples(schema.clone(), rows.clone()));
        c.add_disk_table("td", schema, &rows);
        c
    }

    fn run(cat: &Catalog, sql: &str) -> Result<(DmlOutcome, ExecCtx), SqlError> {
        let stmt = parse_statement(sql)?;
        let mut ctx = ExecCtx::new();
        let out = execute_dml(cat, &stmt, &mut ctx)?;
        Ok((out, ctx))
    }

    #[test]
    fn insert_builds_records_in_schema_order() {
        let cat = catalog();
        let (out, ctx) = run(
            &cat,
            "INSERT INTO t (s, k, flag) VALUES ('new', 40 + 2, 'N'), ('more', 43, 'M')",
        )
        .expect("insert");
        assert_eq!(out.affected, 2);
        assert_eq!(
            out.records[0],
            WalRecord::Insert {
                table: "t".into(),
                tuple: vec![Value::Int(42), Value::str("new"), Value::Char('N')],
            }
        );
        assert!(!ctx.is_empty(), "insert charges work");
        // Nothing was applied — that's the caller's job, post-commit.
        assert_eq!(cat.expect("t").len(), 10);
    }

    #[test]
    fn update_scans_and_emits_one_record_per_match() {
        let cat = catalog();
        let (out, ctx) = run(&cat, "UPDATE t SET k = k + 100 WHERE k >= 8").expect("update");
        assert_eq!(out.affected, 2);
        assert_eq!(
            out.records,
            vec![
                WalRecord::Update {
                    table: "t".into(),
                    row: 8,
                    tuple: vec![Value::Int(108), Value::str("row-8"), Value::Char('E')],
                },
                WalRecord::Update {
                    table: "t".into(),
                    row: 9,
                    tuple: vec![Value::Int(109), Value::str("row-9"), Value::Char('O')],
                },
            ]
        );
        assert!(ctx.pred_evals >= 10, "predicate ran over every row");
    }

    #[test]
    fn delete_emits_descending_rows() {
        let cat = catalog();
        let (out, _) = run(&cat, "DELETE FROM t WHERE k IN (2, 5, 7)").expect("delete");
        assert_eq!(out.affected, 3);
        let rows: Vec<_> = out
            .records
            .iter()
            .map(|r| match r {
                WalRecord::Delete { row, .. } => *row,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(rows, vec![7, 5, 2], "descending apply order");
    }

    #[test]
    fn disk_tables_take_the_same_path() {
        let cat = catalog();
        let (out, _) = run(&cat, "DELETE FROM td").expect("delete all");
        assert_eq!(out.affected, 10);
        let (out, _) = run(&cat, "UPDATE td SET flag = 'X'").expect("update all");
        assert_eq!(out.affected, 10);
    }

    #[test]
    fn typed_bind_errors_never_panic() {
        let cat = catalog();
        for bad in [
            "INSERT INTO ghost VALUES (1, 'a', 'b')",
            "INSERT INTO t VALUES (1, 'a')",                 // arity
            "INSERT INTO t (k, s) VALUES (1, 'a')",          // incomplete column list
            "INSERT INTO t (k, k, s) VALUES (1, 2, 'a')",    // duplicate column
            "INSERT INTO t VALUES (k, 'a', 'b')",            // column ref in VALUES
            "INSERT INTO t VALUES ('str', 'a', 'b')",        // type mismatch
            "INSERT INTO t VALUES (1, 'a', 'toolong')",      // bad CHAR
            "UPDATE t SET ghost = 1",
            "UPDATE ghost SET k = 1",
            "DELETE FROM ghost",
            "SELECT k FROM t", // not DML
        ] {
            let r = run(&cat, bad);
            assert!(
                matches!(r, Err(SqlError::Bind(_))),
                "{bad:?} gave {r:?}, expected a bind error"
            );
        }
    }

    #[test]
    fn update_without_where_touches_every_row() {
        let cat = catalog();
        let (out, _) = run(&cat, "UPDATE t SET s = 'same'").expect("update");
        assert_eq!(out.affected, 10);
        assert!(out
            .records
            .iter()
            .all(|r| matches!(r, WalRecord::Update { tuple, .. } if tuple[1] == Value::str("same"))));
    }
}
