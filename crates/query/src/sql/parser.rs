//! Recursive-descent SQL parser.
//!
//! Every error is a typed [`ParseError`]: what the grammar required,
//! what was found, and the byte offset of the offending token in the
//! original SQL text (the end of the string when input ran out).
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! stmt     := select | CREATE INDEX name ON name '(' name ')'
//!           | INSERT INTO name ['(' name (',' name)* ')']
//!             VALUES row (',' row)*         where row := '(' or_expr (',' or_expr)* ')'
//!           | UPDATE name SET name '=' or_expr (',' name '=' or_expr)* [WHERE or_expr]
//!           | DELETE FROM name [WHERE or_expr]
//! select   := SELECT items FROM name (',' name)*
//!             [WHERE or_expr] [GROUP BY name (',' name)*]
//!             [ORDER BY key (',' key)*] [LIMIT int] [';']
//! items    := '*' | item (',' item)*
//! item     := or_expr [AS ident | ident]
//! or_expr  := and_expr (OR and_expr)*
//! and_expr := not_expr (AND not_expr)*
//! not_expr := NOT not_expr | cmp
//! cmp      := add ((=|<>|<|<=|>|>=) add
//!           | BETWEEN add AND add | IN '(' add (',' add)* ')')?
//! add      := mul (('+'|'-') mul)*
//! mul      := atom (('*'|'/') atom)*
//! atom     := int | decimal | string | DATE string | '(' or_expr ')'
//!           | SUM|COUNT|MIN|MAX|AVG '(' (or_expr | '*') ')'
//!           | ident ['.' ident]
//! ```

use super::ast::{
    BinOp, DeleteStmt, InsertStmt, OrderKey, SelectItem, SelectStmt, SqlExpr, Statement,
    UpdateStmt,
};
use super::lexer::{tokenize_spanned, Spanned, Token};
use super::{ParseError, ParseErrorKind, SqlError};
use crate::expr::AggFunc;
use eco_tpch::Date;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    /// Byte length of the SQL text — the offset reported when the
    /// input ends before the grammar is satisfied.
    end: usize,
}

/// Parse one `SELECT` statement.
pub fn parse_select(sql: &str) -> Result<SelectStmt, SqlError> {
    let mut p = Parser {
        toks: tokenize_spanned(sql).map_err(SqlError::Lex)?,
        pos: 0,
        end: sql.len(),
    };
    let stmt = p.select()?;
    p.eat_if(&Token::Semi);
    if !p.at_end() {
        return Err(p.err("end of input"));
    }
    Ok(stmt)
}

/// Parse one statement: a `SELECT`, `CREATE INDEX name ON table
/// (column)`, or one of the DML forms (`INSERT`/`UPDATE`/`DELETE`).
pub fn parse_statement(sql: &str) -> Result<Statement, SqlError> {
    let mut p = Parser {
        toks: tokenize_spanned(sql).map_err(SqlError::Lex)?,
        pos: 0,
        end: sql.len(),
    };
    let stmt = if p.peek_keyword("create") {
        p.create_index()?
    } else if p.peek_keyword("insert") {
        p.insert()?
    } else if p.peek_keyword("update") {
        p.update()?
    } else if p.peek_keyword("delete") {
        p.delete()?
    } else {
        Statement::Select(p.select()?)
    };
    p.eat_if(&Token::Semi);
    if !p.at_end() {
        return Err(p.err("end of input"));
    }
    Ok(stmt)
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Byte offset of the current token (end of text when exhausted).
    fn offset(&self) -> usize {
        self.toks.get(self.pos).map_or(self.end, |s| s.offset)
    }

    /// A typed "expected X, found Y" error anchored at the current
    /// token's byte offset.
    fn err(&self, expected: impl Into<String>) -> SqlError {
        SqlError::Parse(ParseError::new(
            self.offset(),
            ParseErrorKind::Unexpected {
                expected: expected.into(),
                found: self
                    .peek()
                    .map_or("end of input".to_string(), |t| format!("{t:?}")),
            },
        ))
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.err(kw.to_uppercase()))
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), SqlError> {
        if self.eat_if(&t) {
            Ok(())
        } else {
            Err(self.err(format!("{t:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        if let Some(Token::Ident(s)) = self.peek() {
            let s = s.clone();
            self.pos += 1;
            Ok(s)
        } else {
            Err(self.err("identifier"))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    /// `CREATE INDEX name ON table '(' column ')'`.
    fn create_index(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("create")?;
        self.expect_keyword("index")?;
        let name = self.ident()?;
        self.expect_keyword("on")?;
        let table = self.ident()?;
        self.expect(Token::LParen)?;
        let column = self.ident()?;
        self.expect(Token::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
        })
    }

    /// `INSERT INTO table ['(' cols ')'] VALUES '(' exprs ')' (',' '(' exprs ')')*`.
    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_if(&Token::LParen) {
            columns.push(self.ident()?);
            while self.eat_if(&Token::Comma) {
                columns.push(self.ident()?);
            }
            self.expect(Token::RParen)?;
        }
        self.expect_keyword("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(Token::LParen)?;
            let mut row = vec![self.or_expr()?];
            while self.eat_if(&Token::Comma) {
                row.push(self.or_expr()?);
            }
            self.expect(Token::RParen)?;
            rows.push(row);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(InsertStmt {
            table,
            columns,
            rows,
        }))
    }

    /// `UPDATE table SET col '=' expr (',' col '=' expr)* [WHERE pred]`.
    fn update(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("update")?;
        let table = self.ident()?;
        self.expect_keyword("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(Token::Eq)?;
            sets.push((col, self.or_expr()?));
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.keyword("where") {
            Some(self.or_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(UpdateStmt {
            table,
            sets,
            where_clause,
        }))
    }

    /// `DELETE FROM table [WHERE pred]`.
    fn delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("delete")?;
        self.expect_keyword("from")?;
        let table = self.ident()?;
        let where_clause = if self.keyword("where") {
            Some(self.or_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(DeleteStmt {
            table,
            where_clause,
        }))
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_keyword("select")?;

        let mut items = Vec::new();
        if self.eat_if(&Token::Star) {
            items.push(SelectItem::Star);
        } else {
            loop {
                let expr = self.or_expr()?;
                let alias = if self.keyword("as") {
                    Some(self.ident()?)
                } else if let Some(Token::Ident(s)) = self.peek() {
                    // Bare alias, as long as it's not a clause keyword.
                    if !matches!(s.as_str(), "from" | "where" | "group" | "order" | "limit") {
                        Some(self.ident()?)
                    } else {
                        None
                    }
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }

        self.expect_keyword("from")?;
        let mut from = vec![self.ident()?];
        while self.eat_if(&Token::Comma) {
            from.push(self.ident()?);
        }

        let where_clause = if self.keyword("where") {
            Some(self.or_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.ident()?);
            while self.eat_if(&Token::Comma) {
                group_by.push(self.ident()?);
            }
        }

        let mut order_by = Vec::new();
        if self.keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let name = self.ident()?;
                let desc = if self.keyword("desc") {
                    true
                } else {
                    self.keyword("asc");
                    false
                };
                order_by.push(OrderKey { name, desc });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.keyword("limit") {
            match self.peek() {
                Some(&Token::Int(n)) if n >= 0 => {
                    self.pos += 1;
                    Some(n as usize)
                }
                _ => return Err(self.err("LIMIT count")),
            }
        } else {
            None
        };

        Ok(SelectStmt {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn or_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.keyword("or") {
            let rhs = self.and_expr()?;
            lhs = SqlExpr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.peek_keyword("and") {
            self.keyword("and");
            let rhs = self.not_expr()?;
            lhs = SqlExpr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, SqlError> {
        if self.keyword("not") {
            Ok(SqlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp()
        }
    }

    fn cmp(&mut self) -> Result<SqlExpr, SqlError> {
        let lhs = self.add()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add()?;
            return Ok(SqlExpr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        if self.keyword("between") {
            let lo = self.add()?;
            self.expect_keyword("and")?;
            let hi = self.add()?;
            return Ok(SqlExpr::Between(Box::new(lhs), Box::new(lo), Box::new(hi)));
        }
        if self.keyword("in") {
            self.expect(Token::LParen)?;
            let mut list = vec![self.add()?];
            while self.eat_if(&Token::Comma) {
                list.push(self.add()?);
            }
            self.expect(Token::RParen)?;
            return Ok(SqlExpr::InList(Box::new(lhs), list));
        }
        Ok(lhs)
    }

    fn add(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul()?;
            lhs = SqlExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.atom()?;
            lhs = SqlExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<SqlExpr, SqlError> {
        if self.at_end() {
            return Err(self.err("expression"));
        }
        match self.next() {
            Some(Token::Int(n)) => Ok(SqlExpr::Int(n)),
            Some(Token::Decimal(n)) => Ok(SqlExpr::Decimal(n)),
            Some(Token::Str(s)) => Ok(SqlExpr::Str(s)),
            Some(Token::LParen) => {
                let e = self.or_expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(id)) => match id.as_str() {
                "date" => {
                    let off = self.offset();
                    match self.next() {
                        Some(Token::Str(s)) => parse_date(&s, off).map(SqlExpr::DateLit),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            Err(self.err("date string after DATE"))
                        }
                    }
                }
                "sum" | "count" | "min" | "max" | "avg" => {
                    let func = match id.as_str() {
                        "sum" => AggFunc::Sum,
                        "count" => AggFunc::Count,
                        "min" => AggFunc::Min,
                        "max" => AggFunc::Max,
                        _ => AggFunc::Avg,
                    };
                    self.expect(Token::LParen)?;
                    if func == AggFunc::Count && self.eat_if(&Token::Star) {
                        self.expect(Token::RParen)?;
                        return Ok(SqlExpr::CountStar);
                    }
                    let inner = self.or_expr()?;
                    self.expect(Token::RParen)?;
                    Ok(SqlExpr::Agg(func, Box::new(inner)))
                }
                _ => {
                    if self.eat_if(&Token::Dot) {
                        let col = self.ident()?;
                        Ok(SqlExpr::Column {
                            table: Some(id),
                            name: col,
                        })
                    } else {
                        Ok(SqlExpr::Column {
                            table: None,
                            name: id,
                        })
                    }
                }
            },
            _ => {
                // Un-consume the unusable token so the error points at
                // it rather than past it.
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expression"))
            }
        }
    }
}

/// Parse `YYYY-MM-DD`. `offset` is the byte position of the date
/// string literal, carried into the error.
fn parse_date(s: &str, offset: usize) -> Result<Date, SqlError> {
    let bad = || {
        SqlError::Parse(ParseError::new(
            offset,
            ParseErrorKind::BadDate(s.to_string()),
        ))
    };
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return Err(bad());
    }
    let y: i32 = parts[0].parse().map_err(|_| bad())?;
    let m: u32 = parts[1].parse().map_err(|_| bad())?;
    let d: u32 = parts[2].parse().map_err(|_| bad())?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(bad());
    }
    Ok(Date::from_ymd(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s = parse_select("SELECT l_orderkey FROM lineitem WHERE l_quantity = 17").unwrap();
        assert_eq!(s.from, vec!["lineitem"]);
        assert_eq!(s.items.len(), 1);
        assert!(s.where_clause.is_some());
        assert!(s.group_by.is_empty() && s.order_by.is_empty() && s.limit.is_none());
    }

    #[test]
    fn parses_star() {
        let s = parse_select("select * from region;").unwrap();
        assert_eq!(s.items, vec![SelectItem::Star]);
    }

    #[test]
    fn parses_q5_shape() -> Result<(), SqlError> {
        let s = parse_select(
            "SELECT n_name, SUM(l_extendedprice * (100 - l_discount) / 100) AS revenue \
             FROM customer, orders, lineitem, supplier, nation, region \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
               AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
               AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
               AND r_name = 'ASIA' \
               AND o_orderdate >= DATE '1994-01-01' \
               AND o_orderdate < DATE '1995-01-01' \
             GROUP BY n_name ORDER BY revenue DESC",
        )?;
        assert_eq!(s.from.len(), 6);
        assert_eq!(s.group_by, vec!["n_name"]);
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        let (expr, alias) = s.items[1].expr_item()?;
        assert_eq!(alias, Some("revenue"));
        assert!(expr.has_aggregate());
        Ok(())
    }

    #[test]
    fn precedence_and_parens() {
        let a = parse_select("SELECT a + b * c FROM t").unwrap();
        let b = parse_select("SELECT a + (b * c) FROM t").unwrap();
        assert_eq!(a.items, b.items);
        let c = parse_select("SELECT (a + b) * c FROM t").unwrap();
        assert_ne!(a.items, c.items);
    }

    #[test]
    fn between_and_in() {
        let s = parse_select(
            "SELECT * FROM lineitem WHERE l_discount BETWEEN 5 AND 7 AND l_quantity IN (1, 2, 3)",
        )
        .unwrap();
        let w = s.where_clause.unwrap();
        let mut cols = Vec::new();
        w.columns(&mut cols);
        assert!(cols.contains(&"l_discount".to_string()));
        assert!(cols.contains(&"l_quantity".to_string()));
    }

    #[test]
    fn qualified_columns() -> Result<(), SqlError> {
        let s = parse_select("SELECT lineitem.l_orderkey FROM lineitem")?;
        let (expr, _) = s.items[0].expr_item()?;
        assert_eq!(
            expr,
            &SqlExpr::Column {
                table: Some("lineitem".into()),
                name: "l_orderkey".into()
            }
        );
        Ok(())
    }

    #[test]
    fn count_star_and_decimal() -> Result<(), SqlError> {
        let s = parse_select("SELECT COUNT(*) FROM lineitem WHERE l_discount <= 0.07")?;
        let (expr, _) = s.items[0].expr_item()?;
        assert_eq!(expr, &SqlExpr::CountStar);
        // 0.07 scaled to hundredths.
        let w = format!("{:?}", s.where_clause.unwrap());
        assert!(w.contains("Decimal(7)"), "{w}");
        Ok(())
    }

    #[test]
    fn star_item_is_a_typed_error_not_a_panic() {
        let s = parse_select("SELECT * FROM t").unwrap();
        let err = s.items[0].expr_item().unwrap_err();
        assert!(matches!(err, SqlError::Bind(m) if m.contains("expected expression item")));
    }

    #[test]
    fn errors_carry_byte_offsets() {
        // Wrong keyword: offset of the offending token.
        let Err(SqlError::Parse(e)) = parse_select("SELECT a FRM t") else {
            panic!("expected a parse error")
        };
        assert_eq!(e.offset, 13, "FRM parses as a bare alias; 't' offends");
        // Input ends too early: offset == byte length of the text.
        let sql = "SELECT a FROM";
        let Err(SqlError::Parse(e)) = parse_select(sql) else {
            panic!("expected a parse error")
        };
        assert_eq!(e.offset, sql.len());
        assert!(matches!(
            e.kind,
            ParseErrorKind::Unexpected { ref found, .. } if found == "end of input"
        ));
        // Trailing input: offset of the first surplus token.
        let Err(SqlError::Parse(e)) = parse_select("SELECT a FROM t WHERE x = 1 2") else {
            panic!("expected a parse error")
        };
        assert_eq!(e.offset, 28);
        // Bad date: offset of the string literal, kind carries it.
        let Err(SqlError::Parse(e)) = parse_select("SELECT DATE '1994-13-01' FROM t") else {
            panic!("expected a parse error")
        };
        assert_eq!(e.offset, 12);
        assert_eq!(e.kind, ParseErrorKind::BadDate("1994-13-01".into()));
    }

    #[test]
    fn error_paths() {
        assert!(parse_select("FROM t").is_err());
        assert!(parse_select("SELECT a FROM").is_err());
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
        assert!(parse_select("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_select("SELECT a FROM t extra junk").is_err());
        assert!(parse_select("SELECT DATE 'not-a-date' FROM t").is_err());
        assert!(parse_select("SELECT a FROM t WHERE d = DATE '1994-13-01'").is_err());
    }

    #[test]
    fn malformed_inputs_return_parse_errors() {
        // Every one of these must produce Err(SqlError::…), never a
        // panic inside the lexer/parser.
        let malformed = [
            "",
            "SELECT",
            "SELECT FROM t",
            "SELECT SUM( FROM t",
            "SELECT SUM(a FROM t",
            "SELECT a FROM t WHERE x BETWEEN 1",
            "SELECT a FROM t WHERE x BETWEEN 1 OR 2",
            "SELECT a FROM t WHERE x IN",
            "SELECT a FROM t WHERE x IN ()",
            "SELECT a FROM t WHERE x IN (1, 2",
            "SELECT t. FROM t",
            "SELECT (a + b FROM t",
            "SELECT a FROM t GROUP BY",
            "SELECT a FROM t ORDER BY",
            "SELECT a FROM t LIMIT -3",
            "SELECT a, FROM t",
            "SELECT DATE FROM t",
            "SELECT a FROM t WHERE NOT",
        ];
        for sql in malformed {
            let r = parse_select(sql);
            assert!(r.is_err(), "{sql:?} parsed as {r:?}");
        }
    }

    #[test]
    fn parses_create_index_and_routes_selects() {
        let s = parse_statement("CREATE INDEX ix_li_qty ON lineitem (l_quantity);").unwrap();
        assert_eq!(
            s,
            Statement::CreateIndex {
                name: "ix_li_qty".into(),
                table: "lineitem".into(),
                column: "l_quantity".into(),
            }
        );
        let s = parse_statement("SELECT a FROM t").unwrap();
        assert!(matches!(s, Statement::Select(_)));
        for bad in [
            "CREATE",
            "CREATE INDEX",
            "CREATE INDEX i",
            "CREATE INDEX i ON",
            "CREATE INDEX i ON t",
            "CREATE INDEX i ON t (",
            "CREATE INDEX i ON t (c",
            "CREATE INDEX i ON t (c) junk",
            "CREATE TABLE t (c)",
        ] {
            assert!(parse_statement(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parses_dml_statements() {
        let s = parse_statement("INSERT INTO region (r_regionkey, r_name) VALUES (5, 'X'), (6, 'Y');")
            .unwrap();
        let Statement::Insert(i) = s else {
            panic!("expected insert")
        };
        assert_eq!(i.table, "region");
        assert_eq!(i.columns, vec!["r_regionkey", "r_name"]);
        assert_eq!(i.rows.len(), 2);
        assert_eq!(i.rows[1], vec![SqlExpr::Int(6), SqlExpr::Str("Y".into())]);

        let s = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE k < 3").unwrap();
        let Statement::Update(u) = s else {
            panic!("expected update")
        };
        assert_eq!(u.sets.len(), 2);
        assert_eq!(u.sets[1].0, "b");
        assert!(u.where_clause.is_some());

        let s = parse_statement("DELETE FROM t").unwrap();
        let Statement::Delete(d) = s else {
            panic!("expected delete")
        };
        assert_eq!(d.table, "t");
        assert!(d.where_clause.is_none());

        for bad in [
            "INSERT",
            "INSERT INTO",
            "INSERT INTO t",
            "INSERT INTO t VALUES",
            "INSERT INTO t VALUES (",
            "INSERT INTO t VALUES ()",
            "INSERT INTO t (a, ) VALUES (1)",
            "INSERT INTO t VALUES (1), junk",
            "UPDATE",
            "UPDATE t",
            "UPDATE t SET",
            "UPDATE t SET a",
            "UPDATE t SET a = ",
            "DELETE",
            "DELETE FROM",
            "DELETE t WHERE x = 1",
        ] {
            assert!(parse_statement(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn order_by_asc_desc_and_limit() {
        let s = parse_select("SELECT a, b FROM t ORDER BY a ASC, b DESC LIMIT 10").unwrap();
        assert!(!s.order_by[0].desc);
        assert!(s.order_by[1].desc);
        assert_eq!(s.limit, Some(10));
    }
}
