//! Binder + planner: turn a parsed `SELECT` into a physical plan.
//!
//! Joins are written TPC-H style (comma list + `WHERE` equalities); the
//! planner extracts the join graph, pushes single-table predicates down
//! to their scans, and orders joins greedily by estimated filtered
//! cardinality (smallest first, always joinable with the current
//! prefix — no cartesian products). The result is a left-deep hash-join
//! tree with the smaller side as the build input, which reproduces the
//! hand-built Q5 plan shape from `crate::plans`.
//!
//! **Index selection** (ledger schema v4): when a base table carries a
//! B-tree index on a predicate column and the predicate is sargable and
//! selective — an equality or `BETWEEN` with literal bounds, estimated
//! to keep at most [`INDEX_SELECTIVITY_CUTOFF`] of the table — the
//! planner replaces the scan+filter with an [`IxScan`] probe and keeps
//! any remaining predicates as a filter above it. Catalogs without
//! indexes plan exactly as before, so index-free ledgers stay
//! bit-identical.

use std::collections::HashSet;
use std::sync::Arc;

use eco_storage::{Catalog, ColumnType, StoredTable, TableData, Value};

use super::ast::{BinOp, SelectItem, SelectStmt, SqlExpr};
use super::SqlError;
use crate::expr::{AggFunc, ArithOp, CmpOp, Expr};
use crate::ops::{
    AggSpec, BoxedOp, Filter, HashAggregate, HashJoin, IxBound, IxScan, Limit, Project, SeqScan,
    Sort, SortKey,
};

/// Maximum estimated selectivity at which an available index is chosen
/// over a sequential scan. Matches the paper's crossover intuition: a
/// probe pays random I/O per matching page, so it only wins when few
/// rows survive (the `index_crossover` experiment measures where).
pub const INDEX_SELECTIVITY_CUTOFF: f64 = 0.15;

/// Plan a parsed statement against the catalog.
pub fn plan_select(catalog: &Catalog, stmt: &SelectStmt) -> Result<BoxedOp, SqlError> {
    // --- resolve FROM ------------------------------------------------------
    let mut tables: Vec<(String, Arc<StoredTable>)> = Vec::new();
    for name in &stmt.from {
        let t = catalog
            .get(name)
            .ok_or_else(|| SqlError::Bind(format!("unknown table {name:?}")))?;
        if tables.iter().any(|(n, _)| n == name) {
            return Err(SqlError::Bind(format!(
                "table {name:?} listed twice (self-joins are not supported)"
            )));
        }
        tables.push((name.clone(), t));
    }

    // --- decompose WHERE ---------------------------------------------------
    let mut conjuncts = Vec::new();
    if let Some(w) = &stmt.where_clause {
        split_conjuncts(w, &mut conjuncts);
    }

    let mut table_preds: Vec<Vec<SqlExpr>> = vec![Vec::new(); tables.len()];
    let mut join_preds: Vec<(usize, String, usize, String)> = Vec::new();
    let mut residual: Vec<SqlExpr> = Vec::new();

    for c in conjuncts {
        match classify(&c, &tables)? {
            Classified::SingleTable(i) => table_preds[i].push(c),
            Classified::EquiJoin(a, ca, b, cb) => join_preds.push((a, ca, b, cb)),
            Classified::Residual => residual.push(c),
        }
    }

    // --- base relations: scan + pushed-down filters ------------------------
    struct Rel {
        op: Option<BoxedOp>,
        est_rows: f64,
        table_idx: usize,
    }
    let mut rels: Vec<Rel> = Vec::new();
    for (i, (name, t)) in tables.iter().enumerate() {
        let mut preds: Vec<SqlExpr> = table_preds[i].clone();
        // Index selection: a sargable, selective predicate with an
        // index on its column becomes the access path; the rest stay
        // as a filter above it.
        let probe = preds.iter().enumerate().find_map(|(pos, p)| {
            let (col, lo, hi) = sargable_bounds(p)?;
            if estimate_selectivity(p) > INDEX_SELECTIVITY_CUTOFF {
                return None;
            }
            let entry = catalog.index_on(name, &col)?;
            matches!(t.data, TableData::Disk(_)).then_some((pos, entry, lo, hi))
        });
        let mut est = t.len() as f64;
        let mut op: BoxedOp = match probe {
            Some((pos, entry, lo, hi)) => {
                let p = preds.remove(pos);
                est *= estimate_selectivity(&p);
                Box::new(IxScan::range(
                    Arc::clone(t),
                    Arc::clone(&entry.index),
                    lo,
                    hi,
                ))
            }
            None => Box::new(SeqScan::new(Arc::clone(t))),
        };
        if !preds.is_empty() {
            let mut bound = Vec::new();
            for p in &preds {
                est *= estimate_selectivity(p);
                bound.push(bind_expr(p, op.schema())?);
            }
            let pred = if bound.len() == 1 {
                bound.pop().expect("one predicate")
            } else {
                Expr::And(bound)
            };
            op = Box::new(Filter::new(op, pred));
        }
        rels.push(Rel {
            op: Some(op),
            est_rows: est.max(1.0),
            table_idx: i,
        });
    }

    // --- greedy left-deep join order ---------------------------------------
    let mut remaining: Vec<Rel> = rels;
    // Start from the smallest estimated relation.
    remaining.sort_by(|a, b| a.est_rows.partial_cmp(&b.est_rows).expect("no NaN"));
    let first = remaining.remove(0);
    let mut joined_tables: HashSet<usize> = [first.table_idx].into();
    let mut current = first.op.expect("op present");
    let mut current_est = first.est_rows;

    while !remaining.is_empty() {
        // Smallest relation connected to the current prefix.
        let next_pos = remaining
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                join_preds.iter().any(|(a, _, b, _)| {
                    (joined_tables.contains(a) && *b == r.table_idx)
                        || (joined_tables.contains(b) && *a == r.table_idx)
                })
            })
            .min_by(|(_, x), (_, y)| x.est_rows.partial_cmp(&y.est_rows).expect("no NaN"))
            .map(|(i, _)| i);
        let Some(pos) = next_pos else {
            let names: Vec<&str> = remaining
                .iter()
                .map(|r| tables[r.table_idx].0.as_str())
                .collect();
            return Err(SqlError::Bind(format!(
                "no join predicate connects {names:?} to the rest (cartesian products \
                 are not supported)"
            )));
        };
        let rel = remaining.remove(pos);
        let rel_op = rel.op.expect("op present");

        // All join conditions between the prefix and this relation.
        let mut left_cols = Vec::new();
        let mut right_cols = Vec::new();
        for (a, ca, b, cb) in &join_preds {
            if joined_tables.contains(a) && *b == rel.table_idx {
                left_cols.push(ca.clone());
                right_cols.push(cb.clone());
            } else if joined_tables.contains(b) && *a == rel.table_idx {
                left_cols.push(cb.clone());
                right_cols.push(ca.clone());
            }
        }
        debug_assert!(!left_cols.is_empty());

        // Build on the smaller side.
        let (build, probe, build_names, probe_names) = if current_est <= rel.est_rows {
            (current, rel_op, left_cols, right_cols)
        } else {
            (rel_op, current, right_cols, left_cols)
        };
        let build_keys = resolve_keys(build.schema(), &build_names)?;
        let probe_keys = resolve_keys(probe.schema(), &probe_names)?;
        current = Box::new(HashJoin::new(build, probe, build_keys, probe_keys));
        // Crude FK-join estimate: the larger side survives scaled by the
        // smaller side's filter fraction.
        current_est =
            (current_est * rel.est_rows / current_est.max(rel.est_rows).max(1.0)).max(1.0);
        joined_tables.insert(rel.table_idx);
    }

    // --- residual predicates ------------------------------------------------
    for r in &residual {
        let bound = bind_expr(r, current.schema())?;
        current = Box::new(Filter::new(current, bound));
    }

    // --- aggregation / projection -------------------------------------------
    let has_agg = stmt
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.has_aggregate()));

    if has_agg || !stmt.group_by.is_empty() {
        current = plan_aggregate(current, stmt)?;
    } else {
        match &stmt.items[..] {
            [SelectItem::Star] => {}
            items => {
                let mut outputs = Vec::new();
                for (i, item) in items.iter().enumerate() {
                    let SelectItem::Expr { expr, alias } = item else {
                        return Err(SqlError::Bind(
                            "SELECT * cannot be mixed with expressions".into(),
                        ));
                    };
                    let bound = bind_expr(expr, current.schema())?;
                    let name = output_name(expr, alias.as_deref(), i);
                    let ty = output_type(expr, current.schema());
                    outputs.push((name, ty, bound));
                }
                current = Box::new(Project::new(current, outputs));
            }
        }
    }

    // --- ORDER BY / LIMIT ----------------------------------------------------
    if !stmt.order_by.is_empty() {
        let mut keys = Vec::new();
        for k in &stmt.order_by {
            let idx = current.schema().index_of(&k.name).ok_or_else(|| {
                SqlError::Bind(format!(
                    "ORDER BY column {:?} not in output {:?}",
                    k.name,
                    current.schema().names()
                ))
            })?;
            keys.push(if k.desc {
                SortKey::desc(idx)
            } else {
                SortKey::asc(idx)
            });
        }
        current = Box::new(Sort::new(current, keys));
    }
    if let Some(n) = stmt.limit {
        current = Box::new(Limit::new(current, n));
    }
    Ok(current)
}

fn plan_aggregate(input: BoxedOp, stmt: &SelectStmt) -> Result<BoxedOp, SqlError> {
    // Group columns must exist in the input.
    let mut group_idx = Vec::new();
    for g in &stmt.group_by {
        let idx = input
            .schema()
            .index_of(g)
            .ok_or_else(|| SqlError::Bind(format!("GROUP BY column {g:?} not found")))?;
        group_idx.push(idx);
    }

    // Each select item is either a grouped column or one aggregate.
    let mut aggs = Vec::new();
    let mut item_kinds = Vec::new(); // Group(name) | Agg(output name)
    enum Kind {
        Group(String),
        Agg(String),
    }
    for (i, item) in stmt.items.iter().enumerate() {
        let SelectItem::Expr { expr, alias } = item else {
            return Err(SqlError::Bind("SELECT * is invalid with GROUP BY".into()));
        };
        match expr {
            SqlExpr::Column { name, .. } if !expr.has_aggregate() => {
                if !stmt.group_by.contains(name) {
                    return Err(SqlError::Bind(format!(
                        "column {name:?} must appear in GROUP BY"
                    )));
                }
                item_kinds.push(Kind::Group(alias.clone().unwrap_or_else(|| name.clone())));
            }
            SqlExpr::Agg(func, inner) => {
                let bound = bind_expr(inner, input.schema())?;
                let name = output_name(expr, alias.as_deref(), i);
                aggs.push(AggSpec {
                    func: *func,
                    input: bound,
                    name: name.clone(),
                });
                item_kinds.push(Kind::Agg(name));
            }
            SqlExpr::CountStar => {
                let name = alias.clone().unwrap_or_else(|| "count".to_string());
                aggs.push(AggSpec {
                    func: AggFunc::Count,
                    input: Expr::int(1),
                    name: name.clone(),
                });
                item_kinds.push(Kind::Agg(name));
            }
            other if other.has_aggregate() => {
                return Err(SqlError::Bind(
                    "arithmetic around aggregates is not supported; move it inside \
                     the aggregate (e.g. SUM(a * b))"
                        .into(),
                ));
            }
            _ => {
                return Err(SqlError::Bind(
                    "non-aggregate SELECT expressions must be GROUP BY columns".into(),
                ));
            }
        }
    }

    let agg = Box::new(HashAggregate::new(input, group_idx, aggs)) as BoxedOp;

    // Aggregate output is [group cols..., aggs...]; project into the
    // order the SELECT list asked for, with aliases applied.
    let mut outputs = Vec::new();
    let mut group_seen = 0usize;
    let mut agg_seen = 0usize;
    for kind in item_kinds {
        match kind {
            Kind::Group(name) => {
                let src = group_seen;
                group_seen += 1;
                let ty = agg.schema().columns()[src].ty;
                outputs.push((name, ty, Expr::col(src)));
            }
            Kind::Agg(name) => {
                let src = stmt.group_by.len() + agg_seen;
                agg_seen += 1;
                outputs.push((name, ColumnType::Int, Expr::col(src)));
            }
        }
    }
    Ok(Box::new(Project::new(agg, outputs)))
}

// --- helpers ----------------------------------------------------------------

fn split_conjuncts(e: &SqlExpr, out: &mut Vec<SqlExpr>) {
    if let SqlExpr::Binary(BinOp::And, l, r) = e {
        split_conjuncts(l, out);
        split_conjuncts(r, out);
    } else {
        out.push(e.clone());
    }
}

enum Classified {
    SingleTable(usize),
    EquiJoin(usize, String, usize, String),
    Residual,
}

fn table_of_column(
    name: &str,
    qualifier: Option<&str>,
    tables: &[(String, Arc<StoredTable>)],
) -> Result<usize, SqlError> {
    if let Some(q) = qualifier {
        let (i, (_, t)) = tables
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == q)
            .ok_or_else(|| SqlError::Bind(format!("unknown table qualifier {q:?}")))?;
        if t.schema().index_of(name).is_none() {
            return Err(SqlError::Bind(format!("no column {name:?} in table {q:?}")));
        }
        return Ok(i);
    }
    let hits: Vec<usize> = tables
        .iter()
        .enumerate()
        .filter(|(_, (_, t))| t.schema().index_of(name).is_some())
        .map(|(i, _)| i)
        .collect();
    match hits.len() {
        0 => Err(SqlError::Bind(format!("unknown column {name:?}"))),
        1 => Ok(hits[0]),
        _ => Err(SqlError::Bind(format!("ambiguous column {name:?}"))),
    }
}

fn classify(e: &SqlExpr, tables: &[(String, Arc<StoredTable>)]) -> Result<Classified, SqlError> {
    // Equi-join pattern: col = col across different tables.
    if let SqlExpr::Binary(BinOp::Eq, l, r) = e {
        if let (
            SqlExpr::Column {
                table: ql,
                name: nl,
            },
            SqlExpr::Column {
                table: qr,
                name: nr,
            },
        ) = (l.as_ref(), r.as_ref())
        {
            let ta = table_of_column(nl, ql.as_deref(), tables)?;
            let tb = table_of_column(nr, qr.as_deref(), tables)?;
            if ta != tb {
                return Ok(Classified::EquiJoin(ta, nl.clone(), tb, nr.clone()));
            }
        }
    }
    // Single-table when every referenced column binds to one table.
    let mut cols = Vec::new();
    e.columns(&mut cols);
    let mut owner: Option<usize> = None;
    for c in &cols {
        let t = table_of_column(c, None, tables)?;
        match owner {
            None => owner = Some(t),
            Some(o) if o == t => {}
            Some(_) => return Ok(Classified::Residual),
        }
    }
    Ok(match owner {
        Some(i) => Classified::SingleTable(i),
        None => Classified::Residual, // constant predicate: apply at top
    })
}

fn resolve_keys(schema: &eco_storage::Schema, names: &[String]) -> Result<Vec<usize>, SqlError> {
    names
        .iter()
        .map(|n| {
            schema
                .index_of(n)
                .ok_or_else(|| SqlError::Bind(format!("join key {n:?} lost in plan")))
        })
        .collect()
}

/// Bind a SQL expression against a physical schema.
pub fn bind_expr(e: &SqlExpr, schema: &eco_storage::Schema) -> Result<Expr, SqlError> {
    Ok(match e {
        SqlExpr::Column { name, .. } => {
            let idx = schema
                .index_of(name)
                .ok_or_else(|| SqlError::Bind(format!("unknown column {name:?}")))?;
            Expr::col(idx)
        }
        SqlExpr::Int(n) | SqlExpr::Decimal(n) => Expr::int(*n),
        SqlExpr::Str(s) => Expr::str(s),
        SqlExpr::DateLit(d) => Expr::date(d.0),
        SqlExpr::Not(inner) => Expr::Not(Box::new(bind_expr(inner, schema)?)),
        SqlExpr::Between(x, lo, hi) => {
            let xe = bind_expr(x, schema)?;
            Expr::And(vec![
                Expr::cmp(CmpOp::Ge, xe.clone(), bind_expr(lo, schema)?),
                Expr::cmp(CmpOp::Le, xe, bind_expr(hi, schema)?),
            ])
        }
        SqlExpr::InList(x, list) => {
            let xe = bind_expr(x, schema)?;
            Expr::Or(
                list.iter()
                    .map(|v| Ok(Expr::cmp(CmpOp::Eq, xe.clone(), bind_expr(v, schema)?)))
                    .collect::<Result<Vec<_>, SqlError>>()?,
            )
        }
        SqlExpr::Binary(op, l, r) => {
            let le = bind_expr(l, schema)?;
            let re = bind_expr(r, schema)?;
            match op {
                BinOp::Eq => Expr::cmp(CmpOp::Eq, le, re),
                BinOp::Ne => Expr::cmp(CmpOp::Ne, le, re),
                BinOp::Lt => Expr::cmp(CmpOp::Lt, le, re),
                BinOp::Le => Expr::cmp(CmpOp::Le, le, re),
                BinOp::Gt => Expr::cmp(CmpOp::Gt, le, re),
                BinOp::Ge => Expr::cmp(CmpOp::Ge, le, re),
                BinOp::And => Expr::And(vec![le, re]),
                BinOp::Or => Expr::Or(vec![le, re]),
                BinOp::Add => Expr::arith(ArithOp::Add, le, re),
                BinOp::Sub => Expr::arith(ArithOp::Sub, le, re),
                BinOp::Mul => Expr::arith(ArithOp::Mul, le, re),
                BinOp::Div => Expr::arith(ArithOp::Div, le, re),
            }
        }
        SqlExpr::Agg(..) | SqlExpr::CountStar => {
            return Err(SqlError::Bind(
                "aggregate in a non-aggregate position".into(),
            ))
        }
    })
}

/// A literal usable as an index probe key. Decimal literals are
/// already scaled to integer hundredths (the storage convention), so
/// they compare directly against stored ints.
fn literal_value(e: &SqlExpr) -> Option<Value> {
    match e {
        SqlExpr::Int(n) | SqlExpr::Decimal(n) => Some(Value::Int(*n)),
        SqlExpr::Str(s) => Some(Value::str(s.as_str())),
        SqlExpr::DateLit(d) => Some(Value::Date(d.0)),
        _ => None,
    }
}

/// `column = literal` (either side), as `(column, key)`.
fn column_literal(l: &SqlExpr, r: &SqlExpr) -> Option<(String, Value)> {
    if let SqlExpr::Column { name, .. } = l {
        if let Some(v) = literal_value(r) {
            return Some((name.clone(), v));
        }
    }
    if let SqlExpr::Column { name, .. } = r {
        if let Some(v) = literal_value(l) {
            return Some((name.clone(), v));
        }
    }
    None
}

/// Index-sargable predicates: `col = lit` and
/// `col BETWEEN lit AND lit` (inclusive, like its binding). Returns
/// the probed column and the owned probe bounds.
fn sargable_bounds(e: &SqlExpr) -> Option<(String, IxBound, IxBound)> {
    match e {
        SqlExpr::Binary(BinOp::Eq, l, r) => {
            let (col, v) = column_literal(l, r)?;
            Some((col, IxBound::Inclusive(v.clone()), IxBound::Inclusive(v)))
        }
        SqlExpr::Between(x, lo, hi) => {
            let SqlExpr::Column { name, .. } = x.as_ref() else {
                return None;
            };
            let lo = literal_value(lo)?;
            let hi = literal_value(hi)?;
            Some((name.clone(), IxBound::Inclusive(lo), IxBound::Inclusive(hi)))
        }
        _ => None,
    }
}

/// Selectivity heuristics for pushed-down predicates (drives join order).
fn estimate_selectivity(e: &SqlExpr) -> f64 {
    match e {
        SqlExpr::Binary(BinOp::Eq, _, _) => 0.1,
        SqlExpr::Binary(BinOp::Ne, _, _) => 0.9,
        SqlExpr::Binary(BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, _, _) => 0.3,
        SqlExpr::Between(..) => 0.15,
        SqlExpr::InList(_, list) => (0.05 * list.len() as f64).min(1.0),
        SqlExpr::Not(inner) => 1.0 - estimate_selectivity(inner),
        SqlExpr::Binary(BinOp::And, l, r) => estimate_selectivity(l) * estimate_selectivity(r),
        SqlExpr::Binary(BinOp::Or, l, r) => {
            (estimate_selectivity(l) + estimate_selectivity(r)).min(1.0)
        }
        _ => 0.5,
    }
}

fn output_name(e: &SqlExpr, alias: Option<&str>, position: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match e {
        SqlExpr::Column { name, .. } => name.clone(),
        SqlExpr::Agg(f, _) => format!("{f:?}").to_lowercase(),
        SqlExpr::CountStar => "count".to_string(),
        _ => format!("col{position}"),
    }
}

fn output_type(e: &SqlExpr, schema: &eco_storage::Schema) -> ColumnType {
    match e {
        SqlExpr::Column { name, .. } => schema
            .index_of(name)
            .map(|i| schema.columns()[i].ty)
            .unwrap_or(ColumnType::Int),
        SqlExpr::Str(_) => ColumnType::Str,
        SqlExpr::DateLit(_) => ColumnType::Date,
        SqlExpr::Binary(BinOp::And | BinOp::Or, _, _)
        | SqlExpr::Not(_)
        | SqlExpr::Between(..)
        | SqlExpr::InList(..) => ColumnType::Bool,
        SqlExpr::Binary(
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge,
            _,
            _,
        ) => ColumnType::Bool,
        _ => ColumnType::Int,
    }
}

#[cfg(test)]
mod tests {
    use super::super::compile;
    use super::*;
    use crate::context::ExecCtx;
    use crate::exec::execute;
    use crate::plans;
    use eco_storage::load_tpch;
    use eco_storage::EngineKind;
    use eco_tpch::{Q5Params, TpchGenerator};

    fn setup() -> (eco_tpch::TpchDb, Catalog) {
        let db = TpchGenerator::new(0.004).generate();
        let cat = load_tpch(&db, EngineKind::Memory, 0);
        (db, cat)
    }

    fn run(cat: &Catalog, sql: &str) -> Vec<eco_storage::Tuple> {
        let mut plan = compile(cat, sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let mut ctx = ExecCtx::new();
        execute(plan.as_mut(), &mut ctx)
    }

    #[test]
    fn simple_selection_matches_hand_plan() {
        let (_, cat) = setup();
        let sql_rows = run(&cat, "SELECT * FROM lineitem WHERE l_quantity = 17");
        let mut hand = plans::selection_plan(&cat, &eco_tpch::QedQuery { quantity: 17 });
        let mut ctx = ExecCtx::new();
        let hand_rows = execute(hand.as_mut(), &mut ctx);
        assert_eq!(sql_rows, hand_rows);
    }

    #[test]
    fn q5_from_sql_text_matches_reference() {
        let (db, cat) = setup();
        let rows = run(
            &cat,
            "SELECT n_name, SUM(l_extendedprice * (100 - l_discount) / 100) AS revenue \
             FROM customer, orders, lineitem, supplier, nation, region \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
               AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
               AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
               AND r_name = 'ASIA' \
               AND o_orderdate >= DATE '1994-01-01' \
               AND o_orderdate < DATE '1995-01-01' \
             GROUP BY n_name ORDER BY revenue DESC",
        );
        let mut got = plans::q5_rows_to_pairs(&rows);
        got.sort();
        let mut want = plans::q5_reference(&db, &Q5Params::new("ASIA", 1994));
        want.sort();
        assert_eq!(got, want, "SQL-planned Q5 must match the oracle");
    }

    #[test]
    fn projection_and_arith() {
        let (_, cat) = setup();
        let rows = run(
            &cat,
            "SELECT r_regionkey + 10 AS k, r_name FROM region ORDER BY k",
        );
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0].as_int(), Some(10));
        assert_eq!(rows[4][0].as_int(), Some(14));
    }

    #[test]
    fn count_star_and_global_aggregate() {
        let (db, cat) = setup();
        let rows = run(
            &cat,
            "SELECT COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem",
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_int(), Some(db.lineitem.len() as i64));
        let want: i64 = db.lineitem.iter().map(|l| l.l_quantity).sum();
        assert_eq!(rows[0][1].as_int(), Some(want));
    }

    #[test]
    fn between_and_in_execute() {
        let (db, cat) = setup();
        let rows = run(
            &cat,
            "SELECT COUNT(*) AS n FROM lineitem \
             WHERE l_discount BETWEEN 5 AND 7 AND l_quantity IN (1, 2, 3)",
        );
        let want = db
            .lineitem
            .iter()
            .filter(|l| (5..=7).contains(&l.l_discount) && (1..=3).contains(&l.l_quantity))
            .count() as i64;
        assert_eq!(rows[0][0].as_int(), Some(want));
    }

    #[test]
    fn two_table_join() {
        let (db, cat) = setup();
        let rows = run(
            &cat,
            "SELECT n_name, COUNT(*) AS suppliers FROM supplier, nation \
             WHERE s_nationkey = n_nationkey GROUP BY n_name ORDER BY suppliers DESC, n_name",
        );
        let total: i64 = rows.iter().map(|r| r[1].as_int().unwrap()).sum();
        assert_eq!(total, db.supplier.len() as i64);
        for w in rows.windows(2) {
            assert!(w[0][1].as_int() >= w[1][1].as_int());
        }
    }

    #[test]
    fn limit_applies_after_sort() {
        let (_, cat) = setup();
        let rows = run(
            &cat,
            "SELECT c_custkey FROM customer ORDER BY c_custkey DESC LIMIT 3",
        );
        assert_eq!(rows.len(), 3);
        assert!(rows[0][0].as_int() > rows[2][0].as_int());
    }

    #[test]
    fn decimal_literals_follow_storage_convention() {
        let (db, cat) = setup();
        // 0.07 means discount of 7 hundredths.
        let rows = run(
            &cat,
            "SELECT COUNT(*) AS n FROM lineitem WHERE l_discount = 0.07",
        );
        let want = db.lineitem.iter().filter(|l| l.l_discount == 7).count() as i64;
        assert_eq!(rows[0][0].as_int(), Some(want));
    }

    #[test]
    fn bind_errors_are_descriptive() {
        let (_, cat) = setup();
        let err = |sql: &str| match compile(&cat, sql) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected error for {sql:?}"),
        };
        assert!(err("SELECT * FROM ghost").contains("unknown table"));
        assert!(err("SELECT bogus FROM region").contains("unknown column"));
        assert!(err("SELECT r_name FROM region, nation").contains("cartesian"));
        assert!(
            err("SELECT r_name, COUNT(*) FROM region").contains("GROUP BY"),
            "ungrouped column must be rejected"
        );
        assert!(err("SELECT SUM(r_regionkey) * 2 FROM region").contains("inside"));
        assert!(
            err("SELECT * FROM region, region WHERE r_regionkey = r_regionkey").contains("twice")
        );
        assert!(err(
            "SELECT n_comment FROM region, nation WHERE n_regionkey = r_regionkey \
                     GROUP BY n_name"
        )
        .contains("must appear in GROUP BY"));
    }

    #[test]
    fn join_order_puts_small_side_on_build() {
        // Six-table Q5 plans without errors and starts from region
        // (cardinality 5) — verified indirectly: the plan executes and
        // produces sane output without exhausting memory at this scale.
        let (_, cat) = setup();
        let rows = run(
            &cat,
            "SELECT n_name, COUNT(*) AS c FROM customer, nation, region \
             WHERE c_nationkey = n_nationkey AND n_regionkey = r_regionkey \
               AND r_name = 'EUROPE' GROUP BY n_name ORDER BY n_name",
        );
        assert!(rows.len() <= 5, "at most 5 EUROPE nations");
    }

    #[test]
    fn index_is_chosen_when_selective_and_rows_match_the_scan_plan() {
        use eco_simhw::trace::OpClass;
        let db = TpchGenerator::new(0.004).generate();
        let cat = load_tpch(&db, EngineKind::Disk, 1 << 16);
        let sql = "SELECT * FROM lineitem WHERE l_quantity = 17";
        let scan_rows = run(&cat, sql); // no index yet: sequential plan
        cat.create_index("ix_li_qty", "lineitem", "l_quantity")
            .expect("create index");

        let mut plan = compile(&cat, sql).unwrap_or_else(|e| panic!("{e}"));
        let mut ctx = ExecCtx::new();
        let ix_rows = execute(plan.as_mut(), &mut ctx);
        assert_eq!(ix_rows, scan_rows, "index path returns identical rows");
        assert!(
            ctx.cpu.count(OpClass::NodeSearch) > 0,
            "selective equality must route through the index"
        );

        // BETWEEN with literal bounds also probes.
        let mut plan = compile(
            &cat,
            "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity BETWEEN 3 AND 5",
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let mut ctx = ExecCtx::new();
        let rows = execute(plan.as_mut(), &mut ctx);
        let want = db
            .lineitem
            .iter()
            .filter(|l| (3..=5).contains(&l.l_quantity))
            .count() as i64;
        assert_eq!(rows[0][0].as_int(), Some(want));
        assert!(ctx.cpu.count(OpClass::NodeSearch) > 0);

        // Non-selective shapes keep the sequential plan even though the
        // index exists.
        let mut plan = compile(
            &cat,
            "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity <> 17",
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let mut ctx = ExecCtx::new();
        execute(plan.as_mut(), &mut ctx);
        assert_eq!(ctx.cpu.count(OpClass::NodeSearch), 0);
        assert_eq!(ctx.disk.index_ios, 0, "no probe, no v4 charges");
    }

    #[test]
    fn constant_predicate_goes_residual() {
        let (_, cat) = setup();
        let rows = run(
            &cat,
            "SELECT r_name FROM region WHERE 1 = 1 ORDER BY r_name",
        );
        assert_eq!(rows.len(), 5);
        let none = run(&cat, "SELECT r_name FROM region WHERE 1 = 2");
        assert!(none.is_empty());
    }
}
