//! The execution context: the work ledger every operator charges into.

use eco_simhw::trace::{CpuWork, DiskWork, OpClass, Phase, PhaseKind, PricingMode};

use crate::error::ExecError;

/// Default number of tuples a batch-mode operator call produces (or, for
/// filters, consumes). 1024 keeps a batch of lineitem-width tuples well
/// inside L2 while amortizing per-call dispatch to noise.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Default number of input tuples per morsel handed to a parallel
/// worker. Big enough to amortize the per-morsel pipeline setup, small
/// enough that a scan splits into many more morsels than workers (the
/// load-balancing granularity of morsel-driven execution).
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Per-core share of the charges accumulated by parallel sections —
/// used to split a merged ledger back into per-core [`Phase`]s for the
/// multi-core machine model.
#[derive(Debug, Clone, Default)]
struct CoreCharges {
    cpu: CpuWork,
    mem_stream_bytes: u64,
    mem_random_accesses: u64,
    disk: DiskWork,
    backoff_ns: u64,
}

/// Per-execution accounting state, threaded through every operator call.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    /// CPU operations performed so far.
    pub cpu: CpuWork,
    /// Bytes streamed through memory (scans, materializations, copies).
    pub mem_stream_bytes: u64,
    /// Latency-bound random memory accesses (hash probes into tables
    /// that exceed cache).
    pub mem_random_accesses: u64,
    /// Disk I/O drained from the buffer pool.
    pub disk: DiskWork,
    /// Retry backoff / stall idle time accumulated by verified page
    /// reads, nanoseconds (ledger schema v2: halt-priced like a client
    /// gap; exactly zero on fault-free runs).
    pub backoff_ns: u64,
    /// Whether OR-lists short-circuit on the first true arm. MySQL-style
    /// evaluation short-circuits; the `ablation_qed_shortcircuit` bench
    /// flips this to study its effect on QED.
    pub short_circuit_or: bool,
    /// Number of predicate-term evaluations (for introspection/tests).
    pub pred_evals: u64,
    /// Tuples per `next_batch` call. Execution *semantics and the
    /// energy ledger are independent of this value* (it only changes
    /// how work is chunked, never how much work is charged); it is a
    /// pure throughput knob.
    pub batch_size: usize,
    /// Worker threads available to parallel sections (1 = serial). Like
    /// `batch_size`, this is a pure throughput knob: the merged ledger
    /// is identical at every worker count (`tests/integration_parallel.rs`).
    pub workers: usize,
    /// Target input tuples per morsel for parallel scans. Leaf
    /// operators may align this upward (disk scans round to whole
    /// extents so parallel I/O charges stay identical to serial).
    pub morsel_rows: usize,
    /// Columnar execution: when set, drivers and blocking operators
    /// move data through [`crate::ops::Operator::next_chunk`] (typed
    /// column vectors + selection vectors) instead of `Vec<Tuple>`
    /// batches. Like `batch_size` and `workers`, a pure throughput
    /// knob: the energy ledger is bit-identical either way
    /// (`tests/integration_columnar.rs`).
    pub columnar: bool,
    /// Energy-pricing mode (ledger schema v3). Under the default
    /// [`PricingMode::Raw`] every charge is bit-identical to pre-v3
    /// ledgers and encoded mirrors are never built. Under
    /// [`PricingMode::Compressed`] scans price *encoded* bytes as
    /// memory traffic and dictionary-reading kernels charge
    /// [`OpClass::DictLookup`]. Unlike `batch_size`/`workers`/
    /// `columnar` this is *not* a pure throughput knob — it changes
    /// what the ledger says, which is the point: it makes compression
    /// ratio measurable as joules.
    pub pricing: PricingMode,
    /// Streaming-exactness depth: non-zero while opening the subtree of
    /// an early-terminating operator ([`crate::ops::Limit`]). Parallel
    /// sections that would pre-materialize a *streaming* child (and so
    /// consume more of it than scalar execution would) stay serial while
    /// this is set; blocking operators clear it for their own subtree
    /// since they drain their input fully in any mode.
    pub streaming_exact: u32,
    /// Per-core charge shares recorded by parallel sections (index =
    /// worker id). Charges made directly on this context (the
    /// coordinator's serial work) are attributed to core 0 at
    /// [`Self::take_core_phases`] time.
    core_charges: Vec<CoreCharges>,
    /// The first error recorded by a failing operator (set-first-wins).
    /// Fallible drivers take it after the pipeline drains.
    error: Option<ExecError>,
}

impl Default for ExecCtx {
    fn default() -> Self {
        Self {
            cpu: CpuWork::default(),
            mem_stream_bytes: 0,
            mem_random_accesses: 0,
            disk: DiskWork::default(),
            backoff_ns: 0,
            short_circuit_or: false,
            pred_evals: 0,
            batch_size: DEFAULT_BATCH_SIZE,
            workers: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            columnar: false,
            pricing: PricingMode::Raw,
            streaming_exact: 0,
            core_charges: Vec::new(),
            error: None,
        }
    }
}

impl ExecCtx {
    /// Fresh context with MySQL-style short-circuit OR evaluation.
    pub fn new() -> Self {
        Self {
            short_circuit_or: true,
            ..Self::default()
        }
    }

    /// Fresh context with exhaustive OR evaluation.
    pub fn exhaustive() -> Self {
        Self {
            short_circuit_or: false,
            ..Self::default()
        }
    }

    /// Same context with a different batch size (builder style).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Same context with a different worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "worker count must be positive");
        self.workers = workers;
        self
    }

    /// Same context with a different morsel size (builder style).
    pub fn with_morsel_rows(mut self, morsel_rows: usize) -> Self {
        assert!(morsel_rows > 0, "morsel size must be positive");
        self.morsel_rows = morsel_rows;
        self
    }

    /// Same context with columnar execution toggled (builder style).
    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Same context with a different pricing mode (builder style).
    pub fn with_pricing(mut self, pricing: PricingMode) -> Self {
        self.pricing = pricing;
        self
    }

    /// An empty ledger carrying this context's evaluation knobs — what
    /// each parallel worker charges into. Workers never re-parallelize
    /// (`workers = 1`): nesting would oversubscribe the machine without
    /// changing any ledger.
    pub fn fork(&self) -> ExecCtx {
        ExecCtx {
            short_circuit_or: self.short_circuit_or,
            batch_size: self.batch_size,
            morsel_rows: self.morsel_rows,
            columnar: self.columnar,
            pricing: self.pricing,
            ..ExecCtx::default()
        }
    }

    /// Merge a worker's ledger into this one, attributing its charges
    /// to core `worker` for [`Self::take_core_phases`]. Addition is
    /// commutative, so the merged totals are identical to serial
    /// execution regardless of how morsels were scheduled.
    pub fn merge_worker(&mut self, worker: usize, other: &ExecCtx) {
        self.cpu.merge(&other.cpu);
        self.mem_stream_bytes += other.mem_stream_bytes;
        self.mem_random_accesses += other.mem_random_accesses;
        self.disk.merge(&other.disk);
        self.backoff_ns += other.backoff_ns;
        self.pred_evals += other.pred_evals;
        // Workers are merged in worker-index order, so under a fixed
        // fault plan the surviving error is deterministic regardless of
        // how morsels were actually scheduled.
        if self.error.is_none() {
            self.error = other.error;
        }
        if self.core_charges.len() <= worker {
            self.core_charges
                .resize_with(worker + 1, CoreCharges::default);
        }
        let c = &mut self.core_charges[worker];
        c.cpu.merge(&other.cpu);
        c.mem_stream_bytes += other.mem_stream_bytes;
        c.mem_random_accesses += other.mem_random_accesses;
        c.disk.merge(&other.disk);
        c.backoff_ns += other.backoff_ns;
    }

    /// Charge `n` operations of `class`.
    #[inline]
    pub fn charge(&mut self, class: OpClass, n: u64) {
        self.cpu.add(class, n);
    }

    /// Charge bytes streamed through the memory system.
    #[inline]
    pub fn charge_mem_bytes(&mut self, bytes: u64) {
        self.mem_stream_bytes += bytes;
    }

    /// Charge latency-bound random memory accesses.
    #[inline]
    pub fn charge_mem_random(&mut self, n: u64) {
        self.mem_random_accesses += n;
    }

    /// Merge disk I/O (drained from the buffer pool) into the ledger.
    pub fn charge_disk(&mut self, io: DiskWork) {
        self.disk.merge(&io);
    }

    /// Charge retry-backoff / stall idle time (nanoseconds).
    #[inline]
    pub fn charge_backoff(&mut self, ns: u64) {
        self.backoff_ns += ns;
    }

    /// Record a typed execution error. The first error wins; operators
    /// call this and end their stream, and the fallible drivers
    /// surface it after the pipeline drains.
    pub fn fail(&mut self, e: ExecError) {
        self.error.get_or_insert(e);
    }

    /// The recorded error, if any.
    pub fn error(&self) -> Option<&ExecError> {
        self.error.as_ref()
    }

    /// Take (and clear) the recorded error.
    pub fn take_error(&mut self) -> Option<ExecError> {
        self.error.take()
    }

    /// Convert the accumulated ledger into a trace phase, leaving the
    /// context empty for reuse.
    pub fn take_phase(&mut self, kind: PhaseKind, label: impl Into<String>) -> Phase {
        let mut phase = match kind {
            PhaseKind::Execute => Phase::execute(label),
            PhaseKind::ClientCompute => Phase::client_compute(label),
            PhaseKind::ClientGap => Phase::client_gap(0),
        };
        phase.cpu = std::mem::take(&mut self.cpu);
        phase.mem_stream_bytes = std::mem::take(&mut self.mem_stream_bytes);
        phase.mem_random_accesses = std::mem::take(&mut self.mem_random_accesses);
        phase.disk = std::mem::take(&mut self.disk);
        phase.backoff_ns = std::mem::take(&mut self.backoff_ns);
        self.pred_evals = 0;
        self.core_charges.clear();
        phase
    }

    /// Split the accumulated ledger into one execute [`Phase`] per core
    /// and drain the context. Core `w`'s phase holds the charges worker
    /// `w` made inside parallel sections; everything charged serially
    /// (the coordinator: parse, blocking-operator merges, result
    /// emission, non-parallelized subtrees) lands on core 0. The phases
    /// sum to exactly what [`Self::take_phase`] would have returned.
    pub fn take_core_phases(&mut self, cores: usize, label: &str) -> Vec<Phase> {
        assert!(cores > 0, "need at least one core");
        let mut remainder_cpu = std::mem::take(&mut self.cpu);
        let mut remainder_stream = std::mem::take(&mut self.mem_stream_bytes);
        let mut remainder_random = std::mem::take(&mut self.mem_random_accesses);
        let mut remainder_disk = std::mem::take(&mut self.disk);
        let mut remainder_backoff = std::mem::take(&mut self.backoff_ns);
        let core_charges = std::mem::take(&mut self.core_charges);
        self.pred_evals = 0;
        assert!(
            core_charges.len() <= cores,
            "recorded charges for {} workers but asked for {cores} core phases",
            core_charges.len(),
        );

        // Peel each worker's share off the total; what remains is the
        // coordinator's serial work. Checked like CpuWork::subtract —
        // a worker share exceeding the total means merge_worker was
        // misused, and wrapping would silently price exabytes of DRAM
        // traffic instead of failing.
        for c in &core_charges {
            remainder_cpu.subtract(&c.cpu);
            remainder_stream = remainder_stream
                .checked_sub(c.mem_stream_bytes)
                .expect("subtracting more stream bytes than were recorded");
            remainder_random = remainder_random
                .checked_sub(c.mem_random_accesses)
                .expect("subtracting more random accesses than were recorded");
            remainder_disk.subtract(&c.disk);
            remainder_backoff = remainder_backoff
                .checked_sub(c.backoff_ns)
                .expect("subtracting more backoff time than was recorded");
        }

        (0..cores)
            .map(|w| {
                let mut p = Phase::execute(format!("{label} [core {w}]"));
                if let Some(c) = core_charges.get(w) {
                    p.cpu = c.cpu.clone();
                    p.mem_stream_bytes = c.mem_stream_bytes;
                    p.mem_random_accesses = c.mem_random_accesses;
                    p.disk = c.disk;
                    p.backoff_ns = c.backoff_ns;
                }
                if w == 0 {
                    p.cpu.merge(&remainder_cpu);
                    p.mem_stream_bytes += remainder_stream;
                    p.mem_random_accesses += remainder_random;
                    p.disk.merge(&remainder_disk);
                    p.backoff_ns += remainder_backoff;
                }
                p
            })
            .collect()
    }

    /// True when nothing has been charged yet.
    pub fn is_empty(&self) -> bool {
        self.cpu.is_empty()
            && self.mem_stream_bytes == 0
            && self.mem_random_accesses == 0
            && self.disk.is_empty()
            && self.backoff_ns == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_and_draining() {
        let mut ctx = ExecCtx::new();
        assert!(ctx.is_empty());
        ctx.charge(OpClass::TupleFetch, 10);
        ctx.charge_mem_bytes(100);
        ctx.charge_mem_random(3);
        ctx.charge_disk(DiskWork {
            sequential_bytes: 8192,
            random_ios: 1,
            random_bytes: 8192,
            ..DiskWork::none()
        });
        assert!(!ctx.is_empty());

        let phase = ctx.take_phase(PhaseKind::Execute, "t");
        assert_eq!(phase.cpu.count(OpClass::TupleFetch), 10);
        assert_eq!(phase.mem_stream_bytes, 100);
        assert_eq!(phase.mem_random_accesses, 3);
        assert_eq!(phase.disk.random_ios, 1);
        assert!(ctx.is_empty(), "take_phase must drain");
    }

    #[test]
    fn default_modes() {
        assert!(ExecCtx::new().short_circuit_or);
        assert!(!ExecCtx::exhaustive().short_circuit_or);
    }

    #[test]
    fn fork_copies_knobs_but_not_charges() {
        let mut ctx = ExecCtx::exhaustive()
            .with_batch_size(7)
            .with_workers(4)
            .with_morsel_rows(99)
            .with_columnar(true)
            .with_pricing(PricingMode::Compressed);
        ctx.charge(OpClass::Arith, 5);
        let f = ctx.fork();
        assert!(f.is_empty());
        assert!(!f.short_circuit_or);
        assert_eq!(f.batch_size, 7);
        assert_eq!(f.morsel_rows, 99);
        assert!(f.columnar, "columnar mode survives forking");
        assert_eq!(
            f.pricing,
            PricingMode::Compressed,
            "pricing survives forking"
        );
        assert_eq!(f.workers, 1, "workers never nest parallel sections");
    }

    #[test]
    fn merge_worker_accumulates_totals() {
        let mut ctx = ExecCtx::new();
        ctx.charge(OpClass::Parse, 2);
        let mut w0 = ctx.fork();
        w0.charge(OpClass::TupleFetch, 10);
        w0.charge_mem_bytes(100);
        let mut w1 = ctx.fork();
        w1.charge(OpClass::TupleFetch, 20);
        w1.charge_mem_random(4);
        w1.pred_evals = 3;
        ctx.merge_worker(0, &w0);
        ctx.merge_worker(1, &w1);
        assert_eq!(ctx.cpu.count(OpClass::TupleFetch), 30);
        assert_eq!(ctx.cpu.count(OpClass::Parse), 2);
        assert_eq!(ctx.mem_stream_bytes, 100);
        assert_eq!(ctx.mem_random_accesses, 4);
        assert_eq!(ctx.pred_evals, 3);
    }

    #[test]
    fn first_error_wins_and_merges_in_worker_order() {
        use crate::error::ExecError;
        use eco_storage::IoError;
        let mut ctx = ExecCtx::new();
        assert!(ctx.error().is_none());
        let mut w0 = ctx.fork();
        let mut w1 = ctx.fork();
        w1.fail(ExecError::Io(IoError::Permanent { table: 1, page: 5 }));
        w1.fail(ExecError::Io(IoError::Permanent { table: 9, page: 9 }));
        ctx.merge_worker(0, &w0);
        ctx.merge_worker(1, &w1);
        w0.fail(ExecError::Io(IoError::Corrupt { table: 2, page: 0 }));
        ctx.merge_worker(0, &w0);
        // w1's first error was already recorded; later merges lose.
        assert_eq!(
            ctx.take_error(),
            Some(ExecError::Io(IoError::Permanent { table: 1, page: 5 }))
        );
        assert!(ctx.error().is_none(), "take_error clears the slot");
    }

    #[test]
    fn backoff_drains_into_phases_and_partitions_per_core() {
        let mut ctx = ExecCtx::new();
        ctx.charge_backoff(100);
        let mut w1 = ctx.fork();
        w1.charge_backoff(250);
        ctx.merge_worker(1, &w1);
        assert_eq!(ctx.backoff_ns, 350);
        let phases = ctx.take_core_phases(2, "t");
        assert_eq!(phases[0].backoff_ns, 100, "serial backoff → core 0");
        assert_eq!(phases[1].backoff_ns, 250);
        assert!(ctx.is_empty(), "backoff drains with the rest");

        let mut ctx = ExecCtx::new();
        ctx.charge_backoff(77);
        let p = ctx.take_phase(PhaseKind::Execute, "t");
        assert_eq!(p.backoff_ns, 77);
        assert!(ctx.is_empty());
    }

    #[test]
    fn core_phases_partition_the_total_exactly() {
        let mut ctx = ExecCtx::new();
        ctx.charge(OpClass::Parse, 7); // coordinator work → core 0
        let mut w0 = ctx.fork();
        w0.charge(OpClass::TupleFetch, 10);
        let mut w1 = ctx.fork();
        w1.charge(OpClass::TupleFetch, 20);
        w1.charge_mem_bytes(64);
        ctx.merge_worker(0, &w0);
        ctx.merge_worker(1, &w1);

        let mut total = ctx.clone();
        let total_phase = total.take_phase(PhaseKind::Execute, "t");

        let phases = ctx.take_core_phases(3, "t");
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].cpu.count(OpClass::Parse), 7);
        assert_eq!(phases[0].cpu.count(OpClass::TupleFetch), 10);
        assert_eq!(phases[1].cpu.count(OpClass::TupleFetch), 20);
        assert_eq!(phases[1].mem_stream_bytes, 64);
        assert!(phases[2].cpu.is_empty(), "unused core is idle");
        assert!(ctx.is_empty(), "take_core_phases must drain");

        let mut sum = CpuWork::new();
        for p in &phases {
            sum.merge(&p.cpu);
        }
        assert_eq!(sum, total_phase.cpu, "core phases partition the total");
    }
}
