//! The execution context: the work ledger every operator charges into.

use eco_simhw::trace::{CpuWork, DiskWork, OpClass, Phase, PhaseKind};

/// Default number of tuples a batch-mode operator call produces (or, for
/// filters, consumes). 1024 keeps a batch of lineitem-width tuples well
/// inside L2 while amortizing per-call dispatch to noise.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Per-execution accounting state, threaded through every operator call.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    /// CPU operations performed so far.
    pub cpu: CpuWork,
    /// Bytes streamed through memory (scans, materializations, copies).
    pub mem_stream_bytes: u64,
    /// Latency-bound random memory accesses (hash probes into tables
    /// that exceed cache).
    pub mem_random_accesses: u64,
    /// Disk I/O drained from the buffer pool.
    pub disk: DiskWork,
    /// Whether OR-lists short-circuit on the first true arm. MySQL-style
    /// evaluation short-circuits; the `ablation_qed_shortcircuit` bench
    /// flips this to study its effect on QED.
    pub short_circuit_or: bool,
    /// Number of predicate-term evaluations (for introspection/tests).
    pub pred_evals: u64,
    /// Tuples per `next_batch` call. Execution *semantics and the
    /// energy ledger are independent of this value* (it only changes
    /// how work is chunked, never how much work is charged); it is a
    /// pure throughput knob.
    pub batch_size: usize,
}

impl Default for ExecCtx {
    fn default() -> Self {
        Self {
            cpu: CpuWork::default(),
            mem_stream_bytes: 0,
            mem_random_accesses: 0,
            disk: DiskWork::default(),
            short_circuit_or: false,
            pred_evals: 0,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }
}

impl ExecCtx {
    /// Fresh context with MySQL-style short-circuit OR evaluation.
    pub fn new() -> Self {
        Self {
            short_circuit_or: true,
            ..Self::default()
        }
    }

    /// Fresh context with exhaustive OR evaluation.
    pub fn exhaustive() -> Self {
        Self {
            short_circuit_or: false,
            ..Self::default()
        }
    }

    /// Same context with a different batch size (builder style).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Charge `n` operations of `class`.
    #[inline]
    pub fn charge(&mut self, class: OpClass, n: u64) {
        self.cpu.add(class, n);
    }

    /// Charge bytes streamed through the memory system.
    #[inline]
    pub fn charge_mem_bytes(&mut self, bytes: u64) {
        self.mem_stream_bytes += bytes;
    }

    /// Charge latency-bound random memory accesses.
    #[inline]
    pub fn charge_mem_random(&mut self, n: u64) {
        self.mem_random_accesses += n;
    }

    /// Merge disk I/O (drained from the buffer pool) into the ledger.
    pub fn charge_disk(&mut self, io: DiskWork) {
        self.disk.merge(&io);
    }

    /// Convert the accumulated ledger into a trace phase, leaving the
    /// context empty for reuse.
    pub fn take_phase(&mut self, kind: PhaseKind, label: impl Into<String>) -> Phase {
        let mut phase = match kind {
            PhaseKind::Execute => Phase::execute(label),
            PhaseKind::ClientCompute => Phase::client_compute(label),
            PhaseKind::ClientGap => Phase::client_gap(0),
        };
        phase.cpu = std::mem::take(&mut self.cpu);
        phase.mem_stream_bytes = std::mem::take(&mut self.mem_stream_bytes);
        phase.mem_random_accesses = std::mem::take(&mut self.mem_random_accesses);
        phase.disk = std::mem::take(&mut self.disk);
        self.pred_evals = 0;
        phase
    }

    /// True when nothing has been charged yet.
    pub fn is_empty(&self) -> bool {
        self.cpu.is_empty()
            && self.mem_stream_bytes == 0
            && self.mem_random_accesses == 0
            && self.disk.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_and_draining() {
        let mut ctx = ExecCtx::new();
        assert!(ctx.is_empty());
        ctx.charge(OpClass::TupleFetch, 10);
        ctx.charge_mem_bytes(100);
        ctx.charge_mem_random(3);
        ctx.charge_disk(DiskWork {
            sequential_bytes: 8192,
            random_ios: 1,
            random_bytes: 8192,
        });
        assert!(!ctx.is_empty());

        let phase = ctx.take_phase(PhaseKind::Execute, "t");
        assert_eq!(phase.cpu.count(OpClass::TupleFetch), 10);
        assert_eq!(phase.mem_stream_bytes, 100);
        assert_eq!(phase.mem_random_accesses, 3);
        assert_eq!(phase.disk.random_ios, 1);
        assert!(ctx.is_empty(), "take_phase must drain");
    }

    #[test]
    fn default_modes() {
        assert!(ExecCtx::new().short_circuit_or);
        assert!(!ExecCtx::exhaustive().short_circuit_or);
    }
}
