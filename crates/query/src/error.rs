//! Typed execution errors.
//!
//! Operators do not return `Result` — the pull-based iterator interface
//! stays infallible — instead a failing operator records the first
//! error in its [`crate::context::ExecCtx`] and ends its stream. The
//! fallible drivers (`try_execute*` in [`crate::exec`]) check the slot
//! after the pipeline drains and surface it as an `Err`, so a disk
//! fault fails one query with a typed error instead of panicking the
//! process.

use eco_storage::IoError;

/// An error that ended query execution early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// A page read failed permanently (see [`IoError`]): the retry
    /// budget was exhausted on an injected permanent fault or on
    /// genuine page corruption.
    Io(IoError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Io(e) => write!(f, "query aborted: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Io(e) => Some(e),
        }
    }
}

impl From<IoError> for ExecError {
    fn from(e: IoError) -> Self {
        ExecError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ExecError::from(IoError::Permanent { table: 3, page: 9 });
        assert!(e.to_string().contains("table 3 page 9"));
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(e, ExecError::Io(IoError::Permanent { table: 3, page: 9 }));
    }
}
