//! Cardinality estimation and the energy/time cost model — the
//! "energy-aware optimizer" building block of the paper's vision
//! (§1: the DBMS "must be aware of system hardware capabilities …
//! and take that into account during query optimization").
//!
//! Estimates mirror the executor's charging rules over *estimated*
//! cardinalities, producing a synthetic [`WorkTrace`] the machine model
//! can price. The same machinery therefore answers both "how long will
//! this take?" and "how many joules will this cost?" under any PVC
//! setting — without executing.

use eco_simhw::machine::{Machine, MachineConfig, Measurement};
use eco_simhw::trace::{OpClass, Phase, WorkTrace};
use eco_storage::Catalog;
use eco_tpch::Q5Params;

/// An estimated work profile (mirrors the executor's ledger).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkEstimate {
    /// Estimated result rows.
    pub out_rows: f64,
    /// The estimated phase (CPU ops, memory, disk).
    pub phase: Phase,
}

impl WorkEstimate {
    fn new(label: &str) -> Self {
        Self {
            out_rows: 0.0,
            phase: Phase::execute(label),
        }
    }

    /// Convert into a single-phase trace.
    pub fn into_trace(self) -> WorkTrace {
        let mut t = WorkTrace::new();
        t.push(self.phase);
        t
    }

    /// Price this estimate on a machine under a configuration.
    pub fn measure(&self, machine: &Machine, config: &MachineConfig) -> Measurement {
        machine.measure(&self.clone().into_trace(), config)
    }

    fn charge(&mut self, class: OpClass, n: f64) {
        self.phase.cpu.add(class, n.max(0.0).round() as u64);
    }

    fn charge_mem(&mut self, bytes: f64) {
        self.phase.mem_stream_bytes += bytes.max(0.0).round() as u64;
    }

    /// Charge `n` estimated cold index-page reads (ledger schema v4:
    /// priced like random I/O, ledgered as index I/O).
    fn charge_index_ios(&mut self, n: f64) {
        let n = n.max(0.0).round() as u64;
        self.phase.disk.index_ios += n;
        self.phase.disk.index_bytes += n * eco_storage::page::PAGE_SIZE as u64;
    }
}

/// Selectivity of a one-year `o_orderdate` window (orders span the
/// 7-year TPC-H window minus 151 days).
pub fn order_year_selectivity() -> f64 {
    365.25 / (7.0 * 365.25 - 151.0)
}

/// Estimate the merged (or single, `k = 1`) QED selection over
/// `lineitem`: one scan, `k` equality predicates per tuple (with
/// optional short-circuit), tagged emission of matching rows.
pub fn estimate_selection_batch(catalog: &Catalog, k: usize, short_circuit: bool) -> WorkEstimate {
    assert!(k >= 1);
    let li = catalog.expect("lineitem");
    let rows = li.len() as f64;
    let width = li.avg_tuple_bytes() as f64;
    let sel_each = 1.0 / 50.0; // uniform l_quantity over 50 values
    let match_frac = (k as f64 * sel_each).min(1.0);

    let mut e = WorkEstimate::new(&format!("est:selection×{k}"));
    e.charge(OpClass::TupleFetch, rows);
    e.charge_mem(rows * width);

    // Predicate evaluations per tuple: all k when nothing matches (or
    // when exhaustive); expected (k+1)/2 at the matching tuple.
    let evals = if short_circuit {
        let miss = 1.0 - match_frac;
        rows * (miss * k as f64 + match_frac * (k as f64 + 1.0) / 2.0)
    } else {
        rows * k as f64
    };
    e.charge(OpClass::PredEval, evals);

    let out = rows * match_frac;
    e.out_rows = out;
    e.charge(OpClass::ResultEmit, out);
    e.charge_mem(out * width);
    e
}

/// Estimate a cold sequential-scan selection keeping `selectivity` of
/// `table`: every tuple fetched and tested once (mirroring a
/// `Filter`-over-`SeqScan` plan), streaming every page off disk when
/// the table is paged. The scan side of the scan-vs-probe crossover;
/// [`estimate_index_selection`] is the probe side.
pub fn estimate_scan_selection(catalog: &Catalog, table: &str, selectivity: f64) -> WorkEstimate {
    let t = catalog.expect(table);
    let rows = t.len() as f64;
    let width = t.avg_tuple_bytes() as f64;
    let sel = selectivity.clamp(0.0, 1.0);

    let mut e = WorkEstimate::new(&format!("est:scan:{table}"));
    e.charge(OpClass::TupleFetch, rows);
    e.charge_mem(rows * width);
    e.charge(OpClass::PredEval, rows);
    if let eco_storage::TableData::Disk(d) = &t.data {
        e.phase.disk.sequential_bytes += d.num_pages() as u64 * eco_storage::page::PAGE_SIZE as u64;
    }
    let out = rows * sel;
    e.out_rows = out;
    e.charge(OpClass::ResultEmit, out);
    e.charge_mem(out * width);
    e
}

/// Estimate a cold B-tree index selection keeping `selectivity` of
/// `table` (ledger schema v4): tree descent + leaf walk node searches,
/// index-page reads, and base-page fetches for the matching rows — the
/// optimizer-side mirror of what an [`crate::ops::IxScan`] charges.
/// Compare against [`estimate_selection_batch`]-style scan estimates to
/// predict the scan-vs-probe energy crossover without executing.
pub fn estimate_index_selection(
    catalog: &Catalog,
    index: &eco_storage::IndexEntry,
    selectivity: f64,
) -> WorkEstimate {
    use eco_storage::btree::BTREE_FANOUT;
    let t = catalog.expect(&index.table);
    let rows = t.len() as f64;
    let width = t.avg_tuple_bytes() as f64;
    let sel = selectivity.clamp(0.0, 1.0);
    let matches = rows * sel;
    let height = index.index.height() as f64;

    let mut e = WorkEstimate::new(&format!("est:ixscan:{}", index.name));
    // Descent: one binary search per level (~log2(fanout) steps each);
    // leaf walk: one comparison per entry examined.
    e.charge(
        OpClass::NodeSearch,
        height * (BTREE_FANOUT as f64).log2() + matches + 1.0,
    );
    // Index pages: the descent path plus the extra leaves a wide range
    // walks through.
    e.charge_index_ios(height + matches / BTREE_FANOUT as f64);
    // Base pages (cold): matching row ids are sorted, so each distinct
    // page is fetched once — Cardenas' estimate of distinct pages hit
    // by `matches` uniformly-scattered rows.
    let num_pages = match &t.data {
        eco_storage::TableData::Disk(d) => d.num_pages() as f64,
        eco_storage::TableData::Memory(_) => 0.0,
    };
    if num_pages > 0.0 {
        let rows_per_page = rows / num_pages;
        let distinct = num_pages * (1.0 - (1.0 - sel).powf(rows_per_page));
        e.charge_index_ios(distinct);
    }
    // Per produced tuple: the SeqScan-identical fetch charges.
    e.charge(OpClass::TupleFetch, matches);
    e.charge_mem(matches * width);
    e.out_rows = matches;
    e
}

/// Estimate TPC-H Q5 under the paper's workload parameters.
pub fn estimate_q5(catalog: &Catalog, _params: &Q5Params) -> WorkEstimate {
    let rows = |name: &str| catalog.expect(name).len() as f64;
    let width = |name: &str| catalog.expect(name).avg_tuple_bytes() as f64;

    let mut e = WorkEstimate::new("est:q5");
    // Scans: region, nation, customer, orders, lineitem, supplier.
    for t in [
        "region", "nation", "customer", "orders", "lineitem", "supplier",
    ] {
        e.charge(OpClass::TupleFetch, rows(t));
        e.charge_mem(rows(t) * width(t));
    }
    // Filters.
    e.charge(OpClass::PredEval, rows("region")); // r_name
    e.charge(OpClass::PredEval, 2.0 * rows("orders")); // date range

    // Join cardinalities (FK containment + uniform regions).
    let nations_in_region = rows("nation") / 5.0;
    let cust_in_region = rows("customer") / 5.0;
    let orders_window = rows("orders") * order_year_selectivity();
    let orders_joined = orders_window / 5.0; // customer in region
    let lines_per_order = rows("lineitem") / rows("orders");
    let lineitems_joined = orders_joined * lines_per_order;
    // Supplier nation matches customer nation with probability 1/25.
    let q5_out_lines = lineitems_joined / 25.0;

    // Hash builds: region⋈nation (tiny), customer (1/5), orders
    // (joined), lineitem probe, supplier build.
    e.charge(
        OpClass::HashBuild,
        1.0 + nations_in_region + rows("supplier"),
    );
    e.charge(OpClass::HashProbe, rows("nation") + rows("customer"));
    e.charge(OpClass::HashBuild, cust_in_region + orders_joined);
    e.charge(OpClass::HashProbe, orders_window + rows("lineitem"));
    e.phase.mem_random_accesses += (rows("customer") + rows("lineitem")) as u64;
    // Probe the supplier table with every joined lineitem.
    e.charge(OpClass::HashProbe, lineitems_joined);

    // Aggregate + revenue arithmetic (3 ops per row) + emit ≤ 5 nations.
    e.charge(OpClass::HashProbe, q5_out_lines);
    e.charge(OpClass::AggUpdate, q5_out_lines);
    e.charge(OpClass::Arith, 3.0 * q5_out_lines);
    e.out_rows = 5.0_f64.min(q5_out_lines);
    e.charge(OpClass::ResultEmit, e.out_rows);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecCtx;
    use crate::mqo::MergedSelection;
    use eco_storage::{load_tpch, EngineKind};
    use eco_tpch::{qed_workload, TpchGenerator};

    fn setup() -> Catalog {
        let db = TpchGenerator::new(0.01).generate();
        load_tpch(&db, EngineKind::Memory, 0)
    }

    #[test]
    fn selection_estimate_tracks_actual_within_25pct() {
        // The estimator must agree with real execution closely enough
        // to drive QED batching decisions.
        let cat = setup();
        for k in [1usize, 10, 35, 50] {
            let est = estimate_selection_batch(&cat, k, true);
            let mut merged = MergedSelection::new(&cat, &qed_workload(k));
            let mut ctx = ExecCtx::new();
            let rows = merged.run(&mut ctx);
            let actual_evals = ctx.pred_evals as f64;
            let est_evals = est.phase.cpu.count(OpClass::PredEval) as f64;
            let rel = (est_evals - actual_evals).abs() / actual_evals;
            assert!(
                rel < 0.25,
                "k={k}: est {est_evals} vs actual {actual_evals}"
            );
            let rel_rows = (est.out_rows - rows.len() as f64).abs() / (rows.len() as f64);
            assert!(
                rel_rows < 0.25,
                "k={k}: rows est {} vs {}",
                est.out_rows,
                rows.len()
            );
        }
    }

    #[test]
    fn estimates_price_on_machine() {
        let cat = setup();
        let est = estimate_selection_batch(&cat, 35, true);
        let machine = Machine::paper_sut();
        let m = est.measure(&machine, &MachineConfig::stock());
        assert!(m.elapsed_s > 0.0 && m.cpu_joules > 0.0);
    }

    #[test]
    fn batch_estimate_beats_sequential_estimate_per_query() {
        // The estimator must predict QED's energy advantage: one k-way
        // scan costs less than k single scans.
        let cat = setup();
        let machine = Machine::paper_sut();
        let cfg = MachineConfig::stock();
        let k = 40;
        let batch = estimate_selection_batch(&cat, k, true).measure(&machine, &cfg);
        let single = estimate_selection_batch(&cat, 1, true).measure(&machine, &cfg);
        assert!(
            batch.cpu_joules < k as f64 * single.cpu_joules,
            "batch {} !< {}",
            batch.cpu_joules,
            k as f64 * single.cpu_joules
        );
    }

    #[test]
    fn q5_estimate_is_positive_and_prices() {
        let cat = setup();
        let est = estimate_q5(&cat, &Q5Params::new("ASIA", 1994));
        assert!(est.phase.cpu.total_ops() > 0);
        let m = est.measure(&Machine::paper_sut(), &MachineConfig::stock());
        assert!(m.elapsed_s > 0.0);
    }

    #[test]
    fn index_estimate_tracks_actual_probe() {
        use crate::exec::execute;
        use crate::plans;
        let db = TpchGenerator::new(0.01).generate();
        let cat = load_tpch(&db, EngineKind::Disk, 1 << 16);
        let entry = cat
            .create_index("ix_li_qty", "lineitem", "l_quantity")
            .expect("index");
        // Quantity uniform over 1..=50: BETWEEN 1 AND 5 keeps ~10 %.
        let est = estimate_index_selection(&cat, &entry, 5.0 / 50.0);
        cat.pool().flush();
        let mut plan = plans::quantity_range_plan_indexed(&cat, 1, 5).expect("indexed");
        let mut ctx = ExecCtx::new();
        let rows = execute(plan.as_mut(), &mut ctx);
        let rel_rows = (est.out_rows - rows.len() as f64).abs() / rows.len() as f64;
        assert!(
            rel_rows < 0.25,
            "rows: est {} vs {}",
            est.out_rows,
            rows.len()
        );
        let actual_ios = ctx.disk.index_ios as f64;
        let est_ios = est.phase.disk.index_ios as f64;
        assert!(actual_ios > 0.0);
        let rel_ios = (est_ios - actual_ios).abs() / actual_ios;
        assert!(
            rel_ios < 0.5,
            "index I/O: est {est_ios} vs actual {actual_ios}"
        );
        // The estimate prices (v4 index I/O shows up as joules).
        let m = est.measure(&Machine::paper_sut(), &MachineConfig::stock());
        assert!(m.elapsed_s > 0.0);
    }

    #[test]
    fn exhaustive_estimate_exceeds_short_circuit() {
        let cat = setup();
        let sc = estimate_selection_batch(&cat, 30, true);
        let ex = estimate_selection_batch(&cat, 30, false);
        assert!(ex.phase.cpu.count(OpClass::PredEval) > sc.phase.cpu.count(OpClass::PredEval));
    }
}
