//! Expressions: an interpreted evaluator over tuples, with work
//! metering.
//!
//! Evaluation charges one [`OpClass::PredEval`] per comparison and one
//! [`OpClass::Arith`] per arithmetic node — modelling the interpreted,
//! `Item`-tree-style evaluators of 2008-era engines, whose per-term
//! cost is what makes the QED disjunction scan slower (and the
//! energy/response-time trade of paper §4 non-trivial).

use eco_simhw::trace::OpClass;
use eco_storage::{Tuple, Value};

use crate::context::ExecCtx;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering result.
    fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// Integer arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division; panics on zero divisor)
    Div,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by position in the input tuple.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Comparison of two sub-expressions of the same type.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction (short-circuits on the first false arm).
    And(Vec<Expr>),
    /// Disjunction (short-circuit behaviour set by the context — this
    /// is the QED merge point).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Integer arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// String literal.
    pub fn str(s: &str) -> Expr {
        Expr::Lit(Value::str(s))
    }

    /// Date literal (day offset).
    pub fn date(d: i32) -> Expr {
        Expr::Lit(Value::Date(d))
    }

    /// `col = lit` convenience.
    pub fn col_eq_int(i: usize, v: i64) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(Expr::col(i)), Box::new(Expr::int(v)))
    }

    /// `lhs cmp rhs` convenience.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(op, Box::new(lhs), Box::new(rhs))
    }

    /// `lhs op rhs` arithmetic convenience.
    pub fn arith(op: ArithOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Arith(op, Box::new(lhs), Box::new(rhs))
    }

    /// Evaluate against a tuple, charging work into `ctx`.
    pub fn eval(&self, tuple: &Tuple, ctx: &mut ExecCtx) -> Value {
        match self {
            Expr::Col(i) => tuple
                .get(*i)
                .unwrap_or_else(|| panic!("column {i} out of range {}", tuple.len()))
                .clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, l, r) => {
                let lv = l.eval(tuple, ctx);
                let rv = r.eval(tuple, ctx);
                ctx.charge(OpClass::PredEval, 1);
                ctx.pred_evals += 1;
                let ord = lv
                    .partial_cmp_typed(&rv)
                    .unwrap_or_else(|| panic!("type mismatch comparing {lv:?} and {rv:?}"));
                Value::Bool(op.test(ord))
            }
            Expr::And(arms) => {
                for arm in arms {
                    if !expect_bool(arm.eval(tuple, ctx)) {
                        return Value::Bool(false);
                    }
                }
                Value::Bool(true)
            }
            Expr::Or(arms) => {
                if ctx.short_circuit_or {
                    for arm in arms {
                        if expect_bool(arm.eval(tuple, ctx)) {
                            return Value::Bool(true);
                        }
                    }
                    Value::Bool(false)
                } else {
                    let mut any = false;
                    for arm in arms {
                        any |= expect_bool(arm.eval(tuple, ctx));
                    }
                    Value::Bool(any)
                }
            }
            Expr::Not(e) => Value::Bool(!expect_bool(e.eval(tuple, ctx))),
            Expr::Arith(op, l, r) => {
                let lv = l.eval(tuple, ctx).as_int().expect("arith on Int");
                let rv = r.eval(tuple, ctx).as_int().expect("arith on Int");
                ctx.charge(OpClass::Arith, 1);
                Value::Int(match op {
                    ArithOp::Add => lv + rv,
                    ArithOp::Sub => lv - rv,
                    ArithOp::Mul => lv * rv,
                    ArithOp::Div => lv / rv,
                })
            }
        }
    }

    /// Evaluate as a boolean predicate.
    pub fn eval_bool(&self, tuple: &Tuple, ctx: &mut ExecCtx) -> bool {
        expect_bool(self.eval(tuple, ctx))
    }
}

fn expect_bool(v: Value) -> bool {
    v.as_bool()
        .unwrap_or_else(|| panic!("expected boolean, got {v:?}"))
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of an integer expression.
    Sum,
    /// Row count (argument ignored).
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Integer average (sum / count, truncating).
    Avg,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        vec![Value::Int(10), Value::str("asia"), Value::Date(100)]
    }

    #[test]
    fn comparisons() {
        let mut ctx = ExecCtx::new();
        let e = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(5));
        assert!(e.eval_bool(&t(), &mut ctx));
        let e = Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::str("asia"));
        assert!(e.eval_bool(&t(), &mut ctx));
        let e = Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::date(99));
        assert!(!e.eval_bool(&t(), &mut ctx));
        assert_eq!(ctx.pred_evals, 3);
    }

    #[test]
    fn arithmetic() {
        let mut ctx = ExecCtx::new();
        // 10 * (100 - 7) / 100 = 9
        let e = Expr::arith(
            ArithOp::Div,
            Expr::arith(
                ArithOp::Mul,
                Expr::col(0),
                Expr::arith(ArithOp::Sub, Expr::int(100), Expr::int(7)),
            ),
            Expr::int(100),
        );
        assert_eq!(e.eval(&t(), &mut ctx), Value::Int(9));
        assert_eq!(ctx.cpu.count(OpClass::Arith), 3);
    }

    #[test]
    fn and_short_circuits() {
        let mut ctx = ExecCtx::new();
        let e = Expr::And(vec![
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(5)), // false
            Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::str("asia")),
        ]);
        assert!(!e.eval_bool(&t(), &mut ctx));
        assert_eq!(ctx.pred_evals, 1, "second arm must not evaluate");
    }

    #[test]
    fn or_short_circuit_vs_exhaustive() {
        let arms: Vec<Expr> = (0..10).map(|v| Expr::col_eq_int(0, v)).collect();
        let e = Expr::Or(arms);
        // Tuple value 10 matches nothing: both modes evaluate all 10.
        let mut sc = ExecCtx::new();
        assert!(!e.eval_bool(&t(), &mut sc));
        assert_eq!(sc.pred_evals, 10);
        // Tuple matching arm 3 (0-indexed value 3).
        let tup: Tuple = vec![Value::Int(3)];
        let mut sc = ExecCtx::new();
        assert!(e.eval_bool(&tup, &mut sc));
        assert_eq!(sc.pred_evals, 4, "short-circuit stops at the match");
        let mut ex = ExecCtx::exhaustive();
        assert!(e.eval_bool(&tup, &mut ex));
        assert_eq!(ex.pred_evals, 10, "exhaustive evaluates every arm");
    }

    #[test]
    fn not_negates() {
        let mut ctx = ExecCtx::new();
        let e = Expr::Not(Box::new(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(10))));
        assert!(!e.eval_bool(&t(), &mut ctx));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn cross_type_comparison_panics() {
        let mut ctx = ExecCtx::new();
        Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::str("x")).eval(&t(), &mut ctx);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_column_panics() {
        let mut ctx = ExecCtx::new();
        Expr::col(9).eval(&t(), &mut ctx);
    }
}
