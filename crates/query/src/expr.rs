//! Expressions: an interpreted evaluator over tuples, with work
//! metering.
//!
//! Evaluation charges one [`OpClass::PredEval`] per comparison and one
//! [`OpClass::Arith`] per arithmetic node — modelling the interpreted,
//! `Item`-tree-style evaluators of 2008-era engines, whose per-term
//! cost is what makes the QED disjunction scan slower (and the
//! energy/response-time trade of paper §4 non-trivial).

use std::sync::Arc;

use eco_simhw::trace::OpClass;
use eco_storage::{
    BitPacked, ColumnChunk, ColumnData, DataChunk, EncodedChunk, EncodedColumn, Tuple, Value,
};

use crate::chunk::Rows;
use crate::context::ExecCtx;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped: `a op b` ⇔ `b op.swap() a`.
    fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Apply to an ordering result.
    fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// Integer arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division; panics on zero divisor)
    Div,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by position in the input tuple.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Comparison of two sub-expressions of the same type.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction (short-circuits on the first false arm).
    And(Vec<Expr>),
    /// Disjunction (short-circuit behaviour set by the context — this
    /// is the QED merge point).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Integer arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// String literal.
    pub fn str(s: &str) -> Expr {
        Expr::Lit(Value::str(s))
    }

    /// Date literal (day offset).
    pub fn date(d: i32) -> Expr {
        Expr::Lit(Value::Date(d))
    }

    /// `col = lit` convenience.
    pub fn col_eq_int(i: usize, v: i64) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(Expr::col(i)), Box::new(Expr::int(v)))
    }

    /// `lhs cmp rhs` convenience.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(op, Box::new(lhs), Box::new(rhs))
    }

    /// `lhs op rhs` arithmetic convenience.
    pub fn arith(op: ArithOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Arith(op, Box::new(lhs), Box::new(rhs))
    }

    /// Evaluate against a tuple, charging work into `ctx`.
    pub fn eval(&self, tuple: &Tuple, ctx: &mut ExecCtx) -> Value {
        match self {
            Expr::Col(i) => tuple
                .get(*i)
                .unwrap_or_else(|| panic!("column {i} out of range {}", tuple.len()))
                .clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, l, r) => {
                let lv = l.eval(tuple, ctx);
                let rv = r.eval(tuple, ctx);
                ctx.charge(OpClass::PredEval, 1);
                ctx.pred_evals += 1;
                let ord = lv
                    .partial_cmp_typed(&rv)
                    .unwrap_or_else(|| panic!("type mismatch comparing {lv:?} and {rv:?}"));
                Value::Bool(op.test(ord))
            }
            Expr::And(arms) => {
                for arm in arms {
                    if !expect_bool(arm.eval(tuple, ctx)) {
                        return Value::Bool(false);
                    }
                }
                Value::Bool(true)
            }
            Expr::Or(arms) => {
                if ctx.short_circuit_or {
                    for arm in arms {
                        if expect_bool(arm.eval(tuple, ctx)) {
                            return Value::Bool(true);
                        }
                    }
                    Value::Bool(false)
                } else {
                    let mut any = false;
                    for arm in arms {
                        any |= expect_bool(arm.eval(tuple, ctx));
                    }
                    Value::Bool(any)
                }
            }
            Expr::Not(e) => Value::Bool(!expect_bool(e.eval(tuple, ctx))),
            Expr::Arith(op, l, r) => {
                let lv = l.eval(tuple, ctx).as_int().expect("arith on Int");
                let rv = r.eval(tuple, ctx).as_int().expect("arith on Int");
                ctx.charge(OpClass::Arith, 1);
                Value::Int(match op {
                    ArithOp::Add => lv + rv,
                    ArithOp::Sub => lv - rv,
                    ArithOp::Mul => lv * rv,
                    ArithOp::Div => lv / rv,
                })
            }
        }
    }

    /// Evaluate as a boolean predicate.
    pub fn eval_bool(&self, tuple: &Tuple, ctx: &mut ExecCtx) -> bool {
        expect_bool(self.eval(tuple, ctx))
    }
}

// ---------------------------------------------------------------------------
// Columnar evaluation
// ---------------------------------------------------------------------------
//
// The columnar evaluator runs the same expression tree over typed column
// slices instead of row tuples. Its load-bearing property is *charge
// identity*: for any set of live rows it charges exactly what calling
// [`Expr::eval_bool`] / [`Expr::eval`] per row would charge — one
// `PredEval` per comparison actually evaluated and one `Arith` per
// arithmetic node actually evaluated. Short-circuit semantics are
// reproduced by *selection narrowing*: an `And` arm is evaluated only
// over rows every earlier arm accepted, a short-circuiting `Or` arm only
// over rows no earlier arm matched — the columnar analogue of stopping
// early, with identical evaluation counts.
//
// Validity masks (NULLs) never occur in row execution, so they carry no
// identity obligation; a comparison involving an invalid value charges
// its `PredEval` and yields `false`, like SQL `NULL`.

/// An `Int`-valued operand resolved over a row set. `Slice` indexes by
/// absolute row id, `Own` by live-row ordinal, `Const` by neither.
pub(crate) enum NumSrc<'a> {
    /// A borrowed `Int` column.
    Slice(&'a [i64]),
    /// A computed vector, one value per live row.
    Own(Vec<i64>),
    /// A literal.
    Const(i64),
}

impl NumSrc<'_> {
    #[inline]
    pub(crate) fn get(&self, k: usize, i: usize) -> i64 {
        match self {
            NumSrc::Slice(v) => v[i],
            NumSrc::Own(v) => v[k],
            NumSrc::Const(c) => *c,
        }
    }
}

/// Any typed operand resolved over a row set (comparison inputs).
enum ValSrc<'a> {
    Int(NumSrc<'a>, Option<&'a [bool]>),
    Date(&'a [i32], Option<&'a [bool]>),
    DateConst(i32),
    Char(&'a [char], Option<&'a [bool]>),
    CharConst(char),
    Str(&'a [Arc<str>], Option<&'a [bool]>),
    StrConst(&'a str),
    Bool(Vec<bool>),
    BoolSlice(&'a [bool], Option<&'a [bool]>),
    BoolConst(bool),
}

#[inline]
fn valid_at(mask: Option<&[bool]>, i: usize) -> bool {
    mask.is_none_or(|m| m[i])
}

/// Drop the live rows of `sel` whose ordinal flag is `false`.
fn retain_by_flags(sel: &mut Vec<u32>, flags: &[bool]) {
    debug_assert_eq!(sel.len(), flags.len());
    let mut k = 0;
    sel.retain(|_| {
        let keep = flags[k];
        k += 1;
        keep
    });
}

impl Expr {
    /// Refine a selection vector in place: keep the rows of `sel` this
    /// boolean expression accepts. Charges exactly what evaluating
    /// [`Expr::eval_bool`] against each live row would charge.
    pub fn filter_sel(&self, data: &DataChunk, sel: &mut Vec<u32>, ctx: &mut ExecCtx) {
        if sel.is_empty() {
            return;
        }
        match self {
            Expr::And(arms) => {
                for arm in arms {
                    arm.filter_sel(data, sel, ctx);
                    if sel.is_empty() {
                        return;
                    }
                }
            }
            _ => {
                let flags = self.eval_flags(data, Rows::Sel(sel), ctx);
                retain_by_flags(sel, &flags);
            }
        }
    }

    /// Refine a selection vector directly on the *compressed* column
    /// forms — the ledger-schema-v3 filter path, used only under
    /// `PricingMode::Compressed`. Selects exactly the rows
    /// [`Expr::filter_sel`] would (property-tested), but does the work
    /// — and the charging — on the encoded representation:
    ///
    /// * **dictionary** columns compare the literal once per *distinct*
    ///   value (`PredEval` × dictionary size), then match bit-packed ids
    ///   (`DictLookup` per live row);
    /// * **run-length** columns compare once per run fragment the live
    ///   rows touch (`PredEval` per fragment), accepting or rejecting
    ///   whole runs;
    /// * **bit-packed** columns translate the literal into the packed
    ///   domain once and compare packed words per row (`PredEval` per
    ///   live row — same count as raw, fewer bytes behind it);
    /// * everything else (plain columns, non-`col ⋄ lit` shapes) falls
    ///   back to the raw columnar kernel per conjunct.
    ///
    /// Top-level `And`s narrow conjunct-by-conjunct like the raw path,
    /// so each arm only touches surviving rows.
    pub fn filter_sel_enc(
        &self,
        data: &DataChunk,
        enc: &EncodedChunk,
        sel: &mut Vec<u32>,
        ctx: &mut ExecCtx,
    ) {
        if sel.is_empty() {
            return;
        }
        match self {
            Expr::And(arms) => {
                for arm in arms {
                    arm.filter_sel_enc(data, enc, sel, ctx);
                    if sel.is_empty() {
                        return;
                    }
                }
            }
            Expr::Cmp(op, l, r) => {
                // Normalize to `col ⋄ lit`; anything else takes the raw path.
                let (col, lit, op) = match (&**l, &**r) {
                    (Expr::Col(i), Expr::Lit(v)) => (*i, v, *op),
                    (Expr::Lit(v), Expr::Col(i)) => (*i, v, op.swap()),
                    _ => return self.filter_sel(data, sel, ctx),
                };
                if !cmp_sel_enc(op, enc.column(col), lit, sel, ctx) {
                    self.filter_sel(data, sel, ctx);
                }
            }
            _ => self.filter_sel(data, sel, ctx),
        }
    }

    /// Evaluate a boolean expression over the live rows, returning one
    /// flag per live-row ordinal. Charge-identical to per-row
    /// [`Expr::eval_bool`] (see module notes on selection narrowing).
    pub fn eval_flags(&self, data: &DataChunk, rows: Rows<'_>, ctx: &mut ExecCtx) -> Vec<bool> {
        let n = rows.len();
        match self {
            Expr::Cmp(op, l, r) => cmp_flags(*op, l, r, data, rows, ctx),
            Expr::And(arms) => {
                let mut flags = vec![true; n];
                // Rows still passing: (absolute id, original ordinal).
                let mut alive: Vec<u32> = rows.to_indices();
                let mut alive_ord: Vec<u32> = (0..n as u32).collect();
                for arm in arms {
                    if alive.is_empty() {
                        break;
                    }
                    let arm_flags = arm.eval_flags(data, Rows::Sel(&alive), ctx);
                    let mut write = 0;
                    for k in 0..alive.len() {
                        if arm_flags[k] {
                            alive[write] = alive[k];
                            alive_ord[write] = alive_ord[k];
                            write += 1;
                        } else {
                            flags[alive_ord[k] as usize] = false;
                        }
                    }
                    alive.truncate(write);
                    alive_ord.truncate(write);
                }
                flags
            }
            Expr::Or(arms) => {
                let mut flags = vec![false; n];
                if ctx.short_circuit_or {
                    // Rows not yet matched keep trying later arms.
                    let mut alive: Vec<u32> = rows.to_indices();
                    let mut alive_ord: Vec<u32> = (0..n as u32).collect();
                    for arm in arms {
                        if alive.is_empty() {
                            break;
                        }
                        let arm_flags = arm.eval_flags(data, Rows::Sel(&alive), ctx);
                        let mut write = 0;
                        for k in 0..alive.len() {
                            if arm_flags[k] {
                                flags[alive_ord[k] as usize] = true;
                            } else {
                                alive[write] = alive[k];
                                alive_ord[write] = alive_ord[k];
                                write += 1;
                            }
                        }
                        alive.truncate(write);
                        alive_ord.truncate(write);
                    }
                } else {
                    for arm in arms {
                        let arm_flags = arm.eval_flags(data, rows, ctx);
                        for (f, a) in flags.iter_mut().zip(&arm_flags) {
                            *f |= a;
                        }
                    }
                }
                flags
            }
            Expr::Not(e) => {
                let mut flags = e.eval_flags(data, rows, ctx);
                for f in &mut flags {
                    *f = !*f;
                }
                flags
            }
            Expr::Col(i) => {
                let col = data.column(*i);
                let vals = col
                    .data
                    .as_bools()
                    .unwrap_or_else(|| panic!("expected boolean column {i}"));
                let mask = col.validity.as_deref();
                let mut flags = vec![false; n];
                rows.for_each(|k, i| flags[k] = valid_at(mask, i) && vals[i]);
                flags
            }
            Expr::Lit(v) => {
                let b = v
                    .as_bool()
                    .unwrap_or_else(|| panic!("expected boolean, got {v:?}"));
                vec![b; n]
            }
            Expr::Arith(..) => panic!("expected boolean, got arithmetic expression"),
        }
    }

    /// Resolve an `Int`-valued expression over the live rows, computing
    /// (and charging) any arithmetic nodes. Panics on non-`Int`
    /// expressions, like the scalar evaluator's `expect("arith on Int")`.
    pub(crate) fn eval_num<'a>(
        &'a self,
        data: &'a DataChunk,
        rows: Rows<'_>,
        ctx: &mut ExecCtx,
    ) -> NumSrc<'a> {
        match self {
            Expr::Col(i) => {
                let col = data.column(*i);
                match col.data.as_ints() {
                    Some(v) => NumSrc::Slice(v),
                    None => panic!("arith on Int"),
                }
            }
            Expr::Lit(Value::Int(v)) => NumSrc::Const(*v),
            Expr::Arith(op, l, r) => {
                let lv = l.eval_num(data, rows, ctx);
                let rv = r.eval_num(data, rows, ctx);
                let n = rows.len();
                ctx.charge(OpClass::Arith, n as u64);
                let mut out = Vec::with_capacity(n);
                rows.for_each(|k, i| {
                    let a = lv.get(k, i);
                    let b = rv.get(k, i);
                    out.push(match op {
                        ArithOp::Add => a + b,
                        ArithOp::Sub => a - b,
                        ArithOp::Mul => a * b,
                        ArithOp::Div => a / b,
                    });
                });
                NumSrc::Own(out)
            }
            _ => panic!("arith on Int"),
        }
    }

    /// Materialize this expression's values over the live rows into a
    /// fresh column — the columnar `Project` kernel. Charges exactly
    /// what per-row [`Expr::eval`] would. A column passthrough gathers
    /// through the typed [`ColumnChunk::gather`] loops, *carrying the
    /// validity mask*, so projecting never launders a NULL into a valid
    /// value; computed columns are always fully valid.
    pub fn eval_column(&self, data: &DataChunk, rows: Rows<'_>, ctx: &mut ExecCtx) -> ColumnChunk {
        let n = rows.len();
        match self {
            Expr::Col(i) => data.column(*i).gather(&rows.to_indices()),
            Expr::Lit(v) => {
                let mut out = ColumnData::with_capacity(v.column_type(), n);
                for _ in 0..n {
                    out.push(v);
                }
                ColumnChunk::new(out)
            }
            Expr::Arith(..) => ColumnChunk::new(match self.eval_num(data, rows, ctx) {
                NumSrc::Own(v) => ColumnData::Int(v),
                NumSrc::Slice(v) => {
                    let mut out = Vec::with_capacity(n);
                    rows.for_each(|_, i| out.push(v[i]));
                    ColumnData::Int(out)
                }
                NumSrc::Const(c) => ColumnData::Int(vec![c; n]),
            }),
            _ => ColumnChunk::new(ColumnData::Bool(self.eval_flags(data, rows, ctx))),
        }
    }
}

/// The direct-on-compressed comparison kernel behind
/// [`Expr::filter_sel_enc`]: refine `sel` against `col ⋄ lit` using the
/// column's encoded form. Returns `false` when the encoding (or the
/// literal's type) offers no compressed kernel — the caller then runs
/// the raw columnar kernel instead.
fn cmp_sel_enc(
    op: CmpOp,
    enc: &EncodedColumn,
    lit: &Value,
    sel: &mut Vec<u32>,
    ctx: &mut ExecCtx,
) -> bool {
    match (enc, lit) {
        (EncodedColumn::DictStr { dict, ids }, Value::Str(lit)) => {
            // Compare once per distinct value, then match ids.
            let keep: Vec<bool> = dict
                .iter()
                .map(|d| op.test(d.as_ref().cmp(lit.as_ref())))
                .collect();
            ctx.charge(OpClass::PredEval, dict.len() as u64);
            ctx.pred_evals += dict.len() as u64;
            ctx.charge(OpClass::DictLookup, sel.len() as u64);
            sel.retain(|&i| keep[ids.get(i as usize) as usize]);
            true
        }
        (EncodedColumn::DictChar { dict, ids }, Value::Char(lit)) => {
            let keep: Vec<bool> = dict.iter().map(|d| op.test(d.cmp(lit))).collect();
            ctx.charge(OpClass::PredEval, dict.len() as u64);
            ctx.pred_evals += dict.len() as u64;
            ctx.charge(OpClass::DictLookup, sel.len() as u64);
            sel.retain(|&i| keep[ids.get(i as usize) as usize]);
            true
        }
        (EncodedColumn::RleInt { values, ends }, Value::Int(lit)) => {
            rle_cmp_sel(op, values, ends, lit, sel, ctx);
            true
        }
        (EncodedColumn::RleDate { values, ends }, Value::Date(lit)) => {
            rle_cmp_sel(op, values, ends, lit, sel, ctx);
            true
        }
        (EncodedColumn::PackInt { min, packed }, Value::Int(lit)) => {
            // Translate the literal into the packed (offset-from-min)
            // domain once; rows compare packed words, never decoding.
            let delta = i128::from(*lit) - i128::from(*min);
            pack_cmp_sel(op, packed, delta, sel, ctx);
            true
        }
        (EncodedColumn::PackDate { min, packed }, Value::Date(lit)) => {
            let delta = i128::from(*lit) - i128::from(*min);
            pack_cmp_sel(op, packed, delta, sel, ctx);
            true
        }
        _ => false,
    }
}

/// Run-at-a-time comparison: one `PredEval` per run *fragment* the live
/// rows touch; every row of an accepted fragment survives with no
/// per-row work. Relies on `sel` being ascending (a [`crate::chunk::Chunk`]
/// invariant), so runs advance monotonically.
fn rle_cmp_sel<T: Ord + Copy>(
    op: CmpOp,
    values: &[T],
    ends: &[u32],
    lit: &T,
    sel: &mut Vec<u32>,
    ctx: &mut ExecCtx,
) {
    let mut run = 0usize;
    let mut have = false;
    let mut verdict = false;
    let mut touched = 0u64;
    sel.retain(|&i| {
        while ends[run] <= i {
            run += 1;
            have = false;
        }
        if !have {
            verdict = op.test(values[run].cmp(lit));
            have = true;
            touched += 1;
        }
        verdict
    });
    ctx.charge(OpClass::PredEval, touched);
    ctx.pred_evals += touched;
}

/// Packed-domain comparison: `value ⋄ lit` ⇔ `packed ⋄ (lit - min)`,
/// with out-of-range literals resolving without touching the words.
/// One `PredEval` per live row — same count as the raw kernel, but the
/// bytes behind it are the packed words.
fn pack_cmp_sel(op: CmpOp, packed: &BitPacked, delta: i128, sel: &mut Vec<u32>, ctx: &mut ExecCtx) {
    ctx.charge(OpClass::PredEval, sel.len() as u64);
    ctx.pred_evals += sel.len() as u64;
    if delta < 0 {
        // Every stored value is >= min > lit.
        let keep = matches!(op, CmpOp::Ne | CmpOp::Gt | CmpOp::Ge);
        if !keep {
            sel.clear();
        }
        return;
    }
    if delta > u64::MAX as i128 {
        // lit is above every representable offset: value < lit always.
        let keep = matches!(op, CmpOp::Ne | CmpOp::Lt | CmpOp::Le);
        if !keep {
            sel.clear();
        }
        return;
    }
    let d = delta as u64;
    sel.retain(|&i| op.test(packed.get(i as usize).cmp(&d)));
}

/// The typed comparison kernel: resolve both operands, charge one
/// `PredEval` per live row, and compare slice-against-slice /
/// slice-against-constant without materializing values.
fn cmp_flags(
    op: CmpOp,
    lhs: &Expr,
    rhs: &Expr,
    data: &DataChunk,
    rows: Rows<'_>,
    ctx: &mut ExecCtx,
) -> Vec<bool> {
    let l = resolve(lhs, data, rows, ctx);
    let r = resolve(rhs, data, rows, ctx);
    let n = rows.len();
    ctx.charge(OpClass::PredEval, n as u64);
    ctx.pred_evals += n as u64;
    let mut flags = vec![false; n];
    match (&l, &r) {
        (ValSrc::Int(a, va), ValSrc::Int(b, vb)) => rows.for_each(|k, i| {
            flags[k] =
                valid_at(*va, i) && valid_at(*vb, i) && op.test(a.get(k, i).cmp(&b.get(k, i)));
        }),
        (ValSrc::Date(a, va), ValSrc::Date(b, vb)) => rows.for_each(|k, i| {
            flags[k] = valid_at(*va, i) && valid_at(*vb, i) && op.test(a[i].cmp(&b[i]));
        }),
        (ValSrc::Date(a, va), ValSrc::DateConst(c)) => rows.for_each(|k, i| {
            flags[k] = valid_at(*va, i) && op.test(a[i].cmp(c));
        }),
        (ValSrc::DateConst(c), ValSrc::Date(b, vb)) => rows.for_each(|k, i| {
            flags[k] = valid_at(*vb, i) && op.test(c.cmp(&b[i]));
        }),
        (ValSrc::Char(a, va), ValSrc::Char(b, vb)) => rows.for_each(|k, i| {
            flags[k] = valid_at(*va, i) && valid_at(*vb, i) && op.test(a[i].cmp(&b[i]));
        }),
        (ValSrc::Char(a, va), ValSrc::CharConst(c)) => rows.for_each(|k, i| {
            flags[k] = valid_at(*va, i) && op.test(a[i].cmp(c));
        }),
        (ValSrc::CharConst(c), ValSrc::Char(b, vb)) => rows.for_each(|k, i| {
            flags[k] = valid_at(*vb, i) && op.test(c.cmp(&b[i]));
        }),
        (ValSrc::Str(a, va), ValSrc::Str(b, vb)) => rows.for_each(|k, i| {
            flags[k] =
                valid_at(*va, i) && valid_at(*vb, i) && op.test(a[i].as_ref().cmp(b[i].as_ref()));
        }),
        (ValSrc::Str(a, va), ValSrc::StrConst(c)) => rows.for_each(|k, i| {
            flags[k] = valid_at(*va, i) && op.test(a[i].as_ref().cmp(c));
        }),
        (ValSrc::StrConst(c), ValSrc::Str(b, vb)) => rows.for_each(|k, i| {
            flags[k] = valid_at(*vb, i) && op.test((*c).cmp(b[i].as_ref()));
        }),
        (a, b) => {
            // Boolean/mixed-shape comparisons: rare, resolved generically.
            rows.for_each(|k, i| {
                let (la, lb) = (bool_like(a, k, i), bool_like(b, k, i));
                match (la, lb) {
                    (Some((av, aval)), Some((bv, bval))) => {
                        flags[k] = aval && bval && op.test(av.cmp(&bv));
                    }
                    _ => panic!("type mismatch in columnar comparison"),
                }
            });
        }
    }
    flags
}

/// Boolean-shaped access for the generic comparison arm.
fn bool_like(v: &ValSrc<'_>, k: usize, i: usize) -> Option<(bool, bool)> {
    match v {
        ValSrc::Bool(f) => Some((f[k], true)),
        ValSrc::BoolSlice(s, mask) => Some((s[i], valid_at(*mask, i))),
        ValSrc::BoolConst(c) => Some((*c, true)),
        _ => None,
    }
}

/// Resolve a comparison operand into a typed source over the live rows.
fn resolve<'a>(e: &'a Expr, data: &'a DataChunk, rows: Rows<'_>, ctx: &mut ExecCtx) -> ValSrc<'a> {
    match e {
        Expr::Col(i) => {
            let col = data.column(*i);
            let mask = col.validity.as_deref();
            match &col.data {
                ColumnData::Int(v) => ValSrc::Int(NumSrc::Slice(v), mask),
                ColumnData::Date(v) => ValSrc::Date(v, mask),
                ColumnData::Char(v) => ValSrc::Char(v, mask),
                ColumnData::Str(v) => ValSrc::Str(v, mask),
                ColumnData::Bool(v) => ValSrc::BoolSlice(v, mask),
            }
        }
        Expr::Lit(Value::Int(v)) => ValSrc::Int(NumSrc::Const(*v), None),
        Expr::Lit(Value::Date(v)) => ValSrc::DateConst(*v),
        Expr::Lit(Value::Char(v)) => ValSrc::CharConst(*v),
        Expr::Lit(Value::Str(v)) => ValSrc::StrConst(v),
        Expr::Lit(Value::Bool(v)) => ValSrc::BoolConst(*v),
        Expr::Arith(..) => ValSrc::Int(e.eval_num(data, rows, ctx), None),
        _ => ValSrc::Bool(e.eval_flags(data, rows, ctx)),
    }
}

fn expect_bool(v: Value) -> bool {
    v.as_bool()
        .unwrap_or_else(|| panic!("expected boolean, got {v:?}"))
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of an integer expression.
    Sum,
    /// Row count (argument ignored).
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Integer average (sum / count, truncating).
    Avg,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        vec![Value::Int(10), Value::str("asia"), Value::Date(100)]
    }

    #[test]
    fn comparisons() {
        let mut ctx = ExecCtx::new();
        let e = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(5));
        assert!(e.eval_bool(&t(), &mut ctx));
        let e = Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::str("asia"));
        assert!(e.eval_bool(&t(), &mut ctx));
        let e = Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::date(99));
        assert!(!e.eval_bool(&t(), &mut ctx));
        assert_eq!(ctx.pred_evals, 3);
    }

    #[test]
    fn arithmetic() {
        let mut ctx = ExecCtx::new();
        // 10 * (100 - 7) / 100 = 9
        let e = Expr::arith(
            ArithOp::Div,
            Expr::arith(
                ArithOp::Mul,
                Expr::col(0),
                Expr::arith(ArithOp::Sub, Expr::int(100), Expr::int(7)),
            ),
            Expr::int(100),
        );
        assert_eq!(e.eval(&t(), &mut ctx), Value::Int(9));
        assert_eq!(ctx.cpu.count(OpClass::Arith), 3);
    }

    #[test]
    fn and_short_circuits() {
        let mut ctx = ExecCtx::new();
        let e = Expr::And(vec![
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(5)), // false
            Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::str("asia")),
        ]);
        assert!(!e.eval_bool(&t(), &mut ctx));
        assert_eq!(ctx.pred_evals, 1, "second arm must not evaluate");
    }

    #[test]
    fn or_short_circuit_vs_exhaustive() {
        let arms: Vec<Expr> = (0..10).map(|v| Expr::col_eq_int(0, v)).collect();
        let e = Expr::Or(arms);
        // Tuple value 10 matches nothing: both modes evaluate all 10.
        let mut sc = ExecCtx::new();
        assert!(!e.eval_bool(&t(), &mut sc));
        assert_eq!(sc.pred_evals, 10);
        // Tuple matching arm 3 (0-indexed value 3).
        let tup: Tuple = vec![Value::Int(3)];
        let mut sc = ExecCtx::new();
        assert!(e.eval_bool(&tup, &mut sc));
        assert_eq!(sc.pred_evals, 4, "short-circuit stops at the match");
        let mut ex = ExecCtx::exhaustive();
        assert!(e.eval_bool(&tup, &mut ex));
        assert_eq!(ex.pred_evals, 10, "exhaustive evaluates every arm");
    }

    #[test]
    fn not_negates() {
        let mut ctx = ExecCtx::new();
        let e = Expr::Not(Box::new(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(10))));
        assert!(!e.eval_bool(&t(), &mut ctx));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn cross_type_comparison_panics() {
        let mut ctx = ExecCtx::new();
        Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::str("x")).eval(&t(), &mut ctx);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_column_panics() {
        let mut ctx = ExecCtx::new();
        Expr::col(9).eval(&t(), &mut ctx);
    }
}

#[cfg(test)]
mod columnar_tests {
    use super::*;
    use eco_storage::{ColumnChunk, ColumnType, Schema};

    fn test_chunk() -> DataChunk {
        let schema = Schema::new(&[
            ("v", ColumnType::Int),
            ("s", ColumnType::Str),
            ("d", ColumnType::Date),
        ]);
        let rows: Vec<Tuple> = (0..20)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(if i % 3 == 0 { "fizz" } else { "x" }),
                    Value::Date(i as i32 * 2),
                ]
            })
            .collect();
        DataChunk::from_rows(&schema, &rows)
    }

    /// A moderately nested predicate exercising And/Or/Cmp/Arith.
    fn predicate() -> Expr {
        Expr::And(vec![
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(15)),
            Expr::Or(vec![
                Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::str("fizz")),
                Expr::cmp(
                    CmpOp::Ge,
                    Expr::arith(ArithOp::Mul, Expr::col(0), Expr::int(3)),
                    Expr::int(30),
                ),
            ]),
        ])
    }

    /// Columnar filtering selects the same rows and charges the same
    /// ledger as evaluating the predicate row by row — including
    /// short-circuit evaluation counts.
    #[test]
    fn filter_sel_matches_scalar_rows_and_charges() {
        let chunk = test_chunk();
        for short_circuit in [true, false] {
            let mk_ctx = || {
                if short_circuit {
                    ExecCtx::new()
                } else {
                    ExecCtx::exhaustive()
                }
            };
            let pred = predicate();
            let mut sctx = mk_ctx();
            let scalar: Vec<u32> = (0..chunk.len() as u32)
                .filter(|&i| pred.eval_bool(&chunk.row(i as usize), &mut sctx))
                .collect();

            let mut cctx = mk_ctx();
            let mut sel: Vec<u32> = (0..chunk.len() as u32).collect();
            pred.filter_sel(&chunk, &mut sel, &mut cctx);

            assert_eq!(sel, scalar, "short_circuit={short_circuit}");
            assert_eq!(cctx.cpu, sctx.cpu, "short_circuit={short_circuit}");
            assert_eq!(cctx.pred_evals, sctx.pred_evals);
        }
    }

    #[test]
    fn eval_column_matches_scalar_values_and_charges() {
        let chunk = test_chunk();
        let expr = Expr::arith(
            ArithOp::Div,
            Expr::arith(ArithOp::Mul, Expr::col(0), Expr::int(7)),
            Expr::int(2),
        );
        let sel: Vec<u32> = vec![0, 3, 4, 11, 19];
        let mut sctx = ExecCtx::new();
        let scalar: Vec<Value> = sel
            .iter()
            .map(|&i| expr.eval(&chunk.row(i as usize), &mut sctx))
            .collect();
        let mut cctx = ExecCtx::new();
        let col = expr.eval_column(&chunk, crate::chunk::Rows::Sel(&sel), &mut cctx);
        let got: Vec<Value> = (0..col.data.len()).map(|k| col.data.value(k)).collect();
        assert_eq!(got, scalar);
        assert_eq!(cctx.cpu, sctx.cpu);
    }

    #[test]
    fn empty_selection_charges_nothing() {
        let chunk = test_chunk();
        let mut ctx = ExecCtx::new();
        let mut sel: Vec<u32> = Vec::new();
        predicate().filter_sel(&chunk, &mut sel, &mut ctx);
        assert!(sel.is_empty());
        assert!(ctx.is_empty());
        assert_eq!(ctx.pred_evals, 0);
    }

    #[test]
    fn all_pass_and_all_fail_selections() {
        let chunk = test_chunk();
        let mut sel: Vec<u32> = (0..20).collect();
        let mut ctx = ExecCtx::new();
        Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(0)).filter_sel(&chunk, &mut sel, &mut ctx);
        assert_eq!(sel.len(), 20, "all rows pass");
        Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(0)).filter_sel(&chunk, &mut sel, &mut ctx);
        assert!(sel.is_empty(), "no rows pass");
    }

    /// The compressed kernels must select exactly the rows the raw
    /// kernels select, for every operator and every encoding — and the
    /// dictionary path must charge per *distinct* value, not per row.
    #[test]
    fn filter_sel_enc_matches_raw_rows_for_every_encoding() {
        let schema = Schema::new(&[
            ("packed", ColumnType::Int), // narrow range → PackInt
            ("runs", ColumnType::Int),   // long runs → RleInt
            ("s", ColumnType::Str),      // few distinct → DictStr
            ("c", ColumnType::Char),     // few distinct → DictChar
            ("d", ColumnType::Date),     // narrow range → PackDate
            ("wide", ColumnType::Int),   // full range → Plain
        ]);
        let rows: Vec<Tuple> = (0..600)
            .map(|i| {
                vec![
                    Value::Int(100 + (i * 37) % 50),
                    Value::Int(i / 60),
                    Value::str(format!("g{}", i % 5)),
                    Value::Char(['A', 'N', 'R'][(i as usize) % 3]),
                    Value::Date(8000 + (i as i32 * 13) % 400),
                    Value::Int(i.wrapping_mul(0x7E37_79B9_7F4A_7C15)),
                ]
            })
            .collect();
        let chunk = DataChunk::from_rows(&schema, &rows);
        let enc = EncodedChunk::encode(&chunk);
        assert_eq!(enc.column(0).encoding_name(), "pack-int");
        assert_eq!(enc.column(1).encoding_name(), "rle-int");
        assert_eq!(enc.column(2).encoding_name(), "dict-str");
        assert_eq!(enc.column(3).encoding_name(), "dict-char");
        assert_eq!(enc.column(4).encoding_name(), "pack-date");
        assert_eq!(enc.column(5).encoding_name(), "plain");

        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        let cases: Vec<(usize, Value)> = vec![
            (0, Value::Int(120)),
            (0, Value::Int(5)),    // below the frame of reference
            (0, Value::Int(9999)), // above every stored value
            (1, Value::Int(4)),
            (2, Value::str("g2")),
            (2, Value::str("zzz")), // absent from the dictionary
            (3, Value::Char('N')),
            (4, Value::Date(8100)),
            (5, Value::Int(0)),
        ];
        for (col, lit) in &cases {
            for op in ops {
                for flipped in [false, true] {
                    let pred = if flipped {
                        Expr::cmp(op.swap(), Expr::Lit(lit.clone()), Expr::col(*col))
                    } else {
                        Expr::cmp(op, Expr::col(*col), Expr::Lit(lit.clone()))
                    };
                    let mut raw_sel: Vec<u32> = (0..chunk.len() as u32).collect();
                    let mut raw_ctx = ExecCtx::new();
                    pred.filter_sel(&chunk, &mut raw_sel, &mut raw_ctx);
                    let mut enc_sel: Vec<u32> = (0..chunk.len() as u32).collect();
                    let mut enc_ctx = ExecCtx::new();
                    pred.filter_sel_enc(&chunk, &enc, &mut enc_sel, &mut enc_ctx);
                    assert_eq!(
                        enc_sel, raw_sel,
                        "col {col} {op:?} {lit:?} flipped={flipped}"
                    );
                }
            }
        }

        // Dictionary kernel: PredEval per distinct value + DictLookup
        // per live row, instead of PredEval per row.
        let pred = Expr::cmp(CmpOp::Eq, Expr::col(2), Expr::str("g2"));
        let mut sel: Vec<u32> = (0..600).collect();
        let mut ctx = ExecCtx::new();
        pred.filter_sel_enc(&chunk, &enc, &mut sel, &mut ctx);
        assert_eq!(ctx.cpu.count(OpClass::PredEval), 5, "one per distinct");
        assert_eq!(ctx.cpu.count(OpClass::DictLookup), 600, "one per row");

        // RLE kernel: one PredEval per run touched (10 runs of 60).
        let pred = Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::int(4));
        let mut sel: Vec<u32> = (0..600).collect();
        let mut ctx = ExecCtx::new();
        pred.filter_sel_enc(&chunk, &enc, &mut sel, &mut ctx);
        assert_eq!(sel.len(), 240);
        assert_eq!(ctx.cpu.count(OpClass::PredEval), 10, "one per run");

        // And-narrowing: later conjuncts only touch survivors.
        let pred = Expr::And(vec![
            Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::int(1)),
            Expr::cmp(CmpOp::Eq, Expr::col(2), Expr::str("g0")),
        ]);
        let mut sel: Vec<u32> = (0..600).collect();
        let mut ctx = ExecCtx::new();
        pred.filter_sel_enc(&chunk, &enc, &mut sel, &mut ctx);
        assert_eq!(ctx.cpu.count(OpClass::DictLookup), 60, "narrowed first");
    }

    /// NULL handling: an invalid value fails every comparison (like SQL
    /// NULL) while still charging the evaluation.
    #[test]
    fn invalid_rows_fail_comparisons() {
        let data = ColumnData::Int(vec![1, 2, 3, 4]);
        let validity = vec![true, false, true, false];
        let chunk = DataChunk::new(vec![ColumnChunk::with_validity(data, validity)]);
        let mut sel: Vec<u32> = (0..4).collect();
        let mut ctx = ExecCtx::new();
        // v >= 0 passes every valid row; NULL rows drop out.
        Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(0)).filter_sel(&chunk, &mut sel, &mut ctx);
        assert_eq!(sel, vec![0, 2]);
        assert_eq!(ctx.pred_evals, 4, "NULL rows still charge their eval");
        // Negation of a NULL comparison stays false-y: NOT(v < 0) keeps
        // only valid rows' results; NULL comparisons yield false, so the
        // negation admits them — SQL three-valued logic is out of scope
        // and the chosen two-valued behavior is documented.
        let mut sel2: Vec<u32> = (0..4).collect();
        Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(0)).filter_sel(&chunk, &mut sel2, &mut ctx);
        assert!(sel2.is_empty());
    }
}
