//! Morsel-driven parallel execution machinery.
//!
//! A [`Morsel`] is a contiguous slice of a leaf operator's input — the
//! scheduling granule of HyPer-style morsel-driven parallelism. The
//! driver here (`run_morsels`) partitions a pipeline into per-morsel
//! clones (via [`Operator::clone_morsel`]), runs them on worker
//! threads, and returns the per-morsel results **in morsel order**
//! together with each worker's private energy ledger merged back into
//! the caller's [`ExecCtx`].
//!
//! # Determinism
//!
//! Two properties make parallel execution reproducible:
//!
//! 1. **Merged-ledger identity.** Every operator charge is per-tuple
//!    and additive, morsels partition the input exactly, and ledger
//!    merging is commutative addition — so the merged ledger equals the
//!    serial ledger bit-for-bit at any worker count.
//! 2. **Deterministic per-core attribution.** Morsels are assigned to
//!    workers *statically* (worker `w` takes morsels `w, w+N, w+2N, …`)
//!    rather than through a work-stealing queue. Uniform morsels make
//!    static assignment load-balanced anyway, and it means the per-core
//!    ledger split — which the multi-core machine model prices — is a
//!    pure function of the plan, not of thread scheduling. (The merged
//!    ledger would be identical either way; the *per-core* split would
//!    not.)
//!
//! The one intentionally scheduling-dependent detail: on the disk
//! engine, warm-run re-read charges (`BufferPool::set_warm_reread_every`)
//! land on whichever worker performs the Nth buffer-pool hit. Their
//! *total* is a function of the hit count alone and therefore still
//! merges identically to serial execution; only the per-core split of
//! those few charges can vary between runs.
//!
//! **Disk-engine precondition:** merged-ledger identity on the disk
//! engine additionally requires the buffer pool to hold the scanned
//! working set without evicting (as the shipped profiles do — the
//! paper's tables fit in memory). With a pool smaller than the tables,
//! hit/miss counts depend on the residency state left behind by
//! thread-interleaved evictions, which is scheduling-dependent in
//! parallel mode; the memory engine has no such precondition.

use eco_storage::Tuple;

use crate::context::ExecCtx;
use crate::ops::{BoxedOp, Operator};

/// A contiguous range `[start, end)` of a leaf operator's input, in the
/// unit the leaf chose (rows for memory sources, pages for disk
/// tables). Only meaningful to the pipeline that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First input unit (inclusive).
    pub start: usize,
    /// Last input unit (exclusive).
    pub end: usize,
}

impl Morsel {
    /// Number of input units covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the morsel covers nothing.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Split `total` units into morsels of about `per_morsel` units each
/// (the leaf-side helper behind [`Operator::morsels`] implementations).
pub fn split_units(total: usize, per_morsel: usize) -> Vec<Morsel> {
    let per = per_morsel.max(1);
    (0..total)
        .step_by(per)
        .map(|start| Morsel {
            start,
            end: (start + per).min(total),
        })
        .collect()
}

/// Drain an opened pipeline to completion through its batch path — or,
/// in a columnar context, through its chunk path with rows materialized
/// at the drain point (the parallel workers' late-materialization
/// boundary). Either way the tuples and charges are identical.
pub(crate) fn drain_pipeline(ctx: &mut ExecCtx, op: &mut dyn Operator) -> Vec<Tuple> {
    let mut out = Vec::new();
    if ctx.columnar {
        while let Some(chunk) = op.next_chunk(ctx) {
            chunk.to_tuples(&mut out);
        }
    } else {
        while op.next_batch(ctx, &mut out) {}
    }
    out
}

/// Run `child`'s pipeline morsel-parallel: clone it per morsel, open
/// and reduce each clone with `run` on a worker thread, and return the
/// per-morsel results in morsel order. Worker ledgers are merged into
/// `ctx` (totals *and* per-core attribution).
///
/// Returns `None` — and charges nothing — when parallel execution is
/// not applicable: one worker, a non-partitionable child, a child too
/// small to split, or inside a [`ExecCtx::streaming_exact`] region
/// (under a `Limit`, pre-materializing a streaming child would consume
/// more of it than scalar execution). Callers fall back to their serial
/// path, which is ledger-identical by construction.
pub(crate) fn run_morsels<T, F>(child: &dyn Operator, ctx: &mut ExecCtx, run: F) -> Option<Vec<T>>
where
    T: Send,
    F: Fn(&mut ExecCtx, &mut dyn Operator) -> T + Sync,
{
    if ctx.workers <= 1 || ctx.streaming_exact > 0 {
        return None;
    }
    let morsels = child.morsels(ctx.morsel_rows)?;
    if morsels.len() < 2 {
        return None;
    }
    let pipes: Option<Vec<BoxedOp>> = morsels.iter().map(|m| child.clone_morsel(m)).collect();
    let pipes = pipes?;

    let workers = ctx.workers.min(pipes.len());
    // Static strided assignment: worker w owns morsels w, w+N, w+2N, …
    // (see module docs for why this beats a stealing queue here).
    let mut assignments: Vec<Vec<(usize, BoxedOp)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, pipe) in pipes.into_iter().enumerate() {
        assignments[i % workers].push((i, pipe));
    }

    let template = ctx.fork();
    let run = &run;
    let worker_outputs: Vec<(ExecCtx, Vec<(usize, T)>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .into_iter()
            .map(|work| {
                let mut wctx = template.fork();
                scope.spawn(move || {
                    let mut results = Vec::with_capacity(work.len());
                    for (idx, mut pipe) in work {
                        pipe.open(&mut wctx);
                        results.push((idx, run(&mut wctx, pipe.as_mut())));
                    }
                    (wctx, results)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = Vec::new();
    for (w, (wctx, results)) in worker_outputs.into_iter().enumerate() {
        ctx.merge_worker(w, &wctx);
        for (idx, t) in results {
            if slots.len() <= idx {
                slots.resize_with(idx + 1, || None);
            }
            slots[idx] = Some(t);
        }
    }
    Some(
        slots
            .into_iter()
            .map(|s| s.expect("every morsel produces a result"))
            .collect(),
    )
}

/// Morsel-parallel gather: run `child`'s pipeline in parallel and
/// return all of its output tuples concatenated in morsel order — the
/// exact stream serial execution would produce. `None` under the same
/// conditions as [`run_morsels`].
pub(crate) fn gather_parallel(child: &dyn Operator, ctx: &mut ExecCtx) -> Option<Vec<Tuple>> {
    let parts = run_morsels(child, ctx, |wctx, pipe| drain_pipeline(wctx, pipe))?;
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for mut p in parts {
        out.append(&mut p);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::ops::{Filter, VecSource};
    use eco_simhw::trace::OpClass;
    use eco_storage::{ColumnType, Schema, Value};

    fn pipeline(n: i64) -> Filter {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let src = VecSource::new(schema, (0..n).map(|i| vec![Value::Int(i)]).collect());
        Filter::new(
            Box::new(src),
            Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(n / 2)),
        )
    }

    #[test]
    fn split_units_covers_exactly() {
        let ms = split_units(10, 3);
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0], Morsel { start: 0, end: 3 });
        assert_eq!(ms[3], Morsel { start: 9, end: 10 });
        assert!(split_units(0, 3).is_empty());
    }

    #[test]
    fn gather_matches_serial_rows_and_ledger() {
        let serial_rows;
        let mut serial_ctx = ExecCtx::new();
        {
            let mut p = pipeline(1000);
            p.open(&mut serial_ctx);
            serial_rows = drain_pipeline(&mut serial_ctx, &mut p);
        }
        for workers in [2, 3, 8] {
            let p = pipeline(1000);
            let mut ctx = ExecCtx::new().with_workers(workers).with_morsel_rows(64);
            let rows = gather_parallel(&p, &mut ctx).expect("partitionable");
            assert_eq!(rows, serial_rows, "workers={workers}");
            assert_eq!(ctx.cpu, serial_ctx.cpu, "workers={workers}");
            assert_eq!(ctx.pred_evals, serial_ctx.pred_evals);
        }
    }

    #[test]
    fn serial_context_declines_parallelism() {
        let p = pipeline(100);
        let mut ctx = ExecCtx::new(); // workers = 1
        assert!(gather_parallel(&p, &mut ctx).is_none());
        assert!(ctx.is_empty());
    }

    #[test]
    fn streaming_exact_region_declines_parallelism() {
        let p = pipeline(1000);
        let mut ctx = ExecCtx::new().with_workers(4);
        ctx.streaming_exact = 1;
        assert!(gather_parallel(&p, &mut ctx).is_none());
    }

    #[test]
    fn per_core_attribution_is_deterministic() {
        let charges = |workers: usize| {
            let p = pipeline(2000);
            let mut ctx = ExecCtx::new().with_workers(workers).with_morsel_rows(128);
            gather_parallel(&p, &mut ctx).expect("partitionable");
            ctx.take_core_phases(workers, "t")
                .into_iter()
                .map(|ph| ph.cpu.count(OpClass::PredEval))
                .collect::<Vec<_>>()
        };
        let a = charges(4);
        let b = charges(4);
        assert_eq!(a, b, "static morsel assignment is reproducible");
        assert!(a.iter().all(|&c| c > 0), "all cores get work: {a:?}");
    }
}
