//! Multi-query optimization for QED (paper §4).
//!
//! A batch of structurally-identical selection queries is merged into
//! *one* scan whose filter is the disjunction of the individual
//! predicates; each emitted tuple is tagged with the index of the query
//! it belongs to, and an application-side splitter routes rows back to
//! their queries ("QED also has a little bit of extra work to do with
//! respect to splitting the result, which … we do in the application
//! logic and include the time and energy cost").

use std::sync::Arc;

use eco_simhw::trace::OpClass;
use eco_storage::{
    tuple_width, Catalog, ColumnChunk, ColumnData, ColumnType, DataChunk, Schema, Tuple, Value,
};
use eco_tpch::QedQuery;

use crate::chunk::{Chunk, Rows};
use crate::context::ExecCtx;
use crate::expr::Expr;
use crate::ops::{BoxedOp, Operator, SeqScan};
use crate::parallel::Morsel;
use crate::plans::selection_predicate;

/// Filter a stream against many predicates at once, tagging each output
/// row with the (0-based) index of the matching predicate.
///
/// When `disjoint` is set and the context short-circuits, evaluation
/// stops at the first matching predicate (sound only when at most one
/// can match — true for QED's distinct `l_quantity` values). Otherwise
/// every predicate is evaluated and a row may fan out to several
/// queries; fan-out rows emit in predicate order (row-major) in scalar,
/// batch and columnar mode alike.
///
/// The batch and columnar paths are steady-state allocation-lean: the
/// input scratch buffer, the columnar match buffers and (disjoint path)
/// the output reservation are all reused across batches, so QED's
/// disjoint fast path performs no per-batch buffer allocation.
pub struct MultiFilter {
    child: BoxedOp,
    predicates: Vec<Expr>,
    disjoint: bool,
    schema: Schema,
    pending: std::collections::VecDeque<Tuple>,
    scratch: Vec<Tuple>,
    /// Columnar scratch: live-row indices not yet claimed by a
    /// predicate (disjoint short-circuit narrowing).
    alive: Vec<u32>,
    /// Columnar scratch: matched `(row, query id)` pairs.
    matches: Vec<(u32, u16)>,
}

impl MultiFilter {
    /// Multi-predicate filter over `child`.
    pub fn new(child: BoxedOp, predicates: Vec<Expr>, disjoint: bool) -> Self {
        assert!(!predicates.is_empty(), "need at least one predicate");
        let mut cols: Vec<(String, ColumnType)> = vec![("__query_id".to_string(), ColumnType::Int)];
        for c in child.schema().columns() {
            cols.push((c.name.clone(), c.ty));
        }
        let refs: Vec<(&str, ColumnType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        Self {
            child,
            predicates,
            disjoint,
            schema: Schema::new(&refs),
            pending: std::collections::VecDeque::new(),
            scratch: Vec::new(),
            alive: Vec::new(),
            matches: Vec::new(),
        }
    }

    /// Number of merged predicates.
    pub fn arity(&self) -> usize {
        self.predicates.len()
    }

    /// Evaluate every predicate against `t`, appending a tagged copy
    /// per match via `emit`. Respects disjoint short-circuiting.
    fn route(
        predicates: &[Expr],
        disjoint: bool,
        t: &Tuple,
        ctx: &mut ExecCtx,
        mut emit: impl FnMut(Tuple),
    ) {
        let stop_at_first = disjoint && ctx.short_circuit_or;
        for (qid, pred) in predicates.iter().enumerate() {
            if pred.eval_bool(t, ctx) {
                let mut tagged = Vec::with_capacity(t.len() + 1);
                tagged.push(Value::Int(qid as i64));
                tagged.extend(t.iter().cloned());
                emit(tagged);
                if stop_at_first {
                    break;
                }
            }
        }
    }
}

impl Operator for MultiFilter {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        self.pending.clear();
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Some(t);
            }
            let t = self.child.next(ctx)?;
            let pending = &mut self.pending;
            Self::route(&self.predicates, self.disjoint, &t, ctx, |tagged| {
                pending.push_back(tagged);
            });
        }
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
        // Drain anything a scalar caller left behind first.
        while let Some(t) = self.pending.pop_front() {
            out.push(t);
        }
        let mut input = std::mem::take(&mut self.scratch);
        input.clear();
        let more = self.child.next_batch(ctx, &mut input);
        if self.disjoint {
            // At most one output per input row: reserve the fan-out
            // upper bound once so the fast path never regrows `out`.
            out.reserve(input.len());
        }
        for t in &input {
            Self::route(&self.predicates, self.disjoint, t, ctx, |tagged| {
                out.push(tagged);
            });
        }
        self.scratch = input;
        more
    }

    /// Columnar routing: evaluate each predicate over the rows still in
    /// play (disjoint short-circuit narrows the live set exactly like
    /// the scalar `stop_at_first` loop, so predicate-evaluation charges
    /// are identical), collect `(row, query)` matches in row-major
    /// order, and emit one gathered chunk: the tag column plus the
    /// child's columns — no per-row tuple is built.
    fn next_chunk(&mut self, ctx: &mut ExecCtx) -> Option<Chunk> {
        let chunk = self.child.next_chunk(ctx)?;
        self.matches.clear();
        let stop_at_first = self.disjoint && ctx.short_circuit_or;
        if stop_at_first {
            self.alive.clear();
            chunk.rows().for_each(|_, i| self.alive.push(i as u32));
            for (qid, pred) in self.predicates.iter().enumerate() {
                if self.alive.is_empty() {
                    break;
                }
                let flags = pred.eval_flags(&chunk.data, Rows::Sel(&self.alive), ctx);
                let mut write = 0;
                for (k, &matched) in flags.iter().enumerate() {
                    if matched {
                        self.matches.push((self.alive[k], qid as u16));
                    } else {
                        self.alive[write] = self.alive[k];
                        write += 1;
                    }
                }
                self.alive.truncate(write);
            }
            // Narrowing discovers matches predicate-major; the output
            // contract is row-major (each row appears at most once here,
            // so sorting by row id restores the scalar emission order).
            self.matches.sort_unstable_by_key(|&(row, _)| row);
        } else {
            // Every predicate sees every live row; a row may fan out to
            // several queries, emitted in predicate order per row.
            let rows = chunk.rows();
            let flags_per_pred: Vec<Vec<bool>> = self
                .predicates
                .iter()
                .map(|p| p.eval_flags(&chunk.data, rows, ctx))
                .collect();
            rows.for_each(|k, i| {
                for (qid, flags) in flags_per_pred.iter().enumerate() {
                    if flags[k] {
                        self.matches.push((i as u32, qid as u16));
                    }
                }
            });
        }

        // Gather the output chunk: tag column + child columns.
        let tags = ColumnData::Int(self.matches.iter().map(|&(_, q)| q as i64).collect());
        let indices: Vec<u32> = self.matches.iter().map(|&(row, _)| row).collect();
        let mut cols = Vec::with_capacity(1 + chunk.data.arity());
        cols.push(ColumnChunk::new(tags));
        for c in chunk.data.columns() {
            cols.push(c.gather(&indices));
        }
        Some(Chunk::dense(Arc::new(DataChunk::new(cols))))
    }

    fn morsels(&self, target_rows: usize) -> Option<Vec<Morsel>> {
        self.child.morsels(target_rows)
    }

    fn clone_morsel(&self, morsel: &Morsel) -> Option<BoxedOp> {
        let child = self.child.clone_morsel(morsel)?;
        Some(Box::new(MultiFilter {
            child,
            predicates: self.predicates.clone(),
            disjoint: self.disjoint,
            schema: self.schema.clone(),
            pending: std::collections::VecDeque::new(),
            scratch: Vec::new(),
            alive: Vec::new(),
            matches: Vec::new(),
        }))
    }
}

/// Why a batch of statements could not be merged into one scan.
///
/// Malformed batches are *client* errors: a session layer routes them
/// back to the submitting session instead of panicking inside the
/// scheduler (see `eco-server`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The batch contained no queries.
    EmptyBatch,
    /// The table the merged scan runs over is not in the catalog.
    MissingTable(String),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::EmptyBatch => write!(f, "empty QED batch"),
            MergeError::MissingTable(t) => write!(f, "table `{t}` not in catalog"),
        }
    }
}

impl std::error::Error for MergeError {}

/// A merged QED batch over the `lineitem` table.
pub struct MergedSelection {
    plan: MultiFilter,
    batch_size: usize,
}

impl MergedSelection {
    /// Merge a batch of QED selection queries into one disjunctive scan.
    ///
    /// Panicking wrapper around [`Self::try_new`] for callers that
    /// construct batches from trusted workloads.
    pub fn new(catalog: &Catalog, queries: &[QedQuery]) -> Self {
        Self::try_new(catalog, queries).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Merge a batch of QED selection queries into one disjunctive
    /// scan, or report why the batch is malformed.
    pub fn try_new(catalog: &Catalog, queries: &[QedQuery]) -> Result<Self, MergeError> {
        if queries.is_empty() {
            return Err(MergeError::EmptyBatch);
        }
        if catalog.get("lineitem").is_none() {
            return Err(MergeError::MissingTable("lineitem".to_string()));
        }
        let distinct = {
            let mut v: Vec<i64> = queries.iter().map(|q| q.quantity).collect();
            v.sort_unstable();
            v.dedup();
            v.len() == queries.len()
        };
        let predicates: Vec<Expr> = queries
            .iter()
            .map(|q| selection_predicate(catalog, q))
            .collect();
        let scan = Box::new(SeqScan::new(catalog.expect("lineitem"))) as BoxedOp;
        Ok(Self {
            plan: MultiFilter::new(scan, predicates, distinct),
            batch_size: queries.len(),
        })
    }

    /// Execute the merged scan, returning tagged rows.
    pub fn run(&mut self, ctx: &mut ExecCtx) -> Vec<Tuple> {
        crate::exec::execute(&mut self.plan, ctx)
    }

    /// Execute the merged scan morsel-parallel across `workers`
    /// threads: same tagged rows, bit-identical ledger (the disjunctive
    /// scan is a partitionable pipeline).
    pub fn run_parallel(&mut self, ctx: &mut ExecCtx, workers: usize) -> Vec<Tuple> {
        crate::exec::execute_parallel(&mut self.plan, ctx, workers)
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

/// Application-side result split: route tagged rows back to their
/// queries, stripping the tag. Charges one `SplitRoute` and one
/// `RowCopy` plus the row's width in client-memory bytes per row — the
/// client-side work the paper explicitly includes in QED's costs.
pub fn split_results(tagged: Vec<Tuple>, batch_size: usize, ctx: &mut ExecCtx) -> Vec<Vec<Tuple>> {
    let mut out: Vec<Vec<Tuple>> = (0..batch_size).map(|_| Vec::new()).collect();
    for mut t in tagged {
        let qid = t[0].as_int().expect("query tag") as usize;
        assert!(qid < batch_size, "tag {qid} out of batch {batch_size}");
        t.remove(0);
        ctx.charge(OpClass::SplitRoute, 1);
        ctx.charge(OpClass::RowCopy, 1);
        ctx.charge_mem_bytes(tuple_width(&t));
        out[qid].push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::plans::selection_plan;
    use eco_storage::{load_tpch, EngineKind};
    use eco_tpch::{qed_workload, TpchGenerator};

    fn setup() -> Catalog {
        let db = TpchGenerator::new(0.003).generate();
        load_tpch(&db, EngineKind::Memory, 0)
    }

    #[test]
    fn merged_equals_sequential() {
        // The QED correctness invariant: merging + splitting returns
        // exactly what the individual queries return.
        let cat = setup();
        let queries = qed_workload(8);

        let mut merged = MergedSelection::new(&cat, &queries);
        let mut ctx = ExecCtx::new();
        let tagged = merged.run(&mut ctx);
        let split = split_results(tagged, queries.len(), &mut ctx);

        for (i, q) in queries.iter().enumerate() {
            let mut plan = selection_plan(&cat, q);
            let mut sctx = ExecCtx::new();
            let individual = execute(plan.as_mut(), &mut sctx);
            assert_eq!(split[i], individual, "query {i} differs");
        }
    }

    #[test]
    fn merged_scans_table_once() {
        let cat = setup();
        let n_rows = cat.expect("lineitem").len() as u64;
        let queries = qed_workload(10);
        let mut merged = MergedSelection::new(&cat, &queries);
        let mut ctx = ExecCtx::new();
        merged.run(&mut ctx);
        assert_eq!(
            ctx.cpu.count(OpClass::TupleFetch),
            n_rows,
            "one fetch per tuple, not per query"
        );
    }

    #[test]
    fn short_circuit_reduces_pred_evals() {
        let cat = setup();
        let queries = qed_workload(20);
        let mut m1 = MergedSelection::new(&cat, &queries);
        let mut sc = ExecCtx::new();
        m1.run(&mut sc);
        let mut m2 = MergedSelection::new(&cat, &queries);
        let mut ex = ExecCtx::exhaustive();
        m2.run(&mut ex);
        assert!(
            sc.pred_evals < ex.pred_evals,
            "short-circuit {} !< exhaustive {}",
            sc.pred_evals,
            ex.pred_evals
        );
        let n_rows = cat.expect("lineitem").len() as u64;
        assert_eq!(ex.pred_evals, 20 * n_rows, "exhaustive = k evals per row");
    }

    #[test]
    fn split_charges_client_work() {
        let cat = setup();
        let queries = qed_workload(5);
        let mut merged = MergedSelection::new(&cat, &queries);
        let mut ctx = ExecCtx::new();
        let tagged = merged.run(&mut ctx);
        let n = tagged.len() as u64;
        let mut client = ExecCtx::new();
        let split = split_results(tagged, 5, &mut client);
        assert_eq!(client.cpu.count(OpClass::SplitRoute), n);
        assert_eq!(client.cpu.count(OpClass::RowCopy), n);
        assert_eq!(split.iter().map(Vec::len).sum::<usize>() as u64, n);
    }

    #[test]
    fn multifilter_fans_out_when_not_disjoint() {
        use crate::ops::VecSource;
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let src = VecSource::new(schema, vec![vec![Value::Int(5)]]);
        // Two overlapping predicates both match value 5.
        let preds = vec![Expr::col_eq_int(0, 5), Expr::col_eq_int(0, 5)];
        let mut mf = MultiFilter::new(Box::new(src), preds, false);
        let mut ctx = ExecCtx::new();
        let rows = execute(&mut mf, &mut ctx);
        assert_eq!(rows.len(), 2, "row must fan out to both queries");
    }

    #[test]
    #[should_panic(expected = "empty QED batch")]
    fn empty_batch_rejected() {
        let cat = setup();
        let _ = MergedSelection::new(&cat, &[]);
    }

    #[test]
    fn try_new_reports_malformed_batches() {
        let cat = setup();
        assert_eq!(
            MergedSelection::try_new(&cat, &[]).err(),
            Some(MergeError::EmptyBatch)
        );
        let empty_catalog = Catalog::new(0);
        let queries = qed_workload(3);
        assert_eq!(
            MergedSelection::try_new(&empty_catalog, &queries).err(),
            Some(MergeError::MissingTable("lineitem".to_string()))
        );
        assert!(MergedSelection::try_new(&cat, &queries).is_ok());
    }
}
