//! Driving a plan to completion.

use eco_simhw::trace::OpClass;
use eco_storage::{tuple_width, Tuple};

use crate::context::ExecCtx;
use crate::ops::Operator;

/// Execute a plan, returning all result tuples. Each result row charges
/// one `ResultEmit` plus its width in memory bytes (materialization
/// into the wire buffer — the DBMS side of the result path).
pub fn execute(plan: &mut dyn Operator, ctx: &mut ExecCtx) -> Vec<Tuple> {
    let mut out = Vec::new();
    execute_into(plan, ctx, &mut out);
    out
}

/// Like [`execute`], appending into an existing buffer (lets callers
/// reuse a workhorse allocation across queries).
pub fn execute_into(plan: &mut dyn Operator, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) {
    plan.open(ctx);
    while let Some(t) = plan.next(ctx) {
        ctx.charge(OpClass::ResultEmit, 1);
        ctx.charge_mem_bytes(tuple_width(&t));
        out.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::ops::{Filter, VecSource};
    use eco_storage::{ColumnType, Schema, Value};

    #[test]
    fn executes_and_charges_result_emission() {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let src = VecSource::new(schema, (0..20).map(|i| vec![Value::Int(i)]).collect());
        let mut plan = Filter::new(
            Box::new(src),
            Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(15)),
        );
        let mut ctx = ExecCtx::new();
        let rows = execute(&mut plan, &mut ctx);
        assert_eq!(rows.len(), 5);
        assert_eq!(ctx.cpu.count(OpClass::ResultEmit), 5);
        assert!(ctx.mem_stream_bytes > 0);
    }

    #[test]
    fn execute_into_reuses_buffer() {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let mut out = Vec::with_capacity(64);
        for round in 0..3 {
            out.clear();
            let mut src =
                VecSource::new(schema.clone(), (0..4).map(|i| vec![Value::Int(i)]).collect());
            let mut ctx = ExecCtx::new();
            execute_into(&mut src, &mut ctx, &mut out);
            assert_eq!(out.len(), 4, "round {round}");
        }
    }
}
