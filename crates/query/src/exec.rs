//! Driving a plan to completion.
//!
//! [`execute`] / [`execute_into`] drive the plan through the vectorized
//! batch path ([`Operator::next_batch`]); [`execute_columnar`] drives
//! it through the columnar path ([`Operator::next_chunk`] — typed
//! column vectors and selection vectors, rows materialized only at the
//! top); [`execute_scalar`] / [`execute_into_scalar`] retain the
//! tuple-at-a-time Volcano loop; [`execute_parallel`] adds
//! morsel-driven intra-query parallelism on worker threads and composes
//! with all of them (a columnar context runs columnar pipelines on
//! every worker). All paths produce identical result rows and
//! bit-identical [`ExecCtx`] ledgers (see
//! `tests/integration_vectorized.rs`, `tests/integration_columnar.rs`
//! and `tests/integration_parallel.rs`) — engine choice, batch size and
//! worker count are purely throughput knobs; the energy accounting the
//! paper's figures are computed from never changes.

//!
//! ## Failure semantics
//!
//! Operators are infallible at the interface level: a failing operator
//! (a page read whose retry budget is exhausted — see
//! [`crate::error::ExecError`]) records the first error in the context
//! and ends its stream, so every driver below terminates normally with
//! a *truncated* result and the error still recorded. The `try_*`
//! drivers check the slot after the pipeline drains and surface it as
//! an `Err`; callers of the infallible drivers can (and the server
//! layer does) inspect [`ExecCtx::take_error`] themselves. Nothing on
//! the execution path panics on a disk fault.

use eco_simhw::trace::OpClass;
use eco_storage::{tuple_width, Tuple};

use crate::context::ExecCtx;
use crate::error::ExecError;
use crate::ops::Operator;
use crate::parallel::gather_parallel;

/// Which execution engine drives a plan — a pure throughput knob; all
/// three produce identical rows and bit-identical ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecEngine {
    /// Tuple-at-a-time Volcano loop (the measured baseline).
    Scalar,
    /// Vectorized `Vec<Tuple>` batches (PR 2).
    Batch,
    /// Typed column vectors + selection vectors with late
    /// materialization (this PR); the fastest path on scan-heavy plans.
    Columnar,
}

impl ExecEngine {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ExecEngine::Scalar => "scalar",
            ExecEngine::Batch => "batch",
            ExecEngine::Columnar => "columnar",
        }
    }

    /// Execute `plan` under this engine, appending into `out`. The
    /// engine choice is authoritative: a context whose
    /// [`ExecCtx::columnar`] flag disagrees is overridden for the
    /// duration of the run (and restored), so `ExecEngine::Batch`
    /// always measures the batch driver.
    pub fn execute_into(self, plan: &mut dyn Operator, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) {
        let saved = ctx.columnar;
        ctx.columnar = false;
        match self {
            ExecEngine::Scalar => execute_into_scalar(plan, ctx, out),
            ExecEngine::Batch => execute_into(plan, ctx, out),
            ExecEngine::Columnar => execute_columnar_into(plan, ctx, out),
        }
        ctx.columnar = saved;
    }

    /// Execute `plan` under this engine, returning all result tuples.
    pub fn execute(self, plan: &mut dyn Operator, ctx: &mut ExecCtx) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.execute_into(plan, ctx, &mut out);
        out
    }

    /// Fallible twin of [`Self::execute_into`]: drives the plan, then
    /// surfaces the first typed error any operator recorded. On `Err`
    /// the buffer holds whatever rows were produced before the fault.
    pub fn try_execute_into(
        self,
        plan: &mut dyn Operator,
        ctx: &mut ExecCtx,
        out: &mut Vec<Tuple>,
    ) -> Result<(), ExecError> {
        self.execute_into(plan, ctx, out);
        take_exec_error(ctx)
    }

    /// Fallible twin of [`Self::execute`].
    pub fn try_execute(
        self,
        plan: &mut dyn Operator,
        ctx: &mut ExecCtx,
    ) -> Result<Vec<Tuple>, ExecError> {
        let mut out = Vec::new();
        self.try_execute_into(plan, ctx, &mut out)?;
        Ok(out)
    }
}

/// Surface (and clear) the error an operator recorded in `ctx`, if any.
fn take_exec_error(ctx: &mut ExecCtx) -> Result<(), ExecError> {
    match ctx.take_error() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Execute a plan through the batch path, returning all result tuples.
/// Each result row charges one `ResultEmit` plus its width in memory
/// bytes (materialization into the wire buffer — the DBMS side of the
/// result path).
pub fn execute(plan: &mut dyn Operator, ctx: &mut ExecCtx) -> Vec<Tuple> {
    let mut out = Vec::new();
    execute_into(plan, ctx, &mut out);
    out
}

/// Like [`execute`], appending into an existing buffer (lets callers
/// reuse a workhorse allocation across queries).
///
/// A context with [`ExecCtx::columnar`] set is routed through the
/// columnar driver, so callers that thread a context through generic
/// entry points (the server facade, the QED merger) get the columnar
/// path without new plumbing.
pub fn execute_into(plan: &mut dyn Operator, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) {
    if ctx.columnar {
        return execute_columnar_into(plan, ctx, out);
    }
    plan.open(ctx);
    loop {
        let start = out.len();
        let more = plan.next_batch(ctx, out);
        let emitted = &out[start..];
        if !emitted.is_empty() {
            let bytes: u64 = emitted.iter().map(tuple_width).sum();
            ctx.charge(OpClass::ResultEmit, emitted.len() as u64);
            ctx.charge_mem_bytes(bytes);
        }
        if !more {
            return;
        }
    }
}

/// Execute a plan through the columnar path ([`Operator::next_chunk`]),
/// returning all result tuples. Chunks stream through the plan as typed
/// column vectors with selection vectors; rows are materialized only
/// here, at the top (late materialization), charging the same
/// `ResultEmit` + width bytes per row as the other drivers.
pub fn execute_columnar(plan: &mut dyn Operator, ctx: &mut ExecCtx) -> Vec<Tuple> {
    let mut out = Vec::new();
    execute_columnar_into(plan, ctx, &mut out);
    out
}

/// Like [`execute_columnar`], appending into an existing buffer.
///
/// The context's [`ExecCtx::columnar`] flag is raised for the duration
/// of the run (blocking operators consult it when draining children)
/// and restored afterwards, so a reused context does not silently
/// switch later [`execute`] calls onto the columnar driver.
pub fn execute_columnar_into(plan: &mut dyn Operator, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) {
    let saved = ctx.columnar;
    ctx.columnar = true;
    plan.open(ctx);
    while let Some(chunk) = plan.next_chunk(ctx) {
        if chunk.is_empty() {
            continue;
        }
        let start = out.len();
        chunk.to_tuples(out);
        let bytes: u64 = out[start..].iter().map(tuple_width).sum();
        ctx.charge(OpClass::ResultEmit, (out.len() - start) as u64);
        ctx.charge_mem_bytes(bytes);
    }
    ctx.columnar = saved;
}

/// Execute a plan with `workers` morsel-parallel worker threads.
///
/// Identical result rows and a bit-identical merged ledger to
/// [`execute`] at every worker count. Parallelism applies wherever the
/// plan allows it: a fully partitionable plan (scan → filter → project)
/// is gathered morsel-parallel here at the root, and blocking operators
/// ([`crate::ops::HashJoin`], [`crate::ops::HashAggregate`],
/// [`crate::ops::Sort`]) parallelize their own inputs during `open`.
/// With `workers == 1` this is exactly [`execute`].
pub fn execute_parallel(plan: &mut dyn Operator, ctx: &mut ExecCtx, workers: usize) -> Vec<Tuple> {
    let mut out = Vec::new();
    execute_parallel_into(plan, ctx, workers, &mut out);
    out
}

/// Fallible twin of [`execute_parallel_into`]: drives the plan with
/// `workers` threads, then surfaces the first typed error any worker
/// recorded (workers merge in index order, so the surviving error is
/// deterministic for a given fault plan).
pub fn try_execute_parallel_into(
    plan: &mut dyn Operator,
    ctx: &mut ExecCtx,
    workers: usize,
    out: &mut Vec<Tuple>,
) -> Result<(), ExecError> {
    execute_parallel_into(plan, ctx, workers, out);
    take_exec_error(ctx)
}

/// Like [`execute_parallel`], appending into an existing buffer.
pub fn execute_parallel_into(
    plan: &mut dyn Operator,
    ctx: &mut ExecCtx,
    workers: usize,
    out: &mut Vec<Tuple>,
) {
    ctx.workers = workers.max(1);
    // Root-level gather for fully partitionable plans; the result-path
    // charges below match execute_into's per-batch charging exactly.
    if let Some(rows) = gather_parallel(plan, ctx) {
        if !rows.is_empty() {
            let bytes: u64 = rows.iter().map(tuple_width).sum();
            ctx.charge(OpClass::ResultEmit, rows.len() as u64);
            ctx.charge_mem_bytes(bytes);
        }
        out.extend(rows);
        return;
    }
    execute_into(plan, ctx, out);
}

/// Execute a plan tuple-at-a-time (the Volcano baseline the batch path
/// is benchmarked against). Identical results and ledger to
/// [`execute`]; strictly more per-tuple overhead.
pub fn execute_scalar(plan: &mut dyn Operator, ctx: &mut ExecCtx) -> Vec<Tuple> {
    let mut out = Vec::new();
    execute_into_scalar(plan, ctx, &mut out);
    out
}

/// Like [`execute_scalar`], appending into an existing buffer.
pub fn execute_into_scalar(plan: &mut dyn Operator, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) {
    plan.open(ctx);
    while let Some(t) = plan.next(ctx) {
        ctx.charge(OpClass::ResultEmit, 1);
        ctx.charge_mem_bytes(tuple_width(&t));
        out.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::ops::{Filter, VecSource};
    use eco_storage::{ColumnType, Schema, Value};

    fn plan() -> Filter {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let src = VecSource::new(schema, (0..20).map(|i| vec![Value::Int(i)]).collect());
        Filter::new(
            Box::new(src),
            Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(15)),
        )
    }

    #[test]
    fn executes_and_charges_result_emission() {
        let mut p = plan();
        let mut ctx = ExecCtx::new();
        let rows = execute(&mut p, &mut ctx);
        assert_eq!(rows.len(), 5);
        assert_eq!(ctx.cpu.count(OpClass::ResultEmit), 5);
        assert!(ctx.mem_stream_bytes > 0);
    }

    #[test]
    fn scalar_and_batch_agree_on_rows_and_ledger() {
        let mut ctx_s = ExecCtx::new().with_batch_size(1);
        let rows_s = execute_scalar(&mut plan(), &mut ctx_s);

        for batch_size in [1, 3, 7, 1024] {
            let mut ctx_b = ExecCtx::new().with_batch_size(batch_size);
            let rows_b = execute(&mut plan(), &mut ctx_b);
            assert_eq!(rows_b, rows_s, "batch size {batch_size}");
            assert_eq!(ctx_b.cpu, ctx_s.cpu, "batch size {batch_size}");
            assert_eq!(ctx_b.mem_stream_bytes, ctx_s.mem_stream_bytes);
            assert_eq!(ctx_b.mem_random_accesses, ctx_s.mem_random_accesses);
            assert_eq!(ctx_b.pred_evals, ctx_s.pred_evals);
        }
    }

    #[test]
    fn columnar_driver_restores_the_context_flag() {
        let mut ctx = ExecCtx::new();
        let rows_c = execute_columnar(&mut plan(), &mut ctx);
        assert!(!ctx.columnar, "flag must not leak out of the columnar run");
        // The same context now drives a genuine batch run.
        let rows_b = execute(&mut plan(), &mut ctx);
        assert_eq!(rows_b, rows_c);
    }

    #[test]
    fn execute_into_reuses_buffer() {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let mut out = Vec::with_capacity(64);
        for round in 0..3 {
            out.clear();
            let mut src = VecSource::new(
                schema.clone(),
                (0..4).map(|i| vec![Value::Int(i)]).collect(),
            );
            let mut ctx = ExecCtx::new();
            execute_into(&mut src, &mut ctx, &mut out);
            assert_eq!(out.len(), 4, "round {round}");
        }
    }
}
