//! Driving a plan to completion.
//!
//! [`execute`] / [`execute_into`] drive the plan through the vectorized
//! batch path ([`Operator::next_batch`]); [`execute_scalar`] /
//! [`execute_into_scalar`] retain the tuple-at-a-time Volcano loop;
//! [`execute_parallel`] adds morsel-driven intra-query parallelism on
//! worker threads. All three produce identical result rows and
//! bit-identical [`ExecCtx`] ledgers (see
//! `tests/integration_vectorized.rs` and
//! `tests/integration_parallel.rs`) — batch size and worker count are
//! purely throughput knobs; the energy accounting the paper's figures
//! are computed from never changes.

use eco_simhw::trace::OpClass;
use eco_storage::{tuple_width, Tuple};

use crate::context::ExecCtx;
use crate::ops::Operator;
use crate::parallel::gather_parallel;

/// Execute a plan through the batch path, returning all result tuples.
/// Each result row charges one `ResultEmit` plus its width in memory
/// bytes (materialization into the wire buffer — the DBMS side of the
/// result path).
pub fn execute(plan: &mut dyn Operator, ctx: &mut ExecCtx) -> Vec<Tuple> {
    let mut out = Vec::new();
    execute_into(plan, ctx, &mut out);
    out
}

/// Like [`execute`], appending into an existing buffer (lets callers
/// reuse a workhorse allocation across queries).
pub fn execute_into(plan: &mut dyn Operator, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) {
    plan.open(ctx);
    loop {
        let start = out.len();
        let more = plan.next_batch(ctx, out);
        let emitted = &out[start..];
        if !emitted.is_empty() {
            let bytes: u64 = emitted.iter().map(tuple_width).sum();
            ctx.charge(OpClass::ResultEmit, emitted.len() as u64);
            ctx.charge_mem_bytes(bytes);
        }
        if !more {
            return;
        }
    }
}

/// Execute a plan with `workers` morsel-parallel worker threads.
///
/// Identical result rows and a bit-identical merged ledger to
/// [`execute`] at every worker count. Parallelism applies wherever the
/// plan allows it: a fully partitionable plan (scan → filter → project)
/// is gathered morsel-parallel here at the root, and blocking operators
/// ([`crate::ops::HashJoin`], [`crate::ops::HashAggregate`],
/// [`crate::ops::Sort`]) parallelize their own inputs during `open`.
/// With `workers == 1` this is exactly [`execute`].
pub fn execute_parallel(plan: &mut dyn Operator, ctx: &mut ExecCtx, workers: usize) -> Vec<Tuple> {
    let mut out = Vec::new();
    execute_parallel_into(plan, ctx, workers, &mut out);
    out
}

/// Like [`execute_parallel`], appending into an existing buffer.
pub fn execute_parallel_into(
    plan: &mut dyn Operator,
    ctx: &mut ExecCtx,
    workers: usize,
    out: &mut Vec<Tuple>,
) {
    ctx.workers = workers.max(1);
    // Root-level gather for fully partitionable plans; the result-path
    // charges below match execute_into's per-batch charging exactly.
    if let Some(rows) = gather_parallel(plan, ctx) {
        if !rows.is_empty() {
            let bytes: u64 = rows.iter().map(tuple_width).sum();
            ctx.charge(OpClass::ResultEmit, rows.len() as u64);
            ctx.charge_mem_bytes(bytes);
        }
        out.extend(rows);
        return;
    }
    execute_into(plan, ctx, out);
}

/// Execute a plan tuple-at-a-time (the Volcano baseline the batch path
/// is benchmarked against). Identical results and ledger to
/// [`execute`]; strictly more per-tuple overhead.
pub fn execute_scalar(plan: &mut dyn Operator, ctx: &mut ExecCtx) -> Vec<Tuple> {
    let mut out = Vec::new();
    execute_into_scalar(plan, ctx, &mut out);
    out
}

/// Like [`execute_scalar`], appending into an existing buffer.
pub fn execute_into_scalar(plan: &mut dyn Operator, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) {
    plan.open(ctx);
    while let Some(t) = plan.next(ctx) {
        ctx.charge(OpClass::ResultEmit, 1);
        ctx.charge_mem_bytes(tuple_width(&t));
        out.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::ops::{Filter, VecSource};
    use eco_storage::{ColumnType, Schema, Value};

    fn plan() -> Filter {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let src = VecSource::new(schema, (0..20).map(|i| vec![Value::Int(i)]).collect());
        Filter::new(
            Box::new(src),
            Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(15)),
        )
    }

    #[test]
    fn executes_and_charges_result_emission() {
        let mut p = plan();
        let mut ctx = ExecCtx::new();
        let rows = execute(&mut p, &mut ctx);
        assert_eq!(rows.len(), 5);
        assert_eq!(ctx.cpu.count(OpClass::ResultEmit), 5);
        assert!(ctx.mem_stream_bytes > 0);
    }

    #[test]
    fn scalar_and_batch_agree_on_rows_and_ledger() {
        let mut ctx_s = ExecCtx::new().with_batch_size(1);
        let rows_s = execute_scalar(&mut plan(), &mut ctx_s);

        for batch_size in [1, 3, 7, 1024] {
            let mut ctx_b = ExecCtx::new().with_batch_size(batch_size);
            let rows_b = execute(&mut plan(), &mut ctx_b);
            assert_eq!(rows_b, rows_s, "batch size {batch_size}");
            assert_eq!(ctx_b.cpu, ctx_s.cpu, "batch size {batch_size}");
            assert_eq!(ctx_b.mem_stream_bytes, ctx_s.mem_stream_bytes);
            assert_eq!(ctx_b.mem_random_accesses, ctx_s.mem_random_accesses);
            assert_eq!(ctx_b.pred_evals, ctx_s.pred_evals);
        }
    }

    #[test]
    fn execute_into_reuses_buffer() {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let mut out = Vec::with_capacity(64);
        for round in 0..3 {
            out.clear();
            let mut src = VecSource::new(
                schema.clone(),
                (0..4).map(|i| vec![Value::Int(i)]).collect(),
            );
            let mut ctx = ExecCtx::new();
            execute_into(&mut src, &mut ctx, &mut out);
            assert_eq!(out.len(), 4, "round {round}");
        }
    }
}
