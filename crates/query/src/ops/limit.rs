//! Limit: truncate a stream after N tuples.

use eco_storage::{Schema, Tuple};

use crate::context::ExecCtx;
use crate::ops::{BoxedOp, Operator};

/// Emits at most `n` tuples from its child.
///
/// Batch mode deliberately pulls the child tuple-at-a-time: early
/// termination must consume — and therefore charge — exactly as much of
/// the child stream as scalar execution does, keeping the energy ledger
/// batch-invariant even for limits over non-blocking pipelines. The
/// pipeline *below* a blocking child (sort, aggregate) still runs
/// vectorized inside that child's `open`.
///
/// The same contract governs parallelism: `open` raises
/// [`ExecCtx::streaming_exact`] while opening its subtree, so streaming
/// pipelines below never pre-materialize in parallel (they would
/// consume — and charge — more of the stream than scalar execution).
/// Blocking descendants clear the flag for their own subtrees, since
/// they drain their input fully in any mode; so `Limit → Sort → …`
/// still parallelizes everything below the sort.
pub struct Limit {
    child: BoxedOp,
    n: usize,
    emitted: usize,
}

impl Limit {
    /// Limit `child` to `n` rows.
    pub fn new(child: BoxedOp, n: usize) -> Self {
        Self {
            child,
            n,
            emitted: 0,
        }
    }
}

impl Operator for Limit {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        self.emitted = 0;
        ctx.streaming_exact += 1;
        self.child.open(ctx);
        ctx.streaming_exact -= 1;
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        if self.emitted >= self.n {
            return None;
        }
        let t = self.child.next(ctx)?;
        self.emitted += 1;
        Some(t)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
        if self.emitted >= self.n {
            return false;
        }
        let want = ctx.batch_size.max(1).min(self.n - self.emitted);
        for _ in 0..want {
            match self.child.next(ctx) {
                Some(t) => {
                    out.push(t);
                    self.emitted += 1;
                }
                None => return false,
            }
        }
        self.emitted < self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::VecSource;
    use eco_storage::{ColumnType, Value};

    #[test]
    fn truncates() {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let src = VecSource::new(schema, (0..10).map(|i| vec![Value::Int(i)]).collect());
        let mut l = Limit::new(Box::new(src), 3);
        let mut ctx = ExecCtx::new();
        l.open(&mut ctx);
        let out: Vec<Tuple> = std::iter::from_fn(|| l.next(&mut ctx)).collect();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn limit_zero_and_larger_than_input() {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let mk = |n: usize| {
            let src = VecSource::new(
                schema.clone(),
                (0..2).map(|i| vec![Value::Int(i)]).collect(),
            );
            Limit::new(Box::new(src), n)
        };
        let mut ctx = ExecCtx::new();
        let mut l0 = mk(0);
        l0.open(&mut ctx);
        assert!(l0.next(&mut ctx).is_none());
        let mut l9 = mk(9);
        l9.open(&mut ctx);
        assert_eq!(std::iter::from_fn(|| l9.next(&mut ctx)).count(), 2);
    }
}
