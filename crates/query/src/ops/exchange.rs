//! Exchange and gather-merge: the explicit parallelism operators.
//!
//! [`Exchange`] is the plan node that moves a partitionable pipeline
//! onto worker threads: at `open` it splits its child into morsels,
//! runs the per-morsel pipeline clones in parallel, and then streams
//! the gathered output. [`GatherMerge`] is the order-preserving
//! variant placed below order-sensitive consumers ([`super::Sort`]
//! charges one `SortCmp` per *actual* comparison, which depends on
//! input order — so its input must arrive in exactly the serial order).
//!
//! In this engine *both* gather in morsel order — that is precisely
//! what makes the parallel energy ledger and output stream bit-identical
//! to serial execution, the repo's load-bearing invariant. The two
//! names encode intent at plan-construction time: an `Exchange`
//! consumer promises not to depend on tuple order (so a future
//! relaxation to eager arrival-order gather stays safe), a
//! `GatherMerge` consumer does depend on it.
//!
//! When the context is serial (`workers == 1`), the child is not
//! partitionable, or the plan sits under a `Limit`
//! ([`crate::context::ExecCtx::streaming_exact`]), both operators
//! delegate to the child unchanged — zero cost, identical ledger.

use eco_storage::{Schema, Tuple};

use crate::context::ExecCtx;
use crate::expr::Expr;
use crate::ops::{BoxedOp, Operator};
use crate::parallel::{gather_parallel, Morsel};

/// Shared implementation of the two gather operators.
struct Gather {
    child: BoxedOp,
    /// Parallel-gathered output (morsel order); `None` while delegating
    /// to the child in serial mode.
    buffered: Option<Vec<Tuple>>,
    pos: usize,
}

impl Gather {
    fn new(child: BoxedOp) -> Self {
        Self {
            child,
            buffered: None,
            pos: 0,
        }
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        self.pos = 0;
        self.buffered = gather_parallel(self.child.as_ref(), ctx);
        if self.buffered.is_none() {
            self.child.open(ctx);
        }
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        match &self.buffered {
            Some(rows) => {
                let t = rows.get(self.pos)?.clone();
                self.pos += 1;
                Some(t)
            }
            None => self.child.next(ctx),
        }
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
        match &self.buffered {
            Some(rows) => {
                let end = (self.pos + ctx.batch_size.max(1)).min(rows.len());
                out.extend_from_slice(&rows[self.pos..end]);
                self.pos = end;
                self.pos < rows.len()
            }
            None => self.child.next_batch(ctx, out),
        }
    }
}

macro_rules! gather_operator {
    ($name:ident) => {
        impl Operator for $name {
            fn schema(&self) -> &Schema {
                self.inner.child.schema()
            }

            fn open(&mut self, ctx: &mut ExecCtx) {
                self.inner.open(ctx);
            }

            fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
                self.inner.next(ctx)
            }

            fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
                self.inner.next_batch(ctx, out)
            }

            fn morsels(&self, target_rows: usize) -> Option<Vec<Morsel>> {
                // An exchange is itself a pipeline breaker: consumers
                // partition *below* it, never through it.
                let _ = target_rows;
                None
            }

            fn clone_morsel(&self, _morsel: &Morsel) -> Option<BoxedOp> {
                None
            }

            fn next_batch_filtered(
                &mut self,
                ctx: &mut ExecCtx,
                predicate: &Expr,
                out: &mut Vec<Tuple>,
            ) -> Option<bool> {
                // Only sensible while delegating (serial mode); the
                // gathered buffer has no fused path.
                if self.inner.buffered.is_none() {
                    self.inner.child.next_batch_filtered(ctx, predicate, out)
                } else {
                    None
                }
            }
        }
    };
}

/// Parallelize a partitionable child pipeline across worker threads,
/// gathering its full output at `open`. Consumers must not rely on
/// tuple order (use [`GatherMerge`] when they do — here both currently
/// gather in morsel order, see the module docs).
pub struct Exchange {
    inner: Gather,
}

impl Exchange {
    /// Exchange over `child`.
    pub fn new(child: BoxedOp) -> Self {
        Self {
            inner: Gather::new(child),
        }
    }
}

gather_operator!(Exchange);

/// Order-preserving parallel gather: like [`Exchange`], with the
/// explicit contract that output arrives in exactly the order serial
/// execution of the child would produce — required below [`super::Sort`]
/// and any other consumer whose charges depend on input order.
pub struct GatherMerge {
    inner: Gather,
}

impl GatherMerge {
    /// Order-preserving gather over `child`.
    pub fn new(child: BoxedOp) -> Self {
        Self {
            inner: Gather::new(child),
        }
    }
}

gather_operator!(GatherMerge);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::ops::{Filter, VecSource};
    use eco_storage::{ColumnType, Value};

    fn pipeline(n: i64) -> BoxedOp {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let src = VecSource::new(schema, (0..n).map(|i| vec![Value::Int(i)]).collect());
        Box::new(Filter::new(
            Box::new(src),
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(n / 3)),
        ))
    }

    fn drain(op: &mut dyn Operator, ctx: &mut ExecCtx) -> Vec<Tuple> {
        op.open(ctx);
        let mut out = Vec::new();
        while op.next_batch(ctx, &mut out) {}
        out
    }

    #[test]
    fn exchange_matches_serial_child() {
        let mut serial_ctx = ExecCtx::new();
        let serial = drain(pipeline(900).as_mut(), &mut serial_ctx);
        for workers in [1, 2, 5] {
            let mut ex = Exchange::new(pipeline(900));
            let mut ctx = ExecCtx::new().with_workers(workers).with_morsel_rows(100);
            let rows = drain(&mut ex, &mut ctx);
            assert_eq!(rows, serial, "workers={workers}");
            assert_eq!(ctx.cpu, serial_ctx.cpu, "workers={workers}");
        }
    }

    #[test]
    fn gather_merge_preserves_order_scalar_pull() {
        let mut gm = GatherMerge::new(pipeline(600));
        let mut ctx = ExecCtx::new().with_workers(4).with_morsel_rows(64);
        gm.open(&mut ctx);
        let rows: Vec<i64> = std::iter::from_fn(|| gm.next(&mut ctx))
            .map(|t| t[0].as_int().unwrap())
            .collect();
        assert_eq!(rows, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn exchange_is_a_pipeline_breaker() {
        let ex = Exchange::new(pipeline(100));
        assert!(ex.morsels(10).is_none());
    }
}
