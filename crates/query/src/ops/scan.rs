//! Sequential scan over a stored table (memory or disk engine).

use std::sync::Arc;

use eco_simhw::trace::OpClass;
use eco_storage::{Schema, StoredTable, TableData, Tuple};

use crate::context::ExecCtx;
use crate::expr::Expr;
use crate::ops::Operator;

/// Full-table sequential scan.
///
/// Charges one `TupleFetch` plus the tuple's average width in memory
/// bytes per tuple produced. Disk-engine scans additionally drain the
/// buffer pool's I/O ledger into the context after every page.
///
/// The batch path emits whole page slices per call (capped at the
/// context's batch size) instead of advancing a per-tuple page cursor;
/// the fused path additionally evaluates a pushed-down predicate over
/// borrowed rows so non-matching tuples are never cloned.
pub struct SeqScan {
    table: Arc<StoredTable>,
    avg_bytes: u64,
    // Disk-engine state.
    page_no: usize,
    current: Option<Arc<Vec<Tuple>>>,
    idx: usize,
}

impl SeqScan {
    /// Scan over a catalog table.
    pub fn new(table: Arc<StoredTable>) -> Self {
        let avg_bytes = table.avg_tuple_bytes();
        Self {
            table,
            avg_bytes,
            page_no: 0,
            current: None,
            idx: 0,
        }
    }

    /// The table being scanned.
    pub fn table(&self) -> &Arc<StoredTable> {
        &self.table
    }

    fn charge_tuple(&self, ctx: &mut ExecCtx) {
        ctx.charge(OpClass::TupleFetch, 1);
        ctx.charge_mem_bytes(self.avg_bytes);
    }

    /// Charge `n` tuple fetches at once — the batch-mode equivalent of
    /// `n` [`Self::charge_tuple`] calls, by construction bit-identical
    /// in the ledger.
    fn charge_tuples(&self, ctx: &mut ExecCtx, n: u64) {
        if n > 0 {
            ctx.charge(OpClass::TupleFetch, n);
            ctx.charge_mem_bytes(self.avg_bytes * n);
        }
    }

    /// Ensure `self.current` holds the next unread disk page, charging
    /// buffer pool I/O. Returns `false` at end of table.
    fn advance_disk_page(&mut self, ctx: &mut ExecCtx) -> bool {
        let TableData::Disk(disk) = &self.table.data else {
            unreachable!("advance_disk_page on a memory table");
        };
        if let Some(page) = &self.current {
            if self.idx < page.len() {
                return true;
            }
        }
        if self.page_no >= disk.num_pages() {
            self.current = None;
            return false;
        }
        let page = disk.read_page(self.page_no);
        // Attribute whatever I/O the pool performed to this query.
        ctx.charge_disk(disk.pool().take_io());
        self.page_no += 1;
        self.idx = 0;
        self.current = Some(page);
        true
    }
}

impl Operator for SeqScan {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn open(&mut self, _ctx: &mut ExecCtx) {
        self.page_no = 0;
        self.current = None;
        self.idx = 0;
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        match &self.table.data {
            TableData::Memory(heap) => {
                let tuples = heap.tuples();
                if self.idx < tuples.len() {
                    let t = tuples[self.idx].clone();
                    self.idx += 1;
                    self.charge_tuple(ctx);
                    Some(t)
                } else {
                    None
                }
            }
            TableData::Disk(_) => {
                if !self.advance_disk_page(ctx) {
                    return None;
                }
                let page = self.current.as_ref().expect("page resident");
                let t = page[self.idx].clone();
                self.idx += 1;
                self.charge_tuple(ctx);
                Some(t)
            }
        }
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
        self.scan_batch(ctx, None, out)
    }

    fn next_batch_filtered(
        &mut self,
        ctx: &mut ExecCtx,
        predicate: &Expr,
        out: &mut Vec<Tuple>,
    ) -> Option<bool> {
        Some(self.scan_batch(ctx, Some(predicate), out))
    }
}

impl SeqScan {
    /// The single batch cursor loop behind both `next_batch`
    /// (`predicate: None`) and `next_batch_filtered`: scan up to
    /// `batch_size` input rows, materializing all of them or only the
    /// predicate's survivors.
    fn scan_batch(
        &mut self,
        ctx: &mut ExecCtx,
        predicate: Option<&Expr>,
        out: &mut Vec<Tuple>,
    ) -> bool {
        fn emit(rows: &[Tuple], predicate: Option<&Expr>, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) {
            match predicate {
                None => out.extend_from_slice(rows),
                Some(p) => {
                    for t in rows {
                        if p.eval_bool(t, ctx) {
                            out.push(t.clone());
                        }
                    }
                }
            }
        }

        let want = ctx.batch_size.max(1);
        match &self.table.data {
            TableData::Memory(heap) => {
                let tuples = heap.tuples();
                let end = (self.idx + want).min(tuples.len());
                emit(&tuples[self.idx..end], predicate, ctx, out);
                self.charge_tuples(ctx, (end - self.idx) as u64);
                self.idx = end;
                self.idx < tuples.len()
            }
            TableData::Disk(_) => {
                let mut scanned = 0usize;
                let mut more = true;
                while scanned < want {
                    if !self.advance_disk_page(ctx) {
                        more = false;
                        break;
                    }
                    let page = Arc::clone(self.current.as_ref().expect("page resident"));
                    let end = (self.idx + (want - scanned)).min(page.len());
                    emit(&page[self.idx..end], predicate, ctx, out);
                    scanned += end - self.idx;
                    self.idx = end;
                }
                self.charge_tuples(ctx, scanned as u64);
                more
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_storage::{Catalog, ColumnType, HeapTable, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(&[("k", ColumnType::Int)]);
        let tuples: Vec<Tuple> = (0..500).map(|i| vec![Value::Int(i)]).collect();
        let mut cat = Catalog::new(64);
        cat.add_memory_table("m", HeapTable::from_tuples(schema.clone(), tuples.clone()));
        cat.add_disk_table("d", schema, &tuples);
        cat
    }

    #[test]
    fn memory_scan_produces_all_tuples_and_charges() {
        let cat = catalog();
        let mut scan = SeqScan::new(cat.expect("m"));
        let mut ctx = ExecCtx::new();
        scan.open(&mut ctx);
        let mut n = 0;
        while let Some(t) = scan.next(&mut ctx) {
            assert_eq!(t[0], Value::Int(n));
            n += 1;
        }
        assert_eq!(n, 500);
        assert_eq!(ctx.cpu.count(OpClass::TupleFetch), 500);
        assert!(ctx.mem_stream_bytes > 0);
        assert!(ctx.disk.is_empty(), "memory engine never hits disk");
    }

    #[test]
    fn disk_scan_charges_io_once_then_runs_warm() {
        let cat = catalog();
        let table = cat.expect("d");
        let mut ctx = ExecCtx::new();
        let mut scan = SeqScan::new(Arc::clone(&table));
        scan.open(&mut ctx);
        let n = std::iter::from_fn(|| scan.next(&mut ctx)).count();
        assert_eq!(n, 500);
        assert!(!ctx.disk.is_empty(), "cold scan must charge I/O");

        // Second scan: warm.
        let mut ctx2 = ExecCtx::new();
        let mut scan2 = SeqScan::new(table);
        scan2.open(&mut ctx2);
        let n2 = std::iter::from_fn(|| scan2.next(&mut ctx2)).count();
        assert_eq!(n2, 500);
        assert!(ctx2.disk.is_empty(), "warm scan is I/O-free");
    }

    #[test]
    fn reopen_rescans() {
        let cat = catalog();
        let mut scan = SeqScan::new(cat.expect("m"));
        let mut ctx = ExecCtx::new();
        scan.open(&mut ctx);
        assert!(scan.next(&mut ctx).is_some());
        scan.open(&mut ctx);
        assert_eq!(scan.next(&mut ctx).unwrap()[0], Value::Int(0));
    }
}
