//! Sequential scan over a stored table (memory or disk engine).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eco_simhw::trace::{OpClass, PricingMode};
use eco_storage::{Schema, StoredTable, TableData, Tuple};

use crate::chunk::Chunk;
use crate::context::ExecCtx;
use crate::expr::Expr;
use crate::ops::{BoxedOp, Operator};
use crate::parallel::{split_units, Morsel};

/// Allocator for private buffer-pool scan streams (stream 0 is the
/// shared default cursor; partitioned scans each get their own so
/// sequential-transfer detection survives interleaved workers).
static NEXT_SCAN_STREAM: AtomicU64 = AtomicU64::new(1);

/// The portion of the table this scan covers.
#[derive(Debug, Clone, Copy)]
enum ScanBounds {
    /// The whole table (the serial scan).
    Full,
    /// Rows `[start, end)` of a memory table.
    MemoryRows { start: usize, end: usize },
    /// Pages `[start, end)` of a disk table, read on a private
    /// buffer-pool stream.
    DiskPages {
        start: usize,
        end: usize,
        stream: u64,
    },
}

/// Full-table sequential scan.
///
/// Charges one `TupleFetch` plus the tuple's average width in memory
/// bytes per tuple produced. Disk-engine scans additionally drain the
/// buffer pool's I/O ledger into the context after every page.
///
/// Under [`PricingMode::Compressed`] (ledger schema v3) the per-tuple
/// memory charge is the table's average *encoded* width instead — the
/// deterministic table-wide mean of the encoded mirrors' byte counts,
/// so every scan geometry (scalar, batch, columnar, any morsel split)
/// prices the same bytes. Disk I/O is unaffected: pages store raw
/// tuples, so cold reads cost what they always did. Columnar chunks
/// additionally carry the encoded mirror so downstream kernels can run
/// directly on the compressed form.
///
/// The batch path emits whole page slices per call (capped at the
/// context's batch size) instead of advancing a per-tuple page cursor;
/// the fused path additionally evaluates a pushed-down predicate over
/// borrowed rows so non-matching tuples are never cloned.
///
/// For parallel execution the scan partitions itself into [`Morsel`]s:
/// row ranges on the memory engine, whole disk *extents* on the disk
/// engine. Extent alignment matters for ledger identity — serial cold
/// scans charge one repositioning per extent and stream within it, and
/// an extent-aligned partition read on its own buffer-pool stream
/// charges exactly the same pattern.
pub struct SeqScan {
    table: Arc<StoredTable>,
    avg_bytes: u64,
    bounds: ScanBounds,
    // Disk-engine state.
    page_no: usize,
    current: Option<Arc<Vec<Tuple>>>,
    idx: usize,
}

impl SeqScan {
    /// Scan over a catalog table.
    pub fn new(table: Arc<StoredTable>) -> Self {
        let avg_bytes = table.avg_tuple_bytes();
        Self {
            table,
            avg_bytes,
            bounds: ScanBounds::Full,
            page_no: 0,
            current: None,
            idx: 0,
        }
    }

    /// The table being scanned.
    pub fn table(&self) -> &Arc<StoredTable> {
        &self.table
    }

    fn charge_tuple(&self, ctx: &mut ExecCtx) {
        ctx.charge(OpClass::TupleFetch, 1);
        ctx.charge_mem_bytes(self.avg_bytes);
    }

    /// Charge `n` tuple fetches at once — the batch-mode equivalent of
    /// `n` [`Self::charge_tuple`] calls, by construction bit-identical
    /// in the ledger.
    fn charge_tuples(&self, ctx: &mut ExecCtx, n: u64) {
        if n > 0 {
            ctx.charge(OpClass::TupleFetch, n);
            ctx.charge_mem_bytes(self.avg_bytes * n);
        }
    }

    /// First memory-row index of this scan's range.
    fn mem_start(&self) -> usize {
        match self.bounds {
            ScanBounds::MemoryRows { start, .. } => start,
            _ => 0,
        }
    }

    /// One-past-last memory-row index of this scan's range.
    fn mem_end(&self, total: usize) -> usize {
        match self.bounds {
            ScanBounds::MemoryRows { end, .. } => end.min(total),
            _ => total,
        }
    }

    /// Page range `[start, end)` this scan covers on the disk engine.
    fn page_range(&self, num_pages: usize) -> (usize, usize) {
        match self.bounds {
            ScanBounds::DiskPages { start, end, .. } => (start, end.min(num_pages)),
            _ => (0, num_pages),
        }
    }

    /// Ensure `self.current` holds the next unread disk page, charging
    /// buffer pool I/O. Returns `false` at end of the scan's range.
    fn advance_disk_page(&mut self, ctx: &mut ExecCtx) -> bool {
        let TableData::Disk(disk) = &self.table.data else {
            unreachable!("advance_disk_page on a memory table");
        };
        if let Some(page) = &self.current {
            if self.idx < page.len() {
                return true;
            }
        }
        let (_, end) = self.page_range(disk.num_pages());
        if self.page_no >= end {
            self.current = None;
            if let ScanBounds::DiskPages { stream, .. } = self.bounds {
                // Release the pool's per-stream scan-position entry —
                // stream ids are never reused, so a finished partition
                // must clean up after itself.
                disk.end_stream(stream);
            }
            return false;
        }
        let page = match self.bounds {
            ScanBounds::DiskPages { stream, .. } => {
                // Private stream: this access's I/O is returned directly
                // and attributed to this worker's ledger.
                match disk.read_page_stream_checked(self.page_no, stream) {
                    Ok((page, io, backoff_ns)) => {
                        ctx.charge_disk(io);
                        ctx.charge_backoff(backoff_ns);
                        page
                    }
                    Err(e) => {
                        ctx.fail(e.into());
                        disk.end_stream(stream);
                        self.current = None;
                        return false;
                    }
                }
            }
            _ => match disk.read_page_checked(self.page_no) {
                Ok((page, backoff_ns)) => {
                    // Attribute whatever I/O the pool performed to this query.
                    ctx.charge_disk(disk.pool().take_io());
                    ctx.charge_backoff(backoff_ns);
                    page
                }
                Err(e) => {
                    ctx.fail(e.into());
                    self.current = None;
                    return false;
                }
            },
        };
        self.page_no += 1;
        self.idx = 0;
        self.current = Some(page);
        true
    }
}

impl Operator for SeqScan {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        // Re-derive the priced width from the context's pricing mode:
        // raw prices stored tuple bytes, compressed prices the encoded
        // mirror's average. Done here (not in `new`) so the encoded
        // mirror is only ever built on compressed-priced executions.
        self.avg_bytes = match ctx.pricing {
            PricingMode::Raw => self.table.avg_tuple_bytes(),
            PricingMode::Compressed => match &self.table.data {
                TableData::Memory(heap) => heap.encoded().avg_tuple_bytes(),
                TableData::Disk(disk) => disk.columnar().avg_encoded_tuple_bytes(),
            },
        };
        self.current = None;
        match (&self.table.data, self.bounds) {
            (TableData::Disk(disk), _) => {
                let (start, _) = self.page_range(disk.num_pages());
                self.page_no = start;
                self.idx = 0;
            }
            (TableData::Memory(_), _) => {
                self.page_no = 0;
                self.idx = self.mem_start();
            }
        }
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        match &self.table.data {
            TableData::Memory(heap) => {
                let tuples = heap.tuples();
                if self.idx < self.mem_end(tuples.len()) {
                    let t = tuples[self.idx].clone();
                    self.idx += 1;
                    self.charge_tuple(ctx);
                    Some(t)
                } else {
                    None
                }
            }
            TableData::Disk(_) => {
                if !self.advance_disk_page(ctx) {
                    return None;
                }
                let page = self.current.as_ref().expect("page resident");
                let t = page[self.idx].clone();
                self.idx += 1;
                self.charge_tuple(ctx);
                Some(t)
            }
        }
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
        self.scan_batch(ctx, None, out)
    }

    /// Columnar scan: emit `Arc`-shared windows over the table's
    /// columnar mirror — no per-row clone, no per-tuple `Vec`. Charges
    /// are identical to the row scan: one `TupleFetch` plus the average
    /// width per row, and on the disk engine every covered page is
    /// still driven through the buffer pool (same misses, hits and warm
    /// re-reads — the mirror supplies the *data*, never the I/O).
    fn next_chunk(&mut self, ctx: &mut ExecCtx) -> Option<Chunk> {
        match &self.table.data {
            TableData::Memory(heap) => {
                let cols = heap.columns();
                let limit = self.mem_end(cols.len());
                if self.idx >= limit {
                    return None;
                }
                let end = (self.idx + ctx.batch_size.max(1)).min(limit);
                let mut chunk = Chunk::window(Arc::clone(cols), self.idx..end);
                if ctx.pricing == PricingMode::Compressed {
                    chunk = chunk.with_enc(Arc::clone(heap.encoded()));
                }
                self.charge_tuples(ctx, (end - self.idx) as u64);
                self.idx = end;
                Some(chunk)
            }
            TableData::Disk(disk) => {
                let (_, bound_end) = self.page_range(disk.num_pages());
                if self.page_no >= bound_end {
                    return None;
                }
                // One extent (the I/O scheduling granule) per call:
                // charge the pool for every covered page, then emit the
                // extent chunk's matching row window.
                let extent = eco_storage::bufferpool::EXTENT_PAGES as usize;
                let extent_no = self.page_no / extent;
                let page_end = ((extent_no + 1) * extent).min(bound_end);
                for p in self.page_no..page_end {
                    match self.bounds {
                        ScanBounds::DiskPages { stream, .. } => {
                            match disk.read_page_stream_checked(p, stream) {
                                Ok((_, io, backoff_ns)) => {
                                    ctx.charge_disk(io);
                                    ctx.charge_backoff(backoff_ns);
                                }
                                Err(e) => {
                                    ctx.fail(e.into());
                                    disk.end_stream(stream);
                                    return None;
                                }
                            }
                        }
                        _ => match disk.read_page_checked(p) {
                            Ok((_, backoff_ns)) => {
                                ctx.charge_disk(disk.pool().take_io());
                                ctx.charge_backoff(backoff_ns);
                            }
                            Err(e) => {
                                ctx.fail(e.into());
                                return None;
                            }
                        },
                    }
                }
                let cols = disk.columnar();
                let (g0, g1) = cols.page_row_range(self.page_no, page_end);
                let base = cols.extent_row_start(extent_no);
                let mut chunk = Chunk::window(
                    Arc::clone(cols.extent_chunk(extent_no)),
                    (g0 - base)..(g1 - base),
                );
                if ctx.pricing == PricingMode::Compressed {
                    chunk = chunk.with_enc(Arc::clone(cols.extent_encoded(extent_no)));
                }
                self.charge_tuples(ctx, (g1 - g0) as u64);
                self.page_no = page_end;
                if self.page_no >= bound_end {
                    if let ScanBounds::DiskPages { stream, .. } = self.bounds {
                        disk.end_stream(stream);
                    }
                }
                Some(chunk)
            }
        }
    }

    fn next_batch_filtered(
        &mut self,
        ctx: &mut ExecCtx,
        predicate: &Expr,
        out: &mut Vec<Tuple>,
    ) -> Option<bool> {
        Some(self.scan_batch(ctx, Some(predicate), out))
    }

    fn morsels(&self, target_rows: usize) -> Option<Vec<Morsel>> {
        if !matches!(self.bounds, ScanBounds::Full) {
            // Already a partition of some other scan; never re-split.
            return None;
        }
        match &self.table.data {
            TableData::Memory(heap) => {
                let n = heap.tuples().len();
                (n > 0).then(|| split_units(n, target_rows))
            }
            TableData::Disk(disk) => {
                let pages = disk.num_pages();
                if pages == 0 {
                    return None;
                }
                // Convert the row target to pages, then round *up* to
                // whole extents: serial scans charge one repositioning
                // per extent start, so extent-aligned morsels on
                // private streams reproduce the exact same I/O split.
                let extent = eco_storage::bufferpool::EXTENT_PAGES as usize;
                let tuples_per_page = disk.len().div_ceil(pages).max(1);
                let raw_pages = target_rows.div_ceil(tuples_per_page).max(1);
                let per_morsel = raw_pages.div_ceil(extent) * extent;
                Some(split_units(pages, per_morsel))
            }
        }
    }

    fn clone_morsel(&self, morsel: &Morsel) -> Option<BoxedOp> {
        if !matches!(self.bounds, ScanBounds::Full) {
            return None;
        }
        let bounds = match &self.table.data {
            TableData::Memory(_) => ScanBounds::MemoryRows {
                start: morsel.start,
                end: morsel.end,
            },
            TableData::Disk(_) => ScanBounds::DiskPages {
                start: morsel.start,
                end: morsel.end,
                stream: NEXT_SCAN_STREAM.fetch_add(1, Ordering::Relaxed),
            },
        };
        Some(Box::new(SeqScan {
            table: Arc::clone(&self.table),
            avg_bytes: self.avg_bytes,
            bounds,
            page_no: 0,
            current: None,
            idx: 0,
        }))
    }
}

impl SeqScan {
    /// The single batch cursor loop behind both `next_batch`
    /// (`predicate: None`) and `next_batch_filtered`: scan up to
    /// `batch_size` input rows, materializing all of them or only the
    /// predicate's survivors.
    fn scan_batch(
        &mut self,
        ctx: &mut ExecCtx,
        predicate: Option<&Expr>,
        out: &mut Vec<Tuple>,
    ) -> bool {
        fn emit(rows: &[Tuple], predicate: Option<&Expr>, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) {
            match predicate {
                None => out.extend_from_slice(rows),
                Some(p) => {
                    for t in rows {
                        if p.eval_bool(t, ctx) {
                            out.push(t.clone());
                        }
                    }
                }
            }
        }

        let want = ctx.batch_size.max(1);
        match &self.table.data {
            TableData::Memory(heap) => {
                let tuples = heap.tuples();
                let limit = self.mem_end(tuples.len());
                let end = (self.idx + want).min(limit);
                emit(&tuples[self.idx..end], predicate, ctx, out);
                self.charge_tuples(ctx, (end - self.idx) as u64);
                self.idx = end;
                self.idx < limit
            }
            TableData::Disk(_) => {
                let mut scanned = 0usize;
                let mut more = true;
                while scanned < want {
                    if !self.advance_disk_page(ctx) {
                        more = false;
                        break;
                    }
                    let page = Arc::clone(self.current.as_ref().expect("page resident"));
                    let end = (self.idx + (want - scanned)).min(page.len());
                    emit(&page[self.idx..end], predicate, ctx, out);
                    scanned += end - self.idx;
                    self.idx = end;
                }
                self.charge_tuples(ctx, scanned as u64);
                more
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_storage::{Catalog, ColumnType, HeapTable, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(&[("k", ColumnType::Int)]);
        let tuples: Vec<Tuple> = (0..500).map(|i| vec![Value::Int(i)]).collect();
        let mut cat = Catalog::new(64);
        cat.add_memory_table("m", HeapTable::from_tuples(schema.clone(), tuples.clone()));
        cat.add_disk_table("d", schema, &tuples);
        cat
    }

    #[test]
    fn memory_scan_produces_all_tuples_and_charges() {
        let cat = catalog();
        let mut scan = SeqScan::new(cat.expect("m"));
        let mut ctx = ExecCtx::new();
        scan.open(&mut ctx);
        let mut n = 0;
        while let Some(t) = scan.next(&mut ctx) {
            assert_eq!(t[0], Value::Int(n));
            n += 1;
        }
        assert_eq!(n, 500);
        assert_eq!(ctx.cpu.count(OpClass::TupleFetch), 500);
        assert!(ctx.mem_stream_bytes > 0);
        assert!(ctx.disk.is_empty(), "memory engine never hits disk");
    }

    #[test]
    fn disk_scan_charges_io_once_then_runs_warm() {
        let cat = catalog();
        let table = cat.expect("d");
        let mut ctx = ExecCtx::new();
        let mut scan = SeqScan::new(Arc::clone(&table));
        scan.open(&mut ctx);
        let n = std::iter::from_fn(|| scan.next(&mut ctx)).count();
        assert_eq!(n, 500);
        assert!(!ctx.disk.is_empty(), "cold scan must charge I/O");

        // Second scan: warm.
        let mut ctx2 = ExecCtx::new();
        let mut scan2 = SeqScan::new(table);
        scan2.open(&mut ctx2);
        let n2 = std::iter::from_fn(|| scan2.next(&mut ctx2)).count();
        assert_eq!(n2, 500);
        assert!(ctx2.disk.is_empty(), "warm scan is I/O-free");
    }

    #[test]
    fn reopen_rescans() {
        let cat = catalog();
        let mut scan = SeqScan::new(cat.expect("m"));
        let mut ctx = ExecCtx::new();
        scan.open(&mut ctx);
        assert!(scan.next(&mut ctx).is_some());
        scan.open(&mut ctx);
        assert_eq!(scan.next(&mut ctx).unwrap()[0], Value::Int(0));
    }

    #[test]
    fn memory_morsels_cover_rows_exactly_once() {
        let cat = catalog();
        let scan = SeqScan::new(cat.expect("m"));
        let morsels = scan.morsels(128).expect("memory scans partition");
        assert!(morsels.len() >= 3);
        let mut ctx = ExecCtx::new();
        let mut all = Vec::new();
        for m in &morsels {
            let mut part = scan.clone_morsel(m).expect("clone");
            part.open(&mut ctx);
            while let Some(t) = part.next(&mut ctx) {
                all.push(t);
            }
        }
        let expected: Vec<Tuple> = (0..500).map(|i| vec![Value::Int(i)]).collect();
        assert_eq!(all, expected, "morsel order reproduces the serial stream");
        assert_eq!(ctx.cpu.count(OpClass::TupleFetch), 500);
    }

    #[test]
    fn compressed_pricing_charges_fewer_bytes_same_rows() {
        let schema = Schema::new(&[("k", ColumnType::Int), ("s", ColumnType::Str)]);
        let tuples: Vec<Tuple> = (0..2000)
            .map(|i| vec![Value::Int(i % 16), Value::str(format!("g{}", i % 8))])
            .collect();
        let mut cat = Catalog::new(1 << 20);
        cat.add_memory_table("m", HeapTable::from_tuples(schema.clone(), tuples.clone()));
        cat.add_disk_table("d", schema, &tuples);

        for name in ["m", "d"] {
            let table = cat.expect(name);
            let mut raw = ExecCtx::new();
            let mut scan = SeqScan::new(Arc::clone(&table));
            scan.open(&mut raw);
            let raw_rows = std::iter::from_fn(|| scan.next(&mut raw)).count();

            let mut comp = ExecCtx::new().with_pricing(PricingMode::Compressed);
            let mut scan = SeqScan::new(Arc::clone(&table));
            scan.open(&mut comp);
            let comp_rows = std::iter::from_fn(|| scan.next(&mut comp)).count();

            assert_eq!(raw_rows, comp_rows, "{name}: same rows either way");
            assert_eq!(
                raw.cpu.count(OpClass::TupleFetch),
                comp.cpu.count(OpClass::TupleFetch),
                "{name}: fetch counts are pricing-independent"
            );
            assert!(
                comp.mem_stream_bytes < raw.mem_stream_bytes,
                "{name}: encoded pricing must charge fewer bytes \
                 ({} vs {})",
                comp.mem_stream_bytes,
                raw.mem_stream_bytes
            );
        }

        // Columnar chunks carry the encoded mirror only when compressed.
        let table = cat.expect("m");
        let mut raw = ExecCtx::new().with_columnar(true);
        let mut scan = SeqScan::new(Arc::clone(&table));
        scan.open(&mut raw);
        assert!(scan.next_chunk(&mut raw).expect("chunk").enc.is_none());
        let mut comp = ExecCtx::new()
            .with_columnar(true)
            .with_pricing(PricingMode::Compressed);
        let mut scan = SeqScan::new(table);
        scan.open(&mut comp);
        assert!(scan.next_chunk(&mut comp).expect("chunk").enc.is_some());
    }

    #[test]
    fn disk_morsels_are_extent_aligned_and_charge_identical_io() {
        let schema = Schema::new(&[("k", ColumnType::Int), ("s", ColumnType::Str)]);
        let tuples: Vec<Tuple> = (0..20_000)
            .map(|i| vec![Value::Int(i), Value::str(format!("row-{i:08}"))])
            .collect();
        let mut cat = Catalog::new(1 << 20);
        cat.add_disk_table("d", schema, &tuples);
        let table = cat.expect("d");

        // Serial cold scan I/O.
        let mut serial_ctx = ExecCtx::new();
        let mut scan = SeqScan::new(Arc::clone(&table));
        scan.open(&mut serial_ctx);
        let serial_rows = std::iter::from_fn(|| scan.next(&mut serial_ctx)).count();
        let serial_io = serial_ctx.disk;

        // Flush and rescan cold through morsels.
        cat.pool().flush();
        let scan = SeqScan::new(table);
        let morsels = scan.morsels(1024).expect("disk scans partition");
        assert!(morsels.len() >= 2, "{morsels:?}");
        let extent = eco_storage::bufferpool::EXTENT_PAGES as usize;
        for m in &morsels {
            assert_eq!(m.start % extent, 0, "morsels start on extent boundaries");
        }
        let mut ctx = ExecCtx::new();
        let mut rows = 0;
        for m in &morsels {
            let mut part = scan.clone_morsel(m).expect("clone");
            part.open(&mut ctx);
            rows += std::iter::from_fn(|| part.next(&mut ctx)).count();
        }
        assert_eq!(rows, serial_rows);
        assert_eq!(ctx.disk, serial_io, "cold morsel I/O identical to serial");
    }
}
