//! Index nested-loop join: probe a B-tree per outer row.

use std::sync::Arc;

use eco_simhw::trace::{OpClass, PricingMode};
use eco_storage::{tuple_width, BTreeIndex, Schema, StoredTable, TableData, Tuple};

use crate::context::ExecCtx;
use crate::ops::{BoxedOp, Operator};

/// Index nested-loop join (ledger schema v4).
///
/// For every outer row, probes the inner table's B-tree index with the
/// outer join-key value and fetches the matching inner base rows,
/// emitting `outer ++ inner` concatenations. Against a selective outer
/// this touches only the inner pages that actually join — the classic
/// alternative to hashing the whole inner — at the price of one tree
/// descent per outer row, all charged as **index random I/O** plus
/// [`OpClass::NodeSearch`] steps.
///
/// Charges per outer row: one `TupleFetch`-free probe (node searches +
/// index-page I/O). Charges per matching inner row: one `TupleFetch`
/// plus the inner table's average tuple width in memory bytes (the
/// [`super::SeqScan`] base-fetch charges), and the concatenated output
/// row's width in memory bytes (the [`super::HashJoin`] output charge).
/// So an IxJoin and a HashJoin of the same inputs produce identical
/// *rows* while their ledgers differ exactly where the access paths
/// differ — which is what makes the join-strategy energy comparison
/// measurable.
///
/// Mismatched key types (outer key vs. index key) simply never match,
/// like any type-mismatched comparison in this engine.
pub struct IxJoin {
    outer: BoxedOp,
    outer_key: usize,
    inner: Arc<StoredTable>,
    index: Arc<BTreeIndex>,
    schema: Schema,
    avg_inner_bytes: u64,
    // Current outer row and its pending inner matches.
    outer_row: Option<Tuple>,
    pending: Vec<usize>,
    pos: usize,
    current: Option<(usize, Arc<Vec<Tuple>>)>,
}

impl IxJoin {
    /// Join `outer` to `inner` through `index`, matching outer column
    /// `outer_key` against the indexed column. Panics if `inner` is not
    /// a disk table.
    pub fn new(
        outer: BoxedOp,
        outer_key: usize,
        inner: Arc<StoredTable>,
        index: Arc<BTreeIndex>,
    ) -> Self {
        assert!(
            matches!(inner.data, TableData::Disk(_)),
            "IxJoin inner {:?} is not a disk table",
            inner.name
        );
        assert!(
            outer_key < outer.schema().arity(),
            "outer key column {outer_key} out of range"
        );
        let schema = outer.schema().join(inner.schema());
        let avg_inner_bytes = inner.avg_tuple_bytes();
        Self {
            outer,
            outer_key,
            inner,
            index,
            schema,
            avg_inner_bytes,
            outer_row: None,
            pending: Vec::new(),
            pos: 0,
            current: None,
        }
    }

    /// Fetch inner base page `page_no` (cached across consecutive
    /// sorted row ids), charging the v4 index classes. Returns `false`
    /// after recording a read error.
    fn fetch_page(&mut self, ctx: &mut ExecCtx, page_no: usize) -> bool {
        if matches!(&self.current, Some((p, _)) if *p == page_no) {
            return true;
        }
        let TableData::Disk(disk) = &self.inner.data else {
            unreachable!("IxJoin constructor enforces a disk inner");
        };
        match disk.read_page_index_checked(page_no) {
            Ok((page, io, backoff_ns)) => {
                ctx.charge_disk(io);
                ctx.charge_backoff(backoff_ns);
                self.current = Some((page_no, page));
                true
            }
            Err(e) => {
                ctx.fail(e.into());
                self.outer_row = None;
                self.pending.clear();
                false
            }
        }
    }

    /// Advance to the next outer row that has at least one inner match.
    /// Returns `false` when the outer stream (or the query, on error)
    /// ends.
    fn advance_outer(&mut self, ctx: &mut ExecCtx) -> bool {
        loop {
            let Some(row) = self.outer.next(ctx) else {
                self.outer_row = None;
                return false;
            };
            match self.index.probe_point(&row[self.outer_key]) {
                Ok(probe) => {
                    if probe.node_searches > 0 {
                        ctx.charge(OpClass::NodeSearch, probe.node_searches);
                    }
                    ctx.charge_disk(probe.io);
                    ctx.charge_backoff(probe.backoff_ns);
                    if probe.row_ids.is_empty() {
                        continue;
                    }
                    self.pending = probe.row_ids;
                    self.pos = 0;
                    self.outer_row = Some(row);
                    return true;
                }
                Err(e) => {
                    ctx.fail(e.into());
                    self.outer_row = None;
                    return false;
                }
            }
        }
    }
}

impl Operator for IxJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        self.outer.open(ctx);
        // Inner base fetches price like SeqScan tuples: raw or encoded
        // average width, re-derived per execution's pricing mode.
        self.avg_inner_bytes = match ctx.pricing {
            PricingMode::Raw => self.inner.avg_tuple_bytes(),
            PricingMode::Compressed => match &self.inner.data {
                TableData::Memory(heap) => heap.encoded().avg_tuple_bytes(),
                TableData::Disk(disk) => disk.columnar().avg_encoded_tuple_bytes(),
            },
        };
        self.outer_row = None;
        self.pending = Vec::new();
        self.pos = 0;
        self.current = None;
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        // `advance_outer` only returns true with matches pending, so one
        // emission attempt per call suffices — no retry loop needed.
        if (self.outer_row.is_none() || self.pos >= self.pending.len()) && !self.advance_outer(ctx)
        {
            return None;
        }
        let TableData::Disk(disk) = &self.inner.data else {
            unreachable!("IxJoin constructor enforces a disk inner");
        };
        let row_id = self.pending[self.pos];
        let (page_no, slot) = disk.row_location(row_id);
        if !self.fetch_page(ctx, page_no) {
            return None;
        }
        self.pos += 1;
        let (_, page) = self.current.as_ref().expect("page resident");
        let inner_t = &page[slot];
        ctx.charge(OpClass::TupleFetch, 1);
        ctx.charge_mem_bytes(self.avg_inner_bytes);
        let outer_t = self.outer_row.as_ref().expect("outer row set");
        let mut out = Vec::with_capacity(self.schema.arity());
        out.extend_from_slice(outer_t);
        out.extend_from_slice(inner_t);
        ctx.charge_mem_bytes(tuple_width(&out));
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::VecSource;
    use eco_storage::{Catalog, ColumnType, Value};

    fn setup() -> (Catalog, Vec<Tuple>) {
        let schema = Schema::new(&[("k", ColumnType::Int), ("tag", ColumnType::Str)]);
        // Two inner rows per key so multi-match emission is exercised.
        let tuples: Vec<Tuple> = (0..2000)
            .map(|i| vec![Value::Int(i / 2), Value::str(format!("in-{i:05}"))])
            .collect();
        let mut cat = Catalog::new(1 << 16);
        cat.add_disk_table("inner", schema, &tuples);
        cat.create_index("ix_inner_k", "inner", "k").expect("index");
        let outer: Vec<Tuple> = [5i64, 17, 999, 12345]
            .iter()
            .map(|&k| vec![Value::Int(k), Value::str(format!("out-{k}"))])
            .collect();
        (cat, outer)
    }

    #[test]
    fn joins_matching_rows_in_outer_order() {
        let (cat, outer) = setup();
        let outer_schema = Schema::new(&[("ok", ColumnType::Int), ("otag", ColumnType::Str)]);
        let src = Box::new(VecSource::new(outer_schema, outer));
        let ix = cat.index("ix_inner_k").expect("registered");
        let mut join = IxJoin::new(src, 0, cat.expect("inner"), Arc::clone(&ix.index));
        assert_eq!(join.schema().arity(), 4);
        let mut ctx = ExecCtx::new();
        join.open(&mut ctx);
        let rows: Vec<Tuple> = std::iter::from_fn(|| join.next(&mut ctx)).collect();
        assert!(ctx.error().is_none());
        // Keys 5, 17, 999 each match two inner rows; 12345 matches none.
        assert_eq!(rows.len(), 6);
        let keys: Vec<i64> = rows.iter().filter_map(|t| t[0].as_int()).collect();
        assert_eq!(keys, vec![5, 5, 17, 17, 999, 999]);
        for t in &rows {
            assert_eq!(t[0], t[2], "join keys agree across the seam");
        }
        assert_eq!(ctx.cpu.count(OpClass::TupleFetch), 6, "inner fetches only");
        assert!(ctx.cpu.count(OpClass::NodeSearch) > 0, "4 probes descended");
    }

    #[test]
    fn probe_io_lands_on_v4_classes_only() {
        let (cat, outer) = setup();
        cat.pool().flush();
        let outer_schema = Schema::new(&[("ok", ColumnType::Int)]);
        let src = Box::new(VecSource::new(
            outer_schema,
            outer.into_iter().map(|t| vec![t[0].clone()]).collect(),
        ));
        let ix = cat.index("ix_inner_k").expect("registered");
        let mut join = IxJoin::new(src, 0, cat.expect("inner"), Arc::clone(&ix.index));
        let mut ctx = ExecCtx::new();
        join.open(&mut ctx);
        while join.next(&mut ctx).is_some() {}
        assert!(ctx.disk.index_ios > 0, "cold probes pay index I/O");
        assert_eq!(ctx.disk.sequential_bytes, 0);
        assert_eq!(ctx.disk.random_ios, 0);
        assert_eq!(ctx.disk.retry_ios, 0);
    }
}
