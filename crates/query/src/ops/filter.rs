//! Filter: pass tuples satisfying a predicate.

use eco_storage::{Schema, Tuple};

use crate::chunk::Chunk;
use crate::context::ExecCtx;
use crate::expr::Expr;
use crate::ops::{BoxedOp, Operator};
use crate::parallel::Morsel;

/// Predicate filter. The expression evaluator itself charges one
/// `PredEval` per comparison, so selective predicates are cheap and
/// wide disjunctions expensive — exactly the effect QED trades on.
///
/// In batch mode the filter first offers its predicate to the child via
/// [`Operator::next_batch_filtered`]; scan-like children then evaluate
/// it over borrowed rows and never materialize non-matching tuples.
/// Children without a fused path fall back to a pulled batch compacted
/// in place.
///
/// In columnar mode ([`Operator::next_chunk`]) the predicate is
/// evaluated column-at-a-time into the chunk's *selection vector* —
/// no row is ever materialized or moved; non-matching rows are simply
/// dropped from the selection. Charges are identical to evaluating the
/// predicate against every live row ([`Expr::filter_sel`]).
pub struct Filter {
    child: BoxedOp,
    predicate: Expr,
}

impl Filter {
    /// Filter `child` by `predicate` (a boolean expression over the
    /// child's output schema).
    pub fn new(child: BoxedOp, predicate: Expr) -> Self {
        Self { child, predicate }
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        loop {
            let t = self.child.next(ctx)?;
            if self.predicate.eval_bool(&t, ctx) {
                return Some(t);
            }
        }
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
        if let Some(more) = self.child.next_batch_filtered(ctx, &self.predicate, out) {
            return more;
        }
        // Generic path: pull one child batch, compact survivors in
        // place (stable, allocation-free).
        let start = out.len();
        let more = self.child.next_batch(ctx, out);
        let mut write = start;
        for read in start..out.len() {
            if self.predicate.eval_bool(&out[read], ctx) {
                out.swap(write, read);
                write += 1;
            }
        }
        out.truncate(write);
        more
    }

    fn next_chunk(&mut self, ctx: &mut ExecCtx) -> Option<Chunk> {
        let mut chunk = self.child.next_chunk(ctx)?;
        if chunk.is_empty() {
            return Some(chunk);
        }
        let mut sel = match chunk.sel.take() {
            Some(sel) => sel,
            None => chunk.rows().to_indices(),
        };
        match &chunk.enc {
            // Compressed pricing with an encoded mirror attached by the
            // scan: filter directly on the compressed form (dictionary
            // ids, runs, packed words; see [`Expr::filter_sel_enc`]).
            Some(enc) => self
                .predicate
                .filter_sel_enc(&chunk.data, enc, &mut sel, ctx),
            None => self.predicate.filter_sel(&chunk.data, &mut sel, ctx),
        }
        Some(chunk.with_sel(sel))
    }

    fn morsels(&self, target_rows: usize) -> Option<Vec<Morsel>> {
        self.child.morsels(target_rows)
    }

    fn clone_morsel(&self, morsel: &Morsel) -> Option<BoxedOp> {
        let child = self.child.clone_morsel(morsel)?;
        Some(Box::new(Filter::new(child, self.predicate.clone())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::ops::VecSource;
    use eco_storage::{ColumnType, Value};

    #[test]
    fn filters_and_charges() {
        let schema = Schema::new(&[("k", ColumnType::Int)]);
        let tuples: Vec<Tuple> = (0..100).map(|i| vec![Value::Int(i)]).collect();
        let src = VecSource::new(schema, tuples);
        let mut f = Filter::new(
            Box::new(src),
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(10)),
        );
        let mut ctx = ExecCtx::new();
        f.open(&mut ctx);
        let out: Vec<Tuple> = std::iter::from_fn(|| f.next(&mut ctx)).collect();
        assert_eq!(out.len(), 10);
        assert_eq!(ctx.pred_evals, 100, "predicate evaluated per input row");
    }
}
