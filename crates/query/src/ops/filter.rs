//! Filter: pass tuples satisfying a predicate.

use eco_storage::{Schema, Tuple};

use crate::context::ExecCtx;
use crate::expr::Expr;
use crate::ops::{BoxedOp, Operator};

/// Predicate filter. The expression evaluator itself charges one
/// `PredEval` per comparison, so selective predicates are cheap and
/// wide disjunctions expensive — exactly the effect QED trades on.
pub struct Filter {
    child: BoxedOp,
    predicate: Expr,
}

impl Filter {
    /// Filter `child` by `predicate` (a boolean expression over the
    /// child's output schema).
    pub fn new(child: BoxedOp, predicate: Expr) -> Self {
        Self { child, predicate }
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        loop {
            let t = self.child.next(ctx)?;
            if self.predicate.eval_bool(&t, ctx) {
                return Some(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::ops::VecSource;
    use eco_storage::{ColumnType, Value};

    #[test]
    fn filters_and_charges() {
        let schema = Schema::new(&[("k", ColumnType::Int)]);
        let tuples: Vec<Tuple> = (0..100).map(|i| vec![Value::Int(i)]).collect();
        let src = VecSource::new(schema, tuples);
        let mut f = Filter::new(
            Box::new(src),
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(10)),
        );
        let mut ctx = ExecCtx::new();
        f.open(&mut ctx);
        let out: Vec<Tuple> = std::iter::from_fn(|| f.next(&mut ctx)).collect();
        assert_eq!(out.len(), 10);
        assert_eq!(ctx.pred_evals, 100, "predicate evaluated per input row");
    }
}
