//! Sort: materialize and order by key columns.

use eco_simhw::trace::OpClass;
use eco_storage::{tuple_width, Schema, Tuple};

use crate::context::ExecCtx;
use crate::ops::{drain_batches, drain_chunks, BoxedOp, Operator};
use crate::parallel::gather_parallel;

/// One sort key: column index plus direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Column index in the child schema.
    pub col: usize,
    /// Sort descending when true.
    pub desc: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(col: usize) -> Self {
        Self { col, desc: false }
    }

    /// Descending key.
    pub fn desc(col: usize) -> Self {
        Self { col, desc: true }
    }
}

/// Full materializing sort. Charges one `SortCmp` per actual comparison
/// performed by the sort algorithm plus materialization bytes.
///
/// In a parallel context a partitionable child is drained through an
/// order-preserving morsel gather (the inlined [`super::GatherMerge`]
/// pattern) and the sort itself runs serially over the gathered rows.
/// The comparison count of the sort algorithm depends on input order,
/// so presenting the *exact serial input sequence* is what keeps the
/// `SortCmp` charge — and with it the energy ledger — identical at
/// every worker count.
pub struct Sort {
    child: BoxedOp,
    keys: Vec<SortKey>,
    results: std::vec::IntoIter<Tuple>,
}

impl Sort {
    /// Sort `child` by `keys` (lexicographic, first key most significant).
    pub fn new(child: BoxedOp, keys: Vec<SortKey>) -> Self {
        assert!(!keys.is_empty(), "sort needs at least one key");
        Self {
            child,
            keys,
            results: Vec::new().into_iter(),
        }
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        // A sort drains its input fully in every mode; clear any
        // surrounding Limit's streaming-exactness constraint for the
        // subtree.
        let saved_exact = ctx.streaming_exact;
        ctx.streaming_exact = 0;
        let mut rows = match gather_parallel(self.child.as_ref(), ctx) {
            Some(rows) => {
                // Materialization charge, identical to the serial
                // per-batch sum below.
                let bytes: u64 = rows.iter().map(tuple_width).sum();
                ctx.charge_mem_bytes(bytes);
                rows
            }
            None if ctx.columnar => {
                // Columnar child: the sort is a pipeline breaker, so
                // this is where rows materialize (late), with the same
                // per-row width charge as the batch drain below.
                self.child.open(ctx);
                let mut rows = Vec::new();
                drain_chunks(self.child.as_mut(), ctx, |ctx, chunk| {
                    let start = rows.len();
                    chunk.to_tuples(&mut rows);
                    let bytes: u64 = rows[start..].iter().map(tuple_width).sum();
                    ctx.charge_mem_bytes(bytes);
                });
                rows
            }
            None => {
                self.child.open(ctx);
                let mut rows = Vec::new();
                let mut scratch = Vec::new();
                drain_batches(self.child.as_mut(), ctx, &mut scratch, |ctx, batch| {
                    let bytes: u64 = batch.iter().map(tuple_width).sum();
                    ctx.charge_mem_bytes(bytes);
                    rows.append(batch);
                });
                rows
            }
        };
        ctx.streaming_exact = saved_exact;
        let keys = self.keys.clone();
        let mut comparisons: u64 = 0;
        rows.sort_by(|a, b| {
            comparisons += 1;
            for k in &keys {
                let ord = a[k.col]
                    .partial_cmp_typed(&b[k.col])
                    .expect("sort keys comparable");
                let ord = if k.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        ctx.charge(OpClass::SortCmp, comparisons);
        self.results = rows.into_iter();
    }

    fn next(&mut self, _ctx: &mut ExecCtx) -> Option<Tuple> {
        self.results.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::VecSource;
    use eco_storage::{ColumnType, Value};

    fn src(vals: &[i64]) -> VecSource {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        VecSource::new(schema, vals.iter().map(|&v| vec![Value::Int(v)]).collect())
    }

    fn run(s: &mut Sort) -> Vec<i64> {
        let mut ctx = ExecCtx::new();
        s.open(&mut ctx);
        std::iter::from_fn(|| s.next(&mut ctx))
            .map(|t| t[0].as_int().unwrap())
            .collect()
    }

    #[test]
    fn ascending_and_descending() {
        let mut s = Sort::new(Box::new(src(&[3, 1, 2])), vec![SortKey::asc(0)]);
        assert_eq!(run(&mut s), vec![1, 2, 3]);
        let mut s = Sort::new(Box::new(src(&[3, 1, 2])), vec![SortKey::desc(0)]);
        assert_eq!(run(&mut s), vec![3, 2, 1]);
    }

    #[test]
    fn multi_key_lexicographic() {
        let schema = Schema::new(&[("a", ColumnType::Int), ("b", ColumnType::Int)]);
        let src = VecSource::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(0), Value::Int(9)],
            ],
        );
        let mut s = Sort::new(Box::new(src), vec![SortKey::asc(0), SortKey::asc(1)]);
        let mut ctx = ExecCtx::new();
        s.open(&mut ctx);
        let out: Vec<Tuple> = std::iter::from_fn(|| s.next(&mut ctx)).collect();
        assert_eq!(out[0], vec![Value::Int(0), Value::Int(9)]);
        assert_eq!(out[1], vec![Value::Int(1), Value::Int(1)]);
        assert_eq!(out[2], vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn charges_real_comparison_count() {
        let mut s = Sort::new(Box::new(src(&[5, 4, 3, 2, 1])), vec![SortKey::asc(0)]);
        let mut ctx = ExecCtx::new();
        s.open(&mut ctx);
        let cmps = ctx.cpu.count(OpClass::SortCmp);
        assert!(
            cmps >= 4,
            "5 elements need at least 4 comparisons, got {cmps}"
        );
    }

    #[test]
    fn empty_input() {
        let mut s = Sort::new(Box::new(src(&[])), vec![SortKey::asc(0)]);
        assert!(run(&mut s).is_empty());
    }
}
