//! Index scan: B-tree probe + base-row fetches over a disk table.

use std::sync::Arc;

use eco_simhw::trace::{OpClass, PricingMode};
use eco_storage::{BTreeIndex, KeyBound, Schema, StoredTable, TableData, Tuple, Value};

use crate::context::ExecCtx;
use crate::ops::Operator;

/// An owned probe bound ([`KeyBound`] borrows; plan nodes own their
/// literals).
#[derive(Debug, Clone, PartialEq)]
pub enum IxBound {
    /// No bound on this side.
    Unbounded,
    /// Bound included in the result.
    Inclusive(Value),
    /// Bound excluded from the result.
    Exclusive(Value),
}

impl IxBound {
    /// Borrow as the storage layer's probe bound.
    pub fn as_key_bound(&self) -> KeyBound<'_> {
        match self {
            IxBound::Unbounded => KeyBound::Unbounded,
            IxBound::Inclusive(v) => KeyBound::Inclusive(v),
            IxBound::Exclusive(v) => KeyBound::Exclusive(v),
        }
    }
}

/// Index scan over a disk table through a B-tree secondary index
/// (ledger schema v4).
///
/// `open` descends the tree once — point or range probe — charging one
/// [`OpClass::NodeSearch`] per binary-search step and routing every
/// index-page miss through the buffer pool's **index random I/O**
/// classes (`index_ios`/`index_bytes`, priced exactly like random I/O).
/// The probe yields the matching row ids in ascending order, so the
/// output stream is the table-order subsequence a full scan plus filter
/// would produce — bit-identical rows, which the `prop_index` property
/// test enforces.
///
/// Base-row fetches then pull exactly the pages holding matching rows,
/// also on the index charge path: a selective probe touches a few
/// scattered pages, which is random access by nature, and keeping it
/// off the v1 sequential/random scan classes preserves the bit-identity
/// of index-free ledgers. Per tuple produced it charges one
/// `TupleFetch` plus the table's average tuple width in memory bytes —
/// the same per-row charges as [`super::SeqScan`], so the scan-vs-probe
/// energy crossover is carried entirely by the I/O and node-search
/// terms, as in the paper's fig. 5 random-vs-sequential split.
///
/// Matching row ids arrive sorted, so consecutive fetches of the same
/// page reuse one pinned page (one pool access per distinct page, like
/// a skip-sequential read).
pub struct IxScan {
    table: Arc<StoredTable>,
    index: Arc<BTreeIndex>,
    lo: IxBound,
    hi: IxBound,
    avg_bytes: u64,
    row_ids: Vec<usize>,
    pos: usize,
    current: Option<(usize, Arc<Vec<Tuple>>)>,
}

impl IxScan {
    /// Range scan `lo..hi` through `index`. Panics if `table` is not a
    /// disk table (only disk tables carry indexes — the catalog rejects
    /// the rest at `CREATE INDEX` time).
    pub fn range(
        table: Arc<StoredTable>,
        index: Arc<BTreeIndex>,
        lo: IxBound,
        hi: IxBound,
    ) -> Self {
        assert!(
            matches!(table.data, TableData::Disk(_)),
            "IxScan over non-disk table {:?}",
            table.name
        );
        let avg_bytes = table.avg_tuple_bytes();
        Self {
            table,
            index,
            lo,
            hi,
            avg_bytes,
            row_ids: Vec::new(),
            pos: 0,
            current: None,
        }
    }

    /// Point lookup `key` through `index`.
    pub fn point(table: Arc<StoredTable>, index: Arc<BTreeIndex>, key: Value) -> Self {
        Self::range(
            table,
            index,
            IxBound::Inclusive(key.clone()),
            IxBound::Inclusive(key),
        )
    }

    /// The table being probed.
    pub fn table(&self) -> &Arc<StoredTable> {
        &self.table
    }

    /// Ensure `self.current` holds base page `page_no`, charging the
    /// pool access to the v4 index classes. Returns `false` (after
    /// recording the error) on a failed verified read.
    fn fetch_page(&mut self, ctx: &mut ExecCtx, page_no: usize) -> bool {
        if matches!(&self.current, Some((p, _)) if *p == page_no) {
            return true;
        }
        let TableData::Disk(disk) = &self.table.data else {
            unreachable!("IxScan constructor enforces a disk table");
        };
        match disk.read_page_index_checked(page_no) {
            Ok((page, io, backoff_ns)) => {
                ctx.charge_disk(io);
                ctx.charge_backoff(backoff_ns);
                self.current = Some((page_no, page));
                true
            }
            Err(e) => {
                ctx.fail(e.into());
                self.pos = self.row_ids.len();
                self.current = None;
                false
            }
        }
    }
}

impl Operator for IxScan {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        // Same pricing-mode re-derivation as SeqScan: produced tuples
        // price their average (raw or encoded) width as memory traffic.
        self.avg_bytes = match ctx.pricing {
            PricingMode::Raw => self.table.avg_tuple_bytes(),
            PricingMode::Compressed => match &self.table.data {
                TableData::Memory(heap) => heap.encoded().avg_tuple_bytes(),
                TableData::Disk(disk) => disk.columnar().avg_encoded_tuple_bytes(),
            },
        };
        self.pos = 0;
        self.current = None;
        match self
            .index
            .probe_range(self.lo.as_key_bound(), self.hi.as_key_bound())
        {
            Ok(probe) => {
                if probe.node_searches > 0 {
                    ctx.charge(OpClass::NodeSearch, probe.node_searches);
                }
                ctx.charge_disk(probe.io);
                ctx.charge_backoff(probe.backoff_ns);
                self.row_ids = probe.row_ids;
            }
            Err(e) => {
                ctx.fail(e.into());
                self.row_ids = Vec::new();
            }
        }
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        let TableData::Disk(disk) = &self.table.data else {
            unreachable!("IxScan constructor enforces a disk table");
        };
        let row = *self.row_ids.get(self.pos)?;
        let (page_no, slot) = disk.row_location(row);
        if !self.fetch_page(ctx, page_no) {
            return None;
        }
        self.pos += 1;
        let (_, page) = self.current.as_ref().expect("page resident");
        let t = page[slot].clone();
        ctx.charge(OpClass::TupleFetch, 1);
        ctx.charge_mem_bytes(self.avg_bytes);
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_simhw::trace::DiskWork;
    use eco_storage::{Catalog, ColumnType, Value};

    fn catalog(rows: i64) -> Catalog {
        let schema = Schema::new(&[("k", ColumnType::Int), ("tag", ColumnType::Str)]);
        let tuples: Vec<Tuple> = (0..rows)
            .map(|i| vec![Value::Int(i), Value::str(format!("row-{i:06}"))])
            .collect();
        let mut cat = Catalog::new(1 << 16);
        cat.add_disk_table("d", schema, &tuples);
        cat.create_index("ix_d_k", "d", "k").expect("index");
        cat
    }

    #[test]
    fn point_probe_returns_the_row_and_charges_v4_only() {
        let cat = catalog(5000);
        cat.pool().flush();
        let ix = cat.index("ix_d_k").expect("registered");
        let mut scan = IxScan::point(cat.expect("d"), Arc::clone(&ix.index), Value::Int(4321));
        let mut ctx = ExecCtx::new();
        scan.open(&mut ctx);
        let t = scan.next(&mut ctx).expect("one row");
        assert_eq!(t[0], Value::Int(4321));
        assert!(scan.next(&mut ctx).is_none());
        assert!(ctx.error().is_none());
        assert!(ctx.cpu.count(OpClass::NodeSearch) > 0);
        assert!(ctx.disk.index_ios > 0, "cold probe pays index I/O");
        assert_eq!(
            ctx.disk,
            DiskWork {
                index_ios: ctx.disk.index_ios,
                index_bytes: ctx.disk.index_bytes,
                ..DiskWork::none()
            },
            "probes never touch the v1 scan classes"
        );
    }

    #[test]
    fn range_scan_emits_table_order_and_reuses_pages() {
        let cat = catalog(5000);
        let ix = cat.index("ix_d_k").expect("registered");
        let mut scan = IxScan::range(
            cat.expect("d"),
            Arc::clone(&ix.index),
            IxBound::Inclusive(Value::Int(100)),
            IxBound::Exclusive(Value::Int(200)),
        );
        // Warm the pool so only the fetch pattern matters.
        let mut warm = ExecCtx::new();
        scan.open(&mut warm);
        while scan.next(&mut warm).is_some() {}

        let mut ctx = ExecCtx::new();
        scan.open(&mut ctx);
        let rows: Vec<Tuple> = std::iter::from_fn(|| scan.next(&mut ctx)).collect();
        assert_eq!(rows.len(), 100);
        for (i, t) in rows.iter().enumerate() {
            assert_eq!(t[0], Value::Int(100 + i as i64), "ascending table order");
        }
        assert_eq!(ctx.cpu.count(OpClass::TupleFetch), 100);
        assert!(ctx.disk.is_empty(), "warm probe is I/O-free");
        assert!(ctx.mem_stream_bytes > 0);
    }

    #[test]
    fn empty_range_produces_nothing() {
        let cat = catalog(100);
        let ix = cat.index("ix_d_k").expect("registered");
        let mut scan = IxScan::point(cat.expect("d"), Arc::clone(&ix.index), Value::Int(-5));
        let mut ctx = ExecCtx::new();
        scan.open(&mut ctx);
        assert!(scan.next(&mut ctx).is_none());
        assert!(ctx.error().is_none());
        assert_eq!(ctx.cpu.count(OpClass::TupleFetch), 0);
    }

    #[test]
    fn reopen_rescans() {
        let cat = catalog(100);
        let ix = cat.index("ix_d_k").expect("registered");
        let mut scan = IxScan::point(cat.expect("d"), Arc::clone(&ix.index), Value::Int(7));
        let mut ctx = ExecCtx::new();
        scan.open(&mut ctx);
        assert!(scan.next(&mut ctx).is_some());
        scan.open(&mut ctx);
        let t = scan.next(&mut ctx).expect("rescan");
        assert_eq!(t[0], Value::Int(7));
    }
}
