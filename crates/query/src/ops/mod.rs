//! Physical operators: a Volcano-style (open/next) executor with a
//! vectorized batch path layered on top.
//!
//! Every operator performs real work on real tuples and charges that
//! work into the [`ExecCtx`] ledger as it goes. The paper's headline
//! experiments run index-free ("In all our experiments, we did not
//! create any database indices"), so the default access path is the
//! sequential scan and the default join is the hash join
//! ([`SortMergeJoin`] exists for the operator-level energy studies).
//! Since ledger schema v4 the engine *additionally* offers indexed
//! access paths — [`IxScan`] (B-tree point/range probe) and [`IxJoin`]
//! (index nested-loop) — whose page accesses are charged as **index
//! random I/O**, a separately-ledgered class priced exactly like random
//! I/O. Plans that use no index charge nothing to those classes, so
//! every pre-v4 figure stays bit-identical while the random-vs-
//! sequential energy split of the paper's fig. 5 becomes measurable
//! from real query plans (see `eco_storage::btree`).
//!
//! # Batch execution
//!
//! [`Operator::next_batch`] is the vectorized counterpart of
//! [`Operator::next`]: one virtual call moves up to
//! [`ExecCtx::batch_size`] tuples instead of one, which removes the
//! per-tuple dynamic dispatch, `Option` shuffling and ledger-charge
//! calls that dominate tuple-at-a-time execution. Every built-in
//! operator implements a native batch path; the provided default simply
//! loops `next()`, so third-party operators keep working unchanged.
//!
//! Scan-like operators additionally implement
//! [`Operator::next_batch_filtered`], which lets [`Filter`] evaluate its
//! predicate against *borrowed* rows inside the scan and materialize
//! only the survivors — for selective predicates (TPC-H Q6 keeps ~2 % of
//! lineitem) this skips the dominant cost of the scalar path, the clone
//! of every scanned tuple.
//!
//! **The energy ledger is batch-invariant by construction.** Batch
//! paths charge the same per-tuple op classes with the same counts as
//! the scalar paths — aggregated per batch (`charge(class, n)`), never
//! re-priced — so a scalar and a batch execution of the same plan
//! produce bit-identical [`ExecCtx`] ledgers (op-class counts, memory
//! bytes, random accesses, disk I/O). The paper-reproduction figures
//! are computed from that ledger, so this invariant is load-bearing and
//! is enforced by `tests/integration_vectorized.rs`.
//!
//! The one deliberate asymmetry: [`Limit`] pulls from its child
//! tuple-at-a-time even in batch mode, so early termination consumes
//! exactly as much of the child stream — and charges exactly as much
//! work — as scalar execution would. Everything below a blocking
//! operator (sort, aggregate, hash build) still runs vectorized.
//!
//! # Columnar execution
//!
//! [`Operator::next_chunk`] is the columnar counterpart of
//! [`Operator::next_batch`]: instead of a `Vec<Tuple>` of heap-allocated
//! tagged values, a [`crate::chunk::Chunk`] moves an `Arc`-shared window
//! of typed column vectors (`eco-storage`'s [`DataChunk`] — one
//! contiguous `i64`/`i32`/`char`/`Arc<str>` array per column, plus
//! optional validity) together with an optional **selection vector**
//! naming the live rows. The pipeline idiom is
//! scan → select → compute → late-materialize:
//!
//! * [`SeqScan`] / [`VecSource`] emit windows over their table's
//!   columnar mirror — zero per-row work beyond the ledger charge;
//! * [`Filter`] (and the QED [`crate::mqo::MultiFilter`]) evaluate
//!   predicates column-at-a-time ([`crate::expr::Expr::filter_sel`]),
//!   refining the selection vector without touching data — short-circuit
//!   semantics become *selection narrowing*, with identical evaluation
//!   counts;
//! * [`Project`] runs expression kernels over typed slices into fresh
//!   columns; [`HashAggregate`] updates typed accumulator arrays keyed
//!   by group id; [`HashJoin`] hashes key columns directly and
//!   materializes only matching probe rows;
//! * rows come back into existence ([`crate::chunk::Chunk::to_tuples`])
//!   only at pipeline breakers that inherently need them (sort buffers,
//!   hash-build tables) and at the top of the plan.
//!
//! Every operator works under the columnar driver: the default
//! `next_chunk` wraps `next_batch` and decomposes the batch, so
//! operators without a native chunk path (e.g. [`Limit`], which must
//! keep scalar-exact stream consumption) remain correct.
//!
//! **The ledger is engine-invariant by the same construction as batch
//! invariance**: columnar paths charge the same per-tuple op classes
//! with the same counts, aggregated per chunk — never re-priced — and
//! columnar disk scans still drive every covered page through the
//! buffer pool (the columnar mirror supplies data, never I/O). Scalar,
//! batch and columnar ledgers are bit-identical on both storage
//! engines, cold and warm, at any chunk size and worker count
//! (`tests/integration_columnar.rs` and the `columnar_matches_scalar`
//! property test).
//!
//! # Morsel-driven parallel execution
//!
//! When [`ExecCtx::workers`] is greater than one, partitionable
//! pipelines execute in parallel: a *morsel* is a contiguous run of a
//! leaf's input ([`crate::parallel::Morsel`] — rows for memory-resident
//! sources, whole disk extents for paged tables), and
//! [`Operator::morsels`] / [`Operator::clone_morsel`] let non-blocking
//! pipeline segments (scan → filter → project chains) describe and
//! replicate themselves per morsel. Worker threads each run their
//! morsels' pipelines to completion, charging a private forked
//! [`ExecCtx`] ledger; per-morsel outputs are then stitched back
//! together **in morsel order**, so every consumer observes the exact
//! tuple stream serial execution would produce.
//!
//! Parallel consumption is built into the blocking operators —
//! [`HashJoin`] (partitioned parallel build, ordered parallel probe),
//! [`HashAggregate`] (per-morsel partial aggregation with an ordered
//! final merge) and [`Sort`] (order-preserving gather before a serial
//! sort, whose comparison count is input-order dependent) — and exposed
//! as standalone [`Exchange`] / [`GatherMerge`] operators for custom
//! plans.
//!
//! **The ledger is worker-count-invariant by the same construction as
//! batch invariance**: every charge is per-tuple and additive, morsels
//! partition the input exactly, and merging worker ledgers is
//! commutative addition — so the merged parallel ledger is bit-identical
//! to serial execution at any worker count and any morsel size
//! (enforced by `tests/integration_parallel.rs` and the
//! `parallel_matches_serial` property test). [`Limit`]'s early
//! termination is protected by [`ExecCtx::streaming_exact`]: under a
//! `Limit`, streaming pipelines never pre-materialize, while blocking
//! operators (which drain their input fully in any mode) re-enable
//! parallelism for their own subtrees.

mod agg;
mod exchange;
mod filter;
mod ix_join;
mod ix_scan;
mod join;
mod limit;
mod merge_join;
mod project;
mod scan;
mod sort;
mod source;

pub use agg::{AggSpec, HashAggregate};
pub use exchange::{Exchange, GatherMerge};
pub use filter::Filter;
pub use ix_join::IxJoin;
pub use ix_scan::{IxBound, IxScan};
pub use join::HashJoin;
pub use limit::Limit;
pub use merge_join::SortMergeJoin;
pub use project::Project;
pub use scan::SeqScan;
pub use sort::{Sort, SortKey};
pub use source::VecSource;

use std::sync::Arc;

use eco_storage::{DataChunk, Schema, Tuple};

use crate::chunk::Chunk;
use crate::context::ExecCtx;
use crate::expr::Expr;
use crate::parallel::Morsel;

/// A Volcano-style physical operator with an optional vectorized path
/// and an optional morsel-parallel decomposition.
///
/// Operators are `Send` so pipeline clones can move onto worker
/// threads; all state an operator owns is tuples, expressions and
/// `Arc`s of shared storage.
pub trait Operator: Send {
    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Prepare for execution (may consume children for blocking
    /// operators such as hash build, aggregation and sort).
    fn open(&mut self, ctx: &mut ExecCtx);

    /// Produce the next tuple, or `None` at end of stream.
    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple>;

    /// Produce the next batch of tuples, appending to `out`.
    ///
    /// Returns `false` once the stream is exhausted (the final call may
    /// still have appended a partial batch); afterwards further calls
    /// append nothing and keep returning `false`. A call is allowed to
    /// append fewer tuples than [`ExecCtx::batch_size`] — or none at
    /// all — while returning `true` (e.g. a filter batch where nothing
    /// matched), and fan-out operators such as joins may append more.
    ///
    /// The default implementation loops [`Operator::next`], so operators
    /// without a native batch path remain correct (and remain
    /// ledger-identical, since the ledger only ever counts per-tuple
    /// work).
    fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
        let target = out.len() + ctx.batch_size.max(1);
        while out.len() < target {
            match self.next(ctx) {
                Some(t) => out.push(t),
                None => return false,
            }
        }
        true
    }

    /// Produce the next [`Chunk`] of the columnar path, or `None` at
    /// end of stream.
    ///
    /// A returned chunk may have zero live rows (e.g. a filtered chunk
    /// where nothing matched) while the stream continues; drivers loop
    /// until `None`. Native implementations emit `Arc`-shared windows
    /// over columnar storage mirrors and refine *selection vectors*
    /// instead of materializing rows; the provided default wraps
    /// [`Operator::next_batch`] and decomposes the batch, so every
    /// operator — including third-party ones — keeps working under the
    /// columnar driver, with identical charges (decomposition itself is
    /// never charged, exactly like the row path's `Vec` shuffling).
    fn next_chunk(&mut self, ctx: &mut ExecCtx) -> Option<Chunk> {
        let mut rows = Vec::new();
        let more = self.next_batch(ctx, &mut rows);
        if rows.is_empty() && !more {
            return None;
        }
        Some(Chunk::dense(Arc::new(DataChunk::from_rows(
            self.schema(),
            &rows,
        ))))
    }

    /// Scan fusion hook: produce the next batch of tuples *satisfying
    /// `predicate`*, evaluating it against borrowed rows before they
    /// are materialized. Charges must be identical to a plain
    /// `next_batch` followed by predicate evaluation on every row.
    ///
    /// Returns `None` when the operator has no fused path (the
    /// default); `Some(more)` otherwise, with `more` as in
    /// [`Operator::next_batch`]. Only leaf operators that own their
    /// tuples ([`SeqScan`], [`VecSource`]) implement this; [`Filter`]
    /// consumes it.
    fn next_batch_filtered(
        &mut self,
        _ctx: &mut ExecCtx,
        _predicate: &Expr,
        _out: &mut Vec<Tuple>,
    ) -> Option<bool> {
        None
    }

    /// Morsel decomposition: if this subtree is a partitionable
    /// pipeline (a non-blocking chain over a single source leaf),
    /// return the morsels that cover its input exactly, sized near
    /// `target_rows` input tuples each. Leaves choose the unit (rows
    /// for memory sources; whole disk extents for paged tables, so
    /// parallel cold-scan I/O classifies identically to serial);
    /// streaming wrappers (filter, project) delegate to their child.
    ///
    /// `None` (the default) means the subtree cannot be partitioned and
    /// parallel consumers fall back to serial execution — which is
    /// always ledger-identical.
    fn morsels(&self, _target_rows: usize) -> Option<Vec<Morsel>> {
        None
    }

    /// Build a fresh, unopened copy of this pipeline restricted to one
    /// morsel of its input. Running every morsel's clone to completion
    /// and concatenating the outputs in morsel order reproduces this
    /// operator's serial output stream and charges, exactly.
    ///
    /// Must return `Some` for every morsel produced by
    /// [`Operator::morsels`], and `None` whenever `morsels` does.
    fn clone_morsel(&self, _morsel: &Morsel) -> Option<BoxedOp> {
        None
    }
}

/// A boxed operator (plan node).
pub type BoxedOp = Box<dyn Operator>;

/// Drain `child` to exhaustion, invoking `consume` on each non-empty
/// batch (blocking operators use this to materialize their input).
/// `scratch` is cleared and reused between batches.
///
/// With `batch_size <= 1` the child is pulled tuple-at-a-time through
/// [`Operator::next`], so a scalar context runs a genuinely scalar
/// pipeline end to end; either way `consume` observes the same tuples
/// and the ledger receives the same charges.
pub(crate) fn drain_batches(
    child: &mut dyn Operator,
    ctx: &mut ExecCtx,
    scratch: &mut Vec<Tuple>,
    mut consume: impl FnMut(&mut ExecCtx, &mut Vec<Tuple>),
) {
    if ctx.batch_size <= 1 {
        while let Some(t) = child.next(ctx) {
            scratch.clear();
            scratch.push(t);
            consume(ctx, scratch);
        }
        return;
    }
    loop {
        scratch.clear();
        let more = child.next_batch(ctx, scratch);
        if !scratch.is_empty() {
            consume(ctx, scratch);
        }
        if !more {
            return;
        }
    }
}

/// Drain `child` to exhaustion through the columnar path, invoking
/// `consume` on each non-empty chunk (the columnar counterpart of
/// [`drain_batches`], used by blocking operators when
/// [`ExecCtx::columnar`] is set).
pub(crate) fn drain_chunks(
    child: &mut dyn Operator,
    ctx: &mut ExecCtx,
    mut consume: impl FnMut(&mut ExecCtx, &Chunk),
) {
    while let Some(chunk) = child.next_chunk(ctx) {
        if !chunk.is_empty() {
            consume(ctx, &chunk);
        }
    }
}
