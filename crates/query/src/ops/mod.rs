//! Physical operators: a Volcano-style (open/next) executor.
//!
//! Every operator performs real work on real tuples and charges that
//! work into the [`ExecCtx`] ledger as it goes. No operator uses an
//! index — the paper's experiments run index-free ("In all our
//! experiments, we did not create any database indices"), so the access
//! paths are sequential scans and the default join is the hash join
//! ([`SortMergeJoin`] exists for the operator-level energy studies).

mod agg;
mod filter;
mod join;
mod limit;
mod merge_join;
mod project;
mod scan;
mod sort;
mod source;

pub use agg::{AggSpec, HashAggregate};
pub use filter::Filter;
pub use join::HashJoin;
pub use limit::Limit;
pub use merge_join::SortMergeJoin;
pub use project::Project;
pub use scan::SeqScan;
pub use sort::{Sort, SortKey};
pub use source::VecSource;

use eco_storage::{Schema, Tuple};

use crate::context::ExecCtx;

/// A Volcano-style physical operator.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// Prepare for execution (may consume children for blocking
    /// operators such as hash build, aggregation and sort).
    fn open(&mut self, ctx: &mut ExecCtx);
    /// Produce the next tuple, or `None` at end of stream.
    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple>;
}

/// A boxed operator (plan node).
pub type BoxedOp = Box<dyn Operator>;
