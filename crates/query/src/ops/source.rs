//! In-memory tuple source (tests, intermediate materializations).

use eco_storage::{Schema, Tuple};

use crate::context::ExecCtx;
use crate::expr::Expr;
use crate::ops::Operator;

/// Emits a fixed vector of tuples. Charges nothing — the tuples are
/// assumed already materialized (use [`crate::ops::SeqScan`] for
/// table access that should be priced).
pub struct VecSource {
    schema: Schema,
    tuples: Vec<Tuple>,
    idx: usize,
}

impl VecSource {
    /// Source over `tuples` with the given schema.
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Self {
        Self {
            schema,
            tuples,
            idx: 0,
        }
    }
}

impl Operator for VecSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, _ctx: &mut ExecCtx) {
        self.idx = 0;
    }

    fn next(&mut self, _ctx: &mut ExecCtx) -> Option<Tuple> {
        let t = self.tuples.get(self.idx)?.clone();
        self.idx += 1;
        Some(t)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
        let end = (self.idx + ctx.batch_size.max(1)).min(self.tuples.len());
        out.extend_from_slice(&self.tuples[self.idx..end]);
        self.idx = end;
        self.idx < self.tuples.len()
    }

    fn next_batch_filtered(
        &mut self,
        ctx: &mut ExecCtx,
        predicate: &Expr,
        out: &mut Vec<Tuple>,
    ) -> Option<bool> {
        let end = (self.idx + ctx.batch_size.max(1)).min(self.tuples.len());
        for t in &self.tuples[self.idx..end] {
            if predicate.eval_bool(t, ctx) {
                out.push(t.clone());
            }
        }
        self.idx = end;
        Some(self.idx < self.tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_storage::{ColumnType, Value};

    #[test]
    fn emits_all_then_none_and_reopens() {
        let schema = Schema::new(&[("k", ColumnType::Int)]);
        let mut s = VecSource::new(schema, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let mut ctx = ExecCtx::new();
        s.open(&mut ctx);
        assert_eq!(s.next(&mut ctx).unwrap()[0], Value::Int(1));
        assert_eq!(s.next(&mut ctx).unwrap()[0], Value::Int(2));
        assert!(s.next(&mut ctx).is_none());
        s.open(&mut ctx);
        assert_eq!(s.next(&mut ctx).unwrap()[0], Value::Int(1));
    }
}
