//! In-memory tuple source (tests, intermediate materializations).

use std::sync::{Arc, OnceLock};

use eco_storage::{DataChunk, Schema, Tuple};

use crate::chunk::Chunk;
use crate::context::ExecCtx;
use crate::expr::Expr;
use crate::ops::{BoxedOp, Operator};
use crate::parallel::{split_units, Morsel};

/// Emits a fixed vector of tuples. Charges nothing — the tuples are
/// assumed already materialized (use [`crate::ops::SeqScan`] for
/// table access that should be priced).
///
/// The tuples are held behind an `Arc`, so morsel partitions
/// ([`Operator::clone_morsel`]) share the data instead of copying it;
/// the lazily-built columnar mirror behind [`Operator::next_chunk`] is
/// shared the same way.
pub struct VecSource {
    schema: Schema,
    tuples: Arc<Vec<Tuple>>,
    columns: Arc<OnceLock<Arc<DataChunk>>>,
    start: usize,
    end: usize,
    idx: usize,
}

impl VecSource {
    /// Source over `tuples` with the given schema.
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Self {
        let end = tuples.len();
        Self {
            schema,
            tuples: Arc::new(tuples),
            columns: Arc::new(OnceLock::new()),
            start: 0,
            end,
            idx: 0,
        }
    }

    /// True when this source covers the full tuple vector (i.e. it is
    /// not itself a morsel partition).
    fn is_full(&self) -> bool {
        self.start == 0 && self.end == self.tuples.len()
    }
}

impl Operator for VecSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, _ctx: &mut ExecCtx) {
        self.idx = self.start;
    }

    fn next(&mut self, _ctx: &mut ExecCtx) -> Option<Tuple> {
        if self.idx >= self.end {
            return None;
        }
        let t = self.tuples[self.idx].clone();
        self.idx += 1;
        Some(t)
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
        let end = (self.idx + ctx.batch_size.max(1)).min(self.end);
        out.extend_from_slice(&self.tuples[self.idx..end]);
        self.idx = end;
        self.idx < self.end
    }

    fn next_batch_filtered(
        &mut self,
        ctx: &mut ExecCtx,
        predicate: &Expr,
        out: &mut Vec<Tuple>,
    ) -> Option<bool> {
        let end = (self.idx + ctx.batch_size.max(1)).min(self.end);
        for t in &self.tuples[self.idx..end] {
            if predicate.eval_bool(t, ctx) {
                out.push(t.clone());
            }
        }
        self.idx = end;
        Some(self.idx < self.end)
    }

    fn next_chunk(&mut self, ctx: &mut ExecCtx) -> Option<Chunk> {
        if self.idx >= self.end {
            return None;
        }
        let cols = self
            .columns
            .get_or_init(|| Arc::new(DataChunk::from_rows(&self.schema, &self.tuples)));
        let end = (self.idx + ctx.batch_size.max(1)).min(self.end);
        let chunk = Chunk::window(Arc::clone(cols), self.idx..end);
        self.idx = end;
        Some(chunk)
    }

    fn morsels(&self, target_rows: usize) -> Option<Vec<Morsel>> {
        (self.is_full() && !self.tuples.is_empty())
            .then(|| split_units(self.tuples.len(), target_rows))
    }

    fn clone_morsel(&self, morsel: &Morsel) -> Option<BoxedOp> {
        if !self.is_full() {
            return None;
        }
        Some(Box::new(VecSource {
            schema: self.schema.clone(),
            tuples: Arc::clone(&self.tuples),
            columns: Arc::clone(&self.columns),
            start: morsel.start,
            end: morsel.end.min(self.tuples.len()),
            idx: morsel.start,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_storage::{ColumnType, Value};

    #[test]
    fn emits_all_then_none_and_reopens() {
        let schema = Schema::new(&[("k", ColumnType::Int)]);
        let mut s = VecSource::new(schema, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let mut ctx = ExecCtx::new();
        s.open(&mut ctx);
        assert_eq!(s.next(&mut ctx).unwrap()[0], Value::Int(1));
        assert_eq!(s.next(&mut ctx).unwrap()[0], Value::Int(2));
        assert!(s.next(&mut ctx).is_none());
        s.open(&mut ctx);
        assert_eq!(s.next(&mut ctx).unwrap()[0], Value::Int(1));
    }

    #[test]
    fn morsel_partitions_share_and_cover() {
        let schema = Schema::new(&[("k", ColumnType::Int)]);
        let s = VecSource::new(schema, (0..10).map(|i| vec![Value::Int(i)]).collect());
        let morsels = s.morsels(4).expect("partitionable");
        assert_eq!(morsels.len(), 3);
        let mut ctx = ExecCtx::new();
        let mut all = Vec::new();
        for m in &morsels {
            let mut part = s.clone_morsel(m).expect("clone");
            part.open(&mut ctx);
            while let Some(t) = part.next(&mut ctx) {
                all.push(t[0].as_int().unwrap());
            }
        }
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // Partitions never re-split.
        let part = s.clone_morsel(&morsels[0]).unwrap();
        assert!(part.morsels(2).is_none());
    }
}
