//! Hash join (equi-join, possibly multi-column keys).

use std::collections::HashMap;

use eco_simhw::trace::OpClass;
use eco_storage::{tuple_width, Schema, Tuple, Value};

use crate::context::ExecCtx;
use crate::ops::{BoxedOp, Operator};

/// In-memory hash join: materializes the build side into a hash table
/// at `open`, then streams the probe side.
///
/// Work accounting: one `HashBuild` plus the tuple's width in memory
/// bytes per build row; one `HashProbe` plus one random memory access
/// per probe row (the table exceeds cache for any interesting input);
/// output concatenation charges its width in memory bytes.
pub struct HashJoin {
    build: BoxedOp,
    probe: BoxedOp,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    schema: Schema,
    table: HashMap<Vec<Value>, Vec<Tuple>>,
    pending: Vec<Tuple>,
}

impl HashJoin {
    /// Join `build ⋈ probe` on `build_keys = probe_keys` (positional,
    /// same length). Output schema is build columns followed by probe
    /// columns.
    pub fn new(
        build: BoxedOp,
        probe: BoxedOp,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
    ) -> Self {
        assert_eq!(
            build_keys.len(),
            probe_keys.len(),
            "key arity mismatch: {build_keys:?} vs {probe_keys:?}"
        );
        assert!(!build_keys.is_empty(), "join needs at least one key");
        let schema = build.schema().join(probe.schema());
        Self {
            build,
            probe,
            build_keys,
            probe_keys,
            schema,
            table: HashMap::new(),
            pending: Vec::new(),
        }
    }

    fn key_of(tuple: &Tuple, keys: &[usize]) -> Vec<Value> {
        keys.iter().map(|&i| tuple[i].clone()).collect()
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        self.table.clear();
        self.pending.clear();
        self.build.open(ctx);
        while let Some(t) = self.build.next(ctx) {
            ctx.charge(OpClass::HashBuild, 1);
            ctx.charge_mem_bytes(tuple_width(&t));
            self.table
                .entry(Self::key_of(&t, &self.build_keys))
                .or_default()
                .push(t);
        }
        self.probe.open(ctx);
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        loop {
            if let Some(t) = self.pending.pop() {
                return Some(t);
            }
            let probe_t = self.probe.next(ctx)?;
            ctx.charge(OpClass::HashProbe, 1);
            ctx.charge_mem_random(1);
            if let Some(matches) = self.table.get(&Self::key_of(&probe_t, &self.probe_keys)) {
                for build_t in matches {
                    let mut out = Vec::with_capacity(build_t.len() + probe_t.len());
                    out.extend(build_t.iter().cloned());
                    out.extend(probe_t.iter().cloned());
                    ctx.charge_mem_bytes(tuple_width(&out));
                    self.pending.push(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::VecSource;
    use eco_storage::ColumnType;

    fn src(name: &str, vals: &[(i64, &str)]) -> VecSource {
        let schema = Schema::new(&[
            (&format!("{name}_k"), ColumnType::Int),
            (&format!("{name}_v"), ColumnType::Str),
        ]);
        VecSource::new(
            schema,
            vals.iter()
                .map(|(k, v)| vec![Value::Int(*k), Value::str(*v)])
                .collect(),
        )
    }

    fn run(j: &mut HashJoin) -> Vec<Tuple> {
        let mut ctx = ExecCtx::new();
        j.open(&mut ctx);
        std::iter::from_fn(|| j.next(&mut ctx)).collect()
    }

    #[test]
    fn inner_join_matches() {
        let build = src("a", &[(1, "x"), (2, "y")]);
        let probe = src("b", &[(2, "p"), (3, "q"), (2, "r")]);
        let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0]);
        let out = run(&mut j);
        assert_eq!(out.len(), 2, "key 2 matches twice on the probe side");
        for t in &out {
            assert_eq!(t[0], Value::Int(2));
            assert_eq!(t[1], Value::str("y"));
        }
        assert_eq!(j.schema().names(), vec!["a_k", "a_v", "b_k", "b_v"]);
    }

    #[test]
    fn duplicate_build_keys_fan_out() {
        let build = src("a", &[(1, "x"), (1, "y")]);
        let probe = src("b", &[(1, "p")]);
        let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0]);
        assert_eq!(run(&mut j).len(), 2);
    }

    #[test]
    fn no_matches_empty_output() {
        let build = src("a", &[(1, "x")]);
        let probe = src("b", &[(9, "p")]);
        let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0]);
        assert!(run(&mut j).is_empty());
    }

    #[test]
    fn multi_column_keys() {
        let schema = Schema::new(&[("k1", ColumnType::Int), ("k2", ColumnType::Int)]);
        let build = VecSource::new(
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(20)],
            ],
        );
        let probe = VecSource::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(99)],
            ],
        );
        let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0, 1], vec![0, 1]);
        let out = run(&mut j);
        assert_eq!(out.len(), 1, "only the (1,10) pair joins");
    }

    #[test]
    fn charges_build_and_probe() {
        let build = src("a", &[(1, "x"), (2, "y"), (3, "z")]);
        let probe = src("b", &[(1, "p"), (2, "q")]);
        let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0]);
        let mut ctx = ExecCtx::new();
        j.open(&mut ctx);
        assert_eq!(ctx.cpu.count(OpClass::HashBuild), 3);
        while j.next(&mut ctx).is_some() {}
        assert_eq!(ctx.cpu.count(OpClass::HashProbe), 2);
        assert_eq!(ctx.mem_random_accesses, 2);
    }

    #[test]
    #[should_panic(expected = "key arity mismatch")]
    fn mismatched_keys_rejected() {
        let build = src("a", &[]);
        let probe = src("b", &[]);
        let _ = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0, 1]);
    }
}
