//! Hash join (equi-join, possibly multi-column keys).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use eco_simhw::trace::OpClass;
use eco_storage::{tuple_width, BitPacked, DataChunk, EncodedColumn, Schema, Tuple, Value};

use crate::chunk::Chunk;
use crate::context::ExecCtx;
use crate::ops::{drain_batches, drain_chunks, BoxedOp, Operator};
use crate::parallel::run_morsels;

/// The build-side hash table. Single-column keys index the table by a
/// borrowed [`Value`] directly, and composite keys are looked up
/// through a caller-provided scratch vector (`Vec<Value>:
/// Borrow<[Value]>`), so the steady-state probe path performs **no
/// per-row key allocation** at any arity.
enum JoinTable {
    /// One join key: probe with `&tuple[key]`, zero allocation.
    Single(HashMap<Value, Vec<Tuple>>),
    /// Composite keys: probe through a reused scratch key.
    Multi(HashMap<Vec<Value>, Vec<Tuple>>),
}

impl JoinTable {
    fn for_arity(arity: usize) -> Self {
        if arity == 1 {
            JoinTable::Single(HashMap::new())
        } else {
            JoinTable::Multi(HashMap::new())
        }
    }

    fn clear(&mut self) {
        match self {
            JoinTable::Single(m) => m.clear(),
            JoinTable::Multi(m) => m.clear(),
        }
    }

    fn insert(&mut self, tuple: Tuple, keys: &[usize]) {
        match self {
            JoinTable::Single(m) => {
                m.entry(tuple[keys[0]].clone()).or_default().push(tuple);
            }
            JoinTable::Multi(m) => {
                let key: Vec<Value> = keys.iter().map(|&i| tuple[i].clone()).collect();
                m.entry(key).or_default().push(tuple);
            }
        }
    }

    /// Rows matching `probe`'s key columns, in build-insertion order.
    /// `scratch` is a reused buffer for composite keys — cleared and
    /// refilled with cheap value clones, looked up by slice borrow, so
    /// no `Vec<Value>` is allocated per probe.
    fn lookup<'t>(
        &'t self,
        probe: &Tuple,
        keys: &[usize],
        scratch: &mut Vec<Value>,
    ) -> Option<&'t [Tuple]> {
        match self {
            JoinTable::Single(m) => m.get(&probe[keys[0]]).map(Vec::as_slice),
            JoinTable::Multi(m) => {
                scratch.clear();
                scratch.extend(keys.iter().map(|&i| probe[i].clone()));
                m.get(scratch.as_slice()).map(Vec::as_slice)
            }
        }
    }

    /// Columnar lookup: key values read straight from the chunk's
    /// columns (no probe-row materialization). Same scratch discipline
    /// as [`JoinTable::lookup`].
    fn lookup_chunk<'t>(
        &'t self,
        data: &DataChunk,
        row: usize,
        keys: &[usize],
        scratch: &mut Vec<Value>,
    ) -> Option<&'t [Tuple]> {
        match self {
            JoinTable::Single(m) => m.get(&data.value(keys[0], row)).map(Vec::as_slice),
            JoinTable::Multi(m) => {
                scratch.clear();
                scratch.extend(keys.iter().map(|&i| data.value(i, row)));
                m.get(scratch.as_slice()).map(Vec::as_slice)
            }
        }
    }

    /// Absorb a partition table built from a *later* morsel of the
    /// build stream. Appending each key's row list preserves global
    /// build-insertion (FIFO) order per key, because every row in
    /// `other` comes after every row already in `self` in stream order.
    fn absorb(&mut self, other: JoinTable) {
        match (self, other) {
            (JoinTable::Single(a), JoinTable::Single(b)) => {
                for (k, mut rows) in b {
                    a.entry(k).or_default().append(&mut rows);
                }
            }
            (JoinTable::Multi(a), JoinTable::Multi(b)) => {
                for (k, mut rows) in b {
                    a.entry(k).or_default().append(&mut rows);
                }
            }
            _ => unreachable!("partition tables share the join's key arity"),
        }
    }
}

/// In-memory hash join: materializes the build side into a hash table
/// at `open`, then streams the probe side.
///
/// Work accounting: one `HashBuild` plus the tuple's width in memory
/// bytes per build row; one `HashProbe` plus one random memory access
/// per probe row (the table exceeds cache for any interesting input);
/// output concatenation charges its width in memory bytes.
///
/// Multi-match rows are emitted in build-insertion (FIFO) order, in
/// both scalar and batch mode, so execution order is deterministic and
/// path-independent.
///
/// With a parallel context (`ExecCtx::workers > 1`) and partitionable
/// children, `open` runs both sides morsel-parallel: workers build
/// per-morsel partition tables that are merged in morsel order (so
/// per-key FIFO order — and therefore output order — is exactly the
/// serial build's), and the probe pipeline is pre-materialized by
/// probing the shared table from every worker, gathered in morsel
/// order. All charges are per-row and additive, so the merged ledger is
/// bit-identical to serial execution. Probe pre-materialization is
/// suppressed under a `Limit` ([`ExecCtx::streaming_exact`]) so early
/// termination keeps consuming exactly what scalar execution would.
pub struct HashJoin {
    build: BoxedOp,
    probe: BoxedOp,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    schema: Schema,
    table: JoinTable,
    pending: VecDeque<Tuple>,
    scratch: Vec<Tuple>,
    /// Reused composite-key probe buffer (see [`JoinTable::lookup`]).
    key_scratch: Vec<Value>,
    /// Parallel-probed output (morsel order) and the serve cursor.
    probed: Option<(Vec<Tuple>, usize)>,
}

impl HashJoin {
    /// Join `build ⋈ probe` on `build_keys = probe_keys` (positional,
    /// same length). Output schema is build columns followed by probe
    /// columns.
    pub fn new(
        build: BoxedOp,
        probe: BoxedOp,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
    ) -> Self {
        assert_eq!(
            build_keys.len(),
            probe_keys.len(),
            "key arity mismatch: {build_keys:?} vs {probe_keys:?}"
        );
        assert!(!build_keys.is_empty(), "join needs at least one key");
        let schema = build.schema().join(probe.schema());
        let table = JoinTable::for_arity(build_keys.len());
        Self {
            build,
            probe,
            build_keys,
            probe_keys,
            schema,
            table,
            pending: VecDeque::new(),
            scratch: Vec::new(),
            key_scratch: Vec::new(),
            probed: None,
        }
    }

    /// Concatenate one build row with one probe row.
    fn join_row(build_t: &Tuple, probe_t: &Tuple) -> Tuple {
        let mut out = Vec::with_capacity(build_t.len() + probe_t.len());
        out.extend(build_t.iter().cloned());
        out.extend(probe_t.iter().cloned());
        out
    }

    /// Columnar probe kernel: hash the key column(s) straight out of
    /// the chunk and materialize a probe row only when it matches (late
    /// materialization — non-matching probe rows are never built).
    /// Charges one `HashProbe` + one random access per live probe row
    /// and the output rows' widths, exactly like the row paths.
    /// Under compressed pricing, a single dictionary-encoded probe key
    /// reuses the dictionary id as the hash: the payload is hashed once
    /// per distinct id per chunk ([`Self::probe_dict_chunk`]) and every
    /// repeat resolves by array index.
    fn probe_chunk(
        table: &JoinTable,
        probe_keys: &[usize],
        chunk: &Chunk,
        key_scratch: &mut Vec<Value>,
        rows: &mut Vec<Tuple>,
        ctx: &mut ExecCtx,
    ) {
        let n = chunk.len() as u64;
        if n == 0 {
            return;
        }
        if let (Some(enc), [key], JoinTable::Single(_)) = (&chunk.enc, probe_keys, table) {
            match enc.column(*key) {
                EncodedColumn::DictStr { dict, ids } => {
                    return Self::probe_dict_chunk(
                        table,
                        ids,
                        |d| Value::Str(Arc::clone(&dict[d])),
                        dict.len(),
                        chunk,
                        rows,
                        ctx,
                    );
                }
                EncodedColumn::DictChar { dict, ids } => {
                    return Self::probe_dict_chunk(
                        table,
                        ids,
                        |d| Value::Char(dict[d]),
                        dict.len(),
                        chunk,
                        rows,
                        ctx,
                    );
                }
                _ => {}
            }
        }
        let mut out_bytes = 0u64;
        chunk.rows().for_each(|_, i| {
            if let Some(matches) = table.lookup_chunk(&chunk.data, i, probe_keys, key_scratch) {
                let probe_t = chunk.data.row(i);
                for build_t in matches {
                    let t = Self::join_row(build_t, &probe_t);
                    out_bytes += tuple_width(&t);
                    rows.push(t);
                }
            }
        });
        ctx.charge(OpClass::HashProbe, n);
        ctx.charge_mem_random(n);
        ctx.charge_mem_bytes(out_bytes);
    }

    /// Dictionary-id probe kernel (compressed pricing, single key): the
    /// id *is* the hash key, so the string/char payload is hashed only
    /// on the first sight of each id in this chunk; repeats serve their
    /// match list from a per-id memo. Every live row charges one
    /// `DictLookup` (the id translation); only memo misses charge the
    /// `HashProbe` + random access the raw kernel charges per row.
    /// Output rows — and their byte charges — are identical to the raw
    /// kernel's.
    fn probe_dict_chunk(
        table: &JoinTable,
        ids: &BitPacked,
        key_val: impl Fn(usize) -> Value,
        dict_len: usize,
        chunk: &Chunk,
        rows: &mut Vec<Tuple>,
        ctx: &mut ExecCtx,
    ) {
        let JoinTable::Single(m) = table else {
            unreachable!("dict probe requires a single-key table");
        };
        let mut memo: Vec<Option<Option<&[Tuple]>>> = vec![None; dict_len];
        let mut misses = 0u64;
        let mut out_bytes = 0u64;
        chunk.rows().for_each(|_, i| {
            let d = ids.get(i) as usize;
            let matches = *memo[d].get_or_insert_with(|| {
                misses += 1;
                m.get(&key_val(d)).map(Vec::as_slice)
            });
            if let Some(matches) = matches {
                let probe_t = chunk.data.row(i);
                for build_t in matches {
                    let t = Self::join_row(build_t, &probe_t);
                    out_bytes += tuple_width(&t);
                    rows.push(t);
                }
            }
        });
        ctx.charge(OpClass::DictLookup, chunk.len() as u64);
        ctx.charge(OpClass::HashProbe, misses);
        ctx.charge_mem_random(misses);
        ctx.charge_mem_bytes(out_bytes);
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        self.table.clear();
        self.pending.clear();
        self.probed = None;

        // Build side: fully consumed in every mode, so a surrounding
        // Limit's streaming-exactness constraint does not apply below
        // the build.
        let saved_exact = ctx.streaming_exact;
        ctx.streaming_exact = 0;
        let arity = self.build_keys.len();
        let build_keys = &self.build_keys;
        let partitions = run_morsels(self.build.as_ref(), ctx, |wctx, pipe| {
            // One partition table per morsel, charged exactly as the
            // serial build charges its batches. A columnar worker
            // drains chunks and materializes survivors here (the hash
            // build is a pipeline breaker) — same rows, same charges.
            let mut part = JoinTable::for_arity(arity);
            if wctx.columnar {
                let mut batch = Vec::new();
                drain_chunks(pipe, wctx, |wctx, chunk| {
                    batch.clear();
                    chunk.to_tuples(&mut batch);
                    let bytes: u64 = batch.iter().map(tuple_width).sum();
                    wctx.charge(OpClass::HashBuild, batch.len() as u64);
                    wctx.charge_mem_bytes(bytes);
                    for t in batch.drain(..) {
                        part.insert(t, build_keys);
                    }
                });
                return part;
            }
            let mut batch = Vec::new();
            loop {
                batch.clear();
                let more = pipe.next_batch(wctx, &mut batch);
                let bytes: u64 = batch.iter().map(tuple_width).sum();
                wctx.charge(OpClass::HashBuild, batch.len() as u64);
                wctx.charge_mem_bytes(bytes);
                for t in batch.drain(..) {
                    part.insert(t, build_keys);
                }
                if !more {
                    break;
                }
            }
            part
        });
        match partitions {
            Some(parts) => {
                // Merge in morsel order: per-key FIFO equals serial.
                for part in parts {
                    self.table.absorb(part);
                }
            }
            None if ctx.columnar => {
                self.build.open(ctx);
                let mut batch = std::mem::take(&mut self.scratch);
                let (table, keys) = (&mut self.table, &self.build_keys);
                drain_chunks(self.build.as_mut(), ctx, |ctx, chunk| {
                    batch.clear();
                    chunk.to_tuples(&mut batch);
                    let bytes: u64 = batch.iter().map(tuple_width).sum();
                    ctx.charge(OpClass::HashBuild, batch.len() as u64);
                    ctx.charge_mem_bytes(bytes);
                    for t in batch.drain(..) {
                        table.insert(t, keys);
                    }
                });
                self.scratch = batch;
            }
            None => {
                self.build.open(ctx);
                let mut scratch = std::mem::take(&mut self.scratch);
                let (table, keys) = (&mut self.table, &self.build_keys);
                drain_batches(self.build.as_mut(), ctx, &mut scratch, |ctx, batch| {
                    let bytes: u64 = batch.iter().map(tuple_width).sum();
                    ctx.charge(OpClass::HashBuild, batch.len() as u64);
                    ctx.charge_mem_bytes(bytes);
                    for t in batch.drain(..) {
                        table.insert(t, keys);
                    }
                });
                self.scratch = scratch;
            }
        }
        ctx.streaming_exact = saved_exact;

        // Probe side: pre-materialize morsel-parallel when allowed
        // (run_morsels declines under streaming_exact / serial ctx).
        let table = &self.table;
        let probe_keys = &self.probe_keys;
        let probed = run_morsels(self.probe.as_ref(), ctx, |wctx, pipe| {
            let mut rows = Vec::new();
            let mut key_scratch = Vec::new();
            if wctx.columnar {
                drain_chunks(pipe, wctx, |wctx, chunk| {
                    Self::probe_chunk(table, probe_keys, chunk, &mut key_scratch, &mut rows, wctx);
                });
                return rows;
            }
            let mut probe_in = Vec::new();
            loop {
                probe_in.clear();
                let more = pipe.next_batch(wctx, &mut probe_in);
                let mut out_bytes = 0u64;
                for probe_t in &probe_in {
                    if let Some(matches) = table.lookup(probe_t, probe_keys, &mut key_scratch) {
                        for build_t in matches {
                            let t = Self::join_row(build_t, probe_t);
                            out_bytes += tuple_width(&t);
                            rows.push(t);
                        }
                    }
                }
                let n = probe_in.len() as u64;
                if n > 0 {
                    wctx.charge(OpClass::HashProbe, n);
                    wctx.charge_mem_random(n);
                }
                wctx.charge_mem_bytes(out_bytes);
                if !more {
                    break;
                }
            }
            rows
        });
        match probed {
            Some(parts) => {
                let total = parts.iter().map(Vec::len).sum();
                let mut rows = Vec::with_capacity(total);
                for mut p in parts {
                    rows.append(&mut p);
                }
                self.probed = Some((rows, 0));
            }
            None => self.probe.open(ctx),
        }
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        if let Some((rows, pos)) = &mut self.probed {
            let t = rows.get(*pos)?.clone();
            *pos += 1;
            return Some(t);
        }
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Some(t);
            }
            let probe_t = self.probe.next(ctx)?;
            ctx.charge(OpClass::HashProbe, 1);
            ctx.charge_mem_random(1);
            if let Some(matches) =
                self.table
                    .lookup(&probe_t, &self.probe_keys, &mut self.key_scratch)
            {
                for build_t in matches {
                    let out = Self::join_row(build_t, &probe_t);
                    ctx.charge_mem_bytes(tuple_width(&out));
                    self.pending.push_back(out);
                }
            }
        }
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
        if let Some((rows, pos)) = &mut self.probed {
            let end = (*pos + ctx.batch_size.max(1)).min(rows.len());
            out.extend_from_slice(&rows[*pos..end]);
            *pos = end;
            return *pos < rows.len();
        }
        // Drain anything a scalar caller left behind first.
        while let Some(t) = self.pending.pop_front() {
            out.push(t);
        }
        let mut probe_in = std::mem::take(&mut self.scratch);
        probe_in.clear();
        let more = self.probe.next_batch(ctx, &mut probe_in);
        let mut out_bytes = 0u64;
        for probe_t in &probe_in {
            if let Some(matches) =
                self.table
                    .lookup(probe_t, &self.probe_keys, &mut self.key_scratch)
            {
                for build_t in matches {
                    let t = Self::join_row(build_t, probe_t);
                    out_bytes += tuple_width(&t);
                    out.push(t);
                }
            }
        }
        let n = probe_in.len() as u64;
        if n > 0 {
            ctx.charge(OpClass::HashProbe, n);
            ctx.charge_mem_random(n);
        }
        ctx.charge_mem_bytes(out_bytes);
        self.scratch = probe_in;
        more
    }

    /// Columnar probe: key values are hashed straight out of the probe
    /// chunk's columns and only matching probe rows materialize. The
    /// join output is a fresh row-major chunk — the join is the late
    /// materialization point of its pipeline.
    fn next_chunk(&mut self, ctx: &mut ExecCtx) -> Option<Chunk> {
        if let Some((rows, pos)) = &mut self.probed {
            // Serve the parallel pre-probed rows as decomposed chunks.
            if *pos >= rows.len() {
                return None;
            }
            let end = (*pos + ctx.batch_size.max(1)).min(rows.len());
            let data = DataChunk::from_rows(&self.schema, &rows[*pos..end]);
            *pos = end;
            return Some(Chunk::dense(Arc::new(data)));
        }
        let chunk = self.probe.next_chunk(ctx)?;
        let mut rows = Vec::new();
        Self::probe_chunk(
            &self.table,
            &self.probe_keys,
            &chunk,
            &mut self.key_scratch,
            &mut rows,
            ctx,
        );
        Some(Chunk::dense(Arc::new(DataChunk::from_rows(
            &self.schema,
            &rows,
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::VecSource;
    use eco_storage::ColumnType;

    fn src(name: &str, vals: &[(i64, &str)]) -> VecSource {
        let schema = Schema::new(&[
            (&format!("{name}_k"), ColumnType::Int),
            (&format!("{name}_v"), ColumnType::Str),
        ]);
        VecSource::new(
            schema,
            vals.iter()
                .map(|(k, v)| vec![Value::Int(*k), Value::str(*v)])
                .collect(),
        )
    }

    fn run(j: &mut HashJoin) -> Vec<Tuple> {
        let mut ctx = ExecCtx::new();
        j.open(&mut ctx);
        std::iter::from_fn(|| j.next(&mut ctx)).collect()
    }

    #[test]
    fn inner_join_matches() {
        let build = src("a", &[(1, "x"), (2, "y")]);
        let probe = src("b", &[(2, "p"), (3, "q"), (2, "r")]);
        let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0]);
        let out = run(&mut j);
        assert_eq!(out.len(), 2, "key 2 matches twice on the probe side");
        for t in &out {
            assert_eq!(t[0], Value::Int(2));
            assert_eq!(t[1], Value::str("y"));
        }
        assert_eq!(j.schema().names(), vec!["a_k", "a_v", "b_k", "b_v"]);
    }

    #[test]
    fn duplicate_build_keys_fan_out() {
        let build = src("a", &[(1, "x"), (1, "y")]);
        let probe = src("b", &[(1, "p")]);
        let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0]);
        assert_eq!(run(&mut j).len(), 2);
    }

    #[test]
    fn multi_match_rows_emit_in_build_order() {
        // Regression: `pending` used to drain LIFO, emitting multi-match
        // rows in reverse build order.
        let build = src("a", &[(7, "first"), (7, "second"), (7, "third")]);
        let probe = src("b", &[(7, "p"), (7, "q")]);
        let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0]);
        let out = run(&mut j);
        let order: Vec<&str> = out.iter().map(|t| t[1].as_str().unwrap()).collect();
        assert_eq!(
            order,
            vec!["first", "second", "third", "first", "second", "third"],
            "multi-match rows must stream FIFO in build-insertion order"
        );
        // And the probe side advances in stream order.
        let probes: Vec<&str> = out.iter().map(|t| t[3].as_str().unwrap()).collect();
        assert_eq!(probes, vec!["p", "p", "p", "q", "q", "q"]);
    }

    #[test]
    fn batch_path_matches_scalar_rows_and_order() {
        let data_b = [(1, "x"), (2, "y"), (2, "z")];
        let data_p = [(2, "p"), (1, "q"), (2, "r"), (9, "s")];
        let mut scalar = HashJoin::new(
            Box::new(src("a", &data_b)),
            Box::new(src("b", &data_p)),
            vec![0],
            vec![0],
        );
        let scalar_rows = run(&mut scalar);

        let mut batch = HashJoin::new(
            Box::new(src("a", &data_b)),
            Box::new(src("b", &data_p)),
            vec![0],
            vec![0],
        );
        let mut ctx = ExecCtx::new().with_batch_size(2);
        batch.open(&mut ctx);
        let mut batch_rows = Vec::new();
        while batch.next_batch(&mut ctx, &mut batch_rows) {}
        assert_eq!(batch_rows, scalar_rows);
    }

    #[test]
    fn no_matches_empty_output() {
        let build = src("a", &[(1, "x")]);
        let probe = src("b", &[(9, "p")]);
        let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0]);
        assert!(run(&mut j).is_empty());
    }

    #[test]
    fn multi_column_keys() {
        let schema = Schema::new(&[("k1", ColumnType::Int), ("k2", ColumnType::Int)]);
        let build = VecSource::new(
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(20)],
            ],
        );
        let probe = VecSource::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(99)],
            ],
        );
        let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0, 1], vec![0, 1]);
        let out = run(&mut j);
        assert_eq!(out.len(), 1, "only the (1,10) pair joins");
    }

    #[test]
    fn charges_build_and_probe() {
        let build = src("a", &[(1, "x"), (2, "y"), (3, "z")]);
        let probe = src("b", &[(1, "p"), (2, "q")]);
        let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0]);
        let mut ctx = ExecCtx::new();
        j.open(&mut ctx);
        assert_eq!(ctx.cpu.count(OpClass::HashBuild), 3);
        while j.next(&mut ctx).is_some() {}
        assert_eq!(ctx.cpu.count(OpClass::HashProbe), 2);
        assert_eq!(ctx.mem_random_accesses, 2);
    }

    #[test]
    #[should_panic(expected = "key arity mismatch")]
    fn mismatched_keys_rejected() {
        let build = src("a", &[]);
        let probe = src("b", &[]);
        let _ = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0, 1]);
    }

    /// Micro-assertion for the dictionary-id probe path: under
    /// compressed pricing a dict-encoded probe key must produce exactly
    /// the raw kernel's rows while hashing the string payload once per
    /// distinct id per chunk instead of once per row.
    #[test]
    fn dict_id_probe_matches_raw_rows_and_skips_rehashing() {
        use crate::ops::SeqScan;
        use eco_simhw::trace::PricingMode;
        use eco_storage::{Catalog, HeapTable};

        // Probe side: 600 rows over 5 distinct string keys → dict-str.
        let pschema = Schema::new(&[("pk", ColumnType::Str), ("pv", ColumnType::Int)]);
        let ptuples: Vec<Tuple> = (0..600)
            .map(|i| vec![Value::str(format!("key-{}", i % 5)), Value::Int(i)])
            .collect();
        let mut cat = Catalog::new(1 << 20);
        cat.add_memory_table("p", HeapTable::from_tuples(pschema, ptuples));

        // Build side: 3 of the 5 keys (and one absent key) match.
        let bschema = Schema::new(&[("bk", ColumnType::Str), ("bv", ColumnType::Int)]);
        let mk = |pricing: PricingMode| {
            let build = VecSource::new(
                bschema.clone(),
                vec![
                    vec![Value::str("key-1"), Value::Int(100)],
                    vec![Value::str("key-3"), Value::Int(300)],
                    vec![Value::str("key-4"), Value::Int(400)],
                    vec![Value::str("absent"), Value::Int(999)],
                ],
            );
            let probe = SeqScan::new(cat.expect("p"));
            let mut j = HashJoin::new(Box::new(build), Box::new(probe), vec![0], vec![0]);
            let mut ctx = ExecCtx::new().with_columnar(true).with_pricing(pricing);
            j.open(&mut ctx);
            let mut rows = Vec::new();
            while let Some(c) = j.next_chunk(&mut ctx) {
                c.to_tuples(&mut rows);
            }
            (rows, ctx)
        };

        let (raw_rows, raw_ctx) = mk(PricingMode::Raw);
        let (comp_rows, comp_ctx) = mk(PricingMode::Compressed);
        assert_eq!(comp_rows, raw_rows, "dict-id probe must match raw rows");
        assert_eq!(raw_rows.len(), 360, "3 of 5 keys × 120 rows each");
        assert_eq!(raw_ctx.cpu.count(OpClass::HashProbe), 600);
        assert_eq!(
            comp_ctx.cpu.count(OpClass::HashProbe),
            5,
            "payload hashed once per distinct id per chunk"
        );
        assert_eq!(comp_ctx.cpu.count(OpClass::DictLookup), 600);
        assert!(
            comp_ctx.mem_stream_bytes < raw_ctx.mem_stream_bytes,
            "scan prices encoded bytes"
        );
    }

    /// Micro-assertion for the borrowed multi-key probe path: composite
    /// keys (including string components, the allocation-heavy case the
    /// scratch buffer eliminates) produce identical rows and identical
    /// ledgers across scalar, batch and columnar execution.
    #[test]
    fn multi_key_rows_and_ledgers_identical_across_engines() {
        use crate::exec::ExecEngine;
        let schema = Schema::new(&[("k1", ColumnType::Int), ("k2", ColumnType::Str)]);
        let mk = || {
            let build = VecSource::new(
                schema.clone(),
                (0..40)
                    .map(|i| vec![Value::Int(i % 5), Value::str(format!("g{}", i % 3))])
                    .collect(),
            );
            let probe = VecSource::new(
                schema.clone(),
                (0..60)
                    .map(|i| vec![Value::Int(i % 7), Value::str(format!("g{}", i % 4))])
                    .collect(),
            );
            HashJoin::new(Box::new(build), Box::new(probe), vec![0, 1], vec![0, 1])
        };

        let mut sctx = ExecCtx::new().with_batch_size(1);
        let mut j = mk();
        let scalar_rows = crate::exec::execute_scalar(&mut j, &mut sctx);
        assert!(!scalar_rows.is_empty(), "the workload must join something");

        for engine in [ExecEngine::Batch, ExecEngine::Columnar] {
            let mut ctx = ExecCtx::new();
            let mut j = mk();
            let rows = engine.execute(&mut j, &mut ctx);
            assert_eq!(rows, scalar_rows, "{engine:?}: rows differ");
            assert_eq!(ctx.cpu, sctx.cpu, "{engine:?}: op counts differ");
            assert_eq!(ctx.mem_stream_bytes, sctx.mem_stream_bytes, "{engine:?}");
            assert_eq!(
                ctx.mem_random_accesses, sctx.mem_random_accesses,
                "{engine:?}"
            );
        }
    }
}
